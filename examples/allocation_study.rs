//! Allocation study: compare the paper's energy-optimal knapsack
//! allocation with the future-work WCET-aware allocation, per capacity.
//!
//! The energy knapsack optimises profiled (typical-case) accesses; the
//! WCET-aware allocator asks the static analyzer instead, placing the
//! objects on the *critical path*. The two usually agree on the hottest
//! objects and diverge in the tail.
//!
//! ```text
//! cargo run --release --example allocation_study -- multisort
//! ```

use spmlab::pipeline::Pipeline;
use spmlab::report::render_table;
use spmlab::{MemArchSpec, SpmAllocation};
use spmlab_alloc::energy::EnergyModel;
use spmlab_alloc::{knapsack, wcet_aware};
use spmlab_cc::SpmAssignment;
use spmlab_isa::annot::AnnotationSet;
use spmlab_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "multisort".into());
    let bench = benchmark(&name).ok_or(format!("unknown benchmark `{name}`"))?;
    println!("allocation study for `{}`\n", bench.name);

    let pipeline = Pipeline::new(bench)?;
    let module = bench.compile()?;
    let energy = EnergyModel::default();

    let fixed = |a: &SpmAssignment| SpmAllocation::Fixed(a.iter().map(str::to_string).collect());
    let mut rows = Vec::new();
    for capacity in [128u32, 256, 512, 1024, 2048] {
        // Paper: energy-optimal knapsack over the baseline profile.
        let ek = knapsack::allocate(&module, pipeline.baseline_profile(), capacity, &energy);
        let ek_run = pipeline.run(&MemArchSpec::spm_with(capacity, fixed(&ek.assignment)))?;
        // Future work: greedy WCET-driven allocation.
        let wa = wcet_aware::allocate(&module, capacity, &AnnotationSet::new())?;
        let wa_run = pipeline.run(&MemArchSpec::spm_with(capacity, fixed(&wa.assignment)))?;
        rows.push(vec![
            capacity.to_string(),
            ek_run.sim_cycles.to_string(),
            ek_run.wcet_cycles.to_string(),
            wa_run.sim_cycles.to_string(),
            wa_run.wcet_cycles.to_string(),
        ]);
        println!("capacity {capacity} B:");
        println!(
            "  energy knapsack picked: {}",
            ek.assignment.iter().collect::<Vec<_>>().join(", ")
        );
        println!(
            "  wcet-aware picked:      {}",
            wa.assignment.iter().collect::<Vec<_>>().join(", ")
        );
    }
    println!();
    println!(
        "{}",
        render_table(
            &[
                "bytes",
                "energy: sim",
                "energy: wcet",
                "wcet-aware: sim",
                "wcet-aware: wcet"
            ],
            &rows
        )
    );
    println!("the WCET-aware allocator should never lose on the WCET column.");
    Ok(())
}
