//! Design-space exploration: sweep scratchpad and cache capacities for one
//! of the shipped benchmarks and print the paper's Figure-3/4-style tables
//! (simulated cycles, WCET bound, ratio, plus energy estimates).
//!
//! ```text
//! cargo run --release --example explore_memory_hierarchy -- adpcm
//! cargo run --release --example explore_memory_hierarchy -- g721 --quick
//! ```

use spmlab::pipeline::Pipeline;
use spmlab::report::render_table;
use spmlab::sweep::{cache_sweep, hierarchy_sweep, spm_sweep};
use spmlab::{hierarchy_axis, PAPER_SIZES};
use spmlab_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("adpcm");
    let quick = args.iter().any(|a| a == "--quick");
    let sizes: &[u32] = if quick {
        &[64, 512, 4096]
    } else {
        &PAPER_SIZES
    };

    let bench = benchmark(name).ok_or_else(|| {
        format!(
            "unknown benchmark `{name}`; try one of: {}",
            spmlab_workloads::all_benchmarks()
                .iter()
                .map(|b| b.name.as_ref())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    println!("exploring `{}` — {}\n", bench.name, bench.description);

    let pipeline = Pipeline::new(bench)?;
    let spm = spm_sweep(&pipeline, sizes)?;
    let cache = cache_sweep(&pipeline, sizes)?;

    let rows: Vec<Vec<String>> = spm
        .iter()
        .zip(&cache)
        .map(|(s, c)| {
            vec![
                s.size.to_string(),
                s.result.sim_cycles.to_string(),
                s.result.wcet_cycles.to_string(),
                format!("{:.2}", s.result.ratio()),
                format!("{:.0}", s.result.energy_nj / 1000.0),
                c.result.sim_cycles.to_string(),
                c.result.wcet_cycles.to_string(),
                format!("{:.2}", c.result.ratio()),
                format!("{:.0}", c.result.energy_nj / 1000.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "bytes", "spm sim", "spm wcet", "ratio", "spm µJ", "$ sim", "$ wcet", "ratio",
                "$ µJ"
            ],
            &rows
        )
    );

    // What did the knapsack pick at each capacity?
    println!("\nscratchpad contents chosen by the energy knapsack:");
    for p in &spm {
        println!("  {:>5} B: {}", p.size, p.result.spm_objects.join(", "));
    }

    // The multi-level axis: split L1 I/D caches backed by a unified L2,
    // over SRAM-style and DRAM-style main memories.
    let l1 = 512;
    let hier = hierarchy_sweep(&pipeline, &hierarchy_axis(l1))?;
    let hrows: Vec<Vec<String>> = hier
        .iter()
        .map(|p| {
            vec![
                p.result.label.clone(),
                p.result.sim_cycles.to_string(),
                p.result.wcet_cycles.to_string(),
                format!("{:.2}", p.result.ratio()),
                p.result.classify.l2_hits.to_string(),
            ]
        })
        .collect();
    println!("\nmulti-level hierarchies (l1 budget {l1} B):");
    println!(
        "{}",
        render_table(&["configuration", "sim", "wcet", "ratio", "L2 AH"], &hrows)
    );
    Ok(())
}
