//! A tiny objdump: compile a benchmark and print its linked image —
//! symbols, per-function disassembly and the auto-generated annotations.
//! Useful for understanding what the WCET analyzer actually sees.
//!
//! ```text
//! cargo run --release --example objdump -- insertsort
//! ```

use spmlab_cc::{link, SpmAssignment};
use spmlab_isa::annot::AddrInfo;
use spmlab_isa::decode::decode;
use spmlab_isa::disasm::disassemble;
use spmlab_isa::image::SymbolKind;
use spmlab_isa::mem::MemoryMap;
use spmlab_workloads::benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "insertsort".into());
    let bench = benchmark(&name).ok_or(format!("unknown benchmark `{name}`"))?;
    let module = bench.compile()?;
    let linked = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none())?;
    let exe = &linked.exe;

    println!("entry point: {:#010x}\n", exe.entry);
    println!("symbol table:");
    for s in &exe.symbols {
        let kind = match s.kind {
            SymbolKind::Func { code_size } => format!("func (code {code_size} B)"),
            SymbolKind::Object { width } => format!("object ({width})"),
        };
        println!("  {:#010x} {:>5} B  {:<24} {kind}", s.addr, s.size, s.name);
    }

    for sym in exe.functions() {
        let SymbolKind::Func { code_size } = sym.kind else {
            continue;
        };
        println!("\n<{}>:", sym.name);
        let mut addr = sym.addr;
        let end = sym.addr + code_size;
        while addr < end {
            let hw = exe.read_half(addr).ok_or("unreadable code")?;
            let next = if addr + 4 <= end {
                exe.read_half(addr + 2)
            } else {
                None
            };
            let (insn, size) = decode(hw, next);
            let mut line = format!("  {:#010x}:  {}", addr, disassemble(&insn, addr));
            if let Some(bound) = linked.annotations.loop_bound(addr) {
                line.push_str(&format!("    ; loop bound {bound}"));
            }
            if let Some(acc) = linked.annotations.access(addr) {
                match acc.addr {
                    AddrInfo::Exact(a) => line.push_str(&format!("    ; -> {a:#x}")),
                    AddrInfo::Range { lo, hi } => {
                        line.push_str(&format!("    ; -> [{lo:#x},{hi:#x})"))
                    }
                    _ => {}
                }
            }
            println!("{line}");
            addr += size;
        }
        if code_size < sym.size {
            println!("  ; literal pool: {} bytes", sym.size - code_size);
        }
    }
    Ok(())
}
