//! Quickstart: compile a MiniC program, simulate it, and bound its WCET —
//! first with everything in slow main memory, then with the hot loop's
//! function and data in a scratchpad, exactly the comparison the paper
//! makes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spmlab_cc::{compile, link, SpmAssignment};
use spmlab_isa::mem::MemoryMap;
use spmlab_sim::{simulate, MachineConfig, SimOptions};
use spmlab_wcet::{analyze, WcetConfig};

const SOURCE: &str = r#"
    int samples[64];
    int energy;

    int sum_of_squares() {
        int i; int acc;
        acc = 0;
        for (i = 0; i < 64; i = i + 1) {
            __loopbound(64);
            acc = acc + samples[i] * samples[i];
        }
        return acc;
    }

    void main() {
        int i;
        for (i = 0; i < 64; i = i + 1) { __loopbound(64); samples[i] = i - 32; }
        energy = sum_of_squares();
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile(SOURCE)?;

    // Configuration 1: everything in main memory (2-cycle fetches,
    // 4-cycle word data — the paper's Table 1).
    let slow = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none())?;
    let slow_sim = simulate(
        &slow.exe,
        &MachineConfig::uncached(),
        &SimOptions::default(),
    )?;
    let slow_wcet = analyze(&slow.exe, &WcetConfig::region_timing(), &slow.annotations)?;

    // Configuration 2: hot function + data on a 1 KiB scratchpad
    // (single-cycle accesses). The only change the WCET analyzer needs is
    // the new memory layout — "no additional analysis module required".
    let map = MemoryMap::with_spm(1024);
    let assignment = SpmAssignment::of(["sum_of_squares", "samples"]);
    let fast = link(&module, &map, &assignment)?;
    let fast_sim = simulate(
        &fast.exe,
        &MachineConfig::uncached(),
        &SimOptions::default(),
    )?;
    let fast_wcet = analyze(&fast.exe, &WcetConfig::region_timing(), &fast.annotations)?;

    println!(
        "result (energy global): {:?}",
        slow_sim.read_global(&slow.exe, "energy")
    );
    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>7}",
        "configuration", "sim cycles", "wcet bound", "ratio"
    );
    for (name, sim, wcet) in [
        ("main memory only", &slow_sim, &slow_wcet),
        ("scratchpad (1 KiB)", &fast_sim, &fast_wcet),
    ] {
        println!(
            "{:<22} {:>12} {:>12} {:>7.3}",
            name,
            sim.cycles,
            wcet.wcet_cycles,
            wcet.wcet_cycles as f64 / sim.cycles as f64
        );
    }
    println!();
    println!(
        "speedup: sim {:.2}x, wcet {:.2}x — the WCET bound scales with the gain",
        slow_sim.cycles as f64 / fast_sim.cycles as f64,
        slow_wcet.wcet_cycles as f64 / fast_wcet.wcet_cycles as f64,
    );
    Ok(())
}
