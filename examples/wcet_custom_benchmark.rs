//! Bring your own benchmark: write MiniC, get a WCET report.
//!
//! Demonstrates the analyzer's user-facing behaviour on custom code:
//! per-function bounds, the automatic counted-loop detector, flow-fact
//! (`__looptotal`) tightening, and the error reported when a bound is
//! missing — the same interaction loop aiT users have.
//!
//! ```text
//! cargo run --release --example wcet_custom_benchmark
//! ```

use spmlab_cc::{compile, link, SpmAssignment};
use spmlab_isa::mem::MemoryMap;
use spmlab_sim::{simulate, MachineConfig, SimOptions};
use spmlab_wcet::{analyze, WcetConfig, WcetError};

/// A small matrix-vector kernel. The loops are counted, so the analyzer's
/// auto-detector can bound them even without `__loopbound` annotations.
const MATVEC: &str = r#"
    int mat[64];
    int vec[8];
    int out[8];
    int checksum;

    void matvec() {
        int r; int ccc; int acc;
        for (r = 0; r < 8; r = r + 1) {
            acc = 0;
            for (ccc = 0; ccc < 8; ccc = ccc + 1) {
                acc = acc + mat[r * 8 + ccc] * vec[ccc];
            }
            out[r] = acc;
        }
    }

    void main() {
        int i;
        for (i = 0; i < 64; i = i + 1) { mat[i] = i % 9 - 4; }
        for (i = 0; i < 8; i = i + 1) { vec[i] = i + 1; }
        matvec();
        checksum = 0;
        for (i = 0; i < 8; i = i + 1) { checksum = checksum + out[i]; }
    }
"#;

/// A data-dependent loop: the search length depends on input, so the
/// analyzer *must* be given a bound.
const UNBOUNDED: &str = r#"
    int key;
    int found;
    int table[100];
    void main() {
        int i;
        i = 0;
        while (table[i] != key) {   // no __loopbound: analysis must reject
            i = i + 1;
        }
        found = i;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The happy path: auto-detected counted loops.
    let linked = link(
        &compile(MATVEC)?,
        &MemoryMap::no_spm(),
        &SpmAssignment::none(),
    )?;
    let sim = simulate(
        &linked.exe,
        &MachineConfig::uncached(),
        &SimOptions::default(),
    )?;
    let wcet = analyze(
        &linked.exe,
        &WcetConfig::region_timing(),
        &linked.annotations,
    )?;
    println!(
        "matvec: checksum = {:?}",
        sim.read_global(&linked.exe, "checksum")
    );
    println!(
        "matvec: sim {} cycles, WCET bound {} cycles (all loop bounds auto-detected)",
        sim.cycles, wcet.wcet_cycles
    );
    println!("\nper-function report:\n{wcet}");

    // 2. The unhappy path: the analyzer refuses unbounded loops, naming
    // the offending header — the user then adds a `__loopbound`.
    let linked = link(
        &compile(UNBOUNDED)?,
        &MemoryMap::no_spm(),
        &SpmAssignment::none(),
    )?;
    match analyze(
        &linked.exe,
        &WcetConfig::region_timing(),
        &linked.annotations,
    ) {
        Err(WcetError::UnboundedLoop { func, header }) => {
            println!("as expected, analysis rejected the search loop:");
            println!("  unbounded loop at {header:#x} in `{func}` — annotate it");
        }
        other => println!("unexpected analysis outcome: {other:?}"),
    }

    // 3. Supplying the missing bound as a *user* annotation (the tool-side
    // equivalent of aiT's annotation file) makes the analysis go through.
    let mut annotations = linked.annotations.clone();
    let err = analyze(&linked.exe, &WcetConfig::region_timing(), &annotations).unwrap_err();
    if let WcetError::UnboundedLoop { header, .. } = err {
        annotations.set_loop_bound(header, 99);
        let wcet = analyze(&linked.exe, &WcetConfig::region_timing(), &annotations)?;
        println!(
            "  with a user bound of 99 iterations: WCET = {} cycles",
            wcet.wcet_cycles
        );
    }
    Ok(())
}
