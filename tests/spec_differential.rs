//! Differential suite for the `MemArchSpec` run API: `Pipeline::run`
//! must keep returning **byte-identical** `sim_cycles`/`wcet_cycles` for
//! every point of the standard G.721 axes (hierarchy, SPM, cache,
//! SPM-over-DRAM), pinned as golden numbers.
//!
//! Provenance of the pins:
//!
//! * `sim_cycles` — unchanged since the seed (commit `7443bc9`): the
//!   simulator is not touched by analyzer work.
//! * SPM and cache `wcet_cycles` — unchanged since the seed: region
//!   timing and the paper's single-level MUST analysis are untouched.
//! * hierarchy `wcet_cycles` — re-captured after the interprocedural
//!   MAY/CAC upgrade, which tightened every multi-level point. The seed's
//!   bounds are retained in [`GOLDEN_HIERARCHY_SEED_WCET`];
//!   [`hierarchy_axis_never_looser_than_seed`] proves the new pins are
//!   ≤ the seed's at every point, and
//!   [`baseline_flags_reproduce_seed_bounds`] proves the pre-MAY baseline
//!   (`WcetConfig::with_hierarchy_baseline`) still reproduces the seed's
//!   numbers exactly — so the upgrade is a pure, measured tightening.
//!
//! (The validation layer's proptest suite lives with the spec type in
//! `spmlab-isa::archspec`; this file exercises the pipeline.)

use spmlab::pipeline::Pipeline;
use spmlab::{hierarchy_axis, MainMemoryTiming, MemArchSpec, PAPER_SIZES};
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_workloads::G721;
use std::sync::OnceLock;

/// One shared G.721 pipeline — the prepare step (compile, link, baseline
/// interpretation) is the expensive part and identical for every test.
fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| Pipeline::new(&G721).unwrap())
}

/// `(label, sim_cycles, wcet_cycles)` of the G.721 hierarchy axis
/// (`hierarchy_axis(1024)`), captured from the interprocedural MAY/CAC
/// analysis. The bare unified L1 routes to the paper's single-level
/// analyzer, so its bound matches `GOLDEN_CACHE` at 1024 exactly.
const GOLDEN_HIERARCHY: [(&str, u64, u64); 6] = [
    ("l1 1024", 7_786_981, 27_571_788),
    ("l1i512+l1d512", 7_421_781, 27_503_436),
    ("l1i512+l1d512+l2 4096", 6_388_137, 55_831_420),
    ("l1i512+l1d512+l2 16384", 6_337_449, 55_692_060),
    ("l1i512+l1d512+l2 4096 (dram 10+2x2)", 8_639_877, 70_874_190),
    ("l1i 1024+l2 16384", 7_411_155, 47_173_103),
];

/// The seed's (pre-MAY, per-function-TOP) hierarchy bounds, captured from
/// commit `7443bc9` — kept to prove the upgrade never loosened a point
/// and to pin the baseline analysis path.
const GOLDEN_HIERARCHY_SEED_WCET: [u64; 6] = [
    27_571_788, 27_763_788, 57_215_932, 57_215_932, 72_655_522, 48_559_695,
];

/// `(size, sim_cycles, wcet_cycles)` of the G.721 scratchpad axis,
/// captured from the seed implementation (region timing — unchanged).
const GOLDEN_SPM: [(u32, u64, u64); 8] = [
    (64, 8_378_278, 10_820_728),
    (128, 8_211_097, 10_556_536),
    (256, 8_097_278, 10_507_896),
    (512, 7_763_850, 10_076_277),
    (1024, 7_665_254, 9_945_438),
    (2048, 7_178_505, 9_454_200),
    (4096, 6_955_474, 9_192_286),
    (8192, 6_955_474, 9_192_286),
];

/// `(size, sim_cycles, wcet_cycles)` of the G.721 unified-cache axis,
/// captured from the seed implementation (the paper's single-level MUST
/// analysis — unchanged).
const GOLDEN_CACHE: [(u32, u64, u64); 8] = [
    (64, 18_429_877, 40_495_708),
    (128, 14_606_117, 40_143_436),
    (256, 12_091_573, 38_109_772),
    (512, 9_100_533, 28_806_732),
    (1024, 7_786_981, 27_571_788),
    (2048, 6_610_437, 27_395_628),
    (4096, 5_507_909, 27_305_516),
    (8192, 5_490_853, 27_301_420),
];

/// `(label, sim_cycles, wcet_cycles)` of the SPM-1024 points over both
/// main-memory timings, captured from the seed implementation.
const GOLDEN_SPM_MAINS: [(&str, u64, u64); 2] = [
    ("spm 1024", 7_665_254, 9_945_438),
    ("spm 1024 (dram 10)", 20_504_514, 24_924_148),
];

#[test]
fn g721_hierarchy_axis_matches_golden() {
    let p = pipeline();
    for (h, &(label, sim, wcet)) in hierarchy_axis(1024).iter().zip(&GOLDEN_HIERARCHY) {
        let spec = MemArchSpec::from_hierarchy(h);
        let r = p.run(&spec).unwrap();
        assert_eq!(r.label, label);
        assert_eq!(r.sim_cycles, sim, "{label}: sim drifted");
        assert_eq!(r.wcet_cycles, wcet, "{label}: wcet drifted");
    }
}

#[test]
fn hierarchy_axis_never_looser_than_seed() {
    for (&(label, _, wcet), &seed) in GOLDEN_HIERARCHY.iter().zip(&GOLDEN_HIERARCHY_SEED_WCET) {
        assert!(
            wcet <= seed,
            "{label}: the MAY/CAC analysis pins ({wcet}) must not exceed the seed's ({seed})"
        );
    }
}

/// The pre-MAY baseline flags reproduce the seed's multi-level bounds
/// exactly — the analyzer upgrade is switchable, measured, and did not
/// disturb the code path it is compared against.
#[test]
fn baseline_flags_reproduce_seed_bounds() {
    use spmlab_cc::SpmAssignment;
    use spmlab_isa::mem::MemoryMap;
    use spmlab_wcet::{analyze, WcetConfig};
    let module = G721.compile().unwrap();
    let input = G721.typical_input();
    let linked = G721
        .link_with_input(
            &module,
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
            &input,
        )
        .unwrap();
    // Skip the first axis point: the bare unified L1 is routed to the
    // single-level analyzer by the pipeline, so the multi-level baseline
    // is not what produced its seed pin.
    for (h, &seed) in hierarchy_axis(1024)
        .iter()
        .zip(&GOLDEN_HIERARCHY_SEED_WCET)
        .skip(1)
    {
        let base = analyze(
            &linked.exe,
            &WcetConfig::with_hierarchy_baseline(h.clone()),
            &linked.annotations,
        )
        .unwrap();
        assert_eq!(
            base.wcet_cycles,
            seed,
            "{}: baseline flags no longer reproduce the seed bound",
            h.label()
        );
    }
}

#[test]
fn g721_spm_axis_matches_golden() {
    let p = pipeline();
    assert_eq!(PAPER_SIZES.len(), GOLDEN_SPM.len());
    for &(size, sim, wcet) in &GOLDEN_SPM {
        let r = p.run(&MemArchSpec::spm(size)).unwrap();
        assert_eq!(r.sim_cycles, sim, "spm {size}: sim drifted from seed");
        assert_eq!(r.wcet_cycles, wcet, "spm {size}: wcet drifted from seed");
        assert_eq!(r.label, format!("spm {size}"));
    }
}

#[test]
fn g721_cache_axis_matches_golden() {
    let p = pipeline();
    for &(size, sim, wcet) in &GOLDEN_CACHE {
        let spec = MemArchSpec::single_cache(CacheConfig::unified(size));
        let r = p.run(&spec).unwrap();
        assert_eq!(r.sim_cycles, sim, "cache {size}: sim drifted from seed");
        assert_eq!(r.wcet_cycles, wcet, "cache {size}: wcet drifted from seed");
    }
}

#[test]
fn g721_spm_over_mains_matches_golden() {
    let p = pipeline();
    let mains = [MainMemoryTiming::table1(), MainMemoryTiming::dram(10)];
    for (&main, &(label, sim, wcet)) in mains.iter().zip(&GOLDEN_SPM_MAINS) {
        let r = p
            .run(&MemArchSpec {
                main,
                ..MemArchSpec::spm(1024)
            })
            .unwrap();
        assert_eq!(r.label, label);
        assert_eq!(r.sim_cycles, sim, "{label}: sim drifted from seed");
        assert_eq!(r.wcet_cycles, wcet, "{label}: wcet drifted from seed");
    }
}

#[test]
fn baseline_and_fixed_assignment_specs_work() {
    use spmlab_isa::archspec::SpmAllocation;
    let p = pipeline();
    let base = p.run(&MemArchSpec::uncached()).unwrap();
    assert!(base.wcet_cycles >= base.sim_cycles);

    // A Fixed allocation reproduces the knapsack pick it was copied from.
    let knapsack = p.run(&MemArchSpec::spm(1024)).unwrap();
    let picks = knapsack.spm_objects.clone();
    assert!(picks.len() >= 2, "knapsack picked {picks:?}");
    let fixed = p
        .run(&MemArchSpec::spm_with(
            1024,
            SpmAllocation::Fixed(picks.clone()),
        ))
        .unwrap();
    assert_eq!(fixed.sim_cycles, knapsack.sim_cycles);
    assert_eq!(fixed.wcet_cycles, knapsack.wcet_cycles);
    assert_eq!(fixed.spm_objects, picks);
}

/// The write-policy axis joined the spec vocabulary without disturbing a
/// single write-through number: explicitly-write-through specs
/// canonicalise to the same machine as the pre-policy defaults and cost
/// byte-identically to the seed pins, while write-back twins are distinct
/// machines that stay sound.
#[test]
fn write_through_specs_cost_byte_identically_to_seed() {
    use spmlab_isa::cachecfg::WritePolicy;
    let p = pipeline();
    // Explicit write-through == the default (the seed's implicit policy):
    // same canonical form, same golden numbers.
    let mut explicit = CacheConfig::unified(1024);
    explicit.write_policy = WritePolicy::WriteThrough;
    let spec = MemArchSpec::single_cache(explicit);
    assert_eq!(
        spec.canonical(),
        MemArchSpec::single_cache(CacheConfig::unified(1024)).canonical()
    );
    let r = p.run(&spec).unwrap();
    let (_, sim, wcet) = GOLDEN_CACHE[4]; // the 1024-byte pin
    assert_eq!(
        r.sim_cycles, sim,
        "explicit write-through drifted from seed"
    );
    assert_eq!(r.wcet_cycles, wcet);
    // The write-back twin is a different machine: distinct label, sound
    // result, and a *tighter or equal* simulated store path is not
    // guaranteed — only soundness is.
    let wb = p
        .run(&MemArchSpec::single_cache(
            CacheConfig::unified(1024).write_back(),
        ))
        .unwrap();
    assert_eq!(wb.label, "l1 1024-wb");
    assert!(wb.wcet_cycles >= wb.sim_cycles);
    assert_ne!(wb.sim_cycles, sim, "write-back must change store timing");
}

/// A store-buffered machine runs through the full pipeline (no trace
/// replay — the trace is write-through) and stays sound; the unbuffered
/// uncached numbers are untouched.
#[test]
fn store_buffered_spec_is_sound_and_leaves_baseline_pinned() {
    use spmlab_isa::hierarchy::StoreBuffer;
    let p = pipeline();
    let base = p.run(&MemArchSpec::uncached()).unwrap();
    let sb = p
        .run(&MemArchSpec {
            main: MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(4, 6)),
            ..MemArchSpec::uncached()
        })
        .unwrap();
    assert!(sb.wcet_cycles >= sb.sim_cycles);
    assert!(
        sb.sim_cycles < base.sim_cycles,
        "buffered stores must be faster on G.721 ({} vs {})",
        sb.sim_cycles,
        base.sim_cycles
    );
    assert_eq!(sb.label, "uncached (sb 4x6)");
}

#[test]
fn persistence_spec_tightens_must_only() {
    let p = pipeline();
    let cache = CacheConfig::unified(1024);
    let pers = p
        .run(&MemArchSpec {
            persistence: true,
            ..MemArchSpec::single_cache(cache.clone())
        })
        .unwrap();
    let must_only = p.run(&MemArchSpec::single_cache(cache)).unwrap();
    assert!(pers.wcet_cycles <= must_only.wcet_cycles);
    assert!(pers.wcet_cycles >= pers.sim_cycles);
}
