//! Differential suite for the `MemArchSpec` redesign: `Pipeline::run`
//! must return **byte-identical** `sim_cycles`/`wcet_cycles` to the
//! legacy `run_*` entry points for every point of the existing
//! eight-config G.721 hierarchy sweep, the SPM axis, the cache axis, and
//! the SPM-over-DRAM points.
//!
//! Two layers of protection:
//!
//! 1. **Golden numbers** captured from the pre-redesign implementation
//!    (commit `7443bc9`, the seed `run_*` bodies) — the spec router must
//!    reproduce them exactly, so the redesign provably did not change a
//!    single output.
//! 2. **Shim equivalence** — the deprecated `run_*` shims must agree with
//!    `run(&spec)` point by point, so they cannot drift while they live.
//!
//! (The validation layer's proptest suite lives with the spec type in
//! `spmlab-isa::archspec`; this file exercises the pipeline.)

#![allow(deprecated)] // The whole point is to compare against the shims.

use spmlab::pipeline::Pipeline;
use spmlab::{hierarchy_axis, MainMemoryTiming, MemArchSpec, PAPER_SIZES};
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_workloads::G721;
use std::sync::OnceLock;

/// One shared G.721 pipeline — the prepare step (compile, link, baseline
/// interpretation) is the expensive part and identical for every test.
fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| Pipeline::new(&G721).unwrap())
}

/// `(label, sim_cycles, wcet_cycles)` of the eight-config G.721 hierarchy
/// axis (`hierarchy_axis(1024)`), captured from the legacy
/// `run_hierarchy` implementation.
const GOLDEN_HIERARCHY: [(&str, u64, u64); 6] = [
    ("l1 1024", 7_786_981, 27_571_788),
    ("l1i512+l1d512", 7_421_781, 27_763_788),
    ("l1i512+l1d512+l2 4096", 6_388_137, 57_215_932),
    ("l1i512+l1d512+l2 16384", 6_337_449, 57_215_932),
    ("l1i512+l1d512+l2 4096 (dram 10+2x2)", 8_639_877, 72_655_522),
    ("l1i 1024+l2 16384", 7_411_155, 48_559_695),
];

/// `(size, sim_cycles, wcet_cycles)` of the G.721 scratchpad axis,
/// captured from the legacy `run_spm` implementation.
const GOLDEN_SPM: [(u32, u64, u64); 8] = [
    (64, 8_378_278, 10_820_728),
    (128, 8_211_097, 10_556_536),
    (256, 8_097_278, 10_507_896),
    (512, 7_763_850, 10_076_277),
    (1024, 7_665_254, 9_945_438),
    (2048, 7_178_505, 9_454_200),
    (4096, 6_955_474, 9_192_286),
    (8192, 6_955_474, 9_192_286),
];

/// `(size, sim_cycles, wcet_cycles)` of the G.721 unified-cache axis,
/// captured from the legacy `run_cache_default` implementation.
const GOLDEN_CACHE: [(u32, u64, u64); 8] = [
    (64, 18_429_877, 40_495_708),
    (128, 14_606_117, 40_143_436),
    (256, 12_091_573, 38_109_772),
    (512, 9_100_533, 28_806_732),
    (1024, 7_786_981, 27_571_788),
    (2048, 6_610_437, 27_395_628),
    (4096, 5_507_909, 27_305_516),
    (8192, 5_490_853, 27_301_420),
];

/// `(label, sim_cycles, wcet_cycles)` of the SPM-1024 points over both
/// main-memory timings, captured from the legacy `run_spm_with_mains`.
const GOLDEN_SPM_MAINS: [(&str, u64, u64); 2] = [
    ("spm 1024", 7_665_254, 9_945_438),
    ("spm 1024 (dram 10)", 20_504_514, 24_924_148),
];

#[test]
fn g721_hierarchy_axis_matches_golden_and_shims() {
    let p = pipeline();
    for (h, &(label, sim, wcet)) in hierarchy_axis(1024).iter().zip(&GOLDEN_HIERARCHY) {
        let spec = MemArchSpec::from_hierarchy(h);
        let via_run = p.run(&spec).unwrap();
        assert_eq!(via_run.label, label);
        assert_eq!(via_run.sim_cycles, sim, "{label}: sim drifted from seed");
        assert_eq!(via_run.wcet_cycles, wcet, "{label}: wcet drifted from seed");
        let via_shim = p.run_hierarchy(h.clone()).unwrap();
        assert_eq!(via_shim.sim_cycles, via_run.sim_cycles, "{label}");
        assert_eq!(via_shim.wcet_cycles, via_run.wcet_cycles, "{label}");
        assert_eq!(via_shim.label, via_run.label, "{label}");
    }
}

#[test]
fn g721_spm_axis_matches_golden_and_shims() {
    let p = pipeline();
    assert_eq!(PAPER_SIZES.len(), GOLDEN_SPM.len());
    for &(size, sim, wcet) in &GOLDEN_SPM {
        let via_run = p.run(&MemArchSpec::spm(size)).unwrap();
        assert_eq!(via_run.sim_cycles, sim, "spm {size}: sim drifted from seed");
        assert_eq!(
            via_run.wcet_cycles, wcet,
            "spm {size}: wcet drifted from seed"
        );
        assert_eq!(via_run.label, format!("spm {size}"));
        let via_shim = p.run_spm(size).unwrap();
        assert_eq!(via_shim.sim_cycles, via_run.sim_cycles, "spm {size}");
        assert_eq!(via_shim.wcet_cycles, via_run.wcet_cycles, "spm {size}");
    }
}

#[test]
fn g721_cache_axis_matches_golden_and_shims() {
    let p = pipeline();
    for &(size, sim, wcet) in &GOLDEN_CACHE {
        let spec = MemArchSpec::single_cache(CacheConfig::unified(size));
        let via_run = p.run(&spec).unwrap();
        assert_eq!(
            via_run.sim_cycles, sim,
            "cache {size}: sim drifted from seed"
        );
        assert_eq!(
            via_run.wcet_cycles, wcet,
            "cache {size}: wcet drifted from seed"
        );
        let via_shim = p.run_cache_default(size).unwrap();
        assert_eq!(via_shim.sim_cycles, via_run.sim_cycles, "cache {size}");
        assert_eq!(via_shim.wcet_cycles, via_run.wcet_cycles, "cache {size}");
        assert_eq!(via_shim.label, format!("cache {size}"), "legacy label kept");
    }
}

#[test]
fn g721_spm_over_mains_matches_golden_and_shims() {
    let p = pipeline();
    let mains = [MainMemoryTiming::table1(), MainMemoryTiming::dram(10)];
    let via_shim = p.run_spm_with_mains(1024, &mains).unwrap();
    for ((r, &main), &(label, sim, wcet)) in via_shim.iter().zip(&mains).zip(&GOLDEN_SPM_MAINS) {
        assert_eq!(r.label, label);
        assert_eq!(r.sim_cycles, sim, "{label}: sim drifted from seed");
        assert_eq!(r.wcet_cycles, wcet, "{label}: wcet drifted from seed");
        let via_run = p
            .run(&MemArchSpec {
                main,
                ..MemArchSpec::spm(1024)
            })
            .unwrap();
        assert_eq!(via_run.sim_cycles, r.sim_cycles, "{label}");
        assert_eq!(via_run.wcet_cycles, r.wcet_cycles, "{label}");
        assert_eq!(via_run.label, r.label, "{label}");
    }
}

#[test]
fn baseline_and_assignment_shims_agree_with_specs() {
    use spmlab_cc::SpmAssignment;
    use spmlab_isa::archspec::SpmAllocation;
    let p = pipeline();
    let base_shim = p.run_baseline().unwrap();
    let base_spec = p.run(&MemArchSpec::uncached()).unwrap();
    assert_eq!(base_shim.sim_cycles, base_spec.sim_cycles);
    assert_eq!(base_shim.wcet_cycles, base_spec.wcet_cycles);
    assert_eq!(base_shim.label, "baseline");

    // Use object names that really exist in the image (the two first
    // knapsack picks at 1 KiB).
    let picks = p.run(&MemArchSpec::spm(1024)).unwrap().spm_objects;
    assert!(picks.len() >= 2, "knapsack picked {picks:?}");
    let assignment = SpmAssignment::of(picks[..2].iter().map(String::as_str));
    let via_shim = p.run_spm_with_assignment(1024, &assignment).unwrap();
    let via_spec = p
        .run(&MemArchSpec::spm_with(
            1024,
            SpmAllocation::Fixed(assignment.iter().map(str::to_string).collect()),
        ))
        .unwrap();
    assert_eq!(via_shim.sim_cycles, via_spec.sim_cycles);
    assert_eq!(via_shim.wcet_cycles, via_spec.wcet_cycles);
    assert_eq!(via_shim.spm_objects, via_spec.spm_objects);
}

#[test]
fn persistence_shim_agrees_with_spec() {
    let p = pipeline();
    let cache = CacheConfig::unified(1024);
    let via_shim = p.run_cache(cache.clone(), true).unwrap();
    let via_spec = p
        .run(&MemArchSpec {
            persistence: true,
            ..MemArchSpec::single_cache(cache)
        })
        .unwrap();
    assert_eq!(via_shim.sim_cycles, via_spec.sim_cycles);
    assert_eq!(via_shim.wcet_cycles, via_spec.wcet_cycles);
    // Persistence tightens (or keeps) the MUST-only bound.
    let must_only = p.run_cache_default(1024).unwrap();
    assert!(via_spec.wcet_cycles <= must_only.wcet_cycles);
}
