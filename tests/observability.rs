//! Workspace-level observability tests: the instrumentation the pipeline
//! emits while sweeping (sweep memo/replay counters pinned on the paper's
//! eight-config G.721 hierarchy scenario), the JSON-lines profile stream a
//! profiled run records, and property tests over the span-tree collector.
//!
//! Every test that installs a sink takes `spmlab_obs::exclusive()` first:
//! the sink registry is process-global, and a concurrently-running test
//! would otherwise see foreign events.

use std::sync::Arc;

use proptest::prelude::*;
use spmlab::pipeline::Pipeline;
use spmlab::sweep::hierarchy_sweep;
use spmlab::{hierarchy_axis, MainMemoryTiming, MemArchSpec, DRAM_LATENCY};
use spmlab_obs::collector::MemorySink;
use spmlab_obs::jsonl::{check_stream, JsonlSink};
use spmlab_workloads::{inputs, G721};

/// Satellite regression pin: the eight-config G.721 hierarchy scenario
/// (two scratchpad points + the six-machine cache axis) must keep its
/// replay-eligible vs full-simulation split. Every cache machine on the
/// axis is write-through, so all six replay from the recorded trace; the
/// Table-1 scratchpad point *is* the recording machine (reused, not
/// re-simulated) and the DRAM scratchpad point replays. A config slipping
/// from replay to full simulation (e.g. a write-back level sneaking into
/// the axis, or trace support regressing) changes these counts.
#[test]
fn g721_hierarchy_sweep_memo_counts_pinned() {
    let _x = spmlab_obs::exclusive();
    let sink = Arc::new(MemorySink::default());
    let guard = spmlab_obs::add_sink(sink.clone());

    // Reduced input keeps the pin debug-fast; replay eligibility and memo
    // behaviour depend on the machine configs, not the input length.
    let p = Pipeline::with_input(&G721, inputs::speech_like(48, 0xC0FFEE)).unwrap();
    let spm_fast = p.run(&MemArchSpec::spm(1024)).unwrap();
    let spm_slow = p
        .run(&MemArchSpec {
            main: MainMemoryTiming::dram(DRAM_LATENCY),
            ..MemArchSpec::spm(1024)
        })
        .unwrap();
    let points = hierarchy_sweep(&p, &hierarchy_axis(1024)).unwrap();
    drop(guard);

    assert_eq!(points.len() + 2, 8, "the paper scenario has eight configs");
    assert!(spm_fast.wcet_cycles >= spm_fast.sim_cycles);
    assert!(spm_slow.wcet_cycles >= spm_slow.sim_cycles);

    // The cache axis: six distinct effective specs, no memo hits, all six
    // replayed from the recorded trace.
    assert_eq!(sink.counter_total("sweep_points"), 6);
    assert_eq!(sink.counter_total("sweep_memo_miss"), 6);
    assert_eq!(sink.counter_total("sweep_memo_hit"), 0);
    assert_eq!(sink.counter_total("sweep_full_sim"), 0, "no fallback");
    // Six axis replays + the DRAM scratchpad replay; the Table-1
    // scratchpad reuses the recording run itself.
    assert_eq!(sink.counter_total("sweep_replay"), 7);
    assert_eq!(sink.counter_total("sweep_recorded_reuse"), 1);
}

/// A profiled run records a well-formed JSON-lines stream (balanced span
/// opens/closes, per-thread monotonic timestamps) and the collector's
/// per-phase self times account for the run's wall time within 5%.
#[test]
fn profiled_sweep_stream_is_valid_and_phases_cover_wall_time() {
    let _x = spmlab_obs::exclusive();
    let path = std::env::temp_dir().join("spmlab_obs_profile_test.jsonl");
    let _ = std::fs::remove_file(&path);

    let sink = Arc::new(MemorySink::default());
    let file = std::fs::File::create(&path).unwrap();
    let stream_guard = spmlab_obs::add_sink(Arc::new(JsonlSink::new(file)));
    let mem_guard = spmlab_obs::add_sink(sink.clone());

    let start = std::time::Instant::now();
    {
        let _root = spmlab_obs::span("profile-test-root");
        let p = Pipeline::with_input(&G721, inputs::speech_like(48, 0xC0FFEE)).unwrap();
        let _ = hierarchy_sweep(&p, &hierarchy_axis(512)).unwrap();
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    drop(mem_guard);
    drop(stream_guard); // flushes the file

    // Stream sanity: parses, balanced, monotonic.
    let text = std::fs::read_to_string(&path).unwrap();
    let summary = check_stream(&text).unwrap();
    assert_eq!(summary.span_opens, summary.span_closes, "balanced");
    assert!(summary.span_opens > 0 && summary.counters > 0);

    // Collector sanity: the span tree is well-formed and self times
    // telescope to the root's inclusive time, which tracks the measured
    // wall time within 5% (profiled sweeps are single-threaded).
    sink.validate().unwrap();
    let total_self: u64 = sink.flat_profile().iter().map(|r| r.self_ns).sum();
    let root_ns = sink.root_ns();
    assert_eq!(total_self, root_ns, "self times telescope exactly");
    let drift = (root_ns as f64 - wall_ns as f64).abs() / wall_ns as f64;
    assert!(
        drift < 0.05,
        "per-phase totals within 5% of wall: root={root_ns}ns wall={wall_ns}ns"
    );
    let _ = std::fs::remove_file(&path);
}

/// Replays one op sequence as scoped spans, mirroring the nesting in a
/// plain stack, and returns the expected (name, parent_name) pairs in
/// open order. `ops` drive open (low values, bounded depth) vs close.
fn run_span_script(ops: &[u8]) -> Vec<(&'static str, Option<&'static str>)> {
    const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];
    let mut live: Vec<(spmlab_obs::Span, &'static str)> = Vec::new();
    let mut expected = Vec::new();
    for &op in ops {
        if op < 170 && live.len() < 8 {
            let name = NAMES[(op % 5) as usize];
            expected.push((name, live.last().map(|(_, n)| *n)));
            live.push((spmlab_obs::span(name), name));
        } else {
            live.pop(); // drops the innermost span, closing it
        }
    }
    // Drop order within a Vec is front-to-back, which would close parents
    // before children; unwind explicitly instead.
    while live.pop().is_some() {}
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomly interleaved scoped spans always produce a well-formed
    /// tree in the collector: every span closes, nesting intervals are
    /// properly bracketed, and each span's parent is exactly the span
    /// that was innermost when it opened.
    #[test]
    fn random_span_interleavings_form_a_well_formed_tree(ops in prop::collection::vec(any::<u8>(), 0..64)) {
        let _x = spmlab_obs::exclusive();
        let sink = Arc::new(MemorySink::default());
        let guard = spmlab_obs::add_sink(sink.clone());
        let expected = run_span_script(&ops);
        drop(guard);

        sink.validate().unwrap();
        let spans = sink.spans();
        prop_assert_eq!(spans.len(), expected.len());
        let by_id: std::collections::BTreeMap<u64, &str> =
            spans.iter().map(|s| (s.id, s.name)).collect();
        for (span, (name, parent_name)) in spans.iter().zip(&expected) {
            prop_assert_eq!(span.name, *name);
            prop_assert!(span.close_ns.is_some(), "every span closes");
            let actual_parent = span.parent.map(|p| by_id[&p]);
            prop_assert_eq!(actual_parent, *parent_name);
        }
    }
}
