//! Robustness of the binary-level analyzer and simulator against hostile
//! or malformed images — hand-assembled machine code, not compiler output.
//! A production WCET tool must reject garbage with a diagnosis, never
//! crash or return a bogus bound.

use spmlab_isa::asm::{FuncBuilder, LitValue};
use spmlab_isa::cond::Cond;
use spmlab_isa::encode::encode_all;
use spmlab_isa::image::{Executable, LoadRegion, Symbol, SymbolKind};
use spmlab_isa::insn::Insn;
use spmlab_isa::mem::{AccessWidth, MemoryMap, MAIN_BASE};
use spmlab_isa::reg::{RegList, R0, R1};
use spmlab_isa::AnnotationSet;
use spmlab_sim::{simulate, MachineConfig, SimError, SimOptions};
use spmlab_wcet::{analyze, WcetConfig, WcetError};

/// Builds an executable from raw instructions placed at `MAIN_BASE`.
fn raw_exe(insns: &[Insn]) -> Executable {
    let halfwords = encode_all(insns);
    let mut bytes = Vec::new();
    for hw in &halfwords {
        bytes.extend(hw.to_le_bytes());
    }
    let size = bytes.len() as u32;
    Executable {
        regions: vec![LoadRegion {
            addr: MAIN_BASE,
            bytes,
        }],
        symbols: vec![Symbol {
            name: "_start".into(),
            addr: MAIN_BASE,
            size,
            kind: SymbolKind::Func { code_size: size },
        }],
        entry: MAIN_BASE,
        memory_map: MemoryMap::no_spm(),
    }
}

#[test]
fn minimal_halt_program() {
    let exe = raw_exe(&[Insn::MovImm { rd: R0, imm: 7 }, Insn::Swi { imm: 0 }]);
    let sim = simulate(&exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();
    assert_eq!(sim.instructions, 2);
    let wcet = analyze(&exe, &WcetConfig::region_timing(), &AnnotationSet::new()).unwrap();
    assert!(wcet.wcet_cycles >= sim.cycles);
}

#[test]
fn undefined_instruction_is_a_fault_and_an_analysis_error() {
    let exe = raw_exe(&[Insn::Undefined { raw: 0xBF01 }]);
    let err = simulate(&exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap_err();
    assert!(matches!(err, SimError::UndefinedInsn { .. }));
    let err = analyze(&exe, &WcetConfig::region_timing(), &AnnotationSet::new()).unwrap_err();
    assert!(matches!(err, WcetError::InvalidCode { .. }), "{err}");
}

#[test]
fn branch_escaping_the_function_is_rejected() {
    // B +0x100 jumps far past the 4-byte function.
    let exe = raw_exe(&[Insn::B { off: 0x100 }, Insn::Swi { imm: 0 }]);
    let err = analyze(&exe, &WcetConfig::region_timing(), &AnnotationSet::new()).unwrap_err();
    assert!(matches!(err, WcetError::EscapingBranch { .. }), "{err}");
}

#[test]
fn falling_off_the_end_is_rejected() {
    let exe = raw_exe(&[Insn::MovImm { rd: R0, imm: 1 }]);
    let err = analyze(&exe, &WcetConfig::region_timing(), &AnnotationSet::new()).unwrap_err();
    assert!(matches!(err, WcetError::InvalidCode { .. }), "{err}");
}

#[test]
fn unannotated_binary_loop_needs_bounds() {
    // top: subs r0,#1 ; bne top ; swi 0  — counted loop, but the register
    // init is unknown to the detector (r0 set by nothing), so the analysis
    // must demand an annotation...
    let exe = raw_exe(&[
        Insn::SubImm { rd: R0, imm: 1 },
        Insn::BCond {
            cond: Cond::Ne,
            off: -6,
        },
        Insn::Swi { imm: 0 },
    ]);
    let err = analyze(&exe, &WcetConfig::region_timing(), &AnnotationSet::new()).unwrap_err();
    assert!(matches!(err, WcetError::UnboundedLoop { .. }), "{err}");
    // ...and accept a user bound for the same image.
    let mut ann = AnnotationSet::new();
    ann.set_loop_bound(MAIN_BASE, 255);
    let wcet = analyze(&exe, &WcetConfig::region_timing(), &ann).unwrap();
    assert!(wcet.wcet_cycles > 255 * 3, "bound scales the loop");
}

#[test]
fn misaligned_and_unmapped_accesses_fault() {
    // ldr r0, [r1, #0] with r1 = 0 (unmapped when no scratchpad).
    let exe = raw_exe(&[
        Insn::MovImm { rd: R1, imm: 0 },
        Insn::LdrImm {
            width: AccessWidth::Word,
            rd: R0,
            rn: R1,
            off: 0,
        },
        Insn::Swi { imm: 0 },
    ]);
    let err = simulate(&exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap_err();
    assert!(matches!(err, SimError::Fault { .. }), "{err}");
    // The analyzer, by contrast, must stay conservative and succeed (the
    // access is simply costed as worst-case main memory).
    let wcet = analyze(&exe, &WcetConfig::region_timing(), &AnnotationSet::new()).unwrap();
    assert!(wcet.wcet_cycles > 0);
}

#[test]
fn analysis_survives_handwritten_call_graphs() {
    // Two hand-assembled functions with a BL between them.
    let mut callee = FuncBuilder::new("callee");
    callee.push(Insn::AddImm { rd: R0, imm: 5 });
    callee.push(Insn::Ret);
    let callee = callee.assemble().unwrap();

    let mut start = FuncBuilder::new("_start");
    start.push(Insn::Push {
        regs: RegList::empty(),
        lr: true,
    });
    start.push(Insn::MovImm { rd: R0, imm: 1 });
    start.bl("callee");
    start.ldr_lit(R1, LitValue::Const(0xABCD));
    start.push(Insn::Swi { imm: 0 });
    let start = start.assemble().unwrap();

    // Manual link: _start at MAIN_BASE, callee after it.
    let start_addr = MAIN_BASE;
    let callee_addr = MAIN_BASE + start.total_size();
    let mut halfwords = start.halfwords.clone();
    for reloc in &start.call_relocs {
        let insn_addr = start_addr + reloc.offset;
        let off = callee_addr as i64 - (insn_addr as i64 + 4);
        let enc = spmlab_isa::encode::encode(&Insn::Bl { off: off as i32 });
        let idx = (reloc.offset / 2) as usize;
        halfwords[idx] = enc[0];
        halfwords[idx + 1] = enc[1];
    }
    let mut bytes = Vec::new();
    for hw in halfwords.iter().chain(&callee.halfwords) {
        bytes.extend(hw.to_le_bytes());
    }
    let exe = Executable {
        regions: vec![LoadRegion {
            addr: start_addr,
            bytes,
        }],
        symbols: vec![
            Symbol {
                name: "_start".into(),
                addr: start_addr,
                size: start.total_size(),
                kind: SymbolKind::Func {
                    code_size: start.code_size,
                },
            },
            Symbol {
                name: "callee".into(),
                addr: callee_addr,
                size: callee.total_size(),
                kind: SymbolKind::Func {
                    code_size: callee.code_size,
                },
            },
        ],
        entry: start_addr,
        memory_map: MemoryMap::no_spm(),
    };

    let sim = simulate(&exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();
    assert_eq!(sim.instructions, 7, "push, mov, bl, add, ret, ldr, swi");
    let wcet = analyze(&exe, &WcetConfig::region_timing(), &AnnotationSet::new()).unwrap();
    assert!(wcet.wcet_cycles >= sim.cycles);
    assert!(wcet.function("callee").is_some());
}

#[test]
fn self_loop_at_entry_is_reported_not_hung() {
    // b . — an infinite loop; analysis must say "unbounded", never spin.
    let exe = raw_exe(&[Insn::B { off: -4 }]);
    let err = analyze(&exe, &WcetConfig::region_timing(), &AnnotationSet::new()).unwrap_err();
    assert!(matches!(err, WcetError::UnboundedLoop { .. }), "{err}");
}

#[test]
fn bounded_infinite_loop_is_still_infeasible_downstream() {
    // The same loop with a bound but no exit: the IPET must report the
    // structural impossibility (a function that never returns has no WCET).
    let exe = raw_exe(&[Insn::B { off: -4 }]);
    let mut ann = AnnotationSet::new();
    ann.set_loop_bound(MAIN_BASE, 10);
    let err = analyze(&exe, &WcetConfig::region_timing(), &ann).unwrap_err();
    assert!(matches!(err, WcetError::Ilp(_)), "{err}");
}
