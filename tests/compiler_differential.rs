//! Differential fuzzing of the whole toolchain: random MiniC programs are
//! executed twice — interpreted on the AST (the reference semantics) and
//! compiled → linked → simulated on TH16 — and every global must end up
//! identical. This hunts miscompilations in codegen, the assembler, the
//! linker and the simulator at once.

use proptest::prelude::*;
use spmlab_cc::ast::{BinOp, Expr, Func, Global, Program, Stmt, Type, UnOp};
use spmlab_cc::interp::{run_checked, InterpError};
use spmlab_cc::sema::check;
use spmlab_cc::{codegen, link, Pos, SpmAssignment};
use spmlab_isa::mem::MemoryMap;
use spmlab_sim::{simulate, MachineConfig, SimOptions};

fn pos() -> Pos {
    Pos { line: 1, col: 1 }
}

fn num(v: i64) -> Expr {
    Expr::Num {
        value: v,
        pos: pos(),
    }
}

fn var(name: &str) -> Expr {
    Expr::Var {
        name: name.into(),
        pos: pos(),
    }
}

/// Variables readable in generated expressions.
const SCALARS: [&str; 4] = ["g0", "g1", "g2", "g3"];
const LOCALS: [&str; 2] = ["x0", "x1"];
const ARRAYS: [(&str, u32); 2] = [("arr", 8), ("sarr", 8)];

fn leaf_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(num),
        prop_oneof![
            Just(num(0)),
            Just(num(1)),
            Just(num(255)),
            Just(num(256)),
            Just(num(i32::MAX as i64)),
            Just(num(i32::MIN as i64)),
            Just(num(0x7FFF)),
            Just(num(-32768)),
        ],
        prop::sample::select(&SCALARS[..]).prop_map(var),
        prop::sample::select(&LOCALS[..]).prop_map(var),
    ]
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::LogAnd),
        Just(BinOp::LogOr),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_strategy().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (binop_strategy(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Bin {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
                pos: pos(),
            }),
            (
                prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)],
                inner.clone()
            )
                .prop_map(|(op, e)| Expr::Un {
                    op,
                    operand: Box::new(e),
                    pos: pos()
                }),
            // Masked array read: always in bounds.
            (prop::sample::select(&ARRAYS[..]), inner.clone()).prop_map(|((name, len), e)| {
                Expr::Index {
                    name: name.into(),
                    index: Box::new(Expr::Bin {
                        op: BinOp::And,
                        lhs: Box::new(e),
                        rhs: Box::new(num(len as i64 - 1)),
                        pos: pos(),
                    }),
                    pos: pos(),
                }
            }),
            // Helper call.
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Call {
                name: "helper".into(),
                args: vec![a, b],
                pos: pos(),
            }),
        ]
    })
}

fn assign_target_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        prop::sample::select(&SCALARS[..]).prop_map(var),
        prop::sample::select(&LOCALS[..]).prop_map(var),
        (prop::sample::select(&ARRAYS[..]), leaf_strategy()).prop_map(|((name, len), e)| {
            Expr::Index {
                name: name.into(),
                index: Box::new(Expr::Bin {
                    op: BinOp::And,
                    lhs: Box::new(e),
                    rhs: Box::new(num(len as i64 - 1)),
                    pos: pos(),
                }),
                pos: pos(),
            }
        }),
    ]
}

fn stmt_strategy(loop_depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (assign_target_strategy(), expr_strategy()).prop_map(|(t, v)| {
        Stmt::Expr(Expr::Assign {
            lhs: Box::new(t),
            rhs: Box::new(v),
            pos: pos(),
        })
    });
    if loop_depth >= 2 {
        return assign.boxed();
    }
    let nested = move || prop::collection::vec(stmt_strategy(loop_depth + 1), 1..4);
    prop_oneof![
        4 => assign,
        2 => (expr_strategy(), nested(), nested()).prop_map(|(c, t, e)| Stmt::If {
            cond: c,
            then: t,
            else_: e,
            pos: pos(),
        }),
        1 => (1i64..6, nested()).prop_map(move |(count, mut body)| {
            // for (iK = 0; iK < count; iK = iK + 1) with its own counter
            // per nesting level so nested loops never clobber each other.
            let ctr = format!("i{loop_depth}");
            body.insert(0, Stmt::LoopBound { bound: count as u32, pos: pos() });
            Stmt::For {
                init: Some(Box::new(Stmt::Expr(Expr::Assign {
                    lhs: Box::new(var(&ctr)),
                    rhs: Box::new(num(0)),
                    pos: pos(),
                }))),
                cond: Some(Expr::Bin {
                    op: BinOp::Lt,
                    lhs: Box::new(var(&ctr)),
                    rhs: Box::new(num(count)),
                    pos: pos(),
                }),
                step: Some(Expr::Assign {
                    lhs: Box::new(var(&ctr)),
                    rhs: Box::new(Expr::Bin {
                        op: BinOp::Add,
                        lhs: Box::new(var(&ctr)),
                        rhs: Box::new(num(1)),
                        pos: pos(),
                    }),
                    pos: pos(),
                }),
                body,
                pos: pos(),
            }
        }),
    ]
    .boxed()
}

fn program_strategy() -> impl Strategy<Value = Program> {
    let globals_init = prop::collection::vec(-300i64..300, 8);
    (
        globals_init,
        expr_strategy(),
        prop::collection::vec(stmt_strategy(0), 1..10),
    )
        .prop_map(|(ginit, helper_body, main_stmts)| {
            let globals = vec![
                Global {
                    name: "g0".into(),
                    ty: Type::Int,
                    array_len: None,
                    init: vec![ginit[0]],
                    pos: pos(),
                },
                Global {
                    name: "g1".into(),
                    ty: Type::Int,
                    array_len: None,
                    init: vec![ginit[1]],
                    pos: pos(),
                },
                Global {
                    name: "g2".into(),
                    ty: Type::Short,
                    array_len: None,
                    init: vec![ginit[2]],
                    pos: pos(),
                },
                Global {
                    name: "g3".into(),
                    ty: Type::Char,
                    array_len: None,
                    init: vec![ginit[3]],
                    pos: pos(),
                },
                Global {
                    name: "arr".into(),
                    ty: Type::Int,
                    array_len: Some(8),
                    init: ginit[..4].to_vec(),
                    pos: pos(),
                },
                Global {
                    name: "sarr".into(),
                    ty: Type::Short,
                    array_len: Some(8),
                    init: ginit[4..].to_vec(),
                    pos: pos(),
                },
            ];
            // helper may reference locals x0/x1 names? Restrict: replace
            // local references by parameters via a simple param binding.
            let helper = Func {
                name: "helper".into(),
                ret: Type::Int,
                params: vec![("x0".into(), Type::Int), ("x1".into(), Type::Int)],
                body: vec![Stmt::Return {
                    value: Some(helper_body),
                    pos: pos(),
                }],
                pos: pos(),
            };
            let mut body = vec![
                Stmt::Decl {
                    name: "x0".into(),
                    ty: Type::Int,
                    init: Some(num(3)),
                    pos: pos(),
                },
                Stmt::Decl {
                    name: "x1".into(),
                    ty: Type::Int,
                    init: Some(num(-7)),
                    pos: pos(),
                },
                Stmt::Decl {
                    name: "i0".into(),
                    ty: Type::Int,
                    init: Some(num(0)),
                    pos: pos(),
                },
                Stmt::Decl {
                    name: "i1".into(),
                    ty: Type::Int,
                    init: Some(num(0)),
                    pos: pos(),
                },
            ];
            body.extend(main_stmts);
            let main = Func {
                name: "main".into(),
                ret: Type::Void,
                params: vec![],
                body,
                pos: pos(),
            };
            Program {
                globals,
                funcs: vec![helper, main],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192,
        max_shrink_iters: 2048,
        .. ProptestConfig::default()
    })]

    #[test]
    fn compiled_code_matches_interpreter(program in program_strategy()) {
        // Reference semantics on the AST.
        let typed = match check(&program) {
            Ok(t) => t,
            // The generator can produce e.g. constant OOB indices after
            // folding; such programs are simply skipped.
            Err(_) => return Ok(()),
        };
        let reference = match run_checked(&typed, 2_000_000) {
            Ok(o) => o,
            Err(InterpError::StepLimit | InterpError::CallDepth) => return Ok(()),
            Err(InterpError::OutOfBounds { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("interp: {e}"))),
        };

        // Compiled semantics on the simulated target.
        let module = codegen::generate(&typed)
            .map_err(|e| TestCaseError::fail(format!("codegen: {e}")))?;
        let linked = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none())
            .map_err(|e| TestCaseError::fail(format!("link: {e}")))?;
        let sim = simulate(&linked.exe, &MachineConfig::uncached(), &SimOptions::default())
            .map_err(|e| TestCaseError::fail(format!("simulate: {e}")))?;

        // Every global must agree, element by element.
        for g in &program.globals {
            let len = g.array_len.unwrap_or(1);
            let expected = &reference.globals[&g.name];
            for i in 0..len {
                let got = sim.read_global_at(&linked.exe, &g.name, i)
                    .expect("global readable");
                prop_assert_eq!(
                    got,
                    expected[i as usize],
                    "global {}[{}] differs: target {} vs interpreter {}",
                    &g.name, i, got, expected[i as usize]
                );
            }
        }
    }
}

// =====================================================================
// Seeded-generator round-trip: spmlab-workloads' MiniC generator feeds
// the same three-way differential — direct AST interpretation vs the
// compiled/simulated image vs the *printed and reparsed* source. The
// printer must be a fixed point and the reparsed program must compile to
// the identical object module and simulate to the identical globals.
// =====================================================================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_roundtrip_and_simulate_identically(seed in 0u64..500) {
        use spmlab_cc::{parse_source, print};
        use spmlab_workloads::gen::{estimate_steps, generate_for_seed, reference_arch};

        let g = generate_for_seed(seed, &reference_arch());

        // print ∘ parse is a fixed point of the emitted source.
        let reparsed = parse_source(&g.source)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: reparse: {e}")))?;
        prop_assert_eq!(
            print(&reparsed), g.source.clone(),
            "seed {}: print ∘ parse is not a fixed point", seed
        );

        // Both ASTs compile to the same object module.
        let typed = check(&g.program)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: sema(direct): {e}")))?;
        let typed2 = check(&reparsed)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: sema(reparsed): {e}")))?;
        let m1 = codegen::generate(&typed)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: codegen: {e}")))?;
        let m2 = codegen::generate(&typed2)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: codegen(reparsed): {e}")))?;
        prop_assert_eq!(&m1, &m2, "seed {}: reparsed source compiles differently", seed);

        // The interpreted AST and the simulated image agree on every
        // global, element by element.
        let reference = run_checked(&typed, estimate_steps(&g.program) * 4 + 100_000)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: interp: {e}")))?;
        let linked = link(&m1, &MemoryMap::no_spm(), &SpmAssignment::none())
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: link: {e}")))?;
        let sim = simulate(&linked.exe, &MachineConfig::uncached(), &SimOptions::default())
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: simulate: {e}")))?;
        for (name, vals) in &reference.globals {
            for (i, &expect) in vals.iter().enumerate() {
                let got = sim
                    .read_global_at(&linked.exe, name, i as u32)
                    .unwrap_or_else(|| panic!("seed {seed}: no symbol {name}"));
                prop_assert_eq!(
                    got, expect,
                    "seed {}: global {}[{}] differs (interp {}, sim {})",
                    seed, name, i, expect, got
                );
            }
        }
    }
}
