//! Golden-corpus regression test: `tests/corpus/` pins twelve generated
//! programs (three per footprint class) with their simulated checksums,
//! uncached cycle counts and WCET bounds.
//!
//! The generator must reproduce each pinned `.mc` byte-for-byte from its
//! seed (determinism across refactors), and the toolchain must reproduce
//! the recorded numbers exactly (timing-model drift detection). After an
//! *intentional* generator or timing change, regenerate the corpus with
//! `experiments gen-corpus tests/corpus` and review the diff.

use spmlab_bench::fuzz::{corpus_entry, CORPUS_SEEDS};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_matches_pinned_sources_and_measurements() {
    let dir = corpus_dir();
    let manifest = std::fs::read_to_string(dir.join("manifest.tsv")).expect("manifest.tsv");
    let mut pinned = 0;
    for line in manifest.lines().filter(|l| !l.starts_with('#')) {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 5, "malformed manifest line: {line}");
        let seed: u64 = fields[0].parse().expect("seed");
        let name = fields[1];
        let checksum: i32 = fields[2].parse().expect("checksum");
        let cycles: u64 = fields[3].parse().expect("cycles");
        let wcet: u64 = fields[4].parse().expect("wcet");

        let e = corpus_entry(seed).expect("corpus entry regenerates");
        assert_eq!(e.name, name, "seed {seed}: benchmark name changed");

        let pinned_src =
            std::fs::read_to_string(dir.join(format!("{name}.mc"))).expect("pinned source");
        assert_eq!(
            e.source, pinned_src,
            "seed {seed}: generator no longer reproduces the pinned source — \
             if intentional, rerun `experiments gen-corpus tests/corpus`"
        );
        assert_eq!(e.checksum, checksum, "seed {seed}: checksum drifted");
        assert_eq!(
            e.uncached_cycles, cycles,
            "seed {seed}: uncached cycle count drifted"
        );
        assert_eq!(e.wcet_cycles, wcet, "seed {seed}: WCET bound drifted");
        assert!(
            e.wcet_cycles >= e.uncached_cycles,
            "seed {seed}: pinned point is unsound"
        );
        pinned += 1;
    }
    assert_eq!(
        pinned,
        CORPUS_SEEDS.len(),
        "manifest does not cover every corpus seed"
    );
}
