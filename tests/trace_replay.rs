//! Workspace-level differential tests for ordered (v2) write-event
//! traces: replay must be **bit-identical** to fresh simulation — same
//! `sim_cycles`, same full [`MemStats`] (including `write_backs`,
//! `dirty_evictions` and `store_buffer_stalls`) — on *any* hierarchy a
//! v2 trace claims to support, including write-back levels, store
//! buffers and mixed WT-L1-over-WB-L2 stacks. Property tests draw the
//! machines at random; a pinned counter test locks the write-policy
//! axis' memo/replay split the way `tests/observability.rs` does for
//! the write-through hierarchy scenario.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use spmlab::pipeline::Pipeline;
use spmlab::sweep::spec_sweep;
use spmlab::write_policy_axis;
use spmlab_cc::{compile, link, SpmAssignment};
use spmlab_isa::cachecfg::{CacheConfig, CacheScope, Replacement, WritePolicy};
use spmlab_isa::hierarchy::{MainMemoryTiming, MemHierarchyConfig, StoreBuffer, L1};
use spmlab_isa::mem::MemoryMap;
use spmlab_obs::collector::MemorySink;
use spmlab_sim::{simulate, simulate_with_trace, MachineConfig, MemTrace, SimOptions};
use spmlab_workloads::{inputs, G721};

/// A store-heavy kernel: the write pattern walks two arrays with
/// different strides so dirty lines collide in small caches (evictions
/// and write-backs actually fire) while the reductions keep read
/// traffic interleaved with the stores.
const SRC: &str = "
    int a[48]; int b[24]; int checksum;
    void main() {
        int i;
        for (i = 0; i < 48; i = i + 1) { __loopbound(48); a[i] = i * 5 - 7; }
        for (i = 0; i < 24; i = i + 1) { __loopbound(24); b[i] = a[i * 2] + a[i]; }
        for (i = 0; i < 24; i = i + 1) { __loopbound(24); checksum = checksum + b[i] - a[i + 8]; }
    }
";

struct Recorded {
    exe: spmlab_isa::image::Executable,
    trace: MemTrace,
}

/// Compile + record once; every property case replays against this.
fn recorded() -> &'static Recorded {
    static CELL: OnceLock<Recorded> = OnceLock::new();
    CELL.get_or_init(|| {
        let l = link(
            &compile(SRC).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let (_, trace) = simulate_with_trace(&l.exe, &SimOptions::default()).unwrap();
        assert_eq!(trace.version(), 2, "recorder must produce ordered traces");
        Recorded { exe: l.exe, trace }
    })
}

fn arb_replacement() -> impl Strategy<Value = Replacement> {
    prop_oneof![
        Just(Replacement::Lru),
        Just(Replacement::RoundRobin),
        (0u64..512).prop_map(|seed| Replacement::Random { seed }),
    ]
}

fn arb_policy() -> impl Strategy<Value = WritePolicy> {
    prop_oneof![
        Just(WritePolicy::WriteThrough),
        Just(WritePolicy::WriteBack)
    ]
}

/// A random L1-sized cache: 64..=1024 bytes, 1/2/4-way, any replacement
/// and write policy. Geometry is always valid for the fixed 16-byte
/// line (64/16 = 4 lines ≥ max associativity).
fn arb_cache(scope: CacheScope) -> impl Strategy<Value = CacheConfig> {
    (0u32..5, 0u32..3, arb_replacement(), arb_policy()).prop_map(
        move |(size_exp, assoc_exp, replacement, write_policy)| CacheConfig {
            scope,
            write_policy,
            ..CacheConfig::set_assoc(64 << size_exp, 1 << assoc_exp, replacement)
        },
    )
}

fn arb_l2() -> impl Strategy<Value = CacheConfig> {
    (0u32..4, arb_policy()).prop_map(|(size_exp, write_policy)| CacheConfig {
        write_policy,
        ..CacheConfig::l2(512 << size_exp)
    })
}

fn arb_main() -> impl Strategy<Value = MainMemoryTiming> {
    let sb = prop_oneof![
        Just(None),
        (1u32..5, 1u64..10).prop_map(|(depth, drain)| Some(StoreBuffer::new(depth, drain))),
    ];
    let base = prop_oneof![
        Just(MainMemoryTiming::table1()),
        (2u64..12).prop_map(MainMemoryTiming::dram),
    ];
    (base, sb).prop_map(|(mut main, store_buffer)| {
        main.store_buffer = store_buffer;
        main
    })
}

/// Random full hierarchies biased toward write-policy-dependent shapes:
/// write-back L1s, WB L2 behind a WT L1, store-buffered main memory.
fn arb_hierarchy() -> impl Strategy<Value = MemHierarchyConfig> {
    let l1 = prop_oneof![
        Just(L1::None),
        arb_cache(CacheScope::Unified).prop_map(L1::Unified),
        (
            arb_cache(CacheScope::InstrOnly),
            arb_cache(CacheScope::DataOnly)
        )
            .prop_map(|(i, d)| L1::Split {
                i: Some(i),
                d: Some(d),
            }),
    ];
    let l2 = prop_oneof![Just(None), arb_l2().prop_map(Some)];
    (l1, l2, arb_main()).prop_map(|(l1, l2, main)| MemHierarchyConfig { l1, l2, main })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole differential: on any supported machine — including
    /// write-back levels, store buffers and mixed stacks — replaying
    /// the ordered trace is indistinguishable from simulating fresh.
    #[test]
    fn replay_is_bit_identical_to_fresh_simulation(h in arb_hierarchy()) {
        let rec = recorded();
        prop_assert!(rec.trace.supports(&h), "v2 supports every hierarchy");
        let (cycles, stats) = rec.trace.replay(&h).unwrap();
        let fresh = simulate(
            &rec.exe,
            &MachineConfig::with_hierarchy(h.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(cycles, fresh.cycles, "sim_cycles diverged on {}", h.label());
        prop_assert_eq!(
            stats.write_backs, fresh.mem_stats.write_backs,
            "write_backs diverged on {}", h.label()
        );
        prop_assert_eq!(
            stats.dirty_evictions, fresh.mem_stats.dirty_evictions,
            "dirty_evictions diverged on {}", h.label()
        );
        prop_assert_eq!(
            stats.store_buffer_stalls, fresh.mem_stats.store_buffer_stalls,
            "store_buffer_stalls diverged on {}", h.label()
        );
        prop_assert_eq!(stats, fresh.mem_stats, "MemStats diverged on {}", h.label());
    }

    /// Serialization does not change replay semantics: a byte round trip
    /// of the v2 stream replays identically on random machines.
    #[test]
    fn byte_round_trip_preserves_replay(h in arb_hierarchy()) {
        let rec = recorded();
        let decoded = MemTrace::from_bytes(&rec.trace.to_bytes()).unwrap();
        prop_assert_eq!(decoded.replay(&h).unwrap(), rec.trace.replay(&h).unwrap());
    }
}

/// Explicit WT-L1-over-WB-L2 coverage (the shape most likely to regress:
/// the L2 absorbs write-through traffic from the L1 and evicts dirty
/// victims on its own schedule), plus store-buffered variants.
#[test]
fn mixed_stacks_replay_bit_identically() {
    let rec = recorded();
    let stacks = [
        MemHierarchyConfig::split_l1(128, 128).with_l2(CacheConfig::l2(1024).write_back()),
        MemHierarchyConfig::split_l1(64, 64)
            .with_l2(CacheConfig::l2(512).write_back())
            .with_main(MainMemoryTiming::dram(7)),
        MemHierarchyConfig::l1_only(CacheConfig::unified(128))
            .with_l2(CacheConfig::l2(2048).write_back())
            .with_main(MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(2, 6))),
        MemHierarchyConfig::l1_only(CacheConfig::unified(256).write_back())
            .with_l2(CacheConfig::l2(1024).write_back())
            .with_main(MainMemoryTiming::dram(9).with_store_buffer(StoreBuffer::new(4, 5))),
    ];
    for h in stacks {
        let (cycles, stats) = rec.trace.replay(&h).unwrap();
        let fresh = simulate(
            &rec.exe,
            &MachineConfig::with_hierarchy(h.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(cycles, fresh.cycles, "{}: cycles diverged", h.label());
        assert_eq!(stats, fresh.mem_stats, "{}: stats diverged", h.label());
    }
}

/// Hand-crafts a wire-format v1 trace (magic, version byte 1, the 30
/// header words, zero events) so the public API can exercise the v1
/// compatibility matrix without an in-crate constructor.
fn v1_trace_bytes(cycle_reads: u64) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"SPMTRACE");
    bytes.push(1);
    let mut words = [0u64; 30];
    words[0] = u64::MAX; // max_cycles: never trip the replay watchdog
    words[1] = 1_000; // base_cycles
    words[3] = cycle_reads;
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes.extend_from_slice(&0u64.to_le_bytes()); // event count
    bytes
}

/// The `supports()` validity matrix, exhaustively: v1 works exactly on
/// write-policy-independent machines without cycle reads; v2 supports
/// everything (timing-dependent MMIO reads are validated dynamically at
/// replay time instead of refused statically).
#[test]
fn supports_validity_matrix() {
    let wt_machines = [
        MemHierarchyConfig::uncached(),
        MemHierarchyConfig::uncached_with(MainMemoryTiming::dram(10)),
        MemHierarchyConfig::l1_only(CacheConfig::unified(256)),
        MemHierarchyConfig::split_l1(128, 128),
        MemHierarchyConfig::split_l1(128, 128).with_l2(CacheConfig::l2(1024)),
    ];
    let wpd_machines = [
        MemHierarchyConfig::l1_only(CacheConfig::unified(256).write_back()),
        MemHierarchyConfig::split_l1(128, 128).with_l2(CacheConfig::l2(1024).write_back()),
        MemHierarchyConfig::uncached_with(
            MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(4, 6)),
        ),
        MemHierarchyConfig::l1_only(CacheConfig::unified(128).write_back())
            .with_main(MainMemoryTiming::dram(8).with_store_buffer(StoreBuffer::new(2, 4))),
    ];

    // v1 without cycle reads: write-through yes, write-policy-dependent no.
    let v1 = MemTrace::from_bytes(&v1_trace_bytes(0)).unwrap();
    assert_eq!(v1.version(), 1);
    assert!(v1.replayable());
    for h in &wt_machines {
        assert!(v1.supports(h), "v1 must support WT machine {}", h.label());
    }
    for h in &wpd_machines {
        assert!(!v1.supports(h), "v1 must refuse WPD machine {}", h.label());
        assert!(v1.replay(h).is_err(), "v1 replay must refuse {}", h.label());
    }

    // v1 with cycle reads: not replayable anywhere (the recorded MMIO
    // values were never stored in a count-based trace).
    let v1_mmio = MemTrace::from_bytes(&v1_trace_bytes(3)).unwrap();
    assert!(!v1_mmio.replayable());
    for h in wt_machines.iter().chain(&wpd_machines) {
        assert!(!v1_mmio.supports(h), "timing-dependent v1 supports nothing");
        assert!(v1_mmio.replay(h).is_err());
    }

    // v2: supports every machine, cycle reads or not.
    let v2 = &recorded().trace;
    assert_eq!(v2.version(), 2);
    for h in wt_machines.iter().chain(&wpd_machines) {
        assert!(v2.supports(h), "v2 must support {}", h.label());
        assert!(
            v2.replay(h).is_ok(),
            "v2 replay must succeed on {}",
            h.label()
        );
    }

    // v2 with MMIO cycle-register reads: still supported everywhere —
    // validity is checked dynamically (ReplayDivergence on mismatch).
    let src = "int t; void main() { t = __cycles(); }";
    if let Ok(module) = compile(src) {
        let l = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let (_, mmio) = simulate_with_trace(&l.exe, &SimOptions::default()).unwrap();
        assert!(mmio.cycle_reads() > 0);
        for h in wt_machines.iter().chain(&wpd_machines) {
            assert!(mmio.supports(h), "v2 MMIO trace must support {}", h.label());
        }
    }
}

/// Satellite regression pin, mirroring `tests/observability.rs`: the
/// ten-spec write-policy axis must keep its memo/replay split. One pair
/// of axis entries is intentionally identical (the all-WT split-L1+L2
/// shape appears in two pairings) — one memo hit; the remaining nine
/// distinct machines — write-back and store-buffered ones included —
/// all replay from the v2 trace with zero full-simulation fallbacks.
#[test]
fn write_policy_axis_memo_replay_split_pinned() {
    let _x = spmlab_obs::exclusive();
    let sink = Arc::new(MemorySink::default());
    let guard = spmlab_obs::add_sink(sink.clone());

    let p = Pipeline::with_input(&G721, inputs::speech_like(48, 0xC0FFEE)).unwrap();
    let points = spec_sweep(&p, &write_policy_axis(1024)).unwrap();
    drop(guard);

    assert_eq!(points.len(), 10, "the axis has ten points");
    assert_eq!(sink.counter_total("sweep_points"), 10);
    assert_eq!(sink.counter_total("sweep_memo_miss"), 9);
    assert_eq!(sink.counter_total("sweep_memo_hit"), 1);
    // The no-SPM measure path replays even the recording machine's own
    // spec (bit-identical by the tests above, so reuse would only be an
    // optimization); all nine distinct machines replay.
    assert_eq!(sink.counter_total("sweep_recorded_reuse"), 0);
    assert_eq!(
        sink.counter_total("sweep_replay"),
        9,
        "nine distinct machines replay"
    );
    assert_eq!(
        sink.counter_total("sweep_full_sim"),
        0,
        "write-back and store-buffered points must replay, not fall back"
    );

    // The memoized duplicate pair must agree bit-for-bit, and the
    // write-back twins must actually differ from their write-through
    // partners (the axis is not degenerate).
    assert_eq!(points[2].result.sim_cycles, points[4].result.sim_cycles);
    assert_ne!(points[0].result.sim_cycles, points[1].result.sim_cycles);
}

/// The `write-policy` experiment's provenance must show the flip this
/// PR unlocked: every write-policy-dependent point served by trace
/// replay, zero full-simulation fallbacks. (`write_policy_sweep` also
/// asserts internally that replay and full simulation agree
/// bit-identically on cycles, bounds, checksums and stats-derived
/// energy at every point.)
#[test]
fn write_policy_experiment_provenance_shows_replay_flip() {
    let _x = spmlab_obs::exclusive();
    let sweep = spmlab_bench::write_policy_sweep(true).unwrap();
    assert_eq!(sweep.points.len(), 5, "five write-through/write-back pairs");
    assert_eq!(sweep.provenance.replay_points, Some(9));
    assert_eq!(sweep.provenance.full_sim_points, Some(0));
    assert_eq!(sweep.provenance.memo_hits, Some(1));
    assert_eq!(sweep.provenance.memo_misses, Some(9));
    assert!(sweep.replay_wall > 0.0 && sweep.full_sim_wall > 0.0);
    let phases: Vec<&str> = sweep
        .provenance
        .phase_ns
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    assert_eq!(phases, ["sweep-replay", "sweep-full-sim"]);
}
