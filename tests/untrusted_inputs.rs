//! Malformed-input hardening: the parsers that read *untrusted* text —
//! spec JSON from `--spec` files, grid documents from `--spec-grid`
//! files, bench-history lines from the tracked JSONL log, checkpoint
//! streams from `--resume` files, shard streams fed to `merge-shards` —
//! and the binary v2 trace decoder (`MemTrace::from_bytes`) must reject
//! arbitrary garbage with a typed error (or `None`), never a panic.
//!
//! Every strategy here feeds raw bytes (lossily decoded) and truncated or
//! spliced variants of *valid* documents through the parsers; the property
//! is simply "the call returns".

use std::sync::OnceLock;

use proptest::prelude::*;
use spmlab::dse::{merge_texts, GridSpec};
use spmlab::{check_checkpoint, MemArchSpec};
use spmlab_bench::{BenchRecord, Provenance};
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_isa::hierarchy::MemHierarchyConfig;
use spmlab_sim::{MemTrace, TraceError};

/// Arbitrary bytes decoded to a (possibly replacement-charactered) string.
fn garbage(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=255u8, 0..max)
        .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// A pool of valid spec documents to truncate and splice.
fn sample_spec_json(which: usize) -> String {
    match which % 4 {
        0 => MemArchSpec::spm(1024).to_json(),
        1 => MemArchSpec::single_cache(CacheConfig::unified(256)).to_json(),
        2 => MemArchSpec::uncached().to_json(),
        _ => MemArchSpec::builder()
            .spm(512)
            .l1(CacheConfig::unified(256))
            .build()
            .expect("valid spec")
            .to_json(),
    }
}

/// A pool of valid grid documents to truncate and splice.
fn sample_grid_json(which: usize) -> String {
    match which % 3 {
        0 => GridSpec::default().to_json(),
        1 => GridSpec::from_json(
            r#"{"spm_size":[0,1024],"l1_shape":["unified","split"],
                "l1_size":{"from":256,"to":1024,"factor":2},"l1_policy":["wt","wb"]}"#,
        )
        .expect("valid grid")
        .to_json(),
        _ => GridSpec::from_json(
            r#"{"benchmark":"insertsort","l2_size":[0,4096],
                "main_latency":{"from":0,"to":10,"step":5},
                "store_buffer":["none",{"depth":4,"drain":6}]}"#,
        )
        .expect("valid grid")
        .to_json(),
    }
}

/// A valid (tiny) shard checkpoint stream: header plus one record.
fn sample_shard_stream() -> String {
    use spmlab::dse::executor::{shard_header, Shard};
    let axis = [MemArchSpec::uncached(), MemArchSpec::spm(1024)];
    let header = shard_header("rev", "g721", &axis, Shard { index: 0, count: 2 });
    let rec = spmlab::checkpoint::PointRecord::from_failure(
        0,
        spmlab::checkpoint::spec_hash(&axis[0].canonical()),
        "uncached",
        "synthetic",
        false,
    );
    format!("{}\n{}\n", header.to_json_line(), rec.to_json_line())
}

/// A valid bench-history line with a full provenance block.
fn sample_history_line() -> String {
    BenchRecord {
        rev: "f508d87".into(),
        benchmark: "g721".into(),
        quick: false,
        wall_seconds: 0.371,
        points: 10,
        max_ratio: 8.7878,
        sound: true,
        provenance: Some(Provenance {
            spec_hash: "fe618877c985f45f".into(),
            replay_points: Some(6),
            full_sim_points: Some(2),
            memo_hits: Some(2),
            memo_misses: Some(8),
            phase_ns: vec![("measure-spec".into(), 123456), ("analyze".into(), 99)],
        }),
    }
    .to_json_line()
}

/// A valid serialized v2 event trace (recorded once, truncated and
/// spliced by the properties below).
fn sample_trace_bytes() -> &'static [u8] {
    static CELL: OnceLock<Vec<u8>> = OnceLock::new();
    CELL.get_or_init(|| {
        use spmlab_cc::{compile, link, SpmAssignment};
        let l = link(
            &compile("int a[12]; void main() { int i; for (i = 0; i < 12; i = i + 1) { __loopbound(12); a[i] = i; } }").unwrap(),
            &spmlab_isa::mem::MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let (_, trace) =
            spmlab_sim::simulate_with_trace(&l.exe, &spmlab_sim::SimOptions::default()).unwrap();
        trace.to_bytes()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_spec_json_never_panics(text in garbage(160)) {
        let _ = MemArchSpec::from_json(&text);
    }

    #[test]
    fn arbitrary_trace_bytes_never_panic(bytes in prop::collection::vec(0u8..=255u8, 0..320)) {
        let _ = MemTrace::from_bytes(&bytes);
    }

    /// Truncating or splicing a *valid* v2 stream yields either a typed
    /// decode error or a structurally valid trace whose replay — on a
    /// write-through and a write-back machine — returns without
    /// panicking.
    #[test]
    fn truncated_spliced_trace_bytes_never_panic(
        cut in 0usize..4096,
        tail in prop::collection::vec(0u8..=255u8, 0..32),
    ) {
        let base = sample_trace_bytes();
        let mut bytes = base[..cut.min(base.len())].to_vec();
        bytes.extend_from_slice(&tail);
        if let Ok(trace) = MemTrace::from_bytes(&bytes) {
            let _ = trace.replay(&MemHierarchyConfig::uncached());
            let _ = trace.replay(&MemHierarchyConfig::l1_only(
                CacheConfig::unified(256).write_back(),
            ));
        }
    }

    /// Flipping single bytes anywhere in a valid stream (magic, version,
    /// header words, event payloads) never panics the decoder, and a
    /// corrupted version byte specifically is the typed
    /// [`TraceError::UnsupportedVersion`].
    #[test]
    fn bitflipped_trace_bytes_never_panic(pos in 0usize..4096, val in 0u8..=255) {
        let base = sample_trace_bytes();
        let mut bytes = base.to_vec();
        let idx = pos % bytes.len();
        bytes[idx] = val;
        match MemTrace::from_bytes(&bytes) {
            Ok(trace) => {
                let _ = trace.replay(&MemHierarchyConfig::uncached());
            }
            Err(e) => {
                if idx == 8 && val > 2 {
                    prop_assert_eq!(e, TraceError::UnsupportedVersion { found: val });
                }
            }
        }
    }

    #[test]
    fn truncated_spliced_spec_json_never_panics(
        which in 0usize..4,
        cut in 0usize..512,
        tail in garbage(24),
    ) {
        let base = sample_spec_json(which);
        // The emitted JSON is pure ASCII, so any byte index is a char
        // boundary.
        let mut text = base[..cut.min(base.len())].to_string();
        text.push_str(&tail);
        let _ = MemArchSpec::from_json(&text);
    }

    #[test]
    fn arbitrary_history_lines_never_panic(text in garbage(160)) {
        let _ = BenchRecord::from_json_line(&text);
    }

    #[test]
    fn truncated_history_lines_never_panic(cut in 0usize..512, tail in garbage(16)) {
        let base = sample_history_line();
        let mut text = base[..cut.min(base.len())].to_string();
        text.push_str(&tail);
        let _ = BenchRecord::from_json_line(&text);
    }

    #[test]
    fn arbitrary_checkpoint_streams_never_panic(text in garbage(240)) {
        let _ = check_checkpoint(&text);
    }

    #[test]
    fn arbitrary_grid_json_never_panics(text in garbage(240)) {
        let _ = GridSpec::from_json(&text);
    }

    #[test]
    fn truncated_spliced_grid_json_never_panics(
        which in 0usize..3,
        cut in 0usize..512,
        tail in garbage(24),
    ) {
        let base = sample_grid_json(which);
        // The emitted JSON is pure ASCII, so any byte index is a char
        // boundary.
        let mut text = base[..cut.min(base.len())].to_string();
        text.push_str(&tail);
        let _ = GridSpec::from_json(&text);
    }

    #[test]
    fn arbitrary_shard_streams_never_panic_in_merge(
        a in garbage(240),
        b in garbage(240),
    ) {
        let _ = merge_texts(&[&a]);
        let _ = merge_texts(&[&a, &b]);
    }

    #[test]
    fn truncated_spliced_shard_streams_never_panic_in_merge(
        cut in 0usize..512,
        tail in garbage(24),
    ) {
        let base = sample_shard_stream();
        let mut text = base[..cut.min(base.len())].to_string();
        text.push_str(&tail);
        let _ = merge_texts(&[&text]);
        let _ = merge_texts(&[&text, &base]);
    }

    #[test]
    fn intact_documents_still_round_trip(which in 0usize..4) {
        // The hardening must not have cost any accepting power.
        let base = sample_spec_json(which);
        let spec = MemArchSpec::from_json(&base).expect("valid spec parses");
        prop_assert_eq!(spec.to_json(), base);
        let line = sample_history_line();
        let rec = BenchRecord::from_json_line(&line).expect("valid line parses");
        prop_assert_eq!(rec.to_json_line(), line);
    }

    #[test]
    fn intact_grids_still_round_trip(which in 0usize..3) {
        let base = sample_grid_json(which);
        let grid = GridSpec::from_json(&base).expect("valid grid parses");
        prop_assert_eq!(grid.to_json(), base);
    }
}

/// A future trace version is a typed error, not a panic or a
/// misinterpretation: decoders built for v1/v2 must refuse v3 streams.
#[test]
fn trace_version_mismatch_is_typed() {
    let mut bytes = sample_trace_bytes().to_vec();
    assert_eq!(bytes[8], 2, "sample stream is v2");
    bytes[8] = 3;
    assert_eq!(
        MemTrace::from_bytes(&bytes),
        Err(TraceError::UnsupportedVersion { found: 3 })
    );
    bytes[8] = 0;
    assert_eq!(
        MemTrace::from_bytes(&bytes),
        Err(TraceError::UnsupportedVersion { found: 0 })
    );
    // And the hardening cost no accepting power: the intact stream
    // still decodes.
    assert!(MemTrace::from_bytes(sample_trace_bytes()).is_ok());
}
