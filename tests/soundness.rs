//! The workspace's headline invariant, exercised across the full
//! configuration matrix: **for every benchmark, memory configuration and
//! input respecting the annotations, the static WCET bound is ≥ the
//! simulated cycle count** — and every always-hit proof of the cache
//! analysis holds in the simulator's trace.

use proptest::prelude::*;
use spmlab_cc::SpmAssignment;
use spmlab_isa::cachecfg::{CacheConfig, CacheScope, Replacement, WritePolicy};
use spmlab_isa::hierarchy::{MainMemoryTiming, MemHierarchyConfig, StoreBuffer, L1};
use spmlab_isa::mem::MemoryMap;
use spmlab_sim::{simulate, MachineConfig, SimOptions};
use spmlab_wcet::{analyze, WcetConfig};
use spmlab_workloads::{inputs, Benchmark, ADPCM, CRC32, FIR, G721, INSERTSORT, MULTISORT};

/// Reduced inputs keep the debug-mode matrix fast while still exercising
/// every code path.
fn small_input(b: &Benchmark) -> Vec<i32> {
    match b.name.as_ref() {
        "g721" => inputs::speech_like(24, 11),
        "adpcm" => inputs::speech_like(48, 12),
        "multisort" => inputs::random_ints(24, 13, -99, 99),
        "insertsort" => inputs::random_ints(16, 14, -99, 99),
        "fir" => inputs::speech_like(48, 15),
        "crc32" => inputs::random_bytes(32, 16),
        other => panic!("unknown benchmark {other}"),
    }
}

fn all() -> Vec<&'static Benchmark> {
    vec![&G721, &ADPCM, &MULTISORT, &INSERTSORT, &FIR, &CRC32]
}

#[test]
fn region_timing_bounds_simulation_everywhere() {
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        for spm_size in [0u32, 64, 512, 4096] {
            let map = MemoryMap::with_spm(spm_size);
            // Move `main` plus the input array when they fit; the specific
            // assignment does not matter for soundness.
            let assignment = if spm_size >= 4096 {
                SpmAssignment::of(["main"])
            } else {
                SpmAssignment::none()
            };
            let linked = b
                .link_with_input(&module, &map, &assignment, &input)
                .unwrap();
            let sim = simulate(
                &linked.exe,
                &MachineConfig::uncached(),
                &SimOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{} spm={spm_size}: {e}", b.name));
            let wcet = analyze(
                &linked.exe,
                &WcetConfig::region_timing(),
                &linked.annotations,
            )
            .unwrap_or_else(|e| panic!("{} spm={spm_size}: {e}", b.name));
            assert!(
                wcet.wcet_cycles >= sim.cycles,
                "{} spm={spm_size}: wcet {} < sim {}",
                b.name,
                wcet.wcet_cycles,
                sim.cycles
            );
        }
    }
}

#[test]
fn cache_analysis_bounds_simulation_everywhere() {
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &input,
            )
            .unwrap();
        for cache in [
            CacheConfig::unified(64),
            CacheConfig::unified(1024),
            CacheConfig::unified(8192),
            CacheConfig::instr_only(512),
            CacheConfig::set_assoc(1024, 2, Replacement::Lru),
            CacheConfig::set_assoc(1024, 4, Replacement::Random { seed: 3 }),
            CacheConfig::set_assoc(512, 2, Replacement::RoundRobin),
        ] {
            let sim = simulate(
                &linked.exe,
                &MachineConfig::with_cache(cache.clone()),
                &SimOptions::default(),
            )
            .unwrap();
            for persistence in [false, true] {
                let cfg = if persistence {
                    WcetConfig::with_cache_persistence(cache.clone())
                } else {
                    WcetConfig::with_cache(cache.clone())
                };
                let wcet = analyze(&linked.exe, &cfg, &linked.annotations).unwrap();
                assert!(
                    wcet.wcet_cycles >= sim.cycles,
                    "{} cache={cache:?} persistence={persistence}: wcet {} < sim {}",
                    b.name,
                    wcet.wcet_cycles,
                    sim.cycles
                );
            }
        }
    }
}

#[test]
fn always_hit_proofs_hold_in_simulator_traces() {
    // Every instruction the MUST analysis proves always-hit must have zero
    // misses in the simulator's per-instruction counters — for every
    // benchmark, geometry and replacement policy.
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &input,
            )
            .unwrap();
        for cache in [
            CacheConfig::unified(256),
            CacheConfig::unified(4096),
            CacheConfig::set_assoc(1024, 2, Replacement::Lru),
            CacheConfig::set_assoc(1024, 4, Replacement::Random { seed: 9 }),
        ] {
            let sim = simulate(
                &linked.exe,
                &MachineConfig::with_cache(cache.clone()),
                &SimOptions::default(),
            )
            .unwrap();
            let wcet = analyze(
                &linked.exe,
                &WcetConfig::with_cache(cache.clone()),
                &linked.annotations,
            )
            .unwrap();
            for &addr in &wcet.classification.fetch_always_hit {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    assert_eq!(
                        stat.fetch_misses, 0,
                        "{} {cache:?}: fetch at {addr:#x} classified always-hit \
                         but missed {} times over {} executions",
                        b.name, stat.fetch_misses, stat.execs
                    );
                }
            }
            for &addr in &wcet.classification.data_always_hit {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    assert_eq!(
                        stat.data_misses, 0,
                        "{} {cache:?}: data access at {addr:#x} classified always-hit \
                         but missed {} times",
                        b.name, stat.data_misses
                    );
                }
            }
        }
    }
}

#[test]
fn worst_case_inputs_stay_below_the_bound() {
    // The bound must hold for the *worst* inputs too, not just typical
    // ones (the annotations encode the worst case).
    for (b, worst) in [
        (&MULTISORT, inputs::descending(64)),
        (&INSERTSORT, inputs::descending(32)),
        (&INSERTSORT, inputs::ascending(32)),
    ] {
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &worst,
            )
            .unwrap();
        let sim = simulate(
            &linked.exe,
            &MachineConfig::uncached(),
            &SimOptions::default(),
        )
        .unwrap();
        let wcet = analyze(
            &linked.exe,
            &WcetConfig::region_timing(),
            &linked.annotations,
        )
        .unwrap();
        assert!(
            wcet.wcet_cycles >= sim.cycles,
            "{}: wcet {} < sim {} on adversarial input",
            b.name,
            wcet.wcet_cycles,
            sim.cycles
        );
    }
}

/// The acceptance matrix of the hierarchy subsystem: for SPM (both main
/// timings), L1-only, and L1+L2 at two L2 sizes and two main-memory
/// timings, the static bound covers the simulation, and the L1+L2 bound
/// never exceeds the L1-only-with-L2-latency baseline (monotonicity).
#[test]
fn hierarchy_matrix_is_sound_and_monotone() {
    let hierarchies = [
        MemHierarchyConfig::uncached(),
        MemHierarchyConfig::uncached_with(MainMemoryTiming::dram(10)),
        MemHierarchyConfig::l1_only(CacheConfig::unified(512)),
        MemHierarchyConfig::split_l1(256, 256),
        MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(1024)),
        MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(4096)),
        MemHierarchyConfig::split_l1(256, 256)
            .with_l2(CacheConfig::l2(4096))
            .with_main(MainMemoryTiming::dram(10)),
        MemHierarchyConfig::l1_only(CacheConfig::instr_only(512)).with_l2(CacheConfig::l2(4096)),
    ];
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &input,
            )
            .unwrap();
        for h in &hierarchies {
            let sim = simulate(
                &linked.exe,
                &MachineConfig::with_hierarchy(h.clone()),
                &SimOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, h.label()));
            let wcet = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy(h.clone()),
                &linked.annotations,
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, h.label()));
            assert!(
                wcet.wcet_cycles >= sim.cycles,
                "{} {}: wcet {} < sim {}",
                b.name,
                h.label(),
                wcet.wcet_cycles,
                sim.cycles
            );
            let l1_only = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy_l1_only(h.clone()),
                &linked.annotations,
            )
            .unwrap();
            assert!(
                wcet.wcet_cycles <= l1_only.wcet_cycles,
                "{} {}: L2 analysis loosened the bound ({} > {})",
                b.name,
                h.label(),
                wcet.wcet_cycles,
                l1_only.wcet_cycles
            );
        }
        // SPM point of the axis: tight and sound under both main timings.
        for main in [MainMemoryTiming::table1(), MainMemoryTiming::dram(10)] {
            let map = MemoryMap::with_spm(4096);
            let spm_linked = b
                .link_with_input(&module, &map, &SpmAssignment::of(["main"]), &input)
                .unwrap();
            let machine = MachineConfig::with_hierarchy(MemHierarchyConfig::uncached_with(main));
            let sim = simulate(&spm_linked.exe, &machine, &SimOptions::default()).unwrap();
            let wcet = analyze(
                &spm_linked.exe,
                &WcetConfig::region_timing_with(main),
                &spm_linked.annotations,
            )
            .unwrap();
            assert!(
                wcet.wcet_cycles >= sim.cycles,
                "{} spm/dram unsound",
                b.name
            );
        }
    }
}

/// Every per-address proof of the multi-level analysis must hold in the
/// simulator's per-instruction counters, for every benchmark and a matrix
/// of hierarchies:
///
/// * **always-hit** (MUST proof) — the access never misses its first
///   cache level;
/// * **L1 always-miss** (MAY proof, the Hardy–Puaut `A` filter) — the
///   access never *hits* its L1;
/// * **L2 always-hit** (combined proof) — whenever the access consults
///   the L2, it hits there (zero L2 misses).
#[test]
fn hierarchy_classification_proofs_hold_in_simulator_traces() {
    let mut total_am = 0u64;
    let mut total_l2_ah = 0u64;
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &input,
            )
            .unwrap();
        for h in [
            MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048)),
            MemHierarchyConfig::split_l1(512, 512).with_l2(CacheConfig::l2(16384)),
            MemHierarchyConfig::l1_only(CacheConfig::instr_only(512))
                .with_l2(CacheConfig::l2(4096)),
            MemHierarchyConfig::l1_only(CacheConfig::unified(512)),
        ] {
            let sim = simulate(
                &linked.exe,
                &MachineConfig::with_hierarchy(h.clone()),
                &SimOptions::default(),
            )
            .unwrap();
            let wcet = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy(h.clone()),
                &linked.annotations,
            )
            .unwrap();
            let cls = &wcet.classification;
            for &addr in &cls.fetch_always_hit {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    assert_eq!(
                        stat.fetch_misses,
                        0,
                        "{} {}: fetch at {addr:#x} classified always-hit but missed",
                        b.name,
                        h.label()
                    );
                }
            }
            for &addr in &cls.data_always_hit {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    assert_eq!(
                        stat.data_misses,
                        0,
                        "{} {}: data at {addr:#x} classified always-hit but missed",
                        b.name,
                        h.label()
                    );
                }
            }
            // The MAY proofs: an Always-Miss access can never *hit* its
            // L1 in any concrete run.
            for &addr in &cls.fetch_l1_always_miss {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    total_am += stat.execs;
                    assert_eq!(
                        stat.fetch_hits,
                        0,
                        "{} {}: fetch at {addr:#x} classified L1 always-miss \
                         but hit {} times over {} executions",
                        b.name,
                        h.label(),
                        stat.fetch_hits,
                        stat.execs
                    );
                }
            }
            for &addr in &cls.data_l1_always_miss {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    total_am += stat.execs;
                    assert_eq!(
                        stat.data_hits,
                        0,
                        "{} {}: data at {addr:#x} classified L1 always-miss but hit",
                        b.name,
                        h.label()
                    );
                }
            }
            // The guaranteed-L2 proofs: whenever such an access consults
            // the L2, the line must be there.
            for &addr in &cls.fetch_l2_always_hit {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    total_l2_ah += stat.execs;
                    assert_eq!(
                        stat.fetch_l2_misses,
                        0,
                        "{} {}: fetch at {addr:#x} classified guaranteed-L2-hit \
                         but missed the L2",
                        b.name,
                        h.label()
                    );
                }
            }
            for &addr in &cls.data_l2_always_hit {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    total_l2_ah += stat.execs;
                    assert_eq!(
                        stat.data_l2_misses,
                        0,
                        "{} {}: data at {addr:#x} classified guaranteed-L2-hit \
                         but missed the L2",
                        b.name,
                        h.label()
                    );
                }
            }
        }
    }
    // The matrix must actually exercise the new classifications — a
    // vacuous pass (no AM, no guaranteed L2 hits anywhere) would mean the
    // MAY analysis silently stopped classifying.
    assert!(
        total_am > 0,
        "no executed access was classified Always-Miss"
    );
    assert!(
        total_l2_ah > 0,
        "no executed access carried a guaranteed-L2-hit proof"
    );
}

/// The interprocedural MAY/CAC analysis can only tighten: at every point
/// of the hierarchy matrix the new bound is ≤ the pre-MAY baseline
/// (per-function TOP entries, no Always-Miss filter).
#[test]
fn interprocedural_may_analysis_never_loosens() {
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &input,
            )
            .unwrap();
        for h in [
            MemHierarchyConfig::l1_only(CacheConfig::unified(512)),
            MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(4096)),
            MemHierarchyConfig::split_l1(512, 512).with_l2(CacheConfig::l2(16384)),
        ] {
            let new = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy(h.clone()),
                &linked.annotations,
            )
            .unwrap();
            let base = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy_baseline(h.clone()),
                &linked.annotations,
            )
            .unwrap();
            assert!(
                new.wcet_cycles <= base.wcet_cycles,
                "{} {}: interprocedural MAY analysis loosened the bound ({} > {})",
                b.name,
                h.label(),
                new.wcet_cycles,
                base.wcet_cycles
            );
        }
    }
}

/// The write-policy acceptance matrix: under every write-back machine
/// shape (WB L1D, WB at both levels, WT L1 in front of a WB L2, a
/// unified WB L1, and DRAM-backed and store-buffered variants), the
/// static bound still covers the simulation for every benchmark.
#[test]
fn write_back_matrix_is_sound() {
    let split_wb = || MemHierarchyConfig {
        l1: L1::Split {
            i: Some(CacheConfig::instr_only(256)),
            d: Some(CacheConfig::data_only(256).write_back()),
        },
        l2: None,
        main: MainMemoryTiming::table1(),
    };
    let machines = [
        split_wb(),
        split_wb().with_l2(CacheConfig::l2(2048).write_back()),
        MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048).write_back()),
        MemHierarchyConfig::l1_only(CacheConfig::unified(512).write_back()),
        split_wb()
            .with_l2(CacheConfig::l2(4096).write_back())
            .with_main(MainMemoryTiming::dram(10)),
        MemHierarchyConfig::uncached_with(
            MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(4, 6)),
        ),
        MemHierarchyConfig::l1_only(CacheConfig::unified(512).write_back())
            .with_main(MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(2, 9))),
    ];
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &input,
            )
            .unwrap();
        for h in &machines {
            let sim = simulate(
                &linked.exe,
                &MachineConfig::with_hierarchy(h.clone()),
                &SimOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, h.label()));
            let wcet = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy(h.clone()),
                &linked.annotations,
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, h.label()));
            assert!(
                wcet.wcet_cycles >= sim.cycles,
                "{} {}: wcet {} < sim {}",
                b.name,
                h.label(),
                wcet.wcet_cycles,
                sim.cycles
            );
        }
    }
}

/// Decodes an arbitrary 32-bit seed into a valid hierarchy configuration —
/// the deterministic bridge between proptest's random bits and the
/// constrained configuration space (power-of-two sizes, per-level
/// geometry invariants).
fn decode_hierarchy(bits: u32) -> MemHierarchyConfig {
    let l1_sizes = [64u32, 128, 256, 512, 1024];
    let assocs = [1u32, 2, 4];
    let replacements = [
        Replacement::Lru,
        Replacement::RoundRobin,
        Replacement::Random { seed: 7 },
    ];
    let pick = |field: u32, n: usize| (field as usize) % n;

    let l1_size = l1_sizes[pick(bits, l1_sizes.len())];
    let assoc = assocs[pick(bits >> 3, assocs.len())];
    let replacement = replacements[pick(bits >> 5, replacements.len())];
    // Write policies ride on two more bits: data-serving L1 levels and
    // the L2 independently flip to write-back/write-allocate.
    let wb_l1 = (bits >> 19) & 1 == 1;
    let wb_l2 = (bits >> 20) & 1 == 1;
    let mk_l1 = |scope: CacheScope| CacheConfig {
        assoc: assoc.min(l1_size / 16),
        replacement,
        scope,
        write_policy: if wb_l1 && scope != CacheScope::InstrOnly {
            WritePolicy::WriteBack
        } else {
            WritePolicy::WriteThrough
        },
        ..CacheConfig::unified(l1_size)
    };
    let l1 = match pick(bits >> 7, 4) {
        0 => L1::None,
        1 => L1::Unified(mk_l1(CacheScope::Unified)),
        2 => L1::Unified(mk_l1(CacheScope::InstrOnly)),
        _ => L1::Split {
            i: Some(mk_l1(CacheScope::InstrOnly)),
            d: Some(mk_l1(CacheScope::DataOnly)),
        },
    };
    let wb = |c: CacheConfig| if wb_l2 { c.write_back() } else { c };
    let l2 = match pick(bits >> 9, 3) {
        0 => None,
        1 => Some(wb(CacheConfig::l2(1024))),
        _ => Some(wb(CacheConfig {
            assoc: 2,
            hit_latency: 2 + (bits >> 11) % 3,
            ..CacheConfig::l2(4096)
        })),
    };
    let main = MainMemoryTiming {
        latency: ((bits >> 13) % 3) as u64 * 8,
        beat_cycles: 1 + ((bits >> 15) % 2) as u64,
        bus_bytes: if (bits >> 16).is_multiple_of(2) { 2 } else { 4 },
        store_buffer: match (bits >> 17) % 3 {
            0 => None,
            1 => Some(StoreBuffer::new(2, 6)),
            _ => Some(StoreBuffer::new(4, 11)),
        },
    };
    let h = MemHierarchyConfig { l1, l2, main };
    h.validate();
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant over *randomly drawn* hierarchies: simulated
    /// cycles never exceed the multi-level WCET bound, and enabling the L2
    /// MUST analysis never loosens it.
    #[test]
    fn random_hierarchies_stay_sound(
        bench_idx in 0usize..3,
        bits in any::<u32>(),
        input_seed in 1u64..1000,
    ) {
        let (b, input): (&Benchmark, Vec<i32>) = match bench_idx {
            0 => (&INSERTSORT, inputs::random_ints(12, input_seed, -99, 99)),
            1 => (&CRC32, inputs::random_bytes(16, input_seed)),
            _ => (&FIR, inputs::speech_like(24, input_seed)),
        };
        let h = decode_hierarchy(bits);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(&module, &MemoryMap::no_spm(), &SpmAssignment::none(), &input)
            .unwrap();
        let sim = simulate(
            &linked.exe,
            &MachineConfig::with_hierarchy(h.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        let wcet = analyze(&linked.exe, &WcetConfig::with_hierarchy(h.clone()), &linked.annotations)
            .unwrap();
        prop_assert!(
            wcet.wcet_cycles >= sim.cycles,
            "{} {}: wcet {} < sim {}", b.name, h.label(), wcet.wcet_cycles, sim.cycles
        );
        let l1_only = analyze(
            &linked.exe,
            &WcetConfig::with_hierarchy_l1_only(h.clone()),
            &linked.annotations,
        )
        .unwrap();
        prop_assert!(
            wcet.wcet_cycles <= l1_only.wcet_cycles,
            "{} {}: L2 analysis loosened the bound", b.name, h.label()
        );
        // Every per-address proof holds in this draw's trace: always-hit
        // never misses, L1-always-miss never hits, guaranteed-L2 never
        // misses the L2.
        let cls = &wcet.classification;
        for &addr in &cls.fetch_always_hit {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.fetch_misses, 0, "{:#x} AH fetch missed", addr);
            }
        }
        for &addr in &cls.fetch_l1_always_miss {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.fetch_hits, 0, "{:#x} AM fetch hit L1", addr);
            }
        }
        for &addr in &cls.data_l1_always_miss {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.data_hits, 0, "{:#x} AM data hit L1", addr);
            }
        }
        for &addr in &cls.fetch_l2_always_hit {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.fetch_l2_misses, 0, "{:#x} fetch missed L2", addr);
            }
        }
        for &addr in &cls.data_l2_always_hit {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.data_l2_misses, 0, "{:#x} data missed L2", addr);
            }
        }
    }
}

/// The write-policy twin of a machine: every level write-through, no
/// store buffer. On a store-free program the two must be
/// cycle-identical — write policies only ever act on store traffic.
fn strip_write_policy(mut h: MemHierarchyConfig) -> MemHierarchyConfig {
    fn wt(c: &mut CacheConfig) {
        c.write_policy = WritePolicy::WriteThrough;
    }
    match &mut h.l1 {
        L1::None => {}
        L1::Unified(c) => wt(c),
        L1::Split { i, d } => {
            if let Some(c) = i {
                wt(c);
            }
            if let Some(c) = d {
                wt(c);
            }
        }
    }
    if let Some(c) = &mut h.l2 {
        wt(c);
    }
    h.main.store_buffer = None;
    h
}

/// A hand-assembled program that performs **no data write at all** (100
/// iterations of literal-pool load + add + counted branch): the
/// construction-level guarantee the write-policy-identity property needs.
fn store_free_exe() -> spmlab_isa::image::Executable {
    use spmlab_isa::image::{Executable, LoadRegion, Symbol, SymbolKind};
    use spmlab_isa::insn::Insn;
    use spmlab_isa::mem::MAIN_BASE;
    use spmlab_isa::reg::{R0, R1, R2};
    let insns = [
        Insn::MovImm { rd: R0, imm: 100 },
        // Literal-pool-style read of the code bytes at MAIN_BASE + 8.
        Insn::LdrLit { rd: R1, imm: 1 },
        Insn::AddReg {
            rd: R2,
            rn: R2,
            rm: R1,
        },
        Insn::SubImm { rd: R0, imm: 1 },
        Insn::BCond {
            cond: spmlab_isa::cond::Cond::Ne,
            off: -10,
        },
        Insn::Swi { imm: 0 },
    ];
    let halfwords = spmlab_isa::encode::encode_all(&insns);
    let mut bytes = Vec::new();
    for hw in &halfwords {
        bytes.extend(hw.to_le_bytes());
    }
    let size = bytes.len() as u32;
    Executable {
        regions: vec![LoadRegion {
            addr: MAIN_BASE,
            bytes,
        }],
        symbols: vec![Symbol {
            name: "_start".into(),
            addr: MAIN_BASE,
            size,
            kind: SymbolKind::Func { code_size: size },
        }],
        entry: MAIN_BASE,
        memory_map: MemoryMap::no_spm(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Write policies act on store traffic only: on a store-free program
    /// every randomly drawn write-back/store-buffered machine is
    /// cycle-identical (and statistics-identical) to its all-write-through
    /// twin, and no write-back activity is ever recorded.
    #[test]
    fn write_policies_identical_on_store_free_programs(bits in any::<u32>()) {
        let wb = decode_hierarchy(bits);
        let wt = strip_write_policy(wb.clone());
        let exe = store_free_exe();
        let s_wb = simulate(
            &exe,
            &MachineConfig::with_hierarchy(wb.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        let s_wt = simulate(
            &exe,
            &MachineConfig::with_hierarchy(wt),
            &SimOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(s_wb.cycles, s_wt.cycles, "{} diverged", wb.label());
        prop_assert_eq!(&s_wb.mem_stats, &s_wt.mem_stats);
        prop_assert_eq!(
            s_wb.mem_stats.write_backs
                + s_wb.mem_stats.dirty_evictions
                + s_wb.mem_stats.store_buffer_stalls,
            0,
            "store-free program triggered write-back machinery"
        );
    }
}

#[test]
fn persistence_is_sound_and_no_looser() {
    let input = small_input(&ADPCM);
    let module = ADPCM.compile().unwrap();
    let linked = ADPCM
        .link_with_input(
            &module,
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
            &input,
        )
        .unwrap();
    for size in [256u32, 1024, 8192] {
        let cache = CacheConfig::unified(size);
        let sim = simulate(
            &linked.exe,
            &MachineConfig::with_cache(cache.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        let must = analyze(
            &linked.exe,
            &WcetConfig::with_cache(cache.clone()),
            &linked.annotations,
        )
        .unwrap();
        let pers = analyze(
            &linked.exe,
            &WcetConfig::with_cache_persistence(cache.clone()),
            &linked.annotations,
        )
        .unwrap();
        assert!(
            pers.wcet_cycles <= must.wcet_cycles,
            "persistence can only tighten"
        );
        assert!(
            pers.wcet_cycles >= sim.cycles,
            "persistence stays sound at {size}"
        );
    }
}

// =====================================================================
// Generated workloads: the same headline invariants over programs from
// the seeded MiniC generator, so the soundness matrix is not limited to
// the six shipped kernels.
// =====================================================================

/// The soundness invariant across generated programs × machine shapes ×
/// write policies: the static bound covers the simulated run everywhere,
/// for workloads the analyzer has never seen before.
#[test]
fn generated_matrix_is_sound_across_write_policies() {
    let arch = spmlab_workloads::gen::reference_arch();
    for seed in 0..6u64 {
        let g = spmlab_workloads::gen::generate_for_seed(seed, &arch);
        let b = g.benchmark();
        let input = b.typical_input();
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &input,
            )
            .unwrap();
        let wb_split = {
            let mut h = MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048));
            if let L1::Split { d: Some(d), .. } = &mut h.l1 {
                *d = d.clone().write_back();
            }
            h.l2 = h.l2.map(CacheConfig::write_back);
            h
        };
        for h in [
            MemHierarchyConfig::uncached(),
            MemHierarchyConfig::l1_only(CacheConfig::unified(512)),
            MemHierarchyConfig::l1_only(CacheConfig::unified(512).write_back()),
            MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048)),
            wb_split,
        ] {
            let sim = simulate(
                &linked.exe,
                &MachineConfig::with_hierarchy(h.clone()),
                &SimOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, h.label()));
            let wcet = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy(h.clone()),
                &linked.annotations,
            )
            .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, h.label()));
            assert!(
                wcet.wcet_cycles >= sim.cycles,
                "{} {}: wcet {} < sim {}",
                b.name,
                h.label(),
                wcet.wcet_cycles,
                sim.cycles
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random generated program × random hierarchy: simulated cycles
    /// never exceed the WCET bound, and every per-address cache proof
    /// (always-hit never misses, L1 always-miss never hits, guaranteed
    /// L2 hit never misses the L2) holds in the concrete trace.
    #[test]
    fn generated_random_hierarchies_stay_sound(
        seed in 0u64..500,
        bits in any::<u32>(),
    ) {
        let arch = spmlab_workloads::gen::reference_arch();
        let g = spmlab_workloads::gen::generate_for_seed(seed, &arch);
        let b = g.benchmark();
        let input = b.typical_input();
        let h = decode_hierarchy(bits);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(&module, &MemoryMap::no_spm(), &SpmAssignment::none(), &input)
            .unwrap();
        let sim = simulate(
            &linked.exe,
            &MachineConfig::with_hierarchy(h.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        let wcet = analyze(
            &linked.exe,
            &WcetConfig::with_hierarchy(h.clone()),
            &linked.annotations,
        )
        .unwrap();
        prop_assert!(
            wcet.wcet_cycles >= sim.cycles,
            "seed {} on {}: wcet {} < sim {}",
            seed, h.label(), wcet.wcet_cycles, sim.cycles
        );
        let cls = &wcet.classification;
        for &addr in &cls.fetch_always_hit {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.fetch_misses, 0, "{:#x} AH fetch missed", addr);
            }
        }
        for &addr in &cls.data_always_hit {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.data_misses, 0, "{:#x} AH data missed", addr);
            }
        }
        for &addr in &cls.fetch_l1_always_miss {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.fetch_hits, 0, "{:#x} AM fetch hit L1", addr);
            }
        }
        for &addr in &cls.data_l1_always_miss {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.data_hits, 0, "{:#x} AM data hit L1", addr);
            }
        }
        for &addr in &cls.fetch_l2_always_hit {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.fetch_l2_misses, 0, "{:#x} fetch missed L2", addr);
            }
        }
        for &addr in &cls.data_l2_always_hit {
            if let Some(stat) = sim.insn_stats.get(&addr) {
                prop_assert_eq!(stat.data_l2_misses, 0, "{:#x} data missed L2", addr);
            }
        }
    }
}
