//! The workspace's headline invariant, exercised across the full
//! configuration matrix: **for every benchmark, memory configuration and
//! input respecting the annotations, the static WCET bound is ≥ the
//! simulated cycle count** — and every always-hit proof of the cache
//! analysis holds in the simulator's trace.

use spmlab_cc::SpmAssignment;
use spmlab_isa::cachecfg::{CacheConfig, Replacement};
use spmlab_isa::mem::MemoryMap;
use spmlab_sim::{simulate, MachineConfig, SimOptions};
use spmlab_wcet::{analyze, WcetConfig};
use spmlab_workloads::{inputs, Benchmark, ADPCM, CRC32, FIR, G721, INSERTSORT, MULTISORT};

/// Reduced inputs keep the debug-mode matrix fast while still exercising
/// every code path.
fn small_input(b: &Benchmark) -> Vec<i32> {
    match b.name {
        "g721" => inputs::speech_like(24, 11),
        "adpcm" => inputs::speech_like(48, 12),
        "multisort" => inputs::random_ints(24, 13, -99, 99),
        "insertsort" => inputs::random_ints(16, 14, -99, 99),
        "fir" => inputs::speech_like(48, 15),
        "crc32" => inputs::random_bytes(32, 16),
        other => panic!("unknown benchmark {other}"),
    }
}

fn all() -> Vec<&'static Benchmark> {
    vec![&G721, &ADPCM, &MULTISORT, &INSERTSORT, &FIR, &CRC32]
}

#[test]
fn region_timing_bounds_simulation_everywhere() {
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        for spm_size in [0u32, 64, 512, 4096] {
            let map = MemoryMap::with_spm(spm_size);
            // Move `main` plus the input array when they fit; the specific
            // assignment does not matter for soundness.
            let assignment = if spm_size >= 4096 {
                SpmAssignment::of(["main"])
            } else {
                SpmAssignment::none()
            };
            let linked = b.link_with_input(&module, &map, &assignment, &input).unwrap();
            let sim = simulate(&linked.exe, &MachineConfig::uncached(), &SimOptions::default())
                .unwrap_or_else(|e| panic!("{} spm={spm_size}: {e}", b.name));
            let wcet = analyze(&linked.exe, &WcetConfig::region_timing(), &linked.annotations)
                .unwrap_or_else(|e| panic!("{} spm={spm_size}: {e}", b.name));
            assert!(
                wcet.wcet_cycles >= sim.cycles,
                "{} spm={spm_size}: wcet {} < sim {}",
                b.name,
                wcet.wcet_cycles,
                sim.cycles
            );
        }
    }
}

#[test]
fn cache_analysis_bounds_simulation_everywhere() {
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(&module, &MemoryMap::no_spm(), &SpmAssignment::none(), &input)
            .unwrap();
        for cache in [
            CacheConfig::unified(64),
            CacheConfig::unified(1024),
            CacheConfig::unified(8192),
            CacheConfig::instr_only(512),
            CacheConfig::set_assoc(1024, 2, Replacement::Lru),
            CacheConfig::set_assoc(1024, 4, Replacement::Random { seed: 3 }),
            CacheConfig::set_assoc(512, 2, Replacement::RoundRobin),
        ] {
            let sim = simulate(
                &linked.exe,
                &MachineConfig { cache: Some(cache.clone()) },
                &SimOptions::default(),
            )
            .unwrap();
            for persistence in [false, true] {
                let cfg = if persistence {
                    WcetConfig::with_cache_persistence(cache.clone())
                } else {
                    WcetConfig::with_cache(cache.clone())
                };
                let wcet = analyze(&linked.exe, &cfg, &linked.annotations).unwrap();
                assert!(
                    wcet.wcet_cycles >= sim.cycles,
                    "{} cache={cache:?} persistence={persistence}: wcet {} < sim {}",
                    b.name,
                    wcet.wcet_cycles,
                    sim.cycles
                );
            }
        }
    }
}

#[test]
fn always_hit_proofs_hold_in_simulator_traces() {
    // Every instruction the MUST analysis proves always-hit must have zero
    // misses in the simulator's per-instruction counters — for every
    // benchmark, geometry and replacement policy.
    for b in all() {
        let input = small_input(b);
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(&module, &MemoryMap::no_spm(), &SpmAssignment::none(), &input)
            .unwrap();
        for cache in [
            CacheConfig::unified(256),
            CacheConfig::unified(4096),
            CacheConfig::set_assoc(1024, 2, Replacement::Lru),
            CacheConfig::set_assoc(1024, 4, Replacement::Random { seed: 9 }),
        ] {
            let sim = simulate(
                &linked.exe,
                &MachineConfig { cache: Some(cache.clone()) },
                &SimOptions::default(),
            )
            .unwrap();
            let wcet =
                analyze(&linked.exe, &WcetConfig::with_cache(cache.clone()), &linked.annotations)
                    .unwrap();
            for &addr in &wcet.classification.fetch_always_hit {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    assert_eq!(
                        stat.fetch_misses, 0,
                        "{} {cache:?}: fetch at {addr:#x} classified always-hit \
                         but missed {} times over {} executions",
                        b.name, stat.fetch_misses, stat.execs
                    );
                }
            }
            for &addr in &wcet.classification.data_always_hit {
                if let Some(stat) = sim.insn_stats.get(&addr) {
                    assert_eq!(
                        stat.data_misses, 0,
                        "{} {cache:?}: data access at {addr:#x} classified always-hit \
                         but missed {} times",
                        b.name, stat.data_misses
                    );
                }
            }
        }
    }
}

#[test]
fn worst_case_inputs_stay_below_the_bound() {
    // The bound must hold for the *worst* inputs too, not just typical
    // ones (the annotations encode the worst case).
    for (b, worst) in [
        (&MULTISORT, inputs::descending(64)),
        (&INSERTSORT, inputs::descending(32)),
        (&INSERTSORT, inputs::ascending(32)),
    ] {
        let module = b.compile().unwrap();
        let linked = b
            .link_with_input(&module, &MemoryMap::no_spm(), &SpmAssignment::none(), &worst)
            .unwrap();
        let sim =
            simulate(&linked.exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();
        let wcet =
            analyze(&linked.exe, &WcetConfig::region_timing(), &linked.annotations).unwrap();
        assert!(
            wcet.wcet_cycles >= sim.cycles,
            "{}: wcet {} < sim {} on adversarial input",
            b.name,
            wcet.wcet_cycles,
            sim.cycles
        );
    }
}

#[test]
fn persistence_is_sound_and_no_looser() {
    let input = small_input(&ADPCM);
    let module = ADPCM.compile().unwrap();
    let linked = ADPCM
        .link_with_input(&module, &MemoryMap::no_spm(), &SpmAssignment::none(), &input)
        .unwrap();
    for size in [256u32, 1024, 8192] {
        let cache = CacheConfig::unified(size);
        let sim = simulate(
            &linked.exe,
            &MachineConfig { cache: Some(cache.clone()) },
            &SimOptions::default(),
        )
        .unwrap();
        let must =
            analyze(&linked.exe, &WcetConfig::with_cache(cache.clone()), &linked.annotations)
                .unwrap();
        let pers = analyze(
            &linked.exe,
            &WcetConfig::with_cache_persistence(cache.clone()),
            &linked.annotations,
        )
        .unwrap();
        assert!(pers.wcet_cycles <= must.wcet_cycles, "persistence can only tighten");
        assert!(pers.wcet_cycles >= sim.cycles, "persistence stays sound at {size}");
    }
}
