//! Fault-injection suite: proves the fault-tolerance layer under fire.
//!
//! Every injected fault — typed error, panic, or delay, at any pipeline
//! phase — must be *contained* to its sweep point (the process never
//! aborts and the other points complete), *reported* (as a `Failed`
//! outcome carried into figures and checkpoints, never silently dropped),
//! and *recoverable* (resuming the checkpoint of a faulted run reproduces
//! the uninterrupted result bit-identically).
//!
//! The harness (`spmlab::faults`) only exists because the root package's
//! dev-dependencies arm the `fault-injection` cargo feature for test
//! builds; release library builds compile the hooks out.

use std::time::Duration;

use spmlab::faults::{arm, FaultAction, FaultPlan};
use spmlab::sweep::{collect_points, spec_sweep_outcomes, spec_sweep_with_session};
use spmlab::{check_checkpoint, CheckpointHeader, CoreError, MemArchSpec, Pipeline, SweepSession};
use spmlab_bench::{
    hierarchy_figure_with_session, hierarchy_json, hierarchy_session, CheckpointMode,
};
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_workloads::INSERTSORT;

/// A three-point axis with distinct effective configurations: two
/// scratchpad capacities and one cached machine.
fn small_axis() -> Vec<MemArchSpec> {
    vec![
        MemArchSpec::spm(128),
        MemArchSpec::spm(256),
        MemArchSpec::single_cache(CacheConfig::unified(256)),
    ]
}

/// A scratch directory for this test process's checkpoint files.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spmlab-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

#[test]
fn typed_errors_fail_exactly_the_affected_points() {
    // `nth` counts calls of the armed phase across the whole (parallel)
    // sweep, so *which* point fails is scheduling-dependent — but exactly
    // one measurement errors, and with three distinct effective configs
    // that is exactly one failed point. Each phase gets a fresh pipeline:
    // the scratchpad-link memo would otherwise swallow later `link` calls.
    for phase in ["measure-spec", "alloc", "analyze", "link"] {
        let p = Pipeline::new(&INSERTSORT).expect("pipeline");
        let guard = arm(FaultPlan::new(phase, 1, FaultAction::Error));
        let outcomes = spec_sweep_outcomes(&p, &small_axis()).expect("sweep survives");
        assert!(guard.fired(), "phase `{phase}` was reached");
        drop(guard);
        let failed: Vec<_> = outcomes
            .iter()
            .filter_map(|o| o.outcome.failure())
            .collect();
        assert_eq!(failed.len(), 1, "phase `{phase}`: exactly one point fails");
        assert!(!failed[0].panicked, "a typed error is not a panic");
        assert!(
            failed[0].error.contains("injected fault"),
            "phase `{phase}`: {}",
            failed[0].error
        );
        let completed: Vec<_> = outcomes.iter().filter_map(|o| o.outcome.result()).collect();
        assert_eq!(completed.len(), 2, "phase `{phase}`: the rest completes");
        for r in completed {
            assert!(r.wcet_cycles >= r.sim_cycles, "{}", r.label);
        }
        // The all-or-nothing wrapper reports the failure without dropping
        // the completed points.
        let guard = arm(FaultPlan::new(phase, 1, FaultAction::Error));
        let err = collect_points(spec_sweep_outcomes(&p, &small_axis()).unwrap()).unwrap_err();
        drop(guard);
        match err {
            CoreError::Sweep(f) => {
                assert_eq!(f.completed.len(), 2, "phase `{phase}`");
                assert_eq!(f.failed.len(), 1, "phase `{phase}`");
                assert_eq!(f.total, 3, "phase `{phase}`");
            }
            other => panic!("expected CoreError::Sweep, got {other}"),
        }
    }
}

#[test]
fn panics_are_contained_per_point() {
    // A panic mid-measurement may poison the pipeline's internal memo
    // locks, so points measured *after* it can cascade into `Failed` too
    // (documented behavior: degraded availability, never wrong numbers).
    // The containment guarantee is that the process survives, every point
    // gets an outcome, and whatever completes is sound.
    for phase in ["measure-spec", "alloc", "analyze"] {
        let p = Pipeline::new(&INSERTSORT).expect("pipeline");
        let guard = arm(FaultPlan::new(phase, 1, FaultAction::Panic));
        let outcomes = spec_sweep_outcomes(&p, &small_axis()).expect("sweep survives the panic");
        assert!(guard.fired(), "phase `{phase}` was reached");
        drop(guard);
        assert_eq!(outcomes.len(), 3, "every point has an outcome");
        let panicked: Vec<_> = outcomes
            .iter()
            .filter_map(|o| o.outcome.failure())
            .filter(|f| f.panicked)
            .collect();
        assert!(
            !panicked.is_empty(),
            "phase `{phase}`: the injected panic is reported"
        );
        assert!(
            panicked.iter().any(|f| f.error.contains("injected panic")),
            "phase `{phase}`: the panic message is carried into the record"
        );
        for r in outcomes.iter().filter_map(|o| o.outcome.result()) {
            assert!(r.wcet_cycles >= r.sim_cycles, "{}", r.label);
        }
    }
}

#[test]
fn prep_phase_faults_surface_from_pipeline_construction() {
    // `compile` and the baseline `link` run once, before any sweep point
    // exists — their faults surface as a typed construction error, still
    // never a process abort.
    for phase in ["compile", "link"] {
        let guard = arm(FaultPlan::new(phase, 1, FaultAction::Error));
        let err = match Pipeline::new(&INSERTSORT) {
            Ok(_) => panic!("phase `{phase}`: construction must fail"),
            Err(e) => e,
        };
        assert!(guard.fired(), "phase `{phase}` was reached");
        drop(guard);
        assert!(
            matches!(err, CoreError::Injected(_)),
            "phase `{phase}`: {err}"
        );
    }
}

#[test]
fn delays_do_not_fail_points() {
    let p = Pipeline::new(&INSERTSORT).expect("pipeline");
    let guard = arm(FaultPlan::new(
        "measure-spec",
        1,
        FaultAction::Delay(Duration::from_millis(20)),
    ));
    let points = collect_points(spec_sweep_outcomes(&p, &small_axis()).unwrap())
        .expect("a slow point is not a failed point");
    assert!(guard.fired());
    assert_eq!(points.len(), 3);
}

#[test]
fn exhausted_budgets_degrade_soundly_not_fatally() {
    // Hold the harness lock so a concurrently armed fault cannot leak into
    // this sweep; the plan itself targets a phase that never runs.
    let _serial = arm(FaultPlan::new("no-such-phase", 1, FaultAction::Error));
    let mut p = Pipeline::new(&INSERTSORT).expect("pipeline");
    p.set_analysis_budget(spmlab_wcet::AnalysisBudget {
        max_fixpoint_iters: Some(1),
        deadline_ms: None,
    });
    let outcomes = spec_sweep_outcomes(&p, &small_axis()).expect("sweep survives");
    for o in &outcomes {
        let r = o
            .outcome
            .result()
            .expect("budget exhaustion never fails a point");
        if o.outcome.is_degraded() {
            assert!(r.degraded);
        }
        assert!(
            r.wcet_cycles >= r.sim_cycles,
            "degraded bound stays sound: {}",
            r.label
        );
    }
    // The cached machine cannot converge its MUST fixpoint in one
    // iteration: at least one point is degraded, proving the budget bites.
    assert!(
        outcomes.iter().any(|o| o.outcome.is_degraded()),
        "a one-iteration budget must widen some point"
    );
}

#[test]
fn faulted_checkpoints_record_failures_and_resume_to_completion() {
    // The small-axis version of the G.721 scenario below, checking the
    // checkpoint *contents* around a fault: failed points are recorded
    // (never silently dropped), the strict gate reports the stream as
    // incomplete, and a resume re-measures exactly the failed points.
    let p = Pipeline::new(&INSERTSORT).expect("pipeline");
    let specs = small_axis();
    let header = CheckpointHeader::new("testrev", "insertsort", &specs);
    let path = scratch("faulted.jsonl");

    let session = SweepSession::checkpoint_to(&path, &header).unwrap();
    let guard = arm(FaultPlan::new("measure-spec", 2, FaultAction::Error));
    let outcomes = spec_sweep_with_session(&p, &specs, &session).expect("sweep survives");
    assert!(guard.fired());
    drop(guard);
    drop(session);
    let n_failed = outcomes.iter().filter(|o| o.outcome.is_failed()).count();
    assert_eq!(n_failed, 1);

    let text = std::fs::read_to_string(&path).unwrap();
    let stats = check_checkpoint(&text).expect("the faulted stream still validates");
    assert_eq!(stats.failed, 1, "the failure is in the checkpoint");
    assert_eq!(stats.covered, stats.points, "every point has a record");

    let resumed = SweepSession::resume_from(&path, &header).unwrap();
    assert_eq!(
        resumed.resumed_points(),
        2,
        "completed points are reused; the failed one is re-measured"
    );
    let replay = spec_sweep_with_session(&p, &specs, &resumed).expect("resume completes");
    drop(resumed);
    assert!(replay.iter().all(|o| o.outcome.result().is_some()));
    let text = std::fs::read_to_string(&path).unwrap();
    let stats = check_checkpoint(&text).expect("the resumed stream validates");
    assert_eq!(
        stats.failed, 0,
        "the re-measured point supersedes its failure"
    );
    assert_eq!(stats.covered, stats.points);
    std::fs::remove_file(&path).ok();
}

#[test]
fn interrupted_g721_hierarchy_resumes_byte_identically() {
    // The paper's eight-config G.721 hierarchy sweep, interrupted by an
    // injected fault and resumed: the merged figure must render to the
    // byte-identical JSON artifact of an uninterrupted run (a fixed wall
    // time stands in for the only legitimately varying provenance field).
    let quick = false; // the real G.721 axis
    let ck_full = scratch("g721-full.jsonl");
    let ck_cut = scratch("g721-cut.jsonl");

    // Uninterrupted reference run. The armed-but-inert plan holds the
    // harness lock so no concurrent test can fault this sweep.
    let reference = {
        let _serial = arm(FaultPlan::new("no-such-phase", 1, FaultAction::Error));
        let session = hierarchy_session(quick, &CheckpointMode::Fresh(ck_full.clone())).unwrap();
        let fig = hierarchy_figure_with_session(quick, &session).expect("reference run");
        assert!(fig.failed.is_empty());
        hierarchy_json(&fig, 1.0)
    };

    // Faulted run: one measurement dies mid-sweep.
    {
        let session = hierarchy_session(quick, &CheckpointMode::Fresh(ck_cut.clone())).unwrap();
        let guard = arm(FaultPlan::new("measure-spec", 3, FaultAction::Error));
        let fig = hierarchy_figure_with_session(quick, &session).expect("faulted run survives");
        assert!(guard.fired());
        assert!(
            !fig.failed.is_empty(),
            "the fault is reported in the figure"
        );
        let json = hierarchy_json(&fig, 1.0);
        assert!(json.contains("\"failed\""), "and in the JSON artifact");
    }

    // Resume without the fault: missing points re-measure, reused points
    // come back bit-identical, and the merged figure matches the
    // uninterrupted reference byte for byte.
    let resumed = {
        let _serial = arm(FaultPlan::new("no-such-phase", 1, FaultAction::Error));
        let session = hierarchy_session(quick, &CheckpointMode::Resume(ck_cut.clone())).unwrap();
        assert!(session.resumed_points() > 0, "completed points are reused");
        let fig = hierarchy_figure_with_session(quick, &session).expect("resume completes");
        assert!(fig.failed.is_empty(), "resume heals the failed points");
        hierarchy_json(&fig, 1.0)
    };
    assert_eq!(
        reference, resumed,
        "resumed == uninterrupted, byte for byte"
    );

    // Both checkpoint streams pass the strict completeness gate.
    for path in [&ck_full, &ck_cut] {
        let stats = check_checkpoint(&std::fs::read_to_string(path).unwrap()).expect("valid");
        assert_eq!(stats.covered, stats.points, "{}", path.display());
        assert_eq!(stats.failed, 0, "{}", path.display());
        std::fs::remove_file(path).ok();
    }
}
