//! Integration suite for the design-space-exploration engine: sharding
//! must be invisible (a 2-shard split of a G.721 grid merges
//! byte-identical to the unsharded run, frontier included), a killed
//! shard must resume to the same bytes, and the incremental Pareto
//! frontier must agree with a brute-force O(n²) reference on random
//! point sets.

use spmlab::dse::executor::{shard_header, Shard};
use spmlab::dse::frontier::{dominates, Frontier, FrontierPoint};
use spmlab::dse::{merge_texts, GridSpec};
use spmlab::pipeline::Pipeline;
use spmlab::sweep::{spec_sweep_with_session, SweepSession};
use spmlab::MemArchSpec;
use spmlab_workloads::G721;
use std::path::Path;
use std::sync::OnceLock;

/// One shared G.721 pipeline — the prepare step (compile, link, baseline
/// interpretation) is the expensive part and identical for every test.
fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| Pipeline::new(&G721).unwrap())
}

/// A small but heterogeneous G.721 grid: scratchpads, caches, a
/// two-level point, and two main-memory timings (8 distinct points).
fn small_grid() -> GridSpec {
    GridSpec::from_json(
        r#"{
            "benchmark": "g721",
            "spm_size": [0, 1024],
            "l1_size": [0, 1024],
            "l2_size": [0, 4096],
            "main_latency": [0, 10]
        }"#,
    )
    .unwrap()
}

/// Runs one shard of `axis` into `dir`, returning the stream path.
fn run_shard(axis: &[MemArchSpec], shard: Shard, dir: &Path) -> std::path::PathBuf {
    let header = shard_header("test-rev", "g721", axis, shard);
    let path = dir.join(format!("shard-{}-of-{}.jsonl", shard.index, shard.count));
    let session = if path.exists() {
        SweepSession::resume_from(&path, &header).unwrap()
    } else {
        SweepSession::checkpoint_to(&path, &header).unwrap()
    };
    let outcomes = spec_sweep_with_session(pipeline(), &shard.take(axis), &session).unwrap();
    assert!(
        outcomes.iter().all(|o| !o.outcome.is_failed()),
        "shard {shard} had failed points"
    );
    path
}

#[test]
fn two_shard_grid_merges_byte_identical_to_unsharded() {
    let dir = tempdir("dse-2shard");
    let (axis, stats) = small_grid().axis().unwrap();
    assert!(stats.points >= 6, "grid too small to be a meaningful test");

    let full = run_shard(&axis, Shard::single(), &dir);
    let s0 = run_shard(&axis, Shard { index: 0, count: 2 }, &dir);
    let s1 = run_shard(&axis, Shard { index: 1, count: 2 }, &dir);

    let full_text = std::fs::read_to_string(&full).unwrap();
    let t0 = std::fs::read_to_string(&s0).unwrap();
    let t1 = std::fs::read_to_string(&s1).unwrap();
    // Shard order must not matter.
    let merged = merge_texts(&[&t1, &t0]).unwrap();
    let normalised = merge_texts(&[&full_text]).unwrap();

    assert_eq!(
        merged.to_jsonl(),
        normalised.to_jsonl(),
        "merged bytes differ"
    );
    assert_eq!(
        merged.to_jsonl(),
        full_text,
        "unsharded run was not normal-form"
    );
    // The frontier — points, order, rendering — is identical too.
    assert_eq!(merged.frontier(), normalised.frontier());
    assert_eq!(merged.frontier().render(), normalised.frontier().render());
    assert!(!merged.frontier().is_empty());
    // Soundness at every frontier point.
    for p in merged.frontier().points() {
        assert!(
            p.sim_cycles <= p.wcet_cycles,
            "unsound frontier point {}",
            p.label
        );
    }
}

#[test]
fn killed_shard_resumes_to_the_same_bytes() {
    let dir = tempdir("dse-kill");
    let (axis, _) = small_grid().axis().unwrap();
    let shard0 = Shard { index: 0, count: 2 };
    let shard1 = Shard { index: 1, count: 2 };

    // Reference: both shards run cleanly.
    let clean_dir = dir.join("clean");
    std::fs::create_dir_all(&clean_dir).unwrap();
    let c0 = run_shard(&axis, shard0, &clean_dir);
    let c1 = run_shard(&axis, shard1, &clean_dir);
    let clean = merge_texts(&[
        &std::fs::read_to_string(&c0).unwrap(),
        &std::fs::read_to_string(&c1).unwrap(),
    ])
    .unwrap();

    // Kill: truncate shard 0's stream to the header, one record, and a
    // torn half-line — the exact artifact of a SIGKILL mid-write.
    let kill_dir = dir.join("killed");
    std::fs::create_dir_all(&kill_dir).unwrap();
    let k0 = run_shard(&axis, shard0, &kill_dir);
    let text = std::fs::read_to_string(&k0).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 3,
        "need at least two records to simulate a kill"
    );
    let torn = format!(
        "{}\n{}\n{}",
        lines[0],
        lines[1],
        &lines[2][..lines[2].len() / 2]
    );
    std::fs::write(&k0, torn).unwrap();

    // Resume re-runs only the missing points; the merge must be
    // byte-identical to the clean run.
    let k0 = run_shard(&axis, shard0, &kill_dir);
    let k1 = run_shard(&axis, shard1, &kill_dir);
    let resumed = merge_texts(&[
        &std::fs::read_to_string(&k0).unwrap(),
        &std::fs::read_to_string(&k1).unwrap(),
    ])
    .unwrap();
    assert_eq!(resumed.to_jsonl(), clean.to_jsonl());
    assert_eq!(resumed.frontier(), clean.frontier());
}

/// Brute-force O(n²) Pareto reference: a point survives iff no other
/// point dominates it and it is not a duplicate of an earlier survivor.
fn pareto_reference(points: &[FrontierPoint]) -> Vec<FrontierPoint> {
    let mut out: Vec<FrontierPoint> = Vec::new();
    for p in points {
        if p.sim_cycles == 0 {
            continue;
        }
        if points.iter().any(|q| dominates(q, p)) {
            continue;
        }
        if out.contains(p) {
            continue;
        }
        out.push(p.clone());
    }
    out.sort_by(|a, b| {
        (a.sim_cycles, a.wcet_cycles, &a.label, a.index).cmp(&(
            b.sim_cycles,
            b.wcet_cycles,
            &b.label,
            b.index,
        ))
    });
    out
}

#[test]
fn incremental_frontier_matches_quadratic_reference_on_random_sets() {
    // Deterministic LCG (no external randomness): 64-bit MMIX constants.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state
    };
    for round in 0..50 {
        let n = 1 + (next() % 64) as usize;
        let points: Vec<FrontierPoint> = (0..n)
            .map(|i| {
                // Small ranges force ties and duplicates; wcet >= sim
                // keeps the points physical (sound bounds).
                let sim = 1 + next() % 40;
                let wcet = sim + next() % 40;
                FrontierPoint {
                    index: i,
                    label: format!("r{round}p{i}"),
                    sim_cycles: sim,
                    wcet_cycles: wcet,
                }
            })
            .collect();
        let mut incremental = Frontier::new();
        for p in &points {
            incremental.insert(p.clone());
        }
        let reference = pareto_reference(&points);
        assert_eq!(
            incremental.points(),
            reference.as_slice(),
            "round {round}: incremental and O(n²) frontiers disagree"
        );
    }
}

#[test]
fn frontier_matches_reference_on_the_real_grid() {
    let dir = tempdir("dse-frontier");
    let (axis, _) = small_grid().axis().unwrap();
    let path = run_shard(&axis, Shard::single(), &dir);
    let text = std::fs::read_to_string(&path).unwrap();
    let merged = merge_texts(&[&text]).unwrap();
    let all: Vec<FrontierPoint> = merged
        .records
        .iter()
        .map(|(g, r)| FrontierPoint {
            index: *g,
            label: r.label.clone(),
            sim_cycles: r.sim_cycles,
            wcet_cycles: r.wcet_cycles,
        })
        .collect();
    assert_eq!(
        merged.frontier().points(),
        pareto_reference(&all).as_slice()
    );
}

/// A fresh per-test scratch directory under the target dir.
fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
