//! End-to-end pipeline tests on the shipped benchmarks: the paper's
//! qualitative results on reduced inputs, allocation behaviour, input
//! patching, and the energy model — everything a downstream user touches.

use spmlab::pipeline::Pipeline;
use spmlab::sweep::{cache_sweep, spm_sweep};
use spmlab::MemArchSpec;
use spmlab_alloc::energy::EnergyModel;
use spmlab_alloc::knapsack;
use spmlab_cc::SpmAssignment;
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_isa::mem::{MemoryMap, RegionKind};
use spmlab_sim::{simulate, MachineConfig, SimOptions};
use spmlab_workloads::{inputs, ADPCM, INSERTSORT, MULTISORT};

#[test]
fn paper_shape_on_reduced_adpcm() {
    // The paper's headline shapes, verified on a reduced ADPCM input so
    // the test stays debug-fast: scratchpad WCET falls with capacity and
    // tracks simulation; cache WCET/sim ratio grows.
    let p = Pipeline::with_input(&ADPCM, inputs::speech_like(64, 5)).unwrap();
    let sizes = [64u32, 512, 4096];
    let spm = spm_sweep(&p, &sizes).unwrap();
    let cache = cache_sweep(&p, &sizes).unwrap();

    assert!(
        spm.last().unwrap().result.wcet_cycles <= spm[0].result.wcet_cycles,
        "spm wcet falls with capacity"
    );
    let spm_ratios: Vec<f64> = spm.iter().map(|x| x.result.ratio()).collect();
    let spread = spm_ratios.iter().cloned().fold(f64::MIN, f64::max)
        / spm_ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.25, "spm ratio near-constant, spread {spread}");

    let cache_ratios: Vec<f64> = cache.iter().map(|x| x.result.ratio()).collect();
    assert!(
        cache_ratios.last().unwrap() > &cache_ratios[0],
        "cache ratio grows with size: {cache_ratios:?}"
    );
    // Scratchpad dominates the cache on the WCET metric at equal capacity.
    for (s, c) in spm.iter().zip(&cache) {
        assert!(
            s.result.wcet_cycles <= c.result.wcet_cycles,
            "at {} bytes",
            s.size
        );
    }
}

#[test]
fn knapsack_allocation_is_input_independent() {
    // The allocation is decided at "compile time" from the profile; two
    // different inputs must produce identical layouts (the paper's whole
    // predictability argument rests on this).
    let module = MULTISORT.compile().unwrap();
    let energy = EnergyModel::default();
    let profile_a = {
        let l = MULTISORT
            .link_with_input(
                &module,
                &MemoryMap::no_spm(),
                &SpmAssignment::none(),
                &inputs::random_ints(64, 1, -100, 100),
            )
            .unwrap();
        simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default())
            .unwrap()
            .profile
    };
    let alloc = knapsack::allocate(&module, &profile_a, 1024, &energy);
    // Rerun with a different input through the chosen layout: same layout,
    // correct results.
    for seed in [2u64, 3, 4] {
        let input = inputs::random_ints(64, seed, -100, 100);
        let l = MULTISORT
            .link_with_input(
                &module,
                &MemoryMap::with_spm(1024),
                &alloc.assignment,
                &input,
            )
            .unwrap();
        let r = simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();
        let expected = MULTISORT.reference_checksum(&input);
        assert_eq!(
            r.read_global(&l.exe, "checksum"),
            Some(expected),
            "seed {seed}"
        );
    }
}

#[test]
fn spm_objects_actually_live_in_the_scratchpad() {
    let p = Pipeline::with_input(&INSERTSORT, inputs::random_ints(16, 7, -50, 50)).unwrap();
    let r = p.run(&MemArchSpec::spm(512)).unwrap();
    assert!(!r.spm_objects.is_empty());
    // Relink with the same assignment and check the symbol addresses.
    let module = INSERTSORT.compile().unwrap();
    let assignment = SpmAssignment::of(r.spm_objects.iter().map(String::as_str));
    let map = MemoryMap::with_spm(512);
    let l = INSERTSORT
        .link_with_input(
            &module,
            &map,
            &assignment,
            &inputs::random_ints(16, 7, -50, 50),
        )
        .unwrap();
    for name in &r.spm_objects {
        let sym = l.exe.symbol(name).unwrap();
        assert_eq!(
            map.region_of(sym.addr),
            RegionKind::Scratchpad,
            "{name} must be placed in the scratchpad"
        );
    }
}

#[test]
fn energy_decreases_with_scratchpad() {
    let p = Pipeline::with_input(&ADPCM, inputs::speech_like(64, 9)).unwrap();
    let base = p.run(&MemArchSpec::uncached()).unwrap();
    let spm = p.run(&MemArchSpec::spm(2048)).unwrap();
    assert!(
        spm.energy_nj < base.energy_nj,
        "scratchpad saves energy: {} vs {}",
        spm.energy_nj,
        base.energy_nj
    );
}

#[test]
fn checksum_validation_catches_wrong_reference() {
    // Pipeline::with_input cross-checks the simulated checksum against the
    // host twin; a bogus input that the reference handles differently from
    // the patched global (out-of-range shorts would truncate) must not
    // sneak through silently — here we just confirm the happy path accepts
    // and produces consistent results for in-range inputs.
    let input = inputs::speech_like(32, 77);
    let p = Pipeline::with_input(&ADPCM, input).unwrap();
    let a = p.run(&MemArchSpec::uncached()).unwrap();
    let b = p.run(&MemArchSpec::spm(256)).unwrap();
    let c = p
        .run(&MemArchSpec::single_cache(CacheConfig::unified(256)))
        .unwrap();
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.checksum, c.checksum);
}

#[test]
fn annotation_file_roundtrip_through_analysis() {
    // Dump the auto-generated annotations to the aiT-style text format,
    // parse them back, and confirm the analysis result is identical.
    let input = inputs::random_ints(16, 3, -50, 50);
    let module = INSERTSORT.compile().unwrap();
    let l = INSERTSORT
        .link_with_input(
            &module,
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
            &input,
        )
        .unwrap();
    let direct = spmlab_wcet::analyze(
        &l.exe,
        &spmlab_wcet::WcetConfig::region_timing(),
        &l.annotations,
    )
    .unwrap();
    let text = spmlab_wcet::annotfile::render(&l.annotations);
    let parsed = spmlab_wcet::annotfile::parse(&text, &l.exe).unwrap();
    let via_file =
        spmlab_wcet::analyze(&l.exe, &spmlab_wcet::WcetConfig::region_timing(), &parsed).unwrap();
    assert_eq!(direct.wcet_cycles, via_file.wcet_cycles);
}

#[test]
fn flow_facts_tighten_but_never_break_soundness() {
    // Removing the __looptotal flow facts must loosen (or keep) the bound;
    // both must stay above the simulation.
    let input = inputs::descending(32);
    let module = INSERTSORT.compile().unwrap();
    let l = INSERTSORT
        .link_with_input(
            &module,
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
            &input,
        )
        .unwrap();
    let sim = simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();

    let with_facts = spmlab_wcet::analyze(
        &l.exe,
        &spmlab_wcet::WcetConfig::region_timing(),
        &l.annotations,
    )
    .unwrap();
    // Strip flow facts by re-rendering without `flow` lines.
    let text: String = spmlab_wcet::annotfile::render(&l.annotations)
        .lines()
        .filter(|line| !line.starts_with("flow"))
        .collect::<Vec<_>>()
        .join("\n");
    let stripped = spmlab_wcet::annotfile::parse(&text, &l.exe).unwrap();
    let without_facts =
        spmlab_wcet::analyze(&l.exe, &spmlab_wcet::WcetConfig::region_timing(), &stripped).unwrap();

    assert!(with_facts.wcet_cycles <= without_facts.wcet_cycles);
    assert!(with_facts.wcet_cycles >= sim.cycles);
    assert!(
        without_facts.wcet_cycles > with_facts.wcet_cycles,
        "triangular bound should be visibly tighter with flow facts"
    );
}
