//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace ships this small replacement. It implements the subset of the
//! criterion API the benches use — `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop:
//! warm-up, then `sample_size` timed samples, reporting the median
//! per-iteration time on stdout. Good enough to track relative perf and to
//! keep `cargo bench` runnable offline; swap in real criterion by changing
//! the `[workspace.dependencies]` entry.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: estimate the per-call cost, then size samples so each
        // takes roughly 10 ms (capped to keep totals reasonable).
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) && calls < 1_000_000 {
            black_box(f());
            calls += 1;
        }
        let per_call = warm_start
            .elapsed()
            .checked_div(calls.max(1) as u32)
            .unwrap_or_default();
        self.iters_per_sample = if per_call.is_zero() {
            1000
        } else {
            (Duration::from_millis(10).as_nanos() / per_call.as_nanos().max(1)).clamp(1, 100_000)
                as u64
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn render(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_bench(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let lo = b.samples.first().copied().unwrap_or_default();
    let hi = b.samples.last().copied().unwrap_or_default();
    let tp = match throughput {
        Some(Throughput::Bytes(n)) if !median.is_zero() => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if !median.is_zero() => {
            format!("  {:.1} Kelem/s", n as f64 / median.as_secs_f64() / 1e3)
        }
        _ => String::new(),
    };
    println!(
        "{id:<48} [{} {} {}]{tp}",
        render(lo),
        render(median),
        render(hi)
    );
}

/// The benchmark manager (criterion's top-level type).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_bench(id, self.sample_size, None, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of bench functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
