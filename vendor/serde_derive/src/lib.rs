//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` backing the
//! vendored serde stand-in (see `vendor/serde`). The derives accept the
//! usual `#[serde(...)]` helper attribute and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
