//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}

/// `vec(element, size)`: a vector strategy with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
