//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values for property tests.
///
/// `pick` returns `None` when the drawn value was rejected (by a filter);
/// the harness then retries the whole case with fresh randomness.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`.
    fn prop_filter<F>(self, _reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter { inner: self, pred }
    }

    /// Maps values through `f`, rejecting those mapped to `None`.
    fn prop_filter_map<U, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U> + Clone,
    {
        FilterMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves and `f` wraps an
    /// inner strategy into one more level, up to `depth` levels.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![(1, leaf.clone()), (2, f(cur).boxed())]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.pick(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.pick(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U> + Clone,
{
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.pick(rng).and_then(&self.f)
    }
}

trait ObjStrategy<T> {
    fn pick_obj(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> ObjStrategy<S::Value> for S {
    fn pick_obj(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.pick(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn ObjStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> Option<T> {
        self.0.pick_obj(rng)
    }
}

/// Weighted union over strategies of a common value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> Option<T> {
        let mut x = rng.below(self.total);
        for (w, s) in &self.arms {
            if x < *w as u64 {
                return s.pick(rng);
            }
            x -= *w as u64;
        }
        self.arms.last()?.1.pick(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> Option<$t> {
                debug_assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + rng.below_u128(span) as i128) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                debug_assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                Some((lo + rng.below_u128(span) as i128) as $t)
            }
        }
    )+};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.pick(rng)?,)+))
            }
        }
    )+};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
