//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `A`.
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Any<A> {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn pick(&self, rng: &mut TestRng) -> Option<A> {
        Some(A::arbitrary(rng))
    }
}

/// The full-range strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
