//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy drawing uniformly from a fixed slice.
#[derive(Debug, Clone)]
pub struct Select<T: 'static> {
    options: &'static [T],
}

impl<T: Clone + 'static> Strategy for Select<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> Option<T> {
        if self.options.is_empty() {
            return None;
        }
        Some(self.options[rng.below(self.options.len() as u64) as usize].clone())
    }
}

/// Uniformly selects one of `options`.
pub fn select<T: Clone + 'static>(options: &'static [T]) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}
