//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace ships this small replacement implementing exactly the API
//! surface the workspace's property tests use: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_filter_map` /
//! `prop_recursive` / `boxed`, integer-range / tuple / `Just` / `any` /
//! `select` / `collection::vec` strategies, weighted `prop_oneof!`,
//! `prop_compose!`, and the `proptest!` test macro with
//! `ProptestConfig`-style case counts.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its seed; re-run with
//!   `PROPTEST_SEED=<seed>` to reproduce deterministically.
//! * **Deterministic by default.** The RNG seed is derived from the test
//!   name (override with `PROPTEST_SEED`), so CI runs are reproducible.
//! * `PROPTEST_CASES` overrides the configured case count globally.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// Mirror of the `prop` module re-exported by proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// `proptest!` test harness macro: runs each `#[test]` body over `cases`
/// randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])* fn $name:ident($($var:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            // `$meta` passes the caller's attributes through verbatim —
            // including the mandatory `#[test]` and any doc comments.
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ($($strat,)+);
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __seed = __rng.seed();
                let __cases = __config.effective_cases();
                let mut __case = 0u32;
                let mut __rejects = 0u32;
                while __case < __cases {
                    let ($($var,)+) =
                        match $crate::strategy::Strategy::pick(&__strategies, &mut __rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                __rejects += 1;
                                ::core::assert!(
                                    __rejects < __cases.saturating_mul(64).max(65536),
                                    "proptest `{}`: too many rejected inputs",
                                    stringify!($name)
                                );
                                continue;
                            }
                        };
                    __case += 1;
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        ::core::panic!(
                            "proptest `{}` failed at case {}/{} (PROPTEST_SEED={}): {}",
                            stringify!($name), __case, __cases, __seed, e
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted or unweighted union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// `prop_compose!`: defines a function returning a strategy built from
/// named sub-strategies.
#[macro_export]
macro_rules! prop_compose {
    (fn $name:ident()($($var:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($strat,)+), move |($($var,)+)| $body)
        }
    };
}

/// Assertion returning `Err(TestCaseError)` instead of panicking, so the
/// harness can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}
