//! Test-runner types: configuration, RNG, and the case-failure error.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; this stand-in never forks.
    pub fork: bool,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) => n,
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            fork: false,
        }
    }
}

/// Failure of a single test case (returned by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for proptest compatibility.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic xorshift64* RNG seeded from the test name (or
/// `PROPTEST_SEED`), so failures are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    seed: u64,
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(s) => s,
            None => {
                // FNV-1a over the test name, mixed with a fixed constant.
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h ^ 0x9e37_79b9_7f4a_7c15
            }
        };
        TestRng {
            seed,
            state: seed | 1,
        }
    }

    /// The seed this RNG started from (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)` (`n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform value in `[0, n)` for spans wider than 64 bits.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n.max(1)
    }
}
