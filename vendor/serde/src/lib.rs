//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace ships this tiny replacement. It provides exactly what the
//! workspace uses: the `Serialize` / `Deserialize` marker traits and their
//! derive macros (which expand to nothing — no code in this repository
//! performs actual serialization yet). Swapping in the real `serde` later
//! only requires changing the `[workspace.dependencies]` entry.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
