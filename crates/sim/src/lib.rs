//! # spmlab-sim — cycle-counting TH16 instruction-set simulator
//!
//! The stand-in for ARMulator in the paper's workflow: it executes linked
//! TH16 images with a cycle model that charges
//!
//! * 1 base cycle per instruction (+2 for taken branches, +3 for `MUL`,
//!   +11 for `SDIV`/`UDIV`),
//! * instruction-fetch and data-access cycles according to the paper's
//!   Table 1 (scratchpad 1 cycle, main memory 2 cycles for 8/16-bit and
//!   4 cycles for 32-bit accesses),
//! * optionally a unified or instruction-only cache (direct-mapped or
//!   set-associative; LRU, round-robin or random replacement) with 1-cycle
//!   hits and 17-cycle misses (4 × 4-cycle line-fill reads + 1 delivery),
//!   each level write-through/no-write-allocate (the paper's machine) or
//!   write-back/write-allocate with dirty-victim write-backs, plus an
//!   optional store buffer in front of main memory (see
//!   [`spmlab_isa::cachecfg::WritePolicy`] and the README's "Write
//!   policies and store buffers" section).
//!
//! Beyond cycles it produces everything the rest of the toolchain needs:
//! per-symbol access profiles (the allocator's benefit function), raw
//! per-region access counts (the energy model), and per-instruction
//! hit/miss statistics (used to *test* the WCET cache analysis for
//! soundness).
//!
//! ```
//! use spmlab_cc::{compile, link, SpmAssignment};
//! use spmlab_isa::mem::MemoryMap;
//! use spmlab_sim::{simulate, MachineConfig, SimOptions};
//!
//! let m = compile("int x; void main() { x = 41 + 1; }")?;
//! let l = link(&m, &MemoryMap::no_spm(), &SpmAssignment::none())?;
//! let res = simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default())?;
//! assert_eq!(res.read_global(&l.exe, "x"), Some(42));
//! assert!(res.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod cpu;
pub mod hierarchy;
pub mod machine;
pub mod memsys;
pub mod profile;
pub mod trace;

pub use cache::{AccessResult, CacheConfig, CacheScope, Replacement, WritePolicy};
pub use hierarchy::{HierarchyCaches, ReadOutcome};
pub use machine::{simulate, ExitReason, SimOptions, SimResult};
pub use memsys::{AccessKind, MemStats};
pub use profile::{InsnStat, Profile, SymbolProfile};
pub use spmlab_isa::hierarchy::{MainMemoryTiming, MemHierarchyConfig};
pub use trace::{simulate_with_trace, MemTrace, TraceError};

/// Machine configuration: the memory map comes from the executable; this
/// selects what sits between the core and main memory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineConfig {
    /// Single cache between the core and main memory, if any (the original
    /// one-level configuration). Scratchpad and MMIO accesses always
    /// bypass it. Ignored when `hierarchy` is set.
    pub cache: Option<CacheConfig>,
    /// Full multi-level memory system (L1 I/D, unified L2, parametric main
    /// memory). Takes precedence over `cache` when set.
    pub hierarchy: Option<MemHierarchyConfig>,
}

impl MachineConfig {
    /// No cache: pure Table-1 region timing (the scratchpad branch of the
    /// paper, for any scratchpad size including zero).
    pub fn uncached() -> MachineConfig {
        MachineConfig::default()
    }

    /// With a unified direct-mapped cache of `size` bytes (the paper's
    /// cache branch).
    pub fn with_unified_cache(size: u32) -> MachineConfig {
        MachineConfig {
            cache: Some(CacheConfig::unified(size)),
            hierarchy: None,
        }
    }

    /// With a single cache of arbitrary geometry.
    pub fn with_cache(cache: CacheConfig) -> MachineConfig {
        MachineConfig {
            cache: Some(cache),
            hierarchy: None,
        }
    }

    /// With a full multi-level hierarchy.
    pub fn with_hierarchy(hierarchy: MemHierarchyConfig) -> MachineConfig {
        MachineConfig {
            cache: None,
            hierarchy: Some(hierarchy),
        }
    }

    /// The memory-system configuration the simulator actually runs:
    /// `hierarchy` if set, otherwise the single `cache` (or nothing) as a
    /// degenerate hierarchy with identical timing.
    pub fn effective_hierarchy(&self) -> MemHierarchyConfig {
        match &self.hierarchy {
            Some(h) => h.clone(),
            None => MemHierarchyConfig::from_single_cache(self.cache.clone()),
        }
    }
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Access to an unmapped address, or a misaligned access.
    Fault {
        pc: u32,
        addr: u32,
        what: &'static str,
    },
    /// An undefined instruction was executed.
    UndefinedInsn { pc: u32, raw: u16 },
    /// The watchdog cycle limit expired (runaway program).
    Watchdog { cycles: u64 },
    /// A trace replay observed a recorded MMIO cycle-register value that
    /// differs under the target hierarchy's timing — the trace is valid,
    /// just not for this machine; callers fall back to full simulation
    /// (see [`MemTrace`]).
    ReplayDivergence { recorded: u32, replayed: u32 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Fault { pc, addr, what } => {
                write!(f, "memory fault at pc={pc:#x}: {what} access to {addr:#x}")
            }
            SimError::UndefinedInsn { pc, raw } => {
                write!(f, "undefined instruction {raw:#06x} at pc={pc:#x}")
            }
            SimError::Watchdog { cycles } => write!(f, "watchdog expired after {cycles} cycles"),
            SimError::ReplayDivergence { recorded, replayed } => write!(
                f,
                "trace replay diverged: cycle register recorded {recorded}, replayed {replayed}"
            ),
        }
    }
}

impl std::error::Error for SimError {}
