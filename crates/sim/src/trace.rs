//! Trace-driven memory-hierarchy replay.
//!
//! A hierarchy sweep simulates the *same program on the same input* once
//! per memory configuration — but the executed instruction stream and
//! every data value are identical across configurations, because caches
//! only change *timing*. The one architectural exception is the MMIO
//! cycle register, whose value depends on timing; v2 traces record the
//! observed values and validate them during replay instead of refusing
//! outright.
//!
//! [`simulate_with_trace`] therefore runs the full interpreter once (on
//! the uncached machine) and records an **ordered event stream**: every
//! main-memory read, fetch *and write* (address, width) in program
//! order, each annotated with the hierarchy-independent cycles that
//! elapsed since the previous event and with the position of the
//! per-instruction `now` latch the store-buffer model samples.
//! [`MemTrace::replay`] then prices the recorded sequence under any
//! [`MemHierarchyConfig`] by driving the *same* concrete tag stores
//! ([`HierarchyCaches`]) the interpreter would have used — dirty bits,
//! eviction write-backs, write-allocate installs and store-buffer drain
//! timing included — making the replayed cycle count and statistics
//! bit-identical to a fresh simulation while skipping instruction decode
//! and execution entirely. An eight-point sweep costs one interpretation
//! plus eight cheap replays instead of eight interpretations.
//!
//! ## Versioning
//!
//! * **v1** (count-based, the original format): read/fetch events plus
//!   per-width write *counts*. Valid only for machines whose timing does
//!   not depend on the write policy — write-through stores never touch a
//!   tag store and cost only their width's main access time. Still
//!   produced by [`MemTrace::from_bytes`] for v1 byte streams and used
//!   as the internal fast path for write-through hierarchies.
//! * **v2** (ordered events, this revision): write events interleaved in
//!   program order with inter-event cycle deltas and `now`-latch
//!   positions, so write-back levels and store buffers replay exactly.
//!   MMIO cycle-register reads carry their recorded value; replay
//!   re-derives the register value under the target hierarchy and
//!   returns [`SimError::ReplayDivergence`] when they differ (callers
//!   fall back to full simulation — the same validity-check pattern as
//!   [`MemTrace::supports`]).

use crate::hierarchy::HierarchyCaches;
use crate::machine::{SimOptions, SimResult};
use crate::memsys::{AccessKind, MemStats};
use crate::{MachineConfig, SimError};
use spmlab_isa::hierarchy::{MainMemoryTiming, MemHierarchyConfig};
use spmlab_isa::image::Executable;
use spmlab_isa::mem::AccessWidth;

/// Event kinds, packed into one byte per event alongside the width.
pub(crate) const EV_FETCH: u8 = 0;
pub(crate) const EV_READ_BYTE: u8 = 1;
pub(crate) const EV_READ_HALF: u8 = 2;
pub(crate) const EV_READ_WORD: u8 = 3;
pub(crate) const EV_WRITE_BYTE: u8 = 4;
pub(crate) const EV_WRITE_HALF: u8 = 5;
pub(crate) const EV_WRITE_WORD: u8 = 6;
/// MMIO cycle-register read; `addr` holds the recorded register value.
pub(crate) const EV_CYCLE_READ: u8 = 7;

const EV_KIND_MAX: u8 = EV_CYCLE_READ;

/// One ordered trace event: a main-memory read, fetch or write — the
/// accesses whose cost depends on the hierarchy — or an MMIO
/// cycle-register read (whose *value* depends on the hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Accessed address (for `EV_CYCLE_READ`: the recorded value).
    pub addr: u32,
    /// `EV_FETCH` … `EV_CYCLE_READ`.
    pub kind: u8,
    /// Whether the per-instruction `now` latch (sampled by the
    /// store-buffer model and the cycle register) fired between the
    /// previous event and this one.
    pub latched: bool,
    /// Hierarchy-independent cycles between the previous event's
    /// completion and the latch (0 when `!latched`).
    pub delta_before: u32,
    /// Hierarchy-independent cycles between the latch (or the previous
    /// event's completion when `!latched`) and this access.
    pub delta_after: u32,
}

/// Trace recorder state, embedded in the memory system during a recording
/// run.
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceRecorder {
    pub events: Vec<AccessEvent>,
    /// Main-memory *read/fetch* counts by width (byte, half, word).
    pub main_reads: [u64; 3],
    /// Main-memory write counts by width.
    pub main_writes: [u64; 3],
    /// MMIO cycle-register reads observed (their values are recorded as
    /// `EV_CYCLE_READ` events).
    pub cycle_reads: u64,
    /// Recording cycles accounted through the end of the last event's
    /// access cost.
    cursor: u64,
    /// Cycle of the most recent un-consumed `now` latch.
    latch_at: Option<u64>,
    /// Cycle count immediately before the access being recorded.
    pre: u64,
    /// An inter-event delta overflowed `u32`: the ordered stream is
    /// unusable and the trace degrades to v1 semantics.
    pub overflow: bool,
}

impl TraceRecorder {
    /// The simulation loop latched `mem.now` (once per instruction).
    #[inline]
    pub(crate) fn latch(&mut self, cycles: u64) {
        self.latch_at = Some(cycles);
    }

    /// The simulation loop is about to perform an access at `cycles`.
    #[inline]
    pub(crate) fn at(&mut self, cycles: u64) {
        self.pre = cycles;
    }

    fn delta(&mut self, cycles: u64) -> u32 {
        u32::try_from(cycles).unwrap_or_else(|_| {
            self.overflow = true;
            u32::MAX
        })
    }

    fn push_event(&mut self, addr: u32, kind: u8, cost: u64) {
        let (latched, before, after) = match self.latch_at.take() {
            // Only the *last* latch before an event matters: `now` is
            // sampled at the event, not at the latch.
            Some(l) if l >= self.cursor && l <= self.pre => (true, l - self.cursor, self.pre - l),
            _ => (false, 0, self.pre.saturating_sub(self.cursor)),
        };
        let (delta_before, delta_after) = (self.delta(before), self.delta(after));
        self.events.push(AccessEvent {
            addr,
            kind,
            latched,
            delta_before,
            delta_after,
        });
        self.cursor = self.pre + cost;
    }

    #[inline]
    pub(crate) fn record_read(
        &mut self,
        addr: u32,
        kind: AccessKind,
        width: AccessWidth,
        cost: u64,
    ) {
        let (ev, w) = match (kind, width) {
            (AccessKind::Fetch, _) => (EV_FETCH, 1),
            (_, AccessWidth::Byte) => (EV_READ_BYTE, 0),
            (_, AccessWidth::Half) => (EV_READ_HALF, 1),
            (_, AccessWidth::Word) => (EV_READ_WORD, 2),
        };
        self.main_reads[w] += 1;
        self.push_event(addr, ev, cost);
    }

    #[inline]
    pub(crate) fn record_write(&mut self, addr: u32, width: AccessWidth, cost: u64) {
        let (ev, w) = match width {
            AccessWidth::Byte => (EV_WRITE_BYTE, 0),
            AccessWidth::Half => (EV_WRITE_HALF, 1),
            AccessWidth::Word => (EV_WRITE_WORD, 2),
        };
        self.main_writes[w] += 1;
        self.push_event(addr, ev, cost);
    }

    #[inline]
    pub(crate) fn record_cycle_read(&mut self, value: u32) {
        self.cycle_reads += 1;
        self.push_event(value, EV_CYCLE_READ, 1);
    }
}

/// Errors decoding a serialized trace ([`MemTrace::from_bytes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The byte stream does not start with the trace magic.
    BadMagic,
    /// The trace was produced by an unknown format version.
    UnsupportedVersion {
        /// The version byte found in the stream.
        found: u8,
    },
    /// The stream ends before the declared content.
    Truncated {
        /// Bytes required to decode the next field.
        need: usize,
        /// Bytes remaining in the stream.
        have: usize,
    },
    /// A structurally invalid field (bad event kind, event count not
    /// matching the payload, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trace: bad magic"),
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found}")
            }
            TraceError::Truncated { need, have } => {
                write!(f, "truncated trace: need {need} bytes, have {have}")
            }
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

const TRACE_MAGIC: &[u8; 8] = b"SPMTRACE";
const EVENT_BYTES: usize = 14;

/// A recorded execution's hierarchy-independent skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemTrace {
    events: Vec<AccessEvent>,
    /// Cycles of the recorded run not attributable to main-memory traffic
    /// (instruction base/extra cycles plus scratchpad/MMIO accesses).
    base_cycles: u64,
    /// Cycles of the recorded run after the last event's completion
    /// (v2 replay adds them verbatim — they are hierarchy-independent).
    tail_cycles: u64,
    /// Main read/fetch counts by width (fetches are halfword reads).
    read_counts: [u64; 3],
    main_writes: [u64; 3],
    /// MMIO cycle-register reads in the stream.
    cycle_reads: u64,
    /// Region/width access counters with every cache counter zeroed — the
    /// hierarchy-independent part of [`MemStats`].
    stats_template: MemStats,
    /// Watchdog limit the recording ran under.
    max_cycles: u64,
    /// Format version: 1 = count-based (reads + write counts), 2 =
    /// ordered event stream (reads, writes, latches, cycle-read values).
    version: u8,
}

impl MemTrace {
    /// Whether the recorded execution may be replayed under other
    /// hierarchies at all. v2 traces always are — timing-dependent MMIO
    /// cycle-register reads carry their recorded values and are validated
    /// during replay. v1 traces are replayable only when the program
    /// never read the cycle register.
    pub fn replayable(&self) -> bool {
        self.version >= 2 || self.cycle_reads == 0
    }

    /// Whether this trace can price `hierarchy` specifically.
    ///
    /// * **v2** traces support every hierarchy: the ordered write events
    ///   drive dirty bits, write-backs, write-allocate installs and
    ///   store-buffer drains exactly. (For timing-dependent programs the
    ///   replay may still return [`SimError::ReplayDivergence`] when a
    ///   recorded cycle-register value differs under the target timing —
    ///   callers fall back to full simulation.)
    /// * **v1** traces carry write *counts* only (no store addresses or
    ///   read/write interleaving), so a machine whose timing depends on
    ///   the write policy (any write-back level, or a store buffer; see
    ///   [`MemHierarchyConfig::write_policy_dependent`]) cannot be
    ///   replayed and must be simulated in full.
    pub fn supports(&self, hierarchy: &MemHierarchyConfig) -> bool {
        if self.version >= 2 {
            return true;
        }
        self.cycle_reads == 0 && !hierarchy.write_policy_dependent()
    }

    /// Number of recorded hierarchy-sensitive access events.
    pub fn events(&self) -> usize {
        self.events.len()
    }

    /// The trace format version (1 = count-based, 2 = ordered events).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// MMIO cycle-register reads recorded in the stream.
    pub fn cycle_reads(&self) -> u64 {
        self.cycle_reads
    }

    /// Prices the recorded execution under `hierarchy`, returning the
    /// total cycles and the memory statistics — bit-identical to running
    /// [`simulate`](crate::machine::simulate) under the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when the replayed cycle count exceeds the
    /// recording's limit; [`SimError::ReplayDivergence`] when a recorded
    /// MMIO cycle-register value differs under the target hierarchy's
    /// timing; [`SimError::Fault`] when the trace does not support
    /// `hierarchy` at all (see [`MemTrace::supports`]); callers should
    /// treat divergence and refusal as "fall back to full simulation",
    /// not as fatal.
    pub fn replay(&self, hierarchy: &MemHierarchyConfig) -> Result<(u64, MemStats), SimError> {
        let _span = spmlab_obs::span("replay");
        if spmlab_obs::enabled() {
            spmlab_obs::counter("replay_events", self.events.len() as u64);
        }
        if !self.supports(hierarchy) {
            return Err(if self.cycle_reads > 0 {
                SimError::Fault {
                    pc: 0,
                    addr: spmlab_isa::mem::MMIO_CYCLES,
                    what: "timing-dependent program cannot be replayed from a v1 trace",
                }
            } else {
                SimError::Fault {
                    pc: 0,
                    addr: 0,
                    what: "write-policy-dependent hierarchy cannot be replayed from a \
                           count-based (v1) trace",
                }
            });
        }
        let cycles_stats = if hierarchy.write_policy_dependent() || self.cycle_reads > 0 {
            self.replay_ordered(hierarchy)?
        } else {
            self.replay_counts(hierarchy)
        };
        if cycles_stats.0 > self.max_cycles {
            return Err(SimError::Watchdog {
                cycles: cycles_stats.0,
            });
        }
        Ok(cycles_stats)
    }

    /// The count-based pricing path, valid for hierarchies whose write
    /// timing is policy-independent: write-through stores never touch a
    /// tag store and cost exactly their width's main access time, so the
    /// write side prices from the per-width counters while reads/fetches
    /// drive the concrete tag stores.
    fn replay_counts(&self, hierarchy: &MemHierarchyConfig) -> (u64, MemStats) {
        let mut stats = self.stats_template.clone();
        let mut cycles = self
            .base_cycles
            .saturating_add(self.write_cycles(&hierarchy.main));
        if hierarchy.l1_for(true).is_some()
            || hierarchy.l1_for(false).is_some()
            || hierarchy.l2.is_some()
        {
            let mut caches = HierarchyCaches::new(hierarchy.clone());
            for ev in &self.events {
                let (kind, width) = match ev.kind {
                    EV_FETCH => (AccessKind::Fetch, AccessWidth::Half),
                    EV_READ_BYTE => (AccessKind::Read, AccessWidth::Byte),
                    EV_READ_HALF => (AccessKind::Read, AccessWidth::Half),
                    EV_READ_WORD => (AccessKind::Read, AccessWidth::Word),
                    // v2 streams interleave write events; their cost is
                    // already priced from the counters above.
                    _ => continue,
                };
                cycles = cycles.saturating_add(caches.read(ev.addr, kind, width, &mut stats).0);
            }
            if hierarchy.l1_for(false).is_some() || hierarchy.l2.is_some() {
                stats.write_throughs = self.main_writes.iter().sum();
            }
        } else {
            // Uncached: every read costs its width's main access time —
            // priced from the counters without touching the event stream.
            let m = &hierarchy.main;
            let widths = [AccessWidth::Byte, AccessWidth::Half, AccessWidth::Word];
            for (w, &width) in widths.iter().enumerate() {
                cycles = cycles.saturating_add(self.read_counts[w].saturating_mul(m.access(width)));
            }
        }
        (cycles, stats)
    }

    /// The ordered replay engine: reconstructs the target machine's cycle
    /// counter event by event — inter-event deltas are
    /// hierarchy-independent by construction (every hierarchy-dependent
    /// cost *is* an event), access costs are recomputed by driving the
    /// target's concrete tag stores and store buffer, and the
    /// per-instruction `now` latch is replayed at its recorded position
    /// so store-buffer arrival times and cycle-register values match a
    /// fresh simulation exactly.
    fn replay_ordered(&self, hierarchy: &MemHierarchyConfig) -> Result<(u64, MemStats), SimError> {
        let mut stats = self.stats_template.clone();
        let mut caches = HierarchyCaches::new(hierarchy.clone());
        let mut cycles = 0u64;
        let mut now = 0u64;
        for ev in &self.events {
            cycles = cycles.saturating_add(ev.delta_before as u64);
            if ev.latched {
                now = cycles;
            }
            cycles = cycles.saturating_add(ev.delta_after as u64);
            let cost = match ev.kind {
                EV_FETCH => {
                    caches
                        .read(ev.addr, AccessKind::Fetch, AccessWidth::Half, &mut stats)
                        .0
                }
                EV_READ_BYTE => {
                    caches
                        .read(ev.addr, AccessKind::Read, AccessWidth::Byte, &mut stats)
                        .0
                }
                EV_READ_HALF => {
                    caches
                        .read(ev.addr, AccessKind::Read, AccessWidth::Half, &mut stats)
                        .0
                }
                EV_READ_WORD => {
                    caches
                        .read(ev.addr, AccessKind::Read, AccessWidth::Word, &mut stats)
                        .0
                }
                EV_WRITE_BYTE => caches.write(ev.addr, AccessWidth::Byte, now, &mut stats),
                EV_WRITE_HALF => caches.write(ev.addr, AccessWidth::Half, now, &mut stats),
                EV_WRITE_WORD => caches.write(ev.addr, AccessWidth::Word, now, &mut stats),
                EV_CYCLE_READ => {
                    // The recorded value is only valid if the target
                    // hierarchy reaches this read at the same cycle.
                    if now as u32 != ev.addr {
                        return Err(SimError::ReplayDivergence {
                            recorded: ev.addr,
                            replayed: now as u32,
                        });
                    }
                    1
                }
                _ => {
                    return Err(SimError::Fault {
                        pc: 0,
                        addr: ev.addr,
                        what: "corrupt trace event kind",
                    })
                }
            };
            cycles = cycles.saturating_add(cost);
        }
        Ok((cycles.saturating_add(self.tail_cycles), stats))
    }

    fn write_cycles(&self, main: &MainMemoryTiming) -> u64 {
        self.main_writes[0]
            .saturating_mul(main.access(AccessWidth::Byte))
            .saturating_add(self.main_writes[1].saturating_mul(main.access(AccessWidth::Half)))
            .saturating_add(self.main_writes[2].saturating_mul(main.access(AccessWidth::Word)))
    }

    /// Serializes the trace (header, counters, statistics template, then
    /// the event stream) into a self-describing little-endian byte
    /// stream. [`MemTrace::from_bytes`] round-trips it exactly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 2 + 28 * 8 + self.events.len() * EVENT_BYTES);
        out.extend_from_slice(TRACE_MAGIC);
        out.push(self.version);
        for v in self.header_words() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for ev in &self.events {
            out.extend_from_slice(&ev.addr.to_le_bytes());
            out.push(ev.kind);
            out.push(ev.latched as u8);
            out.extend_from_slice(&ev.delta_before.to_le_bytes());
            out.extend_from_slice(&ev.delta_after.to_le_bytes());
        }
        out
    }

    fn header_words(&self) -> [u64; 30] {
        let s = &self.stats_template;
        [
            self.max_cycles,
            self.base_cycles,
            self.tail_cycles,
            self.cycle_reads,
            self.read_counts[0],
            self.read_counts[1],
            self.read_counts[2],
            self.main_writes[0],
            self.main_writes[1],
            self.main_writes[2],
            s.spm[0],
            s.spm[1],
            s.spm[2],
            s.main[0],
            s.main[1],
            s.main[2],
            s.mmio,
            s.cache_hits,
            s.cache_misses,
            s.fill_words,
            s.write_throughs,
            s.write_backs,
            s.dirty_evictions,
            s.store_buffer_stalls,
            s.l1i_hits,
            s.l1i_misses,
            s.l1d_hits,
            s.l1d_misses,
            s.l2_hits,
            s.l2_misses,
        ]
    }

    /// Decodes a serialized trace. Fully bounds-checked: arbitrary or
    /// truncated input returns a typed [`TraceError`], never panics, and
    /// never allocates more than the input length implies.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] for non-trace input,
    /// [`TraceError::UnsupportedVersion`] for unknown format versions,
    /// [`TraceError::Truncated`] / [`TraceError::Corrupt`] for streams
    /// that end early or declare impossible contents.
    pub fn from_bytes(bytes: &[u8]) -> Result<MemTrace, TraceError> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], TraceError> {
            let have = bytes.len() - *at;
            if have < n {
                return Err(TraceError::Truncated { need: n, have });
            }
            let s = &bytes[*at..*at + n];
            *at += n;
            Ok(s)
        };
        if take(&mut at, 8)? != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = take(&mut at, 1)?[0];
        if !(1..=2).contains(&version) {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let mut words = [0u64; 30];
        for w in &mut words {
            let b = take(&mut at, 8)?;
            *w = u64::from_le_bytes(b.try_into().expect("8-byte slice"));
        }
        let count = u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8-byte slice"));
        let remaining = bytes.len() - at;
        let payload = (count as usize).checked_mul(EVENT_BYTES);
        if count > usize::MAX as u64 || payload != Some(remaining) {
            return Err(TraceError::Corrupt("event count does not match payload"));
        }
        let mut events = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let b = take(&mut at, EVENT_BYTES)?;
            let kind = b[4];
            if kind > EV_KIND_MAX {
                return Err(TraceError::Corrupt("unknown event kind"));
            }
            if version < 2 && kind > EV_READ_WORD {
                return Err(TraceError::Corrupt("write event in a v1 trace"));
            }
            if b[5] > 1 {
                return Err(TraceError::Corrupt("latch flag out of range"));
            }
            events.push(AccessEvent {
                addr: u32::from_le_bytes(b[0..4].try_into().expect("4-byte slice")),
                kind,
                latched: b[5] == 1,
                delta_before: u32::from_le_bytes(b[6..10].try_into().expect("4-byte slice")),
                delta_after: u32::from_le_bytes(b[10..14].try_into().expect("4-byte slice")),
            });
        }
        let stats_template = MemStats {
            spm: [words[10], words[11], words[12]],
            main: [words[13], words[14], words[15]],
            mmio: words[16],
            cache_hits: words[17],
            cache_misses: words[18],
            fill_words: words[19],
            write_throughs: words[20],
            write_backs: words[21],
            dirty_evictions: words[22],
            store_buffer_stalls: words[23],
            l1i_hits: words[24],
            l1i_misses: words[25],
            l1d_hits: words[26],
            l1d_misses: words[27],
            l2_hits: words[28],
            l2_misses: words[29],
        };
        Ok(MemTrace {
            events,
            base_cycles: words[1],
            tail_cycles: words[2],
            cycle_reads: words[3],
            read_counts: [words[4], words[5], words[6]],
            main_writes: [words[7], words[8], words[9]],
            stats_template,
            max_cycles: words[0],
            version,
        })
    }
}

/// Runs `exe` on the **uncached** machine (the recording reference),
/// returning the full simulation result plus the recorded trace.
///
/// # Errors
///
/// Any [`SimError`] of the underlying run.
pub fn simulate_with_trace(
    exe: &Executable,
    options: &SimOptions,
) -> Result<(SimResult, MemTrace), SimError> {
    let (result, recorder) = crate::machine::simulate_recorded(exe, options)?;
    let table1 = MainMemoryTiming::table1();
    let widths = [AccessWidth::Byte, AccessWidth::Half, AccessWidth::Word];
    let mut main_cost = 0u64;
    for (w, &width) in widths.iter().enumerate() {
        main_cost += (recorder.main_reads[w] + recorder.main_writes[w]) * table1.access(width);
    }
    // A delta that overflowed u32 makes the ordered stream unusable; the
    // trace degrades to the count-based v1 semantics (practically
    // unreachable: it needs > 2^32 cycles between two main accesses).
    let version = if recorder.overflow { 1 } else { 2 };
    let trace = MemTrace {
        base_cycles: result.cycles - main_cost,
        tail_cycles: result.cycles.saturating_sub(recorder.cursor),
        read_counts: recorder.main_reads,
        main_writes: recorder.main_writes,
        cycle_reads: recorder.cycle_reads,
        // The recording machine is uncached, so its statistics hold no
        // cache counters — they are exactly the invariant template.
        stats_template: result.mem_stats.clone(),
        max_cycles: options.max_cycles,
        version,
        events: recorder.events,
    };
    Ok((result, trace))
}

/// The uncached recording reference as a [`MachineConfig`].
pub fn recording_config() -> MachineConfig {
    MachineConfig::uncached()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{simulate, SimOptions};
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::cachecfg::CacheConfig;
    use spmlab_isa::hierarchy::StoreBuffer;
    use spmlab_isa::mem::MemoryMap;

    const SRC: &str = "
        int a[40]; int checksum;
        void main() {
            int i;
            for (i = 0; i < 40; i = i + 1) { __loopbound(40); a[i] = i * 3; }
            for (i = 0; i < 40; i = i + 1) { __loopbound(40); checksum = checksum + a[i]; }
        }
    ";

    fn hierarchies() -> Vec<MemHierarchyConfig> {
        vec![
            MemHierarchyConfig::uncached(),
            MemHierarchyConfig::uncached_with(MainMemoryTiming::dram(10)),
            MemHierarchyConfig::l1_only(CacheConfig::unified(256)),
            MemHierarchyConfig::l1_only(CacheConfig::instr_only(512)),
            MemHierarchyConfig::split_l1(256, 256),
            MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048)),
            MemHierarchyConfig::l1_only(CacheConfig::instr_only(256))
                .with_l2(CacheConfig::l2(1024)),
            MemHierarchyConfig::split_l1(256, 256)
                .with_l2(CacheConfig::l2(2048))
                .with_main(MainMemoryTiming::dram(8)),
        ]
    }

    /// Write-policy-dependent shapes: write-back levels, store buffers,
    /// and mixed WT-over-WB stacks — replayable from v2 traces only.
    fn write_policy_dependent_hierarchies() -> Vec<MemHierarchyConfig> {
        vec![
            MemHierarchyConfig::l1_only(CacheConfig::unified(256).write_back()),
            MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048).write_back()),
            MemHierarchyConfig::l1_only(CacheConfig::unified(128).write_back())
                .with_l2(CacheConfig::l2(1024).write_back()),
            MemHierarchyConfig::uncached_with(
                MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(4, 6)),
            ),
            MemHierarchyConfig::l1_only(CacheConfig::unified(256))
                .with_main(MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(2, 8))),
            MemHierarchyConfig::split_l1(128, 128)
                .with_l2(CacheConfig::l2(1024).write_back())
                .with_main(MainMemoryTiming::dram(8)),
        ]
    }

    /// The headline invariant of the replay: bit-identical cycles and
    /// memory statistics versus a fresh simulation, for every hierarchy
    /// shape.
    #[test]
    fn replay_matches_full_simulation_exactly() {
        let l = link(
            &compile(SRC).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let options = SimOptions {
            insn_stats: false,
            profile: false,
            ..SimOptions::default()
        };
        let (recorded, trace) = simulate_with_trace(&l.exe, &options).unwrap();
        assert!(trace.replayable());
        assert_eq!(trace.version(), 2);
        assert!(trace.events() > 0);
        for h in hierarchies() {
            let (cycles, stats) = trace.replay(&h).unwrap();
            let fresh =
                simulate(&l.exe, &MachineConfig::with_hierarchy(h.clone()), &options).unwrap();
            assert_eq!(cycles, fresh.cycles, "{}: cycles diverged", h.label());
            assert_eq!(stats, fresh.mem_stats, "{}: stats diverged", h.label());
        }
        // The recording itself is the uncached result.
        let uncached = simulate(&l.exe, &MachineConfig::uncached(), &options).unwrap();
        assert_eq!(recorded.cycles, uncached.cycles);
    }

    /// The new invariant: the ordered v2 stream replays write-back and
    /// store-buffered machines bit-identically, including every
    /// write-policy statistic.
    #[test]
    fn replay_matches_write_policy_dependent_machines_exactly() {
        let l = link(
            &compile(SRC).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let options = SimOptions {
            insn_stats: false,
            profile: false,
            ..SimOptions::default()
        };
        let (_, trace) = simulate_with_trace(&l.exe, &options).unwrap();
        for h in write_policy_dependent_hierarchies() {
            assert!(trace.supports(&h), "{}: v2 must support", h.label());
            let (cycles, stats) = trace.replay(&h).unwrap();
            let fresh =
                simulate(&l.exe, &MachineConfig::with_hierarchy(h.clone()), &options).unwrap();
            assert_eq!(cycles, fresh.cycles, "{}: cycles diverged", h.label());
            assert_eq!(stats, fresh.mem_stats, "{}: stats diverged", h.label());
        }
    }

    /// v1 traces (decoded from v1 bytes) still refuse write-policy-
    /// dependent machines: `supports` says so and `replay` returns a
    /// typed refusal — the sweep falls back to full simulation.
    #[test]
    fn v1_traces_refuse_write_policy_dependent_hierarchies() {
        let l = link(
            &compile(SRC).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let (_, trace) = simulate_with_trace(&l.exe, &SimOptions::default()).unwrap();
        // Round-trip through bytes, stamping the stream down to v1 (drop
        // the write events a v1 recorder would never have produced).
        let mut v1 = trace.clone();
        v1.version = 1;
        v1.events.retain(|e| e.kind <= EV_READ_WORD);
        let v1 = MemTrace::from_bytes(&v1.to_bytes()).unwrap();
        assert_eq!(v1.version(), 1);
        assert!(v1.replayable());
        let wb = MemHierarchyConfig::l1_only(CacheConfig::unified(256).write_back());
        assert!(!v1.supports(&wb));
        assert!(v1.replay(&wb).is_err());
        let sb = MemHierarchyConfig::uncached_with(
            MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(4, 6)),
        );
        assert!(!v1.supports(&sb));
        assert!(v1.replay(&sb).is_err());
        // Write-through machines replay from v1 exactly as before.
        let wt = MemHierarchyConfig::l1_only(CacheConfig::unified(256));
        assert!(v1.supports(&wt));
        let fresh = simulate(
            &l.exe,
            &MachineConfig::with_hierarchy(wt.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        let (cycles, stats) = v1.replay(&wt).unwrap();
        assert_eq!(cycles, fresh.cycles);
        assert_eq!(stats, fresh.mem_stats);
    }

    /// Reading the MMIO cycle register no longer poisons the trace: the
    /// recorded values replay under hierarchies that reproduce the same
    /// timing, and divergence is a typed error elsewhere.
    #[test]
    fn cycle_register_reads_replay_recorded_values() {
        let src = "
            int t;
            void main() { t = __cycles(); }
        ";
        let Ok(module) = compile(src) else {
            return; // No __cycles intrinsic in this toolchain: nothing to test.
        };
        let l = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let (recorded, trace) = simulate_with_trace(&l.exe, &SimOptions::default()).unwrap();
        assert!(trace.replayable());
        assert!(trace.cycle_reads() > 0);
        // Same timing as the recording machine: values match, replay
        // succeeds bit-identically.
        let (cycles, _) = trace.replay(&MemHierarchyConfig::uncached()).unwrap();
        assert_eq!(cycles, recorded.cycles);
        // Different timing: the recorded value is stale — typed
        // divergence, so sweeps can fall back to full simulation.
        let slow = MemHierarchyConfig::uncached_with(MainMemoryTiming::dram(10));
        assert!(trace.supports(&slow), "v2 supports; validity is dynamic");
        assert!(matches!(
            trace.replay(&slow),
            Err(SimError::ReplayDivergence { .. })
        ));
    }

    /// Byte-stream round trip: cycles, stats, events and metadata are
    /// preserved exactly.
    #[test]
    fn trace_bytes_round_trip() {
        let l = link(
            &compile(SRC).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let (_, trace) = simulate_with_trace(&l.exe, &SimOptions::default()).unwrap();
        let decoded = MemTrace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded.version(), trace.version());
        assert_eq!(decoded.events, trace.events);
        assert_eq!(decoded.stats_template, trace.stats_template);
        for h in hierarchies()
            .into_iter()
            .chain(write_policy_dependent_hierarchies())
        {
            assert_eq!(
                decoded.replay(&h).unwrap(),
                trace.replay(&h).unwrap(),
                "{}: decoded trace diverged",
                h.label()
            );
        }
    }

    /// Decoding errors are typed, never panics.
    #[test]
    fn from_bytes_rejects_malformed_input() {
        assert_eq!(MemTrace::from_bytes(b"nonsense"), Err(TraceError::BadMagic));
        assert!(matches!(
            MemTrace::from_bytes(b"SPM"),
            Err(TraceError::Truncated { .. })
        ));
        let mut versioned = TRACE_MAGIC.to_vec();
        versioned.push(9);
        assert_eq!(
            MemTrace::from_bytes(&versioned),
            Err(TraceError::UnsupportedVersion { found: 9 })
        );
    }
}
