//! Trace-driven memory-hierarchy replay.
//!
//! A hierarchy sweep simulates the *same program on the same input* once
//! per memory configuration — but the executed instruction stream and
//! every data value are identical across configurations, because caches
//! only change *timing*. The one architectural exception is the MMIO
//! cycle register, whose value depends on timing; reading it makes a run
//! timing-dependent and is detected during recording.
//!
//! [`simulate_with_trace`] therefore runs the full interpreter once (on
//! the uncached machine) and records the sequence of main-memory reads
//! and fetches — the only accesses whose cost depends on the cache
//! hierarchy. [`MemTrace::replay`] then prices the recorded sequence
//! under any [`MemHierarchyConfig`] by driving the *same* concrete tag
//! stores ([`HierarchyCaches`]) the interpreter would have used, making
//! the replayed cycle count bit-identical to a fresh simulation while
//! skipping instruction decode and execution entirely. An eight-point
//! sweep costs one interpretation plus eight cheap replays instead of
//! eight interpretations.

use crate::hierarchy::HierarchyCaches;
use crate::machine::{SimOptions, SimResult};
use crate::memsys::{AccessKind, MemStats};
use crate::{MachineConfig, SimError};
use spmlab_isa::hierarchy::{MainMemoryTiming, MemHierarchyConfig};
use spmlab_isa::image::Executable;
use spmlab_isa::mem::AccessWidth;

/// Event kinds, packed into one byte per event alongside the width.
pub(crate) const EV_FETCH: u8 = 0;
pub(crate) const EV_READ_BYTE: u8 = 1;
pub(crate) const EV_READ_HALF: u8 = 2;
pub(crate) const EV_READ_WORD: u8 = 3;

/// One main-memory read or fetch (the only accesses whose cost depends on
/// the cache hierarchy).
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// Accessed address.
    pub addr: u32,
    /// `EV_FETCH` / `EV_READ_BYTE` / `EV_READ_HALF` / `EV_READ_WORD`.
    pub kind: u8,
}

/// Trace recorder state, embedded in the memory system during a recording
/// run.
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceRecorder {
    pub events: Vec<AccessEvent>,
    /// Main-memory *read/fetch* counts by width (byte, half, word).
    pub main_reads: [u64; 3],
    /// Main-memory write counts by width.
    pub main_writes: [u64; 3],
    /// The program read the MMIO cycle register: its execution is
    /// timing-dependent and the trace must not be replayed.
    pub cycle_register_read: bool,
}

impl TraceRecorder {
    #[inline]
    pub(crate) fn record_read(&mut self, addr: u32, kind: AccessKind, width: AccessWidth) {
        let (ev, w) = match (kind, width) {
            (AccessKind::Fetch, _) => (EV_FETCH, 1),
            (_, AccessWidth::Byte) => (EV_READ_BYTE, 0),
            (_, AccessWidth::Half) => (EV_READ_HALF, 1),
            (_, AccessWidth::Word) => (EV_READ_WORD, 2),
        };
        self.main_reads[w] += 1;
        self.events.push(AccessEvent { addr, kind: ev });
    }
}

/// A recorded execution's hierarchy-independent skeleton.
#[derive(Debug, Clone)]
pub struct MemTrace {
    events: Vec<AccessEvent>,
    /// Cycles of the recorded run not attributable to main-memory traffic
    /// (instruction base/extra cycles plus scratchpad/MMIO accesses).
    base_cycles: u64,
    /// Main read/fetch counts by width (fetches are halfword reads).
    read_counts: [u64; 3],
    main_writes: [u64; 3],
    /// Region/width access counters with every cache counter zeroed — the
    /// hierarchy-independent part of [`MemStats`].
    stats_template: MemStats,
    /// Watchdog limit the recording ran under.
    max_cycles: u64,
    replayable: bool,
}

impl MemTrace {
    /// Whether the recorded execution may be replayed under other
    /// hierarchies (false when the program read the MMIO cycle register).
    pub fn replayable(&self) -> bool {
        self.replayable
    }

    /// Whether this trace can price `hierarchy` specifically. Recorded
    /// traces carry **write-through** traffic only — the read/fetch event
    /// stream plus per-width write *counts*, with no store addresses or
    /// read/write interleaving — so a machine whose timing depends on the
    /// write policy (any write-back level, or a store buffer, where store
    /// addresses change cache state and store cost depends on arrival
    /// times) cannot be replayed and must be simulated in full; see
    /// [`MemHierarchyConfig::write_policy_dependent`]. Re-recording with
    /// write events would lift this — tracked as a ROADMAP follow-up.
    pub fn supports(&self, hierarchy: &MemHierarchyConfig) -> bool {
        self.replayable && !hierarchy.write_policy_dependent()
    }

    /// Number of recorded hierarchy-sensitive access events.
    pub fn events(&self) -> usize {
        self.events.len()
    }

    /// Prices the recorded execution under `hierarchy`, returning the
    /// total cycles and the memory statistics — bit-identical to running
    /// [`simulate`](crate::machine::simulate) under the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] when the replayed cycle count exceeds the
    /// recording's limit; [`SimError::Fault`] when the trace is not
    /// replayable, or when `hierarchy` is write-policy-dependent (the
    /// recorded trace holds write-through traffic only — see
    /// [`MemTrace::supports`]); callers should check `supports` and fall
    /// back to full simulation instead of treating this as fatal.
    pub fn replay(&self, hierarchy: &MemHierarchyConfig) -> Result<(u64, MemStats), SimError> {
        let _span = spmlab_obs::span("replay");
        if spmlab_obs::enabled() {
            spmlab_obs::counter("replay_events", self.events.len() as u64);
        }
        if !self.replayable {
            return Err(SimError::Fault {
                pc: 0,
                addr: spmlab_isa::mem::MMIO_CYCLES,
                what: "timing-dependent program cannot be replayed from a trace",
            });
        }
        if hierarchy.write_policy_dependent() {
            return Err(SimError::Fault {
                pc: 0,
                addr: 0,
                what: "write-policy-dependent hierarchy cannot be replayed from a \
                       write-through trace",
            });
        }
        let mut stats = self.stats_template.clone();
        let mut cycles = self.base_cycles + self.write_cycles(&hierarchy.main);
        if hierarchy.l1_for(true).is_some()
            || hierarchy.l1_for(false).is_some()
            || hierarchy.l2.is_some()
        {
            let mut caches = HierarchyCaches::new(hierarchy.clone());
            for ev in &self.events {
                let (kind, width) = match ev.kind {
                    EV_FETCH => (AccessKind::Fetch, AccessWidth::Half),
                    EV_READ_BYTE => (AccessKind::Read, AccessWidth::Byte),
                    EV_READ_HALF => (AccessKind::Read, AccessWidth::Half),
                    _ => (AccessKind::Read, AccessWidth::Word),
                };
                cycles += caches.read(ev.addr, kind, width, &mut stats).0;
            }
            if hierarchy.l1_for(false).is_some() || hierarchy.l2.is_some() {
                stats.write_throughs = self.main_writes.iter().sum();
            }
        } else {
            // Uncached: every read costs its width's main access time —
            // priced from the counters without touching the event stream.
            let m = &hierarchy.main;
            let widths = [AccessWidth::Byte, AccessWidth::Half, AccessWidth::Word];
            for (w, &width) in widths.iter().enumerate() {
                cycles += self.read_counts()[w] * m.access(width);
            }
        }
        if cycles > self.max_cycles {
            return Err(SimError::Watchdog { cycles });
        }
        Ok((cycles, stats))
    }

    fn write_cycles(&self, main: &MainMemoryTiming) -> u64 {
        self.main_writes[0] * main.access(AccessWidth::Byte)
            + self.main_writes[1] * main.access(AccessWidth::Half)
            + self.main_writes[2] * main.access(AccessWidth::Word)
    }

    fn read_counts(&self) -> [u64; 3] {
        self.read_counts
    }
}

/// Runs `exe` on the **uncached** machine (the recording reference),
/// returning the full simulation result plus the recorded trace.
///
/// # Errors
///
/// Any [`SimError`] of the underlying run.
pub fn simulate_with_trace(
    exe: &Executable,
    options: &SimOptions,
) -> Result<(SimResult, MemTrace), SimError> {
    let (result, recorder) = crate::machine::simulate_recorded(exe, options)?;
    let table1 = MainMemoryTiming::table1();
    let widths = [AccessWidth::Byte, AccessWidth::Half, AccessWidth::Word];
    let mut main_cost = 0u64;
    for (w, &width) in widths.iter().enumerate() {
        main_cost += (recorder.main_reads[w] + recorder.main_writes[w]) * table1.access(width);
    }
    let trace = MemTrace {
        base_cycles: result.cycles - main_cost,
        read_counts: recorder.main_reads,
        main_writes: recorder.main_writes,
        // The recording machine is uncached, so its statistics hold no
        // cache counters — they are exactly the invariant template.
        stats_template: result.mem_stats.clone(),
        max_cycles: options.max_cycles,
        replayable: !recorder.cycle_register_read,
        events: recorder.events,
    };
    Ok((result, trace))
}

/// The uncached recording reference as a [`MachineConfig`].
pub fn recording_config() -> MachineConfig {
    MachineConfig::uncached()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{simulate, SimOptions};
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::cachecfg::CacheConfig;
    use spmlab_isa::mem::MemoryMap;

    const SRC: &str = "
        int a[40]; int checksum;
        void main() {
            int i;
            for (i = 0; i < 40; i = i + 1) { __loopbound(40); a[i] = i * 3; }
            for (i = 0; i < 40; i = i + 1) { __loopbound(40); checksum = checksum + a[i]; }
        }
    ";

    fn hierarchies() -> Vec<MemHierarchyConfig> {
        vec![
            MemHierarchyConfig::uncached(),
            MemHierarchyConfig::uncached_with(MainMemoryTiming::dram(10)),
            MemHierarchyConfig::l1_only(CacheConfig::unified(256)),
            MemHierarchyConfig::l1_only(CacheConfig::instr_only(512)),
            MemHierarchyConfig::split_l1(256, 256),
            MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048)),
            MemHierarchyConfig::l1_only(CacheConfig::instr_only(256))
                .with_l2(CacheConfig::l2(1024)),
            MemHierarchyConfig::split_l1(256, 256)
                .with_l2(CacheConfig::l2(2048))
                .with_main(MainMemoryTiming::dram(8)),
        ]
    }

    /// The headline invariant of the replay: bit-identical cycles and
    /// memory statistics versus a fresh simulation, for every hierarchy
    /// shape.
    #[test]
    fn replay_matches_full_simulation_exactly() {
        let l = link(
            &compile(SRC).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let options = SimOptions {
            insn_stats: false,
            profile: false,
            ..SimOptions::default()
        };
        let (recorded, trace) = simulate_with_trace(&l.exe, &options).unwrap();
        assert!(trace.replayable());
        assert!(trace.events() > 0);
        for h in hierarchies() {
            let (cycles, stats) = trace.replay(&h).unwrap();
            let fresh =
                simulate(&l.exe, &MachineConfig::with_hierarchy(h.clone()), &options).unwrap();
            assert_eq!(cycles, fresh.cycles, "{}: cycles diverged", h.label());
            assert_eq!(stats, fresh.mem_stats, "{}: stats diverged", h.label());
        }
        // The recording itself is the uncached result.
        let uncached = simulate(&l.exe, &MachineConfig::uncached(), &options).unwrap();
        assert_eq!(recorded.cycles, uncached.cycles);
    }

    /// A write-policy-dependent machine (write-back level or store
    /// buffer) cannot be priced from a write-through trace: `supports`
    /// says so and `replay` refuses rather than silently replaying
    /// write-through traffic — the sweep falls back to full simulation.
    #[test]
    fn write_policy_dependent_hierarchies_refuse_replay() {
        use spmlab_isa::hierarchy::StoreBuffer;
        let l = link(
            &compile(SRC).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let (_, trace) = simulate_with_trace(&l.exe, &SimOptions::default()).unwrap();
        assert!(trace.replayable());
        let wb = MemHierarchyConfig::l1_only(CacheConfig::unified(256).write_back());
        assert!(!trace.supports(&wb));
        assert!(trace.replay(&wb).is_err());
        let sb = MemHierarchyConfig::uncached_with(
            MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(4, 6)),
        );
        assert!(!trace.supports(&sb));
        assert!(trace.replay(&sb).is_err());
        // Write-through machines replay as before.
        let wt = MemHierarchyConfig::l1_only(CacheConfig::unified(256));
        assert!(trace.supports(&wt));
        assert!(trace.replay(&wt).is_ok());
    }

    /// Reading the MMIO cycle register poisons the trace.
    #[test]
    fn cycle_register_read_blocks_replay() {
        let src = "
            int t;
            void main() { t = __cycles(); }
        ";
        let Ok(module) = compile(src) else {
            return; // No __cycles intrinsic in this toolchain: nothing to test.
        };
        let l = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let (_, trace) = simulate_with_trace(&l.exe, &SimOptions::default()).unwrap();
        assert!(!trace.replayable());
        assert!(trace.replay(&MemHierarchyConfig::uncached()).is_err());
    }
}
