//! The memory system: region timing, the cache hierarchy, MMIO, statistics.
//!
//! Reads route through the per-kind cache hierarchy; writes route through
//! the per-level [`spmlab_isa::cachecfg::WritePolicy`] — absorbed by the
//! first write-back level in the data path, or written through to main
//! memory (optionally via a store buffer) on all-write-through machines,
//! exactly like the paper's. See [`crate::hierarchy::HierarchyCaches`]
//! and the README's "Write policies and store buffers" section for the
//! full write-traffic cost model.

use crate::hierarchy::{HierarchyCaches, ReadOutcome};
use crate::SimError;
use spmlab_isa::hierarchy::MemHierarchyConfig;
use spmlab_isa::mem::{
    access_cycles_with, AccessWidth, MemoryMap, RegionKind, MMIO_BASE, MMIO_CYCLES, MMIO_PUTC,
    MMIO_PUTINT, MMIO_SIZE,
};

/// What kind of access the core is making.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (always 16-bit).
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// Per-region, per-width access counters plus per-level cache statistics.
///
/// Counter semantics on write-back machines: `cache_hits`/`cache_misses`/
/// `l1i_*`/`l1d_*` cover **read and fetch lookups only** (the semantics
/// the classification soundness checks compare against), while
/// `l2_hits`/`l2_misses` count **L2 read lookups** — which include the
/// write-allocate *fills* an absorbed store miss performs, since those
/// read the L2 exactly like a read miss's fill. Store lookups at the
/// absorbing level itself are not hit/miss-counted; their footprint
/// shows up in `write_backs`/`dirty_evictions` (and `write_throughs` on
/// all-write-through paths).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Scratchpad accesses by width (byte, half, word).
    pub spm: [u64; 3],
    /// Main-memory accesses by width — *core-visible* accesses; line fills
    /// are counted separately.
    pub main: [u64; 3],
    /// MMIO accesses.
    pub mmio: u64,
    /// First-level read hits (fetch + data, every L1 arrangement).
    pub cache_hits: u64,
    /// First-level read misses (each consulting the next level).
    pub cache_misses: u64,
    /// 32-bit main-memory reads performed by line fills (from the level
    /// that actually talked to main memory).
    pub fill_words: u64,
    /// Writes that went through the cache path (write-through): stores
    /// to main-memory space with at least one cache level in the data
    /// path and **no** write-back level absorbing them.
    pub write_throughs: u64,
    /// Dirty lines written back to main memory (an evicted write-back L1
    /// victim with no write-back L2 behind it, or an evicted write-back
    /// L2 victim). Always 0 on all-write-through machines.
    pub write_backs: u64,
    /// Dirty victims evicted from **any** cache level (an L1 victim
    /// absorbed by a write-back L2 counts here but not in `write_backs`).
    pub dirty_evictions: u64,
    /// Cycles the core stalled because the store buffer was full.
    pub store_buffer_stalls: u64,
    /// Instruction-fetch hits in the L1 serving fetches.
    pub l1i_hits: u64,
    /// Instruction-fetch misses in the L1 serving fetches.
    pub l1i_misses: u64,
    /// Data-read hits in the L1 serving data.
    pub l1d_hits: u64,
    /// Data-read misses in the L1 serving data.
    pub l1d_misses: u64,
    /// Read hits in the unified L2.
    pub l2_hits: u64,
    /// Read misses in the unified L2.
    pub l2_misses: u64,
}

impl MemStats {
    fn bump(&mut self, kind: RegionKind, width: AccessWidth) {
        let idx = match width {
            AccessWidth::Byte => 0,
            AccessWidth::Half => 1,
            AccessWidth::Word => 2,
        };
        match kind {
            RegionKind::Scratchpad => self.spm[idx] += 1,
            RegionKind::Main | RegionKind::Unmapped => self.main[idx] += 1,
            RegionKind::Mmio => self.mmio += 1,
        }
    }

    /// Total core-visible accesses.
    pub fn total_accesses(&self) -> u64 {
        self.spm.iter().sum::<u64>() + self.main.iter().sum::<u64>() + self.mmio
    }
}

/// The full memory system backing the simulation loop in `machine`.
#[derive(Debug, Clone)]
pub struct MemSystem {
    map: MemoryMap,
    spm: Vec<u8>,
    main: Vec<u8>,
    caches: HierarchyCaches,
    /// Console bytes written via MMIO/SWI.
    pub console: Vec<u8>,
    /// Integers written via MMIO/SWI.
    pub int_outputs: Vec<i32>,
    /// Statistics.
    pub stats: MemStats,
    /// Cycle counter mirror (for the MMIO cycle register).
    pub now: u64,
    /// Trace recorder for [`crate::trace::simulate_with_trace`] runs.
    pub(crate) recorder: Option<crate::trace::TraceRecorder>,
}

impl MemSystem {
    /// Builds the memory system and pre-loads the executable's regions
    /// (including scratchpad contents — static allocation is load-time).
    pub fn new(exe: &spmlab_isa::image::Executable, levels: MemHierarchyConfig) -> MemSystem {
        let map = exe.memory_map.clone();
        let mut sys = MemSystem {
            spm: vec![0; map.spm_size as usize],
            main: vec![0; map.main_size as usize],
            caches: HierarchyCaches::new(levels),
            console: Vec::new(),
            int_outputs: Vec::new(),
            stats: MemStats::default(),
            now: 0,
            recorder: None,
            map,
        };
        for r in &exe.regions {
            for (i, b) in r.bytes.iter().enumerate() {
                let addr = r.addr + i as u32;
                match sys.map.region_of(addr) {
                    RegionKind::Scratchpad => {
                        sys.spm[(addr - sys.map.spm_base) as usize] = *b;
                    }
                    RegionKind::Main => {
                        sys.main[(addr - sys.map.main_base) as usize] = *b;
                    }
                    _ => {}
                }
            }
        }
        sys
    }

    /// The memory map.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    fn backing(&self, addr: u32, len: u32) -> Option<(&[u8], usize)> {
        match self.map.region_of(addr) {
            RegionKind::Scratchpad => {
                let off = (addr - self.map.spm_base) as usize;
                (off + len as usize <= self.spm.len()).then_some((&self.spm[..], off))
            }
            RegionKind::Main => {
                let off = (addr - self.map.main_base) as usize;
                (off + len as usize <= self.main.len()).then_some((&self.main[..], off))
            }
            _ => None,
        }
    }

    /// Raw read without timing or stats (debugger-style; used to extract
    /// results after a run).
    pub fn peek(&self, addr: u32, width: AccessWidth) -> Option<u32> {
        let (buf, off) = self.backing(addr, width.bytes())?;
        Self::load(buf, off, width)
    }

    /// Little-endian load out of a backing buffer (bounds-checked).
    fn load(buf: &[u8], off: usize, width: AccessWidth) -> Option<u32> {
        if off + width.bytes() as usize > buf.len() {
            return None;
        }
        Some(match width {
            AccessWidth::Byte => buf[off] as u32,
            AccessWidth::Half => u16::from_le_bytes([buf[off], buf[off + 1]]) as u32,
            AccessWidth::Word => {
                u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
            }
        })
    }

    fn poke(&mut self, addr: u32, width: AccessWidth, value: u32) -> bool {
        let region = self.map.region_of(addr);
        let (buf, off): (&mut Vec<u8>, usize) = match region {
            RegionKind::Scratchpad => (&mut self.spm, (addr - self.map.spm_base) as usize),
            RegionKind::Main => (&mut self.main, (addr - self.map.main_base) as usize),
            _ => return false,
        };
        let bytes = value.to_le_bytes();
        let n = width.bytes() as usize;
        if off + n > buf.len() {
            return false;
        }
        buf[off..off + n].copy_from_slice(&bytes[..n]);
        true
    }

    /// The cache hierarchy (tests and diagnostics).
    pub fn caches(&self) -> &HierarchyCaches {
        &self.caches
    }

    /// Performs a read or fetch. Returns `(value, cycles, outcome)`;
    /// [`ReadOutcome`] reports the per-level result (`BYPASS` when the
    /// access bypassed the caches entirely — scratchpad, MMIO, or no cache
    /// configured for its kind).
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    pub fn read(
        &mut self,
        pc: u32,
        addr: u32,
        width: AccessWidth,
        kind: AccessKind,
    ) -> Result<(u32, u64, ReadOutcome), SimError> {
        if !addr.is_multiple_of(width.bytes()) {
            return Err(SimError::Fault {
                pc,
                addr,
                what: "misaligned",
            });
        }
        // One region classification per access: the value load and the
        // timing route both reuse it (the old path re-derived the region
        // inside `peek`).
        let region = self.map.region_of(addr);
        self.stats.bump(region, width);
        match region {
            RegionKind::Mmio => {
                let v = match addr {
                    MMIO_CYCLES => {
                        let v = self.now as u32;
                        if let Some(r) = &mut self.recorder {
                            // Timing-dependent value: recorded so replay
                            // can validate it under the target timing.
                            r.record_cycle_read(v);
                        }
                        v
                    }
                    _ => 0,
                };
                Ok((v, 1, ReadOutcome::BYPASS))
            }
            RegionKind::Main => {
                let off = (addr - self.map.main_base) as usize;
                let value = Self::load(&self.main, off, width).ok_or(SimError::Fault {
                    pc,
                    addr,
                    what: "unmapped read",
                })?;
                let (cycles, outcome) = self.caches.read(addr, kind, width, &mut self.stats);
                if let Some(r) = &mut self.recorder {
                    r.record_read(addr, kind, width, cycles);
                }
                Ok((value, cycles, outcome))
            }
            RegionKind::Scratchpad => {
                // Scratchpad: single-cycle, never cached.
                let off = (addr - self.map.spm_base) as usize;
                let value = Self::load(&self.spm, off, width).ok_or(SimError::Fault {
                    pc,
                    addr,
                    what: "unmapped read",
                })?;
                Ok((value, 1, ReadOutcome::BYPASS))
            }
            RegionKind::Unmapped => Err(SimError::Fault {
                pc,
                addr,
                what: "unmapped read",
            }),
        }
    }

    /// Timing/statistics-only instruction fetch of one halfword whose
    /// value is already known (predecoded-instruction replay): identical
    /// cycle charging and counters to [`MemSystem::read`], minus the value
    /// load. Only called for addresses proven mapped when the instruction
    /// was first decoded.
    pub fn fetch_timing(&mut self, addr: u32) -> (u64, ReadOutcome) {
        let region = self.map.region_of(addr);
        self.stats.bump(region, AccessWidth::Half);
        if region == RegionKind::Main {
            let (cycles, outcome) =
                self.caches
                    .read(addr, AccessKind::Fetch, AccessWidth::Half, &mut self.stats);
            if let Some(r) = &mut self.recorder {
                r.record_read(addr, AccessKind::Fetch, AccessWidth::Half, cycles);
            }
            (cycles, outcome)
        } else {
            // Scratchpad-resident code: single-cycle, never cached. (MMIO
            // is never predecoded — load regions cover main/spm only.)
            (1, ReadOutcome::BYPASS)
        }
    }

    /// Performs a write. Returns cycles.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    pub fn write(
        &mut self,
        pc: u32,
        addr: u32,
        width: AccessWidth,
        value: u32,
    ) -> Result<u64, SimError> {
        if !addr.is_multiple_of(width.bytes()) {
            return Err(SimError::Fault {
                pc,
                addr,
                what: "misaligned",
            });
        }
        let region = self.map.region_of(addr);
        self.stats.bump(region, width);
        if region == RegionKind::Mmio {
            match addr {
                MMIO_PUTC => self.console.push(value as u8),
                MMIO_PUTINT => self.int_outputs.push(value as i32),
                a if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&a) => {}
                _ => unreachable!("region_of said Mmio"),
            }
            return Ok(1);
        }
        if !self.poke(addr, width, value) {
            return Err(SimError::Fault {
                pc,
                addr,
                what: "unmapped write",
            });
        }
        if region == RegionKind::Main {
            // The write path is policy-routed (see `HierarchyCaches::write`):
            // absorbed by the first write-back level, or written through to
            // main memory (via the store buffer when one is configured).
            // The backing store was already updated above, so write-back is
            // purely a timing model over always-current memory.
            let now = self.now;
            let cycles = self.caches.write(addr, width, now, &mut self.stats);
            if let Some(r) = &mut self.recorder {
                r.record_write(addr, width, cycles);
            }
            return Ok(cycles);
        }
        // Scratchpad (single-cycle) and MMIO writes bypass the hierarchy.
        Ok(access_cycles_with(
            region,
            width,
            &self.caches.config().main,
        ))
    }

    /// Probes whether `addr`'s line is in the L1 serving data reads,
    /// falling back to the fetch side (tests only).
    pub fn cache_probe(&self, addr: u32) -> Option<bool> {
        self.caches
            .probe_l1(addr, false)
            .or_else(|| self.caches.probe_l1(addr, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use spmlab_isa::image::{Executable, LoadRegion};
    use spmlab_isa::mem::MAIN_BASE;

    fn exe_with(map: MemoryMap, addr: u32, bytes: Vec<u8>) -> Executable {
        Executable {
            regions: vec![LoadRegion { addr, bytes }],
            symbols: vec![],
            entry: MAIN_BASE,
            memory_map: map,
        }
    }

    #[test]
    fn uncached_timing_follows_table1() {
        let exe = exe_with(MemoryMap::with_spm(64), MAIN_BASE, vec![1, 2, 3, 4]);
        let mut m = MemSystem::new(&exe, MemHierarchyConfig::uncached());
        let (v, cyc, miss) = m
            .read(0, MAIN_BASE, AccessWidth::Word, AccessKind::Read)
            .unwrap();
        assert_eq!(v, 0x04030201);
        assert_eq!(cyc, 4);
        assert_eq!(miss, ReadOutcome::BYPASS);
        let (_, cyc, _) = m
            .read(0, MAIN_BASE, AccessWidth::Half, AccessKind::Fetch)
            .unwrap();
        assert_eq!(cyc, 2);
        let (_, cyc, _) = m.read(0, 0, AccessWidth::Word, AccessKind::Read).unwrap();
        assert_eq!(cyc, 1, "scratchpad word read is single cycle");
    }

    #[test]
    fn cached_fetch_miss_then_hit() {
        let exe = exe_with(MemoryMap::no_spm(), MAIN_BASE, vec![0; 64]);
        let mut m = MemSystem::new(&exe, MemHierarchyConfig::l1_only(CacheConfig::unified(64)));
        let (_, cyc, miss) = m
            .read(0, MAIN_BASE, AccessWidth::Half, AccessKind::Fetch)
            .unwrap();
        assert_eq!((cyc, miss.first_miss), (17, Some(true)));
        let (_, cyc, miss) = m
            .read(0, MAIN_BASE + 2, AccessWidth::Half, AccessKind::Fetch)
            .unwrap();
        assert_eq!((cyc, miss.first_miss), (1, Some(false)), "same line hits");
        assert_eq!(m.stats.cache_hits, 1);
        assert_eq!(m.stats.cache_misses, 1);
        assert_eq!(m.stats.fill_words, 4);
    }

    #[test]
    fn instr_only_cache_bypasses_data() {
        let exe = exe_with(MemoryMap::no_spm(), MAIN_BASE, vec![0; 64]);
        let mut m = MemSystem::new(
            &exe,
            MemHierarchyConfig::l1_only(CacheConfig::instr_only(64)),
        );
        let (_, cyc, miss) = m
            .read(0, MAIN_BASE, AccessWidth::Word, AccessKind::Read)
            .unwrap();
        assert_eq!((cyc, miss), (4, ReadOutcome::BYPASS));
        let (_, cyc, _) = m
            .read(0, MAIN_BASE, AccessWidth::Half, AccessKind::Fetch)
            .unwrap();
        assert_eq!(cyc, 17, "fetches still cached");
    }

    #[test]
    fn writes_are_write_through() {
        let exe = exe_with(MemoryMap::no_spm(), MAIN_BASE, vec![0; 64]);
        let mut m = MemSystem::new(&exe, MemHierarchyConfig::l1_only(CacheConfig::unified(64)));
        let cyc = m
            .write(0, MAIN_BASE + 8, AccessWidth::Word, 0xAABBCCDD)
            .unwrap();
        assert_eq!(cyc, 4, "write pays main-memory cost");
        assert_eq!(m.peek(MAIN_BASE + 8, AccessWidth::Word), Some(0xAABBCCDD));
        // Read it back through the cache: first read misses (no allocate).
        let (v, cyc, miss) = m
            .read(0, MAIN_BASE + 8, AccessWidth::Word, AccessKind::Read)
            .unwrap();
        assert_eq!((v, cyc, miss.first_miss), (0xAABBCCDD, 17, Some(true)));
    }

    #[test]
    fn mmio_console() {
        let exe = exe_with(MemoryMap::no_spm(), MAIN_BASE, vec![]);
        let mut m = MemSystem::new(&exe, MemHierarchyConfig::uncached());
        m.write(0, MMIO_PUTC, AccessWidth::Word, b'h' as u32)
            .unwrap();
        m.write(0, MMIO_PUTC, AccessWidth::Word, b'i' as u32)
            .unwrap();
        m.write(0, MMIO_PUTINT, AccessWidth::Word, 42).unwrap();
        assert_eq!(m.console, b"hi");
        assert_eq!(m.int_outputs, vec![42]);
    }

    #[test]
    fn faults() {
        let exe = exe_with(MemoryMap::no_spm(), MAIN_BASE, vec![0; 8]);
        let mut m = MemSystem::new(&exe, MemHierarchyConfig::uncached());
        assert!(
            m.read(0, 0x50, AccessWidth::Word, AccessKind::Read)
                .is_err(),
            "unmapped"
        );
        assert!(
            m.read(0, MAIN_BASE + 2, AccessWidth::Word, AccessKind::Read)
                .is_err(),
            "align"
        );
        assert!(m.write(0, 0x50, AccessWidth::Word, 0).is_err());
    }

    #[test]
    fn spm_preloaded() {
        let map = MemoryMap::with_spm(64);
        let exe = exe_with(map, 0, vec![0xEF, 0xBE, 0xAD, 0xDE]);
        let m = MemSystem::new(&exe, MemHierarchyConfig::uncached());
        assert_eq!(m.peek(0, AccessWidth::Word), Some(0xDEADBEEF));
    }
}
