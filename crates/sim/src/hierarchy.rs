//! Concrete multi-level cache state for the simulator.
//!
//! [`HierarchyCaches`] owns the tag stores of every configured level and
//! routes each main-memory access: L1I or L1D (or a shared unified L1) →
//! unified L2 → main memory. All timing constants come from
//! [`MemHierarchyConfig`] in `spmlab-isa`, the same cost model the WCET
//! analyzer charges — the two sides can therefore never disagree about the
//! machine.
//!
//! Invariants mirrored from the single-level model: all levels are
//! write-through with no write-allocate (so the data path needs no cache
//! storage, only tags), and an access that has no cache configured for its
//! kind bypasses the hierarchy entirely.

use crate::cache::{Cache, Lookup};
use crate::memsys::{AccessKind, MemStats};
use spmlab_isa::hierarchy::{MemHierarchyConfig, L1};
use spmlab_isa::mem::AccessWidth;

/// Which tag store serves one access kind (resolved once at build time so
/// the per-access path never re-matches the `L1` enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1Pick {
    /// No L1 in this kind's path.
    None,
    /// The single (possibly scope-restricted) L1.
    Unified,
    /// The instruction half of a split L1.
    Instr,
    /// The data half of a split L1.
    Data,
}

/// Precomputed routing and cycle constants for one access kind. All
/// values come from the shared cost model in [`MemHierarchyConfig`]; they
/// are just evaluated once instead of per access.
#[derive(Debug, Clone, Copy)]
struct Route {
    pick: L1Pick,
    /// Cycles when the access hits its L1.
    l1_hit: u64,
    /// Cycles when the access misses L1 and hits the L2.
    l1_miss_l2_hit: u64,
    /// Cycles when the access misses L1 and the L2 (or has no L2).
    l1_miss_worst: u64,
    /// 32-bit words filled into the missing level's line on the path that
    /// talks to main memory.
    fill_words: u64,
    /// Cycles for an L1-less access hitting the L2 directly.
    l2_direct_hit: u64,
    /// Cycles for an L1-less access missing the L2.
    l2_direct_miss: u64,
    /// Cycles per width when no cache sits in the path at all.
    bypass: [u64; 3],
}

/// Per-level outcome of one read, alongside its cycle charge.
///
/// `first_miss` reports the outcome at the first cache level in the
/// access's path (`None` when the access bypassed the caches) — the
/// signal the always-hit/always-miss classification checks compare
/// against. `l2_hit` is `Some` exactly when the access consulted the
/// unified L2 (an L1 miss, or L1-less traffic with an L2 configured) —
/// the signal for the guaranteed-L2-hit classification checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadOutcome {
    /// First-level result: `Some(true)` = miss, `Some(false)` = hit,
    /// `None` = no cache in the path.
    pub first_miss: Option<bool>,
    /// L2 result when the access reached the L2.
    pub l2_hit: Option<bool>,
}

impl ReadOutcome {
    /// An access that bypassed every cache.
    pub const BYPASS: ReadOutcome = ReadOutcome {
        first_miss: None,
        l2_hit: None,
    };
}

/// Tag stores for every configured level plus the shared cost model.
#[derive(Debug, Clone)]
pub struct HierarchyCaches {
    cfg: MemHierarchyConfig,
    l1u: Option<Cache>,
    l1i: Option<Cache>,
    l1d: Option<Cache>,
    l2: Option<Cache>,
    fetch_route: Route,
    data_route: Route,
    /// Words per L2 line fill (0 when no L2).
    l2_fill_words: u64,
}

impl HierarchyCaches {
    fn route_for(cfg: &MemHierarchyConfig, fetch: bool) -> Route {
        let pick = match (&cfg.l1, cfg.l1_for(fetch)) {
            (_, None) => L1Pick::None,
            (L1::Unified(_), Some(_)) => L1Pick::Unified,
            (L1::Split { .. }, Some(_)) => {
                if fetch {
                    L1Pick::Instr
                } else {
                    L1Pick::Data
                }
            }
            (L1::None, Some(_)) => unreachable!("l1_for() returned a cache for L1::None"),
        };
        let has_l1 = pick != L1Pick::None;
        let has_l2 = cfg.l2.is_some();
        Route {
            pick,
            l1_hit: if has_l1 { cfg.l1_hit_cycles(fetch) } else { 0 },
            l1_miss_l2_hit: if has_l1 && has_l2 {
                cfg.l1_miss_l2_hit_cycles(fetch)
            } else {
                0
            },
            l1_miss_worst: if has_l1 && has_l2 {
                cfg.l1_miss_l2_miss_cycles(fetch)
            } else if has_l1 {
                cfg.l1_miss_no_l2_cycles(fetch)
            } else {
                0
            },
            fill_words: match (has_l1, has_l2) {
                (true, false) => (cfg.l1_for(fetch).expect("has_l1").line / 4) as u64,
                (_, true) => (cfg.l2.as_ref().expect("has_l2").line / 4) as u64,
                (false, false) => 0,
            },
            l2_direct_hit: if has_l2 {
                cfg.l2_direct_hit_cycles()
            } else {
                0
            },
            l2_direct_miss: if has_l2 {
                cfg.l2_direct_miss_cycles()
            } else {
                0
            },
            bypass: [
                cfg.bypass_cycles(AccessWidth::Byte),
                cfg.bypass_cycles(AccessWidth::Half),
                cfg.bypass_cycles(AccessWidth::Word),
            ],
        }
    }

    /// Builds empty (all-invalid) tag stores for `cfg`.
    pub fn new(cfg: MemHierarchyConfig) -> HierarchyCaches {
        cfg.validate();
        let (l1u, l1i, l1d) = match &cfg.l1 {
            L1::None => (None, None, None),
            L1::Unified(c) => (Some(Cache::new(c.clone())), None, None),
            L1::Split { i, d } => (None, i.clone().map(Cache::new), d.clone().map(Cache::new)),
        };
        let l2 = cfg.l2.clone().map(Cache::new);
        let fetch_route = Self::route_for(&cfg, true);
        let data_route = Self::route_for(&cfg, false);
        let l2_fill_words = cfg.l2.as_ref().map_or(0, |c| (c.line / 4) as u64);
        HierarchyCaches {
            cfg,
            l1u,
            l1i,
            l1d,
            l2,
            fetch_route,
            data_route,
            l2_fill_words,
        }
    }

    /// The shared hierarchy configuration.
    pub fn config(&self) -> &MemHierarchyConfig {
        &self.cfg
    }

    /// A read or fetch of `width` at `addr` in main-memory space. Returns
    /// `(cycles, outcome)`; see [`ReadOutcome`] for the per-level report.
    /// All routing decisions and cycle constants were resolved at
    /// construction time; the per-access work is one or two tag-store
    /// lookups plus counter updates.
    pub fn read(
        &mut self,
        addr: u32,
        kind: AccessKind,
        width: AccessWidth,
        stats: &mut MemStats,
    ) -> (u64, ReadOutcome) {
        let fetch = kind == AccessKind::Fetch;
        // Only the scalar constants each branch needs are read out of the
        // route (copying the whole struct per access showed up in
        // profiles).
        let pick = if fetch {
            self.fetch_route.pick
        } else {
            self.data_route.pick
        };
        let l1 = match pick {
            L1Pick::None => {
                // No L1 for this kind: route directly through the L2 when
                // one exists, otherwise bypass to main memory.
                let route = if fetch {
                    &self.fetch_route
                } else {
                    &self.data_route
                };
                let (l2_direct_hit, l2_direct_miss) = (route.l2_direct_hit, route.l2_direct_miss);
                return match &mut self.l2 {
                    Some(l2) => match l2.read(addr) {
                        Lookup::Hit => {
                            stats.l2_hits += 1;
                            (
                                l2_direct_hit,
                                ReadOutcome {
                                    first_miss: Some(false),
                                    l2_hit: Some(true),
                                },
                            )
                        }
                        Lookup::Miss => {
                            stats.l2_misses += 1;
                            stats.fill_words += self.l2_fill_words;
                            (
                                l2_direct_miss,
                                ReadOutcome {
                                    first_miss: Some(true),
                                    l2_hit: Some(false),
                                },
                            )
                        }
                    },
                    None => {
                        let w = match width {
                            AccessWidth::Byte => 0,
                            AccessWidth::Half => 1,
                            AccessWidth::Word => 2,
                        };
                        (route.bypass[w], ReadOutcome::BYPASS)
                    }
                };
            }
            L1Pick::Unified => self.l1u.as_mut().expect("route picked unified L1"),
            L1Pick::Instr => self.l1i.as_mut().expect("route picked split L1I"),
            L1Pick::Data => self.l1d.as_mut().expect("route picked split L1D"),
        };
        let l1_hit = l1.read(addr) == Lookup::Hit;
        let route = if fetch {
            &self.fetch_route
        } else {
            &self.data_route
        };
        if fetch {
            if l1_hit {
                stats.l1i_hits += 1;
            } else {
                stats.l1i_misses += 1;
            }
        } else if l1_hit {
            stats.l1d_hits += 1;
        } else {
            stats.l1d_misses += 1;
        }
        if l1_hit {
            stats.cache_hits += 1;
            return (
                route.l1_hit,
                ReadOutcome {
                    first_miss: Some(false),
                    l2_hit: None,
                },
            );
        }
        stats.cache_misses += 1;
        let (l1_miss_l2_hit, l1_miss_worst, fill_words) =
            (route.l1_miss_l2_hit, route.l1_miss_worst, route.fill_words);
        let (cycles, l2_hit) = match &mut self.l2 {
            Some(l2) => match l2.read(addr) {
                Lookup::Hit => {
                    stats.l2_hits += 1;
                    (l1_miss_l2_hit, Some(true))
                }
                Lookup::Miss => {
                    stats.l2_misses += 1;
                    stats.fill_words += fill_words;
                    (l1_miss_worst, Some(false))
                }
            },
            None => {
                stats.fill_words += fill_words;
                (l1_miss_worst, None)
            }
        };
        (
            cycles,
            ReadOutcome {
                first_miss: Some(true),
                l2_hit,
            },
        )
    }

    /// A data write: write-through with no allocation and no recency
    /// update at every level, so the tag stores are untouched and timing
    /// is unaffected (the write always pays the main-memory cost) — only
    /// the statistics change. Counted as a write-through when any cache
    /// level sits in the data path (an L1D, a unified L1, or a direct L2).
    pub fn write(&mut self, _addr: u32, stats: &mut MemStats) {
        if self.cfg.l1_for(false).is_some() || self.l2.is_some() {
            stats.write_throughs += 1;
        }
    }

    fn l1_ref(&self, fetch: bool) -> Option<&Cache> {
        self.cfg.l1_for(fetch)?;
        if self.l1u.is_some() {
            self.l1u.as_ref()
        } else if fetch {
            self.l1i.as_ref()
        } else {
            self.l1d.as_ref()
        }
    }

    /// Whether `addr`'s line currently sits in the L1 serving `fetch`
    /// traffic (no state change; tests only).
    pub fn probe_l1(&self, addr: u32, fetch: bool) -> Option<bool> {
        self.l1_ref(fetch).map(|c| c.probe(addr))
    }

    /// Whether `addr`'s line currently sits in the L2 (tests only).
    pub fn probe_l2(&self, addr: u32) -> Option<bool> {
        self.l2.as_ref().map(|c| c.probe(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_isa::cachecfg::CacheConfig;
    use spmlab_isa::hierarchy::MainMemoryTiming;

    const A: u32 = 0x0010_0000;

    fn rd(h: &mut HierarchyCaches, addr: u32, kind: AccessKind) -> (u64, Option<bool>) {
        let mut stats = MemStats::default();
        let (cyc, out) = h.read(addr, kind, AccessWidth::Half, &mut stats);
        (cyc, out.first_miss)
    }

    #[test]
    fn l1_only_matches_single_level_timing() {
        let mut h = HierarchyCaches::new(MemHierarchyConfig::l1_only(CacheConfig::unified(64)));
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (17, Some(true)));
        assert_eq!(rd(&mut h, A + 2, AccessKind::Fetch), (1, Some(false)));
        assert_eq!(
            rd(&mut h, A + 4, AccessKind::Read),
            (1, Some(false)),
            "unified shares lines"
        );
    }

    #[test]
    fn split_l1_isolates_instruction_and_data() {
        let mut h = HierarchyCaches::new(MemHierarchyConfig::split_l1(64, 64));
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (17, Some(true)));
        // Same line, data side: its own tag store, so it misses separately.
        assert_eq!(rd(&mut h, A, AccessKind::Read), (17, Some(true)));
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (1, Some(false)));
        assert_eq!(rd(&mut h, A, AccessKind::Read), (1, Some(false)));
    }

    #[test]
    fn l2_serves_l1_conflict_evictions() {
        let cfg =
            MemHierarchyConfig::l1_only(CacheConfig::unified(64)).with_l2(CacheConfig::l2(4096));
        let mut h = HierarchyCaches::new(cfg.clone());
        let both_miss = cfg.l1_miss_l2_miss_cycles(true);
        let l2_hit = cfg.l1_miss_l2_hit_cycles(true);
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (both_miss, Some(true)));
        // 64-byte L1 wraps every 64 bytes: A+64 evicts A from L1, misses L2.
        assert_eq!(
            rd(&mut h, A + 64, AccessKind::Fetch),
            (both_miss, Some(true))
        );
        // A is gone from L1 but still in the 4 KiB L2.
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (l2_hit, Some(true)));
        assert_eq!(h.probe_l2(A), Some(true));
    }

    #[test]
    fn bypass_uses_main_timing() {
        let cfg = MemHierarchyConfig::uncached_with(MainMemoryTiming::dram(10));
        let mut h = HierarchyCaches::new(cfg);
        let mut stats = MemStats::default();
        assert_eq!(
            h.read(A, AccessKind::Read, AccessWidth::Word, &mut stats),
            (14, ReadOutcome::BYPASS)
        );
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn per_level_stats_accumulate() {
        let cfg = MemHierarchyConfig::split_l1(64, 64).with_l2(CacheConfig::l2(4096));
        let mut h = HierarchyCaches::new(cfg);
        let mut stats = MemStats::default();
        h.read(A, AccessKind::Fetch, AccessWidth::Half, &mut stats);
        h.read(A, AccessKind::Fetch, AccessWidth::Half, &mut stats);
        h.read(A, AccessKind::Read, AccessWidth::Word, &mut stats);
        assert_eq!((stats.l1i_hits, stats.l1i_misses), (1, 1));
        assert_eq!((stats.l1d_hits, stats.l1d_misses), (0, 1));
        // First fetch missed L2; the data miss then hit the L2 line.
        assert_eq!((stats.l2_hits, stats.l2_misses), (1, 1));
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn writes_do_not_allocate_anywhere() {
        let cfg = MemHierarchyConfig::split_l1(64, 64).with_l2(CacheConfig::l2(4096));
        let mut h = HierarchyCaches::new(cfg);
        let mut stats = MemStats::default();
        h.write(A, &mut stats);
        assert_eq!(h.probe_l1(A, false), Some(false));
        assert_eq!(h.probe_l2(A), Some(false));
        assert_eq!(stats.write_throughs, 1);
    }
}
