//! Concrete multi-level cache state for the simulator.
//!
//! [`HierarchyCaches`] owns the tag stores of every configured level and
//! routes each main-memory access: L1I or L1D (or a shared unified L1) →
//! unified L2 → main memory. All timing constants come from
//! [`MemHierarchyConfig`] in `spmlab-isa`, the same cost model the WCET
//! analyzer charges — the two sides can therefore never disagree about the
//! machine.
//!
//! Each level carries its own write policy
//! ([`spmlab_isa::cachecfg::WritePolicy`]): write-through levels need no
//! cache storage, only tags, exactly like the paper's single-level
//! machine; write-back levels additionally track dirty bits, stores are
//! absorbed by the first write-back level in the data path
//! ([`MemHierarchyConfig::store_absorb`]), and dirty victims pay a line
//! write-back to the victim's next level at eviction time. Core stores
//! that reach main memory may pass through an optional
//! [`spmlab_isa::hierarchy::StoreBuffer`]. See the README's "Write
//! policies and store buffers" section for the full cost model. An access
//! that has no cache configured for its kind still bypasses the hierarchy
//! entirely.

use crate::cache::Cache;
use crate::memsys::{AccessKind, MemStats};
use spmlab_isa::hierarchy::{MemHierarchyConfig, StoreAbsorb, L1};
use spmlab_isa::mem::AccessWidth;
use std::collections::VecDeque;

/// Which tag store serves one access kind (resolved once at build time so
/// the per-access path never re-matches the `L1` enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1Pick {
    /// No L1 in this kind's path.
    None,
    /// The single (possibly scope-restricted) L1.
    Unified,
    /// The instruction half of a split L1.
    Instr,
    /// The data half of a split L1.
    Data,
}

/// Precomputed routing and cycle constants for one access kind. All
/// values come from the shared cost model in [`MemHierarchyConfig`]; they
/// are just evaluated once instead of per access.
#[derive(Debug, Clone, Copy)]
struct Route {
    pick: L1Pick,
    /// Cycles when the access hits its L1.
    l1_hit: u64,
    /// Cycles when the access misses L1 and hits the L2.
    l1_miss_l2_hit: u64,
    /// Cycles when the access misses L1 and the L2 (or has no L2).
    l1_miss_worst: u64,
    /// 32-bit words filled into the missing level's line on the path that
    /// talks to main memory.
    fill_words: u64,
    /// Cycles for an L1-less access hitting the L2 directly.
    l2_direct_hit: u64,
    /// Cycles for an L1-less access missing the L2.
    l2_direct_miss: u64,
    /// Cycles per width when no cache sits in the path at all.
    bypass: [u64; 3],
}

/// Precomputed write-path routing and cycle constants — the store-absorb
/// rule plus every write-back transfer cost, all from the shared model in
/// [`MemHierarchyConfig`] (see its `store_absorb` / `worst_store_cycles`
/// helpers for the analyzer's side of the same constants).
#[derive(Debug, Clone, Copy)]
struct WriteRoute {
    absorb: StoreAbsorb,
    /// Absorb-at-L1 constants: store hit, write-allocate fill via L2 hit,
    /// write-allocate fill worst (L2 miss or no L2).
    l1_store_hit: u64,
    l1_fill_l2_hit: u64,
    l1_fill_worst: u64,
    /// Absorb-at-L2 constants: store hit, write-allocate fill from main.
    l2_store_hit: u64,
    l2_fill: u64,
    /// Dirty-victim write-back transfer cycles out of the L1 / the L2.
    l1_wb: u64,
    l2_wb: u64,
    /// Whether the L2 absorbs written-back L1 lines (write-back L2).
    l2_accepts_lines: bool,
    /// 32-bit words of an L1 / L2 line (fill accounting).
    l1_line_words: u64,
    /// Main-memory write cycles per width (no store buffer).
    main_write: [u64; 3],
    /// Whether any cache level sits in the data path (the write-through
    /// counter's condition, unchanged from the all-write-through model).
    data_cached: bool,
}

/// Concrete store-buffer state: completion times of the in-flight
/// entries, drained front-to-back. `clock` enforces that successive
/// stores observe a time at least one cycle past the previous store's
/// accept-plus-stall, which is what bounds any single stall by one drain
/// period (see [`spmlab_isa::hierarchy::StoreBuffer`]).
#[derive(Debug, Clone)]
struct StoreBufferState {
    depth: usize,
    drain: u64,
    clock: u64,
    pending: VecDeque<u64>,
}

impl StoreBufferState {
    fn new(sb: &spmlab_isa::hierarchy::StoreBuffer) -> StoreBufferState {
        StoreBufferState {
            depth: sb.depth.max(1) as usize,
            drain: sb.drain_cycles.max(1),
            clock: 0,
            pending: VecDeque::with_capacity(sb.depth as usize),
        }
    }

    /// Accepts one store at time `now`, returning its cycles (1, plus the
    /// buffer-full stall) and accounting the stall.
    fn push(&mut self, now: u64, stats: &mut MemStats) -> u64 {
        let now = now.max(self.clock);
        while self.pending.front().is_some_and(|&c| c <= now) {
            self.pending.pop_front();
        }
        let mut stall = 0;
        if self.pending.len() >= self.depth {
            let head = self.pending.pop_front().expect("depth >= 1");
            stall = head - now;
        }
        let start = (now + stall).max(self.pending.back().copied().unwrap_or(0));
        self.pending.push_back(start + self.drain);
        stats.store_buffer_stalls += stall;
        self.clock = now + stall + 1;
        1 + stall
    }
}

/// Per-level outcome of one read, alongside its cycle charge.
///
/// `first_miss` reports the outcome at the first cache level in the
/// access's path (`None` when the access bypassed the caches) — the
/// signal the always-hit/always-miss classification checks compare
/// against. `l2_hit` is `Some` exactly when the access consulted the
/// unified L2 (an L1 miss, or L1-less traffic with an L2 configured) —
/// the signal for the guaranteed-L2-hit classification checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadOutcome {
    /// First-level result: `Some(true)` = miss, `Some(false)` = hit,
    /// `None` = no cache in the path.
    pub first_miss: Option<bool>,
    /// L2 result when the access reached the L2.
    pub l2_hit: Option<bool>,
}

impl ReadOutcome {
    /// An access that bypassed every cache.
    pub const BYPASS: ReadOutcome = ReadOutcome {
        first_miss: None,
        l2_hit: None,
    };
}

/// Tag stores for every configured level plus the shared cost model.
#[derive(Debug, Clone)]
pub struct HierarchyCaches {
    cfg: MemHierarchyConfig,
    l1u: Option<Cache>,
    l1i: Option<Cache>,
    l1d: Option<Cache>,
    l2: Option<Cache>,
    fetch_route: Route,
    data_route: Route,
    write_route: WriteRoute,
    store_buffer: Option<StoreBufferState>,
    /// Words per L2 line fill (0 when no L2).
    l2_fill_words: u64,
}

impl HierarchyCaches {
    fn route_for(cfg: &MemHierarchyConfig, fetch: bool) -> Route {
        let pick = match (&cfg.l1, cfg.l1_for(fetch)) {
            (_, None) => L1Pick::None,
            (L1::Unified(_), Some(_)) => L1Pick::Unified,
            (L1::Split { .. }, Some(_)) => {
                if fetch {
                    L1Pick::Instr
                } else {
                    L1Pick::Data
                }
            }
            (L1::None, Some(_)) => unreachable!("l1_for() returned a cache for L1::None"),
        };
        let has_l1 = pick != L1Pick::None;
        let has_l2 = cfg.l2.is_some();
        Route {
            pick,
            l1_hit: if has_l1 { cfg.l1_hit_cycles(fetch) } else { 0 },
            l1_miss_l2_hit: if has_l1 && has_l2 {
                cfg.l1_miss_l2_hit_cycles(fetch)
            } else {
                0
            },
            l1_miss_worst: if has_l1 && has_l2 {
                cfg.l1_miss_l2_miss_cycles(fetch)
            } else if has_l1 {
                cfg.l1_miss_no_l2_cycles(fetch)
            } else {
                0
            },
            fill_words: match (has_l1, has_l2) {
                (true, false) => (cfg.l1_for(fetch).expect("has_l1").line / 4) as u64,
                (_, true) => (cfg.l2.as_ref().expect("has_l2").line / 4) as u64,
                (false, false) => 0,
            },
            l2_direct_hit: if has_l2 {
                cfg.l2_direct_hit_cycles()
            } else {
                0
            },
            l2_direct_miss: if has_l2 {
                cfg.l2_direct_miss_cycles()
            } else {
                0
            },
            bypass: [
                cfg.bypass_cycles(AccessWidth::Byte),
                cfg.bypass_cycles(AccessWidth::Half),
                cfg.bypass_cycles(AccessWidth::Word),
            ],
        }
    }

    fn write_route_for(cfg: &MemHierarchyConfig) -> WriteRoute {
        let absorb = cfg.store_absorb();
        let data_l1 = cfg.l1_for(false);
        let has_l2 = cfg.l2.is_some();
        let l2_wb_policy = cfg
            .l2
            .as_ref()
            .is_some_and(|c| c.write_policy.is_write_back());
        WriteRoute {
            absorb,
            l1_store_hit: if data_l1.is_some() {
                cfg.l1_hit_cycles(false)
            } else {
                0
            },
            l1_fill_l2_hit: if data_l1.is_some() && has_l2 {
                cfg.l1_miss_l2_hit_cycles(false)
            } else {
                0
            },
            l1_fill_worst: match (data_l1.is_some(), has_l2) {
                (true, true) => cfg.l1_miss_l2_miss_cycles(false),
                (true, false) => cfg.l1_miss_no_l2_cycles(false),
                _ => 0,
            },
            l2_store_hit: if has_l2 {
                cfg.l2_direct_hit_cycles()
            } else {
                0
            },
            l2_fill: if has_l2 {
                cfg.l2_direct_miss_cycles()
            } else {
                0
            },
            l1_wb: if data_l1.is_some() {
                cfg.l1_writeback_cycles()
            } else {
                0
            },
            l2_wb: if has_l2 { cfg.l2_writeback_cycles() } else { 0 },
            l2_accepts_lines: l2_wb_policy,
            l1_line_words: data_l1.map_or(0, |c| (c.line / 4) as u64),
            main_write: [
                cfg.main.access(AccessWidth::Byte),
                cfg.main.access(AccessWidth::Half),
                cfg.main.access(AccessWidth::Word),
            ],
            data_cached: data_l1.is_some() || has_l2,
        }
    }

    /// Builds empty (all-invalid, all-clean) tag stores for `cfg`.
    pub fn new(cfg: MemHierarchyConfig) -> HierarchyCaches {
        cfg.validate();
        let (l1u, l1i, l1d) = match &cfg.l1 {
            L1::None => (None, None, None),
            L1::Unified(c) => (Some(Cache::new(c.clone())), None, None),
            L1::Split { i, d } => (None, i.clone().map(Cache::new), d.clone().map(Cache::new)),
        };
        let l2 = cfg.l2.clone().map(Cache::new);
        let fetch_route = Self::route_for(&cfg, true);
        let data_route = Self::route_for(&cfg, false);
        let write_route = Self::write_route_for(&cfg);
        let store_buffer = cfg.main.store_buffer.as_ref().map(StoreBufferState::new);
        let l2_fill_words = cfg.l2.as_ref().map_or(0, |c| (c.line / 4) as u64);
        HierarchyCaches {
            cfg,
            l1u,
            l1i,
            l1d,
            l2,
            fetch_route,
            data_route,
            write_route,
            store_buffer,
            l2_fill_words,
        }
    }

    /// The shared hierarchy configuration.
    pub fn config(&self) -> &MemHierarchyConfig {
        &self.cfg
    }

    /// Retires one dirty victim line evicted from the L1: into a
    /// write-back L2 (possibly cascading into an L2 victim's burst to
    /// main), or as a burst straight to main memory when the L2 is
    /// write-through (which forwards the line) or absent. Returns the
    /// transfer's cycles.
    fn retire_l1_victim(&mut self, victim: u32, stats: &mut MemStats) -> u64 {
        let wr = &self.write_route;
        let (l1_wb, l2_wb, into_l2) = (wr.l1_wb, wr.l2_wb, wr.l2_accepts_lines);
        stats.dirty_evictions += 1;
        let mut cycles = l1_wb;
        if into_l2 {
            let l2 = self.l2.as_mut().expect("write-back L2 accepts lines");
            if let Some(_victim2) = l2.install_writeback(victim) {
                stats.dirty_evictions += 1;
                stats.write_backs += 1;
                cycles += l2_wb;
            }
        } else {
            stats.write_backs += 1;
        }
        cycles
    }

    /// A read or fetch of `width` at `addr` in main-memory space. Returns
    /// `(cycles, outcome)`; see [`ReadOutcome`] for the per-level report.
    /// All routing decisions and cycle constants were resolved at
    /// construction time; the per-access work is one or two tag-store
    /// lookups plus counter updates — plus, on write-back configurations,
    /// the dirty-victim retirement a fill can trigger.
    pub fn read(
        &mut self,
        addr: u32,
        kind: AccessKind,
        width: AccessWidth,
        stats: &mut MemStats,
    ) -> (u64, ReadOutcome) {
        let fetch = kind == AccessKind::Fetch;
        // Only the scalar constants each branch needs are read out of the
        // route (copying the whole struct per access showed up in
        // profiles).
        let pick = if fetch {
            self.fetch_route.pick
        } else {
            self.data_route.pick
        };
        let l1 = match pick {
            L1Pick::None => {
                // No L1 for this kind: route directly through the L2 when
                // one exists, otherwise bypass to main memory.
                let route = if fetch {
                    &self.fetch_route
                } else {
                    &self.data_route
                };
                let (l2_direct_hit, l2_direct_miss) = (route.l2_direct_hit, route.l2_direct_miss);
                let l2_wb = self.write_route.l2_wb;
                return match &mut self.l2 {
                    Some(l2) => {
                        let r = l2.read(addr);
                        if r.hit {
                            stats.l2_hits += 1;
                            (
                                l2_direct_hit,
                                ReadOutcome {
                                    first_miss: Some(false),
                                    l2_hit: Some(true),
                                },
                            )
                        } else {
                            stats.l2_misses += 1;
                            stats.fill_words += self.l2_fill_words;
                            let mut cycles = l2_direct_miss;
                            if r.writeback.is_some() {
                                stats.dirty_evictions += 1;
                                stats.write_backs += 1;
                                cycles += l2_wb;
                            }
                            (
                                cycles,
                                ReadOutcome {
                                    first_miss: Some(true),
                                    l2_hit: Some(false),
                                },
                            )
                        }
                    }
                    None => {
                        let w = match width {
                            AccessWidth::Byte => 0,
                            AccessWidth::Half => 1,
                            AccessWidth::Word => 2,
                        };
                        (route.bypass[w], ReadOutcome::BYPASS)
                    }
                };
            }
            L1Pick::Unified => self.l1u.as_mut().expect("route picked unified L1"),
            L1Pick::Instr => self.l1i.as_mut().expect("route picked split L1I"),
            L1Pick::Data => self.l1d.as_mut().expect("route picked split L1D"),
        };
        let l1r = l1.read(addr);
        let route = if fetch {
            &self.fetch_route
        } else {
            &self.data_route
        };
        if fetch {
            if l1r.hit {
                stats.l1i_hits += 1;
            } else {
                stats.l1i_misses += 1;
            }
        } else if l1r.hit {
            stats.l1d_hits += 1;
        } else {
            stats.l1d_misses += 1;
        }
        if l1r.hit {
            stats.cache_hits += 1;
            return (
                route.l1_hit,
                ReadOutcome {
                    first_miss: Some(false),
                    l2_hit: None,
                },
            );
        }
        stats.cache_misses += 1;
        let (l1_miss_l2_hit, l1_miss_worst, fill_words) =
            (route.l1_miss_l2_hit, route.l1_miss_worst, route.fill_words);
        let l2_wb = self.write_route.l2_wb;
        let (mut cycles, l2_hit) = match &mut self.l2 {
            Some(l2) => {
                let r = l2.read(addr);
                if r.hit {
                    stats.l2_hits += 1;
                    (l1_miss_l2_hit, Some(true))
                } else {
                    stats.l2_misses += 1;
                    stats.fill_words += fill_words;
                    let mut c = l1_miss_worst;
                    if r.writeback.is_some() {
                        stats.dirty_evictions += 1;
                        stats.write_backs += 1;
                        c += l2_wb;
                    }
                    (c, Some(false))
                }
            }
            None => {
                stats.fill_words += fill_words;
                (l1_miss_worst, None)
            }
        };
        // The fill's victim: only write-back L1s ever hold dirty lines
        // (a unified write-back L1's fetch misses can evict lines the
        // data side dirtied).
        if let Some(victim) = l1r.writeback {
            cycles += self.retire_l1_victim(victim, stats);
        }
        (
            cycles,
            ReadOutcome {
                first_miss: Some(true),
                l2_hit,
            },
        )
    }

    /// A data write to main-memory space at time `now`, routed by the
    /// store-absorb rule ([`MemHierarchyConfig::store_absorb`]):
    ///
    /// * **absorbed by a write-back L1**: hit = dirty the line in place at
    ///   the L1 hit cost; miss = write-allocate (fill from L2/main like a
    ///   read miss, then dirty), retiring any dirty victim;
    /// * **absorbed by a write-back L2** (write-through or absent L1D in
    ///   front): hit = dirty in place at the direct-L2 cost; miss =
    ///   write-allocate from main, retiring any dirty L2 victim;
    /// * **all-write-through path**: the tag stores are untouched and the
    ///   store pays the main-memory cost — or the store buffer's 1-cycle
    ///   accept (plus the buffer-full stall) when one is configured —
    ///   exactly like the single-level model.
    ///
    /// Returns the store's cycles.
    pub fn write(&mut self, addr: u32, width: AccessWidth, now: u64, stats: &mut MemStats) -> u64 {
        let wr = self.write_route;
        match wr.absorb {
            StoreAbsorb::L1 => {
                let l1 = match (&mut self.l1u, &mut self.l1d) {
                    (Some(l1u), _) => l1u,
                    (None, Some(l1d)) => l1d,
                    (None, None) => unreachable!("store absorb picked an L1"),
                };
                let w = l1.write(addr);
                if w.hit {
                    return wr.l1_store_hit;
                }
                // Write-allocate: fill the line from the next level.
                let mut cycles = match &mut self.l2 {
                    Some(l2) => {
                        let r = l2.read(addr);
                        if r.hit {
                            stats.l2_hits += 1;
                            wr.l1_fill_l2_hit
                        } else {
                            stats.l2_misses += 1;
                            stats.fill_words += self.l2_fill_words;
                            let mut c = wr.l1_fill_worst;
                            if r.writeback.is_some() {
                                stats.dirty_evictions += 1;
                                stats.write_backs += 1;
                                c += wr.l2_wb;
                            }
                            c
                        }
                    }
                    None => {
                        stats.fill_words += wr.l1_line_words;
                        wr.l1_fill_worst
                    }
                };
                if let Some(victim) = w.writeback {
                    cycles += self.retire_l1_victim(victim, stats);
                }
                cycles
            }
            StoreAbsorb::L2 => {
                let l2 = self.l2.as_mut().expect("write-back L2 absorbs");
                let w = l2.write(addr);
                if w.hit {
                    wr.l2_store_hit
                } else {
                    stats.fill_words += self.l2_fill_words;
                    let mut cycles = wr.l2_fill;
                    if w.writeback.is_some() {
                        stats.dirty_evictions += 1;
                        stats.write_backs += 1;
                        cycles += wr.l2_wb;
                    }
                    cycles
                }
            }
            StoreAbsorb::Main => {
                // Write-through straight to main memory: no tag-store
                // change at any level, byte-identical to the paper's
                // machine — the store buffer, when present, only changes
                // *when* the cycles are paid.
                if wr.data_cached {
                    stats.write_throughs += 1;
                }
                match &mut self.store_buffer {
                    Some(sb) => sb.push(now, stats),
                    None => {
                        let w = match width {
                            AccessWidth::Byte => 0,
                            AccessWidth::Half => 1,
                            AccessWidth::Word => 2,
                        };
                        wr.main_write[w]
                    }
                }
            }
        }
    }

    fn l1_ref(&self, fetch: bool) -> Option<&Cache> {
        self.cfg.l1_for(fetch)?;
        if self.l1u.is_some() {
            self.l1u.as_ref()
        } else if fetch {
            self.l1i.as_ref()
        } else {
            self.l1d.as_ref()
        }
    }

    /// Whether `addr`'s line currently sits in the L1 serving `fetch`
    /// traffic (no state change; tests only).
    pub fn probe_l1(&self, addr: u32, fetch: bool) -> Option<bool> {
        self.l1_ref(fetch).map(|c| c.probe(addr))
    }

    /// Whether `addr`'s line currently sits in the L2 (tests only).
    pub fn probe_l2(&self, addr: u32) -> Option<bool> {
        self.l2.as_ref().map(|c| c.probe(addr))
    }

    /// Whether `addr`'s line is dirty in the L1 serving data traffic
    /// (tests only).
    pub fn probe_l1_dirty(&self, addr: u32) -> Option<bool> {
        self.l1_ref(false).map(|c| c.probe_dirty(addr))
    }

    /// Whether `addr`'s line is dirty in the L2 (tests only).
    pub fn probe_l2_dirty(&self, addr: u32) -> Option<bool> {
        self.l2.as_ref().map(|c| c.probe_dirty(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_isa::cachecfg::CacheConfig;
    use spmlab_isa::hierarchy::{MainMemoryTiming, StoreBuffer};

    const A: u32 = 0x0010_0000;

    fn rd(h: &mut HierarchyCaches, addr: u32, kind: AccessKind) -> (u64, Option<bool>) {
        let mut stats = MemStats::default();
        let (cyc, out) = h.read(addr, kind, AccessWidth::Half, &mut stats);
        (cyc, out.first_miss)
    }

    fn wr(h: &mut HierarchyCaches, addr: u32, now: u64) -> (u64, MemStats) {
        let mut stats = MemStats::default();
        let cyc = h.write(addr, AccessWidth::Word, now, &mut stats);
        (cyc, stats)
    }

    #[test]
    fn l1_only_matches_single_level_timing() {
        let mut h = HierarchyCaches::new(MemHierarchyConfig::l1_only(CacheConfig::unified(64)));
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (17, Some(true)));
        assert_eq!(rd(&mut h, A + 2, AccessKind::Fetch), (1, Some(false)));
        assert_eq!(
            rd(&mut h, A + 4, AccessKind::Read),
            (1, Some(false)),
            "unified shares lines"
        );
    }

    #[test]
    fn split_l1_isolates_instruction_and_data() {
        let mut h = HierarchyCaches::new(MemHierarchyConfig::split_l1(64, 64));
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (17, Some(true)));
        // Same line, data side: its own tag store, so it misses separately.
        assert_eq!(rd(&mut h, A, AccessKind::Read), (17, Some(true)));
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (1, Some(false)));
        assert_eq!(rd(&mut h, A, AccessKind::Read), (1, Some(false)));
    }

    #[test]
    fn l2_serves_l1_conflict_evictions() {
        let cfg =
            MemHierarchyConfig::l1_only(CacheConfig::unified(64)).with_l2(CacheConfig::l2(4096));
        let mut h = HierarchyCaches::new(cfg.clone());
        let both_miss = cfg.l1_miss_l2_miss_cycles(true);
        let l2_hit = cfg.l1_miss_l2_hit_cycles(true);
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (both_miss, Some(true)));
        // 64-byte L1 wraps every 64 bytes: A+64 evicts A from L1, misses L2.
        assert_eq!(
            rd(&mut h, A + 64, AccessKind::Fetch),
            (both_miss, Some(true))
        );
        // A is gone from L1 but still in the 4 KiB L2.
        assert_eq!(rd(&mut h, A, AccessKind::Fetch), (l2_hit, Some(true)));
        assert_eq!(h.probe_l2(A), Some(true));
    }

    #[test]
    fn bypass_uses_main_timing() {
        let cfg = MemHierarchyConfig::uncached_with(MainMemoryTiming::dram(10));
        let mut h = HierarchyCaches::new(cfg);
        let mut stats = MemStats::default();
        assert_eq!(
            h.read(A, AccessKind::Read, AccessWidth::Word, &mut stats),
            (14, ReadOutcome::BYPASS)
        );
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn per_level_stats_accumulate() {
        let cfg = MemHierarchyConfig::split_l1(64, 64).with_l2(CacheConfig::l2(4096));
        let mut h = HierarchyCaches::new(cfg);
        let mut stats = MemStats::default();
        h.read(A, AccessKind::Fetch, AccessWidth::Half, &mut stats);
        h.read(A, AccessKind::Fetch, AccessWidth::Half, &mut stats);
        h.read(A, AccessKind::Read, AccessWidth::Word, &mut stats);
        assert_eq!((stats.l1i_hits, stats.l1i_misses), (1, 1));
        assert_eq!((stats.l1d_hits, stats.l1d_misses), (0, 1));
        // First fetch missed L2; the data miss then hit the L2 line.
        assert_eq!((stats.l2_hits, stats.l2_misses), (1, 1));
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn write_through_writes_do_not_allocate_anywhere() {
        let cfg = MemHierarchyConfig::split_l1(64, 64).with_l2(CacheConfig::l2(4096));
        let mut h = HierarchyCaches::new(cfg);
        let (cyc, stats) = wr(&mut h, A, 0);
        assert_eq!(cyc, 4, "write-through pays the Table-1 main word cost");
        assert_eq!(h.probe_l1(A, false), Some(false));
        assert_eq!(h.probe_l2(A), Some(false));
        assert_eq!(stats.write_throughs, 1);
        assert_eq!(stats.write_backs + stats.dirty_evictions, 0);
    }

    #[test]
    fn write_back_l1_absorbs_and_retires_victims() {
        let cfg = MemHierarchyConfig {
            l1: L1::Split {
                i: Some(CacheConfig::instr_only(64)),
                d: Some(CacheConfig::data_only(64).write_back()),
            },
            l2: None,
            main: MainMemoryTiming::table1(),
        };
        let mut h = HierarchyCaches::new(cfg.clone());
        // Store miss: write-allocate at the read-fill cost.
        let (cyc, stats) = wr(&mut h, A, 0);
        assert_eq!(cyc, cfg.l1_miss_no_l2_cycles(false));
        assert_eq!(stats.write_throughs, 0, "absorbed, not written through");
        assert_eq!(h.probe_l1_dirty(A), Some(true));
        // Store hit: 1 cycle, stays dirty.
        let (cyc, _) = wr(&mut h, A + 4, 0);
        assert_eq!(cyc, cfg.l1_hit_cycles(false));
        // A conflicting *read* evicts the dirty line: fill + write-back
        // burst to main.
        let mut stats = MemStats::default();
        let (cyc, _) = h.read(A + 64, AccessKind::Read, AccessWidth::Word, &mut stats);
        assert_eq!(
            cyc,
            cfg.l1_miss_no_l2_cycles(false) + cfg.l1_writeback_cycles()
        );
        assert_eq!((stats.dirty_evictions, stats.write_backs), (1, 1));
        assert_eq!(h.probe_l1_dirty(A), Some(false));
    }

    #[test]
    fn write_back_l1_victim_lands_in_write_back_l2() {
        let cfg = MemHierarchyConfig {
            l1: L1::Split {
                i: Some(CacheConfig::instr_only(64)),
                d: Some(CacheConfig::data_only(64).write_back()),
            },
            l2: Some(CacheConfig::l2(4096).write_back()),
            main: MainMemoryTiming::table1(),
        };
        let mut h = HierarchyCaches::new(cfg.clone());
        let mut stats = MemStats::default();
        // Dirty A in L1 (store miss allocates via the L2 path).
        h.write(A, AccessWidth::Word, 0, &mut stats);
        assert_eq!(h.probe_l1_dirty(A), Some(true));
        // Conflicting store evicts A: the dirty line lands in the L2
        // (dirty there), no burst to main.
        let mut stats = MemStats::default();
        let cyc = h.write(A + 64, AccessWidth::Word, 0, &mut stats);
        assert_eq!(
            cyc,
            cfg.l1_miss_l2_miss_cycles(false) + cfg.l1_writeback_cycles()
        );
        assert_eq!((stats.dirty_evictions, stats.write_backs), (1, 0));
        assert_eq!(h.probe_l2_dirty(A), Some(true));
    }

    #[test]
    fn write_back_l2_absorbs_behind_write_through_l1() {
        let cfg = MemHierarchyConfig::split_l1(64, 64).with_l2(CacheConfig::l2(4096).write_back());
        let mut h = HierarchyCaches::new(cfg.clone());
        let (cyc, stats) = wr(&mut h, A, 0);
        assert_eq!(cyc, cfg.l2_direct_miss_cycles(), "write-allocate in L2");
        assert_eq!(stats.write_throughs, 0);
        assert_eq!(h.probe_l1(A, false), Some(false), "WT L1 untouched");
        assert_eq!(h.probe_l2_dirty(A), Some(true));
        let (cyc, _) = wr(&mut h, A + 4, 0);
        assert_eq!(cyc, cfg.l2_direct_hit_cycles(), "store hit in L2");
    }

    #[test]
    fn store_buffer_accepts_then_stalls() {
        let cfg = MemHierarchyConfig::uncached_with(
            MainMemoryTiming::table1().with_store_buffer(StoreBuffer::new(2, 10)),
        );
        let mut h = HierarchyCaches::new(cfg);
        let mut stats = MemStats::default();
        // Two stores fill the buffer at 1 cycle each.
        assert_eq!(h.write(A, AccessWidth::Word, 0, &mut stats), 1);
        assert_eq!(h.write(A + 4, AccessWidth::Word, 1, &mut stats), 1);
        // Third store at t=2: the oldest entry completes at t=10 → 8-cycle
        // stall plus the accept.
        assert_eq!(h.write(A + 8, AccessWidth::Word, 2, &mut stats), 1 + 8);
        assert_eq!(stats.store_buffer_stalls, 8);
        // Much later the buffer has drained: back to 1 cycle.
        assert_eq!(h.write(A + 12, AccessWidth::Word, 100, &mut stats), 1);
        // No stall may ever exceed one drain period (the analyzability
        // contract the WCET charge relies on).
        let mut worst = 0;
        for i in 0..64u32 {
            let c = h.write(A + 16 + i * 4, AccessWidth::Word, 101, &mut stats);
            worst = worst.max(c);
        }
        assert!(worst <= 1 + 10, "stall bound violated: {worst}");
    }
}
