//! The simulation loop.

use crate::cpu::{adc, asr_reg, lsl_reg, lsr_reg, ror_reg, sbc, sdiv, udiv, Cpu};
use crate::memsys::{AccessKind, MemStats, MemSystem};
use crate::profile::{InsnStat, InsnStats, Profile};
use crate::{MachineConfig, SimError};
use spmlab_isa::cond::Flags;
use spmlab_isa::decode::decode;
use spmlab_isa::image::Executable;
use spmlab_isa::insn::{AluOp, Insn, ShiftOp};
use spmlab_isa::mem::AccessWidth;

/// Why the simulation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The program executed `SWI 0`.
    Halted,
}

/// Simulation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOptions {
    /// Abort after this many cycles (runaway protection).
    pub max_cycles: u64,
    /// Collect per-instruction statistics (small overhead; needed by the
    /// cache-analysis soundness tests).
    pub insn_stats: bool,
    /// Collect the per-symbol access profile (needed by the allocator).
    pub profile: bool,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            max_cycles: 2_000_000_000,
            insn_stats: true,
            profile: true,
        }
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total simulated cycles — the paper's "simulated execution time".
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Why execution stopped.
    pub exit: ExitReason,
    /// Console output (SWI 1 / MMIO putc).
    pub console: String,
    /// Integer outputs (SWI 2 / MMIO putint).
    pub int_outputs: Vec<i32>,
    /// Memory-system statistics (energy accounting input).
    pub mem_stats: MemStats,
    /// Per-symbol access profile (allocator input).
    pub profile: Profile,
    /// Per-instruction dynamic statistics.
    pub insn_stats: InsnStats,
    memory: MemSystem,
}

impl SimResult {
    /// Reads a global's current (post-run) scalar value, sign-extended.
    pub fn read_global(&self, exe: &Executable, name: &str) -> Option<i32> {
        self.read_global_at(exe, name, 0)
    }

    /// Reads element `index` of a global array after the run.
    pub fn read_global_at(&self, exe: &Executable, name: &str, index: u32) -> Option<i32> {
        let sym = exe.symbol(name)?;
        let width = match sym.kind {
            spmlab_isa::image::SymbolKind::Object { width } => width,
            _ => return None,
        };
        let raw = self.memory.peek(sym.addr + index * width.bytes(), width)?;
        Some(match width {
            AccessWidth::Byte => raw as u8 as i8 as i32,
            AccessWidth::Half => raw as u16 as i16 as i32,
            AccessWidth::Word => raw as i32,
        })
    }

    /// Raw post-run memory read.
    pub fn peek(&self, addr: u32, width: AccessWidth) -> Option<u32> {
        self.memory.peek(addr, width)
    }
}

/// Runs `exe` to completion under `config`.
///
/// # Errors
///
/// Returns [`SimError`] for faults, undefined instructions, or watchdog
/// expiry.
pub fn simulate(
    exe: &Executable,
    config: &MachineConfig,
    options: &SimOptions,
) -> Result<SimResult, SimError> {
    let _span = spmlab_obs::span("simulate");
    let result = Machine::new(exe, config, options.clone()).run()?;
    if spmlab_obs::enabled() {
        spmlab_obs::gauge("sim_instructions", result.instructions);
        spmlab_obs::counter("sim_instructions_total", result.instructions);
    }
    Ok(result)
}

/// Runs `exe` on the uncached recording machine with the memory-trace
/// recorder armed; backs [`crate::trace::simulate_with_trace`].
///
/// # Errors
///
/// Any [`SimError`] of the underlying run.
pub(crate) fn simulate_recorded(
    exe: &Executable,
    options: &SimOptions,
) -> Result<(SimResult, crate::trace::TraceRecorder), SimError> {
    let _span = spmlab_obs::span("sim-record");
    let mut machine = Machine::new(exe, &MachineConfig::uncached(), options.clone());
    machine.mem.recorder = Some(crate::trace::TraceRecorder::default());
    let mut result = machine.run()?;
    let recorder = result
        .memory
        .recorder
        .take()
        .expect("recorder armed above and never dropped");
    Ok((result, recorder))
}

/// Lazily-filled predecoded instruction store, one bank per load region.
///
/// Decoding is pure, so each PC's instruction is decoded once and replayed
/// from here on every later visit — the fetch *timing* (cache lookups,
/// statistics) is still charged per halfword exactly as before. Writes
/// into a bank's range invalidate the covering slots, so self-modifying
/// stores can never replay stale instructions.
struct DecodeCache {
    banks: Vec<DecodeBank>,
}

struct DecodeBank {
    base: u32,
    /// One slot per halfword: `(instruction, size in bytes)`.
    slots: Vec<Option<(Insn, u8)>>,
}

impl DecodeCache {
    fn new(exe: &Executable) -> DecodeCache {
        DecodeCache {
            banks: exe
                .regions
                .iter()
                .map(|r| DecodeBank {
                    base: r.addr,
                    slots: vec![None; r.bytes.len().div_ceil(2)],
                })
                .collect(),
        }
    }

    fn slot_of(&self, pc: u32) -> Option<(usize, usize)> {
        for (b, bank) in self.banks.iter().enumerate() {
            if pc >= bank.base {
                let idx = ((pc - bank.base) / 2) as usize;
                if idx < bank.slots.len() {
                    return Some((b, idx));
                }
            }
        }
        None
    }

    fn get(&self, pc: u32) -> Option<(Insn, u32)> {
        let (b, i) = self.slot_of(pc)?;
        self.banks[b].slots[i].map(|(insn, size)| (insn, size as u32))
    }

    fn put(&mut self, pc: u32, insn: &Insn, size: u32) {
        if let Some((b, i)) = self.slot_of(pc) {
            self.banks[b].slots[i] = Some((*insn, size as u8));
        }
    }

    /// Drops every decoded slot whose instruction could overlap a write of
    /// `len` bytes at `addr` (a 4-byte instruction may start one halfword
    /// before the written range).
    fn invalidate(&mut self, addr: u32, len: u32) {
        let lo = addr.saturating_sub(2);
        for bank in &mut self.banks {
            let end = bank.base + bank.slots.len() as u32 * 2;
            if addr.saturating_add(len) <= bank.base || lo >= end {
                continue;
            }
            let first = (lo.max(bank.base) - bank.base) / 2;
            let last = ((addr + len - 1).min(end - 1) - bank.base) / 2;
            for i in first..=last {
                bank.slots[i as usize] = None;
            }
        }
    }
}

struct Machine {
    cpu: Cpu,
    mem: MemSystem,
    decoded: DecodeCache,
    cycles: u64,
    instructions: u64,
    options: SimOptions,
    /// Hoisted copies of the option flags the per-access path branches on.
    profile_on: bool,
    stats_on: bool,
    profile: Profile,
    insn_stats: InsnStats,
}

enum Outcome {
    Continue,
    Halt,
}

impl Machine {
    fn new(exe: &Executable, config: &MachineConfig, options: SimOptions) -> Machine {
        let mem = MemSystem::new(exe, config.effective_hierarchy());
        let cpu = Cpu {
            pc: exe.entry,
            sp: exe.memory_map.stack_top,
            // Returning here without SWI 0 is a fault.
            lr: 0xFFFF_FFFE,
            ..Cpu::default()
        };
        let profile = Profile::for_exe(exe);
        Machine {
            cpu,
            mem,
            decoded: DecodeCache::new(exe),
            cycles: 0,
            instructions: 0,
            profile_on: options.profile,
            stats_on: options.insn_stats,
            options,
            profile,
            insn_stats: InsnStats::new(),
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        while let Outcome::Continue = self.step()? {
            if self.cycles > self.options.max_cycles {
                return Err(SimError::Watchdog {
                    cycles: self.cycles,
                });
            }
        }
        Ok(SimResult {
            cycles: self.cycles,
            instructions: self.instructions,
            exit: ExitReason::Halted,
            console: String::from_utf8_lossy(&self.mem.console).into_owned(),
            int_outputs: self.mem.int_outputs.clone(),
            mem_stats: self.mem.stats.clone(),
            profile: self.profile,
            insn_stats: self.insn_stats,
            memory: self.mem,
        })
    }

    /// Tells an armed trace recorder the cycle count the next access
    /// happens at (the inter-event deltas of the ordered v2 stream).
    #[inline]
    fn note_access_cycles(&mut self) {
        if let Some(r) = &mut self.mem.recorder {
            r.at(self.cycles);
        }
    }

    fn fetch(&mut self, pc: u32, insn_pc: u32) -> Result<u16, SimError> {
        self.note_access_cycles();
        let (v, cyc, outcome) = self
            .mem
            .read(pc, pc, AccessWidth::Half, AccessKind::Fetch)?;
        self.cycles += cyc;
        if self.profile_on {
            self.profile.record_fetch(pc);
        }
        if self.stats_on {
            self.record_fetch_outcome(insn_pc, outcome);
        }
        Ok(v as u16)
    }

    /// Fetch timing for a predecoded halfword (no value materialisation).
    fn fetch_timed(&mut self, pc: u32, insn_pc: u32) {
        self.note_access_cycles();
        let (cyc, outcome) = self.mem.fetch_timing(pc);
        self.cycles += cyc;
        if self.profile_on {
            self.profile.record_fetch(pc);
        }
        if self.stats_on {
            self.record_fetch_outcome(insn_pc, outcome);
        }
    }

    fn record_fetch_outcome(&mut self, insn_pc: u32, outcome: crate::hierarchy::ReadOutcome) {
        if outcome.first_miss.is_none() && outcome.l2_hit.is_none() {
            return; // Bypassed the caches: nothing to attribute.
        }
        let s = self.stat(insn_pc);
        match outcome.first_miss {
            Some(true) => s.fetch_misses += 1,
            Some(false) => s.fetch_hits += 1,
            None => {}
        }
        if outcome.l2_hit == Some(false) {
            s.fetch_l2_misses += 1;
        }
    }

    fn stat(&mut self, pc: u32) -> &mut InsnStat {
        self.insn_stats.entry(pc).or_default()
    }

    fn data_read(&mut self, insn_pc: u32, addr: u32, width: AccessWidth) -> Result<u32, SimError> {
        let evictions_before = self.mem.stats.dirty_evictions;
        self.note_access_cycles();
        let (v, cyc, outcome) = self.mem.read(insn_pc, addr, width, AccessKind::Read)?;
        self.cycles += cyc;
        if self.profile_on {
            self.profile.record_read(addr, width);
        }
        if self.stats_on {
            let evicted = self.mem.stats.dirty_evictions - evictions_before;
            let s = self.stat(insn_pc);
            s.data_accesses += 1;
            s.write_backs += evicted;
            match outcome.first_miss {
                Some(true) => s.data_misses += 1,
                Some(false) => s.data_hits += 1,
                None => {}
            }
            if outcome.l2_hit == Some(false) {
                s.data_l2_misses += 1;
            }
        }
        Ok(v)
    }

    fn data_write(
        &mut self,
        insn_pc: u32,
        addr: u32,
        width: AccessWidth,
        value: u32,
    ) -> Result<(), SimError> {
        let evictions_before = self.mem.stats.dirty_evictions;
        self.note_access_cycles();
        let cyc = self.mem.write(insn_pc, addr, width, value)?;
        self.decoded.invalidate(addr, width.bytes());
        self.cycles += cyc;
        if self.profile_on {
            self.profile.record_write(addr, width);
        }
        if self.stats_on {
            let evicted = self.mem.stats.dirty_evictions - evictions_before;
            let s = self.stat(insn_pc);
            s.data_accesses += 1;
            s.write_backs += evicted;
        }
        Ok(())
    }

    fn step(&mut self) -> Result<Outcome, SimError> {
        let pc = self.cpu.pc;
        if !pc.is_multiple_of(2) {
            return Err(SimError::Fault {
                pc,
                addr: pc,
                what: "misaligned fetch",
            });
        }
        self.mem.now = self.cycles;
        if let Some(r) = &mut self.mem.recorder {
            r.latch(self.cycles);
        }
        let (insn, size) = if let Some((insn, size)) = self.decoded.get(pc) {
            // Replay the predecoded instruction; the fetch timing and
            // statistics are still charged per halfword as always.
            self.fetch_timed(pc, pc);
            if size == 4 {
                self.fetch_timed(pc + 2, pc);
            }
            (insn, size)
        } else {
            let hw1 = self.fetch(pc, pc)?;
            // A BL hi halfword needs its partner (a second real fetch).
            let (insn, size) = if hw1 & 0xF800 == 0xF000 {
                let hw2 = self.fetch(pc + 2, pc)?;
                decode(hw1, Some(hw2))
            } else {
                decode(hw1, None)
            };
            self.decoded.put(pc, &insn, size);
            (insn, size)
        };
        if self.stats_on {
            self.stat(pc).execs += 1;
        }
        self.instructions += 1;
        self.cycles += 1; // Base cycle.
        let next = pc.wrapping_add(size);
        self.exec(&insn, pc, next)
    }

    fn set_nz(&mut self, v: u32) {
        self.cpu.flags = self.cpu.flags.from_logical(v);
    }

    fn exec(&mut self, insn: &Insn, pc: u32, next: u32) -> Result<Outcome, SimError> {
        use Insn::*;
        let pc_val = pc.wrapping_add(4);
        let mut branch_to: Option<u32> = None;
        match insn {
            ShiftImm { op, rd, rm, imm } => {
                let v = self.cpu.r(*rm);
                let res = match op {
                    ShiftOp::Lsl => {
                        if *imm == 0 {
                            v
                        } else {
                            v << imm
                        }
                    }
                    ShiftOp::Lsr => {
                        if *imm == 0 {
                            v
                        } else {
                            v >> imm
                        }
                    }
                    ShiftOp::Asr => {
                        if *imm == 0 {
                            v
                        } else {
                            ((v as i32) >> imm) as u32
                        }
                    }
                };
                self.cpu.set_r(*rd, res);
                self.set_nz(res);
            }
            AddReg { rd, rn, rm } => {
                let (res, f) = Flags::from_add(self.cpu.r(*rn), self.cpu.r(*rm));
                self.cpu.set_r(*rd, res);
                self.cpu.flags = f;
            }
            SubReg { rd, rn, rm } => {
                let (res, f) = Flags::from_sub(self.cpu.r(*rn), self.cpu.r(*rm));
                self.cpu.set_r(*rd, res);
                self.cpu.flags = f;
            }
            AddImm3 { rd, rn, imm } => {
                let (res, f) = Flags::from_add(self.cpu.r(*rn), *imm as u32);
                self.cpu.set_r(*rd, res);
                self.cpu.flags = f;
            }
            SubImm3 { rd, rn, imm } => {
                let (res, f) = Flags::from_sub(self.cpu.r(*rn), *imm as u32);
                self.cpu.set_r(*rd, res);
                self.cpu.flags = f;
            }
            MovImm { rd, imm } => {
                self.cpu.set_r(*rd, *imm as u32);
                self.set_nz(*imm as u32);
            }
            CmpImm { rd, imm } => {
                let (_, f) = Flags::from_sub(self.cpu.r(*rd), *imm as u32);
                self.cpu.flags = f;
            }
            AddImm { rd, imm } => {
                let (res, f) = Flags::from_add(self.cpu.r(*rd), *imm as u32);
                self.cpu.set_r(*rd, res);
                self.cpu.flags = f;
            }
            SubImm { rd, imm } => {
                let (res, f) = Flags::from_sub(self.cpu.r(*rd), *imm as u32);
                self.cpu.set_r(*rd, res);
                self.cpu.flags = f;
            }
            Alu { op, rd, rm } => self.exec_alu(*op, *rd, *rm),
            MovReg { rd, rm } => {
                let v = self.cpu.r(*rm);
                self.cpu.set_r(*rd, v);
                self.set_nz(v);
            }
            Sdiv { rd, rm } => {
                let res = sdiv(self.cpu.r(*rd), self.cpu.r(*rm));
                self.cpu.set_r(*rd, res);
                self.set_nz(res);
            }
            Udiv { rd, rm } => {
                let res = udiv(self.cpu.r(*rd), self.cpu.r(*rm));
                self.cpu.set_r(*rd, res);
                self.set_nz(res);
            }
            Ret => branch_to = Some(self.cpu.lr & !1),
            LdrLit { rd, imm } => {
                let addr = (pc_val & !3).wrapping_add(*imm as u32 * 4);
                let v = self.data_read(pc, addr, AccessWidth::Word)?;
                self.cpu.set_r(*rd, v);
            }
            LdrReg {
                width,
                signed,
                rd,
                rn,
                rm,
            } => {
                let addr = self.cpu.r(*rn).wrapping_add(self.cpu.r(*rm));
                let raw = self.data_read(pc, addr, *width)?;
                let v = if *signed {
                    match width {
                        AccessWidth::Byte => raw as u8 as i8 as i32 as u32,
                        AccessWidth::Half => raw as u16 as i16 as i32 as u32,
                        AccessWidth::Word => raw,
                    }
                } else {
                    raw
                };
                self.cpu.set_r(*rd, v);
            }
            StrReg { width, rd, rn, rm } => {
                let addr = self.cpu.r(*rn).wrapping_add(self.cpu.r(*rm));
                self.data_write(pc, addr, *width, self.cpu.r(*rd))?;
            }
            LdrImm { width, rd, rn, off } => {
                let addr = self.cpu.r(*rn).wrapping_add(*off as u32);
                let v = self.data_read(pc, addr, *width)?;
                self.cpu.set_r(*rd, v);
            }
            StrImm { width, rd, rn, off } => {
                let addr = self.cpu.r(*rn).wrapping_add(*off as u32);
                self.data_write(pc, addr, *width, self.cpu.r(*rd))?;
            }
            LdrSp { rd, imm } => {
                let addr = self.cpu.sp.wrapping_add(*imm as u32 * 4);
                let v = self.data_read(pc, addr, AccessWidth::Word)?;
                self.cpu.set_r(*rd, v);
            }
            StrSp { rd, imm } => {
                let addr = self.cpu.sp.wrapping_add(*imm as u32 * 4);
                self.data_write(pc, addr, AccessWidth::Word, self.cpu.r(*rd))?;
            }
            Adr { rd, imm } => {
                self.cpu
                    .set_r(*rd, (pc_val & !3).wrapping_add(*imm as u32 * 4));
            }
            AddSp { rd, imm } => {
                self.cpu
                    .set_r(*rd, self.cpu.sp.wrapping_add(*imm as u32 * 4));
            }
            AdjSp { delta } => {
                self.cpu.sp = self.cpu.sp.wrapping_add(*delta as i32 as u32);
            }
            Push { regs, lr } => {
                let n = regs.len() + *lr as u32;
                self.cpu.sp = self.cpu.sp.wrapping_sub(4 * n);
                let mut addr = self.cpu.sp;
                for r in regs.iter() {
                    self.data_write(pc, addr, AccessWidth::Word, self.cpu.r(r))?;
                    addr += 4;
                }
                if *lr {
                    self.data_write(pc, addr, AccessWidth::Word, self.cpu.lr)?;
                }
            }
            Pop { regs, pc: load_pc } => {
                let mut addr = self.cpu.sp;
                for r in regs.iter() {
                    let v = self.data_read(pc, addr, AccessWidth::Word)?;
                    self.cpu.set_r(r, v);
                    addr += 4;
                }
                if *load_pc {
                    let v = self.data_read(pc, addr, AccessWidth::Word)?;
                    branch_to = Some(v & !1);
                    addr += 4;
                }
                self.cpu.sp = addr;
            }
            Nop => {}
            BCond { cond, off } => {
                if cond.holds(self.cpu.flags) {
                    branch_to = Some(pc_val.wrapping_add(*off as u32));
                }
            }
            Swi { imm } => match imm {
                0 => {
                    self.cycles += insn.extra_cycles(false);
                    return Ok(Outcome::Halt);
                }
                1 => self.mem.console.push(self.cpu.r(spmlab_isa::reg::R0) as u8),
                2 => self
                    .mem
                    .int_outputs
                    .push(self.cpu.r(spmlab_isa::reg::R0) as i32),
                _ => {}
            },
            B { off } => branch_to = Some(pc_val.wrapping_add(*off as u32)),
            Bl { off } => {
                self.cpu.lr = pc.wrapping_add(4);
                branch_to = Some(pc_val.wrapping_add(*off as u32));
            }
            Undefined { raw } => return Err(SimError::UndefinedInsn { pc, raw: *raw }),
        }
        let taken = branch_to.is_some();
        self.cycles += insn.extra_cycles(taken);
        self.cpu.pc = branch_to.unwrap_or(next);
        if taken && self.cpu.pc == 0xFFFF_FFFE {
            return Err(SimError::Fault {
                pc,
                addr: self.cpu.pc,
                what: "return past _start",
            });
        }
        Ok(Outcome::Continue)
    }

    fn exec_alu(&mut self, op: AluOp, rd: spmlab_isa::reg::Reg, rm: spmlab_isa::reg::Reg) {
        let a = self.cpu.r(rd);
        let b = self.cpu.r(rm);
        match op {
            AluOp::And => {
                let v = a & b;
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Eor => {
                let v = a ^ b;
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Lsl => {
                let v = lsl_reg(a, b);
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Lsr => {
                let v = lsr_reg(a, b);
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Asr => {
                let v = asr_reg(a, b);
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Adc => {
                let (v, f) = adc(a, b, self.cpu.flags.c);
                self.cpu.set_r(rd, v);
                self.cpu.flags = f;
            }
            AluOp::Sbc => {
                let (v, f) = sbc(a, b, self.cpu.flags.c);
                self.cpu.set_r(rd, v);
                self.cpu.flags = f;
            }
            AluOp::Ror => {
                let v = ror_reg(a, b);
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Tst => self.set_nz(a & b),
            AluOp::Neg => {
                let (v, f) = Flags::from_sub(0, b);
                self.cpu.set_r(rd, v);
                self.cpu.flags = f;
            }
            AluOp::Cmp => {
                let (_, f) = Flags::from_sub(a, b);
                self.cpu.flags = f;
            }
            AluOp::Cmn => {
                let (_, f) = Flags::from_add(a, b);
                self.cpu.flags = f;
            }
            AluOp::Orr => {
                let v = a | b;
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Mul => {
                let v = a.wrapping_mul(b);
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Bic => {
                let v = a & !b;
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
            AluOp::Mvn => {
                let v = !b;
                self.cpu.set_r(rd, v);
                self.set_nz(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::mem::MemoryMap;

    fn run(src: &str) -> (SimResult, Executable) {
        let m = compile(src).expect("compile");
        let l = link(&m, &MemoryMap::no_spm(), &SpmAssignment::none()).expect("link");
        let r =
            simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default()).expect("simulate");
        (r, l.exe)
    }

    #[test]
    fn arithmetic_and_globals() {
        let (r, exe) = run("int x; int y; void main() { x = 6 * 7; y = x / 5; }");
        assert_eq!(r.read_global(&exe, "x"), Some(42));
        assert_eq!(r.read_global(&exe, "y"), Some(8));
    }

    #[test]
    fn loops_and_arrays() {
        let (r, exe) = run("int a[10]; int sum;
             void main() {
                 int i;
                 for (i = 0; i < 10; i = i + 1) { __loopbound(10); a[i] = i * i; }
                 sum = 0;
                 for (i = 0; i < 10; i = i + 1) { __loopbound(10); sum = sum + a[i]; }
             }");
        assert_eq!(r.read_global(&exe, "sum"), Some(285));
        assert_eq!(r.read_global_at(&exe, "a", 3), Some(9));
    }

    #[test]
    fn short_and_char_sign_extension() {
        let (r, exe) = run("short s[2]; char c[2]; int x; int y;
             void main() {
                 s[0] = -2; c[0] = -3;
                 x = s[0]; y = c[0];
             }");
        assert_eq!(r.read_global(&exe, "x"), Some(-2));
        assert_eq!(r.read_global(&exe, "y"), Some(-3));
    }

    #[test]
    fn calls_and_recursion_free_fib() {
        let (r, exe) = run("int fib;
             int fib_iter(int n) {
                 int a; int b; int t; int i;
                 a = 0; b = 1;
                 for (i = 0; i < n; i = i + 1) { __loopbound(20); t = a + b; a = b; b = t; }
                 return a;
             }
             void main() { fib = fib_iter(10); }");
        assert_eq!(r.read_global(&exe, "fib"), Some(55));
    }

    #[test]
    fn division_and_modulo() {
        let (r, exe) = run("int q; int m; int nq; int nm;
             void main() { q = 17 / 5; m = 17 % 5; nq = -17 / 5; nm = -17 % 5; }");
        assert_eq!(r.read_global(&exe, "q"), Some(3));
        assert_eq!(r.read_global(&exe, "m"), Some(2));
        assert_eq!(r.read_global(&exe, "nq"), Some(-3), "C truncation");
        assert_eq!(r.read_global(&exe, "nm"), Some(-2), "C remainder sign");
    }

    #[test]
    fn logical_operators_short_circuit() {
        let (r, exe) = run("int calls; int res;
             int bump() { calls = calls + 1; return 1; }
             void main() {
                 calls = 0;
                 res = (0 && bump()) + (1 || bump()) + (1 && bump());
             }");
        assert_eq!(r.read_global(&exe, "res"), Some(2));
        assert_eq!(
            r.read_global(&exe, "calls"),
            Some(1),
            "short-circuit skips bump twice"
        );
    }

    #[test]
    fn comparisons_and_bitwise() {
        let (r, exe) = run("int a; int b; int c; int d;
             void main() {
                 a = (3 < 5) + (5 <= 5) + (7 > 9) + (-1 < 0);
                 b = (6 & 3) + (6 | 3) + (6 ^ 3);
                 c = (1 << 10) + (-16 >> 2);
                 d = !5 + !0 + ~0;
             }");
        assert_eq!(r.read_global(&exe, "a"), Some(3));
        assert_eq!(r.read_global(&exe, "b"), Some(2 + 7 + 5));
        assert_eq!(r.read_global(&exe, "c"), Some(1024 - 4));
        assert_eq!(r.read_global(&exe, "d"), Some(0), "!5 + !0 + ~0");
    }

    #[test]
    fn while_and_do_while_and_break_continue() {
        let (r, exe) = run(
            "int x;
             void main() {
                 int i;
                 x = 0; i = 0;
                 while (1) { __loopbound(100); i = i + 1; if (i > 10) break; if (i % 2) continue; x = x + i; }
                 do { x = x + 100; i = i - 1; } while (i > 9);
             }",
        );
        // evens 2..10 sum = 30; then do-while runs twice (i 11→10→9).
        assert_eq!(r.read_global(&exe, "x"), Some(30 + 200));
    }

    #[test]
    fn deep_spill_expression() {
        let (r, exe) = run(
            "int x; int g(int a, int b, int c, int d) { return a + b * c - d; }
             void main() {
                 int a; a = 2;
                 x = a + (a + (a + (a + (a + (a + (a + (a + g(a, a, a, a))))))));
             }",
        );
        assert_eq!(r.read_global(&exe, "x"), Some(2 * 8 + (2 + 4 - 2)));
    }

    #[test]
    fn spm_placement_gives_same_result_faster() {
        let src = "int t[32]; int s;
             int work() {
                 int i; int acc;
                 acc = 0;
                 for (i = 0; i < 32; i = i + 1) { __loopbound(32); t[i] = i; }
                 for (i = 0; i < 32; i = i + 1) { __loopbound(32); acc = acc + t[i]; }
                 return acc;
             }
             void main() { s = work(); }";
        let m = compile(src).unwrap();
        let slow = link(&m, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let fast = link(
            &m,
            &MemoryMap::with_spm(1024),
            &SpmAssignment::of(["work", "t"]),
        )
        .unwrap();
        let rs = simulate(
            &slow.exe,
            &MachineConfig::uncached(),
            &SimOptions::default(),
        )
        .unwrap();
        let rf = simulate(
            &fast.exe,
            &MachineConfig::uncached(),
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(rs.read_global(&slow.exe, "s"), Some(496));
        assert_eq!(rf.read_global(&fast.exe, "s"), Some(496));
        assert!(
            rf.cycles < rs.cycles,
            "scratchpad must be faster: {} vs {}",
            rf.cycles,
            rs.cycles
        );
    }

    #[test]
    fn cache_improves_over_uncached_for_loops() {
        let src = "int s;
             void main() {
                 int i;
                 s = 0;
                 for (i = 0; i < 200; i = i + 1) { __loopbound(200); s = s + i; }
             }";
        let m = compile(src).unwrap();
        let l = link(&m, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let plain = simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();
        let cached = simulate(
            &l.exe,
            &MachineConfig::with_unified_cache(1024),
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(cached.read_global(&l.exe, "s"), Some(19900));
        assert!(
            cached.cycles < plain.cycles,
            "loop should hit in cache: {} vs {}",
            cached.cycles,
            plain.cycles
        );
        assert!(cached.mem_stats.cache_hits > cached.mem_stats.cache_misses);
    }

    #[test]
    fn profile_counts_hot_function() {
        let (r, _) = run(
            "int x;
             int hot(int n) { return n * 2; }
             void main() { int i; x = 0; for (i = 0; i < 50; i = i + 1) { __loopbound(50); x = x + hot(i); } }",
        );
        let hot = r.profile.symbol("hot").unwrap();
        let main = r.profile.symbol("main").unwrap();
        assert!(hot.fetches > 0);
        assert!(main.fetches > hot.fetches, "main body is bigger");
        let x = r.profile.symbol("x").unwrap();
        assert!(x.writes[2] >= 51);
    }

    #[test]
    fn console_output() {
        let (r, _) = run("void main() { }");
        assert_eq!(r.console, "");
        assert_eq!(r.exit, ExitReason::Halted);
    }

    #[test]
    fn watchdog_fires() {
        let m = compile("void main() { while (1) { __loopbound(1000000); } }").unwrap();
        let l = link(&m, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let opt = SimOptions {
            max_cycles: 10_000,
            ..SimOptions::default()
        };
        let err = simulate(&l.exe, &MachineConfig::uncached(), &opt).unwrap_err();
        assert!(matches!(err, SimError::Watchdog { .. }));
    }
}
