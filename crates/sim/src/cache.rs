//! Cache model: tag store only.
//!
//! The cache is write-through with no write-allocate, so main memory always
//! holds current data and the model only needs tags + replacement state.
//! This exactly matches the timing the WCET analyzer assumes and keeps the
//! simulated data path trivially correct. Geometry and timing come from
//! [`spmlab_isa::cachecfg::CacheConfig`], shared with the WCET analyzer.

use spmlab_isa::cachecfg::SetIndexer;
pub use spmlab_isa::cachecfg::{CacheConfig, CacheScope, Replacement};

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    tag: u32,
    /// Higher = more recently used (LRU); insertion order (round-robin).
    stamp: u64,
}

/// The tag store. Ways are stored in one flat `assoc`-strided vector (set
/// `s` owns `ways[s*assoc .. (s+1)*assoc]`) so a lookup touches one
/// contiguous cache-friendly slice instead of chasing a per-set heap
/// allocation.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Precomputed set/tag math shared with the WCET analyzer's abstract
    /// caches (one definition of line mapping for both sides).
    idx: SetIndexer,
    assoc: usize,
    ways: Vec<Way>,
    tick: u64,
    rr_next: Vec<u32>,
    rng: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present.
    Hit,
    /// Line absent (and filled, for reads).
    Miss,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate();
        let sets = cfg.num_sets();
        let rng_seed = match cfg.replacement {
            Replacement::Random { seed } => seed | 1,
            _ => 1,
        };
        Cache {
            ways: vec![Way::default(); (sets * cfg.assoc) as usize],
            assoc: cfg.assoc as usize,
            rr_next: vec![0; sets as usize],
            idx: cfg.indexer(),
            cfg,
            tick: 0,
            rng: rng_seed,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let (set, tag) = self.idx.set_and_tag(addr);
        (set as usize, tag)
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// A read access: returns hit/miss and fills the line on a miss.
    #[inline]
    pub fn read(&mut self, addr: u32) -> Lookup {
        let (set, tag) = self.set_and_tag(addr);
        if self.assoc == 1 {
            // Direct-mapped fast path: no recency bookkeeping, no victim
            // search — the way either holds the tag or is replaced.
            let w = &mut self.ways[set];
            if w.valid && w.tag == tag {
                return Lookup::Hit;
            }
            *w = Way {
                valid: true,
                tag,
                stamp: 0,
            };
            return Lookup::Miss;
        }
        self.tick += 1;
        let tick = self.tick;
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.stamp = tick; // LRU touch (harmless for other policies).
            return Lookup::Hit;
        }
        // Miss: pick a victim way and fill.
        let victim = if let Some(inv) = ways.iter().position(|w| !w.valid) {
            inv
        } else {
            match self.cfg.replacement {
                Replacement::Lru => ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .unwrap_or(0),
                Replacement::RoundRobin => {
                    let v = self.rr_next[set] as usize;
                    self.rr_next[set] = (self.rr_next[set] + 1) % self.cfg.assoc;
                    v
                }
                Replacement::Random { .. } => {
                    let r = self.xorshift();
                    (r % self.cfg.assoc as u64) as usize
                }
            }
        };
        self.ways[base + victim] = Way {
            valid: true,
            tag,
            stamp: tick,
        };
        Lookup::Miss
    }

    fn set_ways(&self, set: usize) -> &[Way] {
        &self.ways[set * self.assoc..(set + 1) * self.assoc]
    }

    /// A write access: write-through, no allocate, no recency update.
    /// Returns whether the line was present (timing is unaffected either
    /// way; the write always pays the main-memory cost).
    pub fn write(&mut self, addr: u32) -> Lookup {
        let (set, tag) = self.set_and_tag(addr);
        if self.set_ways(set).iter().any(|w| w.valid && w.tag == tag) {
            Lookup::Hit
        } else {
            Lookup::Miss
        }
    }

    /// Whether the line containing `addr` is currently present (no state
    /// change) — used by analysis soundness tests.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.set_ways(set).iter().any(|w| w.valid && w.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(CacheConfig::unified(64)); // 4 sets of 16B
        assert_eq!(c.read(0x100), Lookup::Miss);
        assert_eq!(c.read(0x100), Lookup::Hit);
        assert_eq!(c.read(0x104), Lookup::Hit, "same line");
        // 0x140 maps to the same set (64-byte stride), evicts.
        assert_eq!(c.read(0x140), Lookup::Miss);
        assert_eq!(c.read(0x100), Lookup::Miss, "evicted by conflict");
    }

    #[test]
    fn two_way_lru_keeps_both() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Lru);
        let mut c = Cache::new(cfg); // 2 sets × 2 ways
        c.read(0x000);
        c.read(0x040); // same set, second way
        assert_eq!(c.read(0x000), Lookup::Hit);
        assert_eq!(c.read(0x040), Lookup::Hit);
        // Third conflicting line evicts the LRU one (0x000 touched last ⇒
        // 0x040 is LRU... we touched 0x040 after 0x000, then 0x000, so LRU
        // is 0x040).
        c.read(0x080);
        assert_eq!(
            c.read(0x000),
            Lookup::Miss,
            "0x000 was LRU after 0x040 hit? order check"
        );
    }

    #[test]
    fn lru_order_detailed() {
        let cfg = CacheConfig::set_assoc(32, 2, Replacement::Lru); // 1 set, 2 ways
        let mut c = Cache::new(cfg);
        c.read(0x00); // A
        c.read(0x10); // B
        c.read(0x00); // touch A → LRU is B
        c.read(0x20); // C evicts B
        assert!(c.probe(0x00));
        assert!(!c.probe(0x10));
        assert!(c.probe(0x20));
    }

    #[test]
    fn writes_do_not_allocate() {
        let mut c = Cache::new(CacheConfig::unified(64));
        assert_eq!(c.write(0x200), Lookup::Miss);
        assert!(!c.probe(0x200), "no write-allocate");
        c.read(0x200);
        assert_eq!(c.write(0x200), Lookup::Hit);
        assert!(c.probe(0x200));
    }

    #[test]
    fn round_robin_cycles_ways() {
        let cfg = CacheConfig::set_assoc(32, 2, Replacement::RoundRobin); // 1 set
        let mut c = Cache::new(cfg);
        c.read(0x00);
        c.read(0x10);
        c.read(0x20); // evicts way 0 (A)
        assert!(!c.probe(0x00));
        assert!(c.probe(0x10));
        c.read(0x30); // evicts way 1 (B)
        assert!(!c.probe(0x10));
        assert!(c.probe(0x20) && c.probe(0x30));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mk = |seed| {
            let cfg = CacheConfig::set_assoc(64, 4, Replacement::Random { seed });
            let mut c = Cache::new(cfg);
            let mut pattern = Vec::new();
            for i in 0..64u32 {
                pattern.push(c.read(i * 16 * 7) == Lookup::Hit);
            }
            pattern
        };
        assert_eq!(mk(42), mk(42));
    }

    #[test]
    fn miss_cost_matches_paper() {
        let cfg = CacheConfig::unified(1024);
        // 4 words × 4 cycles + 1 delivery = 17; hit = 1.
        assert_eq!(cfg.miss_cycles(), 17);
        assert_eq!(cfg.hit_cycles(), 1);
    }

    #[test]
    fn geometry() {
        let cfg = CacheConfig::unified(8192);
        assert_eq!(cfg.num_sets(), 512);
        let cfg = CacheConfig::set_assoc(8192, 4, Replacement::Lru);
        assert_eq!(cfg.num_sets(), 128);
    }
}
