//! Cache model: tag store plus per-line dirty bits.
//!
//! Under the default write-through / no-write-allocate policy the cache
//! needs tags only — main memory always holds current data, exactly like
//! the paper's machine. With [`WritePolicy::WriteBack`] the tag store
//! additionally carries one dirty bit per way: store hits dirty the line
//! in place, store misses write-allocate, and a fill that evicts a dirty
//! victim reports the victim's line address so the memory system can
//! charge the write-back at the victim's next level. The *data* path
//! stays trivially correct either way, because the simulator keeps the
//! backing store current on every store and models write-back purely as
//! timing (see the README's "Write policies and store buffers" section).
//! Geometry and timing come from [`spmlab_isa::cachecfg::CacheConfig`],
//! shared with the WCET analyzer.

use spmlab_isa::cachecfg::SetIndexer;
pub use spmlab_isa::cachecfg::{CacheConfig, CacheScope, Replacement, WritePolicy};

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// Higher = more recently used (LRU); insertion order (round-robin).
    stamp: u64,
}

/// The tag store. Ways are stored in one flat `assoc`-strided vector (set
/// `s` owns `ways[s*assoc .. (s+1)*assoc]`) so a lookup touches one
/// contiguous cache-friendly slice instead of chasing a per-set heap
/// allocation.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Precomputed set/tag math shared with the WCET analyzer's abstract
    /// caches (one definition of line mapping for both sides).
    idx: SetIndexer,
    assoc: usize,
    ways: Vec<Way>,
    tick: u64,
    rr_next: Vec<u32>,
    rng: u64,
}

/// Result of one cache access: whether the line was present, plus — when
/// a fill evicted a dirty victim — the victim line's base address (only
/// ever `Some` for write-back caches; write-through caches hold no dirty
/// state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Line was present.
    pub hit: bool,
    /// Base address of the dirty line this access evicted, if any.
    pub writeback: Option<u32>,
}

impl AccessResult {
    /// A plain hit (no eviction possible).
    pub const HIT: AccessResult = AccessResult {
        hit: true,
        writeback: None,
    };

    /// A miss whose fill evicted nothing dirty.
    pub const MISS: AccessResult = AccessResult {
        hit: false,
        writeback: None,
    };
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate();
        let sets = cfg.num_sets();
        let rng_seed = match cfg.replacement {
            Replacement::Random { seed } => seed | 1,
            _ => 1,
        };
        Cache {
            ways: vec![Way::default(); (sets * cfg.assoc) as usize],
            assoc: cfg.assoc as usize,
            rr_next: vec![0; sets as usize],
            idx: cfg.indexer(),
            cfg,
            tick: 0,
            rng: rng_seed,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let (set, tag) = self.idx.set_and_tag(addr);
        (set as usize, tag)
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The dirty victim's line address, if the way about to be replaced
    /// holds a modified line.
    fn victim_writeback(&self, set: usize, w: &Way) -> Option<u32> {
        (w.valid && w.dirty).then(|| self.idx.line_addr(set as u32, w.tag))
    }

    /// Fills `addr`'s line into its set, `dirty` flagged per the access
    /// kind, returning the evicted dirty victim's line address (if any).
    /// `stamp` is the recency value of the new line.
    fn fill(&mut self, set: usize, tag: u32, dirty: bool, stamp: u64) -> Option<u32> {
        let base = set * self.assoc;
        let ways = &self.ways[base..base + self.assoc];
        let victim = if let Some(inv) = ways.iter().position(|w| !w.valid) {
            inv
        } else {
            match self.cfg.replacement {
                Replacement::Lru => ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .unwrap_or(0),
                Replacement::RoundRobin => {
                    let v = self.rr_next[set] as usize;
                    self.rr_next[set] = (self.rr_next[set] + 1) % self.cfg.assoc;
                    v
                }
                Replacement::Random { .. } => {
                    let r = self.xorshift();
                    (r % self.cfg.assoc as u64) as usize
                }
            }
        };
        let wb = self.victim_writeback(set, &self.ways[base + victim]);
        self.ways[base + victim] = Way {
            valid: true,
            dirty,
            tag,
            stamp,
        };
        wb
    }

    /// A read access: returns hit/miss and fills the line (clean) on a
    /// miss, reporting a dirty victim's address for the write-back charge.
    #[inline]
    pub fn read(&mut self, addr: u32) -> AccessResult {
        self.access(addr, false)
    }

    /// A read or allocate-on-store access (`dirty` distinguishes them):
    /// the shared lookup-then-fill path.
    fn access(&mut self, addr: u32, dirty: bool) -> AccessResult {
        let (set, tag) = self.set_and_tag(addr);
        if self.assoc == 1 {
            // Direct-mapped fast path: no recency bookkeeping, no victim
            // search — the way either holds the tag or is replaced.
            let w = &mut self.ways[set];
            if w.valid && w.tag == tag {
                w.dirty |= dirty;
                return AccessResult::HIT;
            }
            let wb = (w.valid && w.dirty).then(|| self.idx.line_addr(set as u32, w.tag));
            *w = Way {
                valid: true,
                dirty,
                tag,
                stamp: 0,
            };
            return AccessResult {
                hit: false,
                writeback: wb,
            };
        }
        self.tick += 1;
        let tick = self.tick;
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.stamp = tick; // LRU touch (harmless for other policies).
            w.dirty |= dirty;
            return AccessResult::HIT;
        }
        // Miss: pick a victim way and fill.
        let wb = self.fill(set, tag, dirty, tick);
        AccessResult {
            hit: false,
            writeback: wb,
        }
    }

    fn set_ways(&self, set: usize) -> &[Way] {
        &self.ways[set * self.assoc..(set + 1) * self.assoc]
    }

    /// A data store, routed by the level's [`WritePolicy`]:
    ///
    /// * **write-through / no-allocate** (the paper's machine): the tag
    ///   store is untouched — no allocation, no recency update, no dirty
    ///   state — and only the hit/miss outcome is reported;
    /// * **write-back / write-allocate**: a hit dirties the line in place
    ///   (with a recency touch, like a read); a miss write-allocates the
    ///   line dirty, possibly evicting a dirty victim whose address is
    ///   reported for the write-back charge.
    pub fn write(&mut self, addr: u32) -> AccessResult {
        match self.cfg.write_policy {
            WritePolicy::WriteThrough => {
                let (set, tag) = self.set_and_tag(addr);
                AccessResult {
                    hit: self.set_ways(set).iter().any(|w| w.valid && w.tag == tag),
                    writeback: None,
                }
            }
            WritePolicy::WriteBack => self.access(addr, true),
        }
    }

    /// Installs a line arriving from an upper level's write-back
    /// (write-back L2 only): a present line is overwritten (and dirtied)
    /// in place, an absent line is allocated dirty with **no fill read
    /// charged** — a sector-write simplification: when this level's lines
    /// are larger than the incoming one (16-byte L1 lines into 32-byte L2
    /// lines by default), real write-allocate hardware would fetch the
    /// remainder, while this model allocates the containing line dirty
    /// for free. The WCET analyzer charges the *same* constant
    /// (`l1_writeback_cycles` = L2 lookup + word-per-cycle transfer), so
    /// the two sides agree and soundness is unaffected. Returns the
    /// evicted dirty victim's address, if any (the cascade charge).
    pub fn install_writeback(&mut self, addr: u32) -> Option<u32> {
        self.access(addr, true).writeback
    }

    /// Whether the line containing `addr` is currently present (no state
    /// change) — used by analysis soundness tests.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.set_ways(set).iter().any(|w| w.valid && w.tag == tag)
    }

    /// Whether the line containing `addr` is present *and dirty* (no
    /// state change; tests only).
    pub fn probe_dirty(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.set_ways(set)
            .iter()
            .any(|w| w.valid && w.dirty && w.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(CacheConfig::unified(64)); // 4 sets of 16B
        assert!(!c.read(0x100).hit);
        assert!(c.read(0x100).hit);
        assert!(c.read(0x104).hit, "same line");
        // 0x140 maps to the same set (64-byte stride), evicts.
        assert!(!c.read(0x140).hit);
        assert!(!c.read(0x100).hit, "evicted by conflict");
    }

    #[test]
    fn two_way_lru_keeps_both() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Lru);
        let mut c = Cache::new(cfg); // 2 sets × 2 ways
        c.read(0x000);
        c.read(0x040); // same set, second way
        assert!(c.read(0x000).hit);
        assert!(c.read(0x040).hit);
        // Third conflicting line evicts the LRU one (0x000 touched last ⇒
        // 0x040 is LRU... we touched 0x040 after 0x000, then 0x000, so LRU
        // is 0x040).
        c.read(0x080);
        assert!(
            !c.read(0x000).hit,
            "0x000 was LRU after 0x040 hit? order check"
        );
    }

    #[test]
    fn lru_order_detailed() {
        let cfg = CacheConfig::set_assoc(32, 2, Replacement::Lru); // 1 set, 2 ways
        let mut c = Cache::new(cfg);
        c.read(0x00); // A
        c.read(0x10); // B
        c.read(0x00); // touch A → LRU is B
        c.read(0x20); // C evicts B
        assert!(c.probe(0x00));
        assert!(!c.probe(0x10));
        assert!(c.probe(0x20));
    }

    #[test]
    fn write_through_does_not_allocate() {
        let mut c = Cache::new(CacheConfig::unified(64));
        assert!(!c.write(0x200).hit);
        assert!(!c.probe(0x200), "no write-allocate");
        c.read(0x200);
        assert!(c.write(0x200).hit);
        assert!(c.probe(0x200));
        assert!(!c.probe_dirty(0x200), "write-through holds no dirty state");
    }

    #[test]
    fn write_back_allocates_and_dirties() {
        let mut c = Cache::new(CacheConfig::unified(64).write_back());
        // Store miss: write-allocate, line dirty, no victim yet.
        let w = c.write(0x200);
        assert!(!w.hit);
        assert_eq!(w.writeback, None);
        assert!(c.probe(0x200) && c.probe_dirty(0x200));
        // Store hit: stays dirty.
        assert!(c.write(0x204).hit);
        // A conflicting read evicts the dirty line and reports it.
        let r = c.read(0x240); // same 4-set cache: 0x240 maps with 0x200
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(0x200));
        assert!(!c.probe_dirty(0x240), "read fills are clean");
        // Evicting the clean line reports nothing.
        assert_eq!(c.read(0x280).writeback, None);
    }

    #[test]
    fn read_fill_then_store_dirties_then_eviction_reports() {
        let mut c = Cache::new(CacheConfig::unified(64).write_back());
        c.read(0x100); // clean fill
        assert!(!c.probe_dirty(0x100));
        assert!(c.write(0x100).hit); // dirtied in place
        assert!(c.probe_dirty(0x100));
        assert_eq!(c.read(0x140).writeback, Some(0x100));
    }

    #[test]
    fn install_writeback_cascades() {
        let cfg = CacheConfig {
            line: 16,
            ..CacheConfig::l2(64).write_back()
        }; // 1 set × 4 ways of 16 B
        let mut c = Cache::new(cfg);
        for a in [0x000u32, 0x040, 0x080, 0x0C0] {
            assert_eq!(c.install_writeback(a), None);
        }
        // Fifth dirty line evicts the LRU dirty one.
        assert_eq!(c.install_writeback(0x100), Some(0x000));
        assert!(c.probe_dirty(0x100));
    }

    #[test]
    fn round_robin_cycles_ways() {
        let cfg = CacheConfig::set_assoc(32, 2, Replacement::RoundRobin); // 1 set
        let mut c = Cache::new(cfg);
        c.read(0x00);
        c.read(0x10);
        c.read(0x20); // evicts way 0 (A)
        assert!(!c.probe(0x00));
        assert!(c.probe(0x10));
        c.read(0x30); // evicts way 1 (B)
        assert!(!c.probe(0x10));
        assert!(c.probe(0x20) && c.probe(0x30));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mk = |seed| {
            let cfg = CacheConfig::set_assoc(64, 4, Replacement::Random { seed });
            let mut c = Cache::new(cfg);
            let mut pattern = Vec::new();
            for i in 0..64u32 {
                pattern.push(c.read(i * 16 * 7).hit);
            }
            pattern
        };
        assert_eq!(mk(42), mk(42));
    }

    #[test]
    fn miss_cost_matches_paper() {
        let cfg = CacheConfig::unified(1024);
        // 4 words × 4 cycles + 1 delivery = 17; hit = 1.
        assert_eq!(cfg.miss_cycles(), 17);
        assert_eq!(cfg.hit_cycles(), 1);
    }

    #[test]
    fn geometry() {
        let cfg = CacheConfig::unified(8192);
        assert_eq!(cfg.num_sets(), 512);
        let cfg = CacheConfig::set_assoc(8192, 4, Replacement::Lru);
        assert_eq!(cfg.num_sets(), 128);
    }
}
