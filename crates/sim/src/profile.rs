//! Execution profiling: per-symbol access counts (the allocator's benefit
//! function) and per-instruction hit/miss statistics (cache-analysis
//! soundness testing).

use spmlab_isa::image::Executable;
use spmlab_isa::mem::AccessWidth;
use std::collections::HashMap;

/// Access counts for one memory object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolProfile {
    /// Object name.
    pub name: String,
    /// Instruction fetches from inside the object (functions only); each is
    /// one 16-bit access.
    pub fetches: u64,
    /// Data reads by width (byte, half, word) — literal-pool loads land on
    /// the containing *function* here, exactly as the paper treats pools as
    /// part of the function object.
    pub reads: [u64; 3],
    /// Data writes by width.
    pub writes: [u64; 3],
}

impl SymbolProfile {
    /// Total data accesses.
    pub fn data_accesses(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }
}

/// Per-instruction dynamic statistics.
///
/// The hit/miss counters report the outcome at the *first* cache level in
/// each access's path; the `*_l2_misses` counters report the outcome of
/// L2 consultations (accesses that continued past their L1, or L1-less
/// traffic with an L2 configured). Together they let the soundness suite
/// check every static classification kind: always-hit ⇒ zero misses,
/// L1-always-miss ⇒ zero hits, guaranteed-L2-hit ⇒ zero L2 misses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsnStat {
    /// Times the instruction executed.
    pub execs: u64,
    /// Instruction-fetch first-level hits (cache configs only).
    pub fetch_hits: u64,
    /// Instruction-fetch misses attributed to it (cache configs only).
    pub fetch_misses: u64,
    /// Fetches that consulted the L2 and missed it.
    pub fetch_l2_misses: u64,
    /// Data accesses it performed.
    pub data_accesses: u64,
    /// Data-read first-level hits (cached reads only).
    pub data_hits: u64,
    /// Data-access misses (cached reads only).
    pub data_misses: u64,
    /// Data reads that consulted the L2 and missed it.
    pub data_l2_misses: u64,
    /// Dirty-victim evictions this instruction's *data* accesses
    /// triggered (write-back configurations only; fetch-triggered
    /// evictions in a unified write-back L1 are counted in
    /// [`crate::MemStats::dirty_evictions`] but not attributed to an
    /// instruction).
    pub write_backs: u64,
}

/// Sentinel for "no symbol" in the dense attribution table.
const NO_SYMBOL: u16 = u16::MAX;

/// Upper bound on the dense table's size (bytes of covered address span);
/// larger symbol spans fall back to binary search.
const DENSE_SPAN_CAP: u32 = 8 << 20;

/// A full execution profile.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-symbol counts, in symbol-table order.
    pub symbols: Vec<SymbolProfile>,
    /// Data accesses that hit no symbol (stack traffic, MMIO).
    pub unattributed_reads: u64,
    /// Writes that hit no symbol.
    pub unattributed_writes: u64,
    ranges: Vec<(u32, u32, usize)>,
    /// Dense address → symbol-index table covering every symbol
    /// (`table_base..table_base + table.len()`), so the per-access
    /// attribution in the simulator's hot loop is one load instead of a
    /// binary search. Empty when the span exceeds [`DENSE_SPAN_CAP`].
    table_base: u32,
    table: Vec<u16>,
}

impl Profile {
    /// Prepares a profile for the executable's symbol table.
    pub fn for_exe(exe: &Executable) -> Profile {
        let mut symbols = Vec::with_capacity(exe.symbols.len());
        let mut ranges = Vec::with_capacity(exe.symbols.len());
        for (i, s) in exe.symbols.iter().enumerate() {
            symbols.push(SymbolProfile {
                name: s.name.clone(),
                ..SymbolProfile::default()
            });
            ranges.push((s.addr, s.addr + s.size, i));
        }
        ranges.sort_unstable();
        let (table_base, table) = Self::build_table(&ranges);
        Profile {
            symbols,
            unattributed_reads: 0,
            unattributed_writes: 0,
            ranges,
            table_base,
            table,
        }
    }

    fn build_table(ranges: &[(u32, u32, usize)]) -> (u32, Vec<u16>) {
        let (Some(&(lo, ..)), Some(&(_, hi, _))) = (
            ranges.first(),
            ranges.iter().max_by_key(|&&(_, end, _)| end),
        ) else {
            return (0, Vec::new());
        };
        let span = hi.saturating_sub(lo);
        if span == 0 || span > DENSE_SPAN_CAP || ranges.len() >= NO_SYMBOL as usize {
            return (0, Vec::new());
        }
        let mut table = vec![NO_SYMBOL; span as usize];
        // Later (sorted-higher) ranges win on overlap, matching the binary
        // search's "last range starting at or below addr" rule.
        for &(start, end, idx) in ranges {
            for a in start..end {
                table[(a - lo) as usize] = idx as u16;
            }
        }
        (lo, table)
    }

    fn index_of(&self, addr: u32) -> Option<usize> {
        if !self.table.is_empty() {
            // The table covers every symbol: outside it, nothing matches.
            let off = addr.wrapping_sub(self.table_base) as usize;
            let idx = *self.table.get(off)?;
            return (idx != NO_SYMBOL).then_some(idx as usize);
        }
        let i = self.ranges.partition_point(|&(start, _, _)| start <= addr);
        let (start, end, idx) = *self.ranges.get(i.checked_sub(1)?)?;
        (addr >= start && addr < end).then_some(idx)
    }

    fn width_idx(width: AccessWidth) -> usize {
        match width {
            AccessWidth::Byte => 0,
            AccessWidth::Half => 1,
            AccessWidth::Word => 2,
        }
    }

    /// Records an instruction fetch at `pc`.
    pub fn record_fetch(&mut self, pc: u32) {
        if let Some(i) = self.index_of(pc) {
            self.symbols[i].fetches += 1;
        }
    }

    /// Records a data read.
    pub fn record_read(&mut self, addr: u32, width: AccessWidth) {
        match self.index_of(addr) {
            Some(i) => self.symbols[i].reads[Self::width_idx(width)] += 1,
            None => self.unattributed_reads += 1,
        }
    }

    /// Records a data write.
    pub fn record_write(&mut self, addr: u32, width: AccessWidth) {
        match self.index_of(addr) {
            Some(i) => self.symbols[i].writes[Self::width_idx(width)] += 1,
            None => self.unattributed_writes += 1,
        }
    }

    /// Looks up a symbol's profile by name.
    pub fn symbol(&self, name: &str) -> Option<&SymbolProfile> {
        self.symbols.iter().find(|s| s.name == name)
    }
}

/// Per-instruction statistics keyed by instruction address.
pub type InsnStats = HashMap<u32, InsnStat>;

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_isa::image::{LoadRegion, Symbol, SymbolKind};
    use spmlab_isa::mem::MemoryMap;

    fn exe() -> Executable {
        Executable {
            regions: vec![LoadRegion {
                addr: 0x0010_0000,
                bytes: vec![0; 64],
            }],
            symbols: vec![
                Symbol {
                    name: "f".into(),
                    addr: 0x0010_0000,
                    size: 16,
                    kind: SymbolKind::Func { code_size: 12 },
                },
                Symbol {
                    name: "g".into(),
                    addr: 0x0010_0010,
                    size: 8,
                    kind: SymbolKind::Object {
                        width: AccessWidth::Word,
                    },
                },
            ],
            entry: 0x0010_0000,
            memory_map: MemoryMap::no_spm(),
        }
    }

    #[test]
    fn attribution() {
        let mut p = Profile::for_exe(&exe());
        p.record_fetch(0x0010_0002);
        p.record_fetch(0x0010_0002);
        p.record_read(0x0010_0014, AccessWidth::Word);
        p.record_write(0x0010_0010, AccessWidth::Word);
        p.record_read(0x0020_0000, AccessWidth::Word); // stack-ish
        assert_eq!(p.symbol("f").unwrap().fetches, 2);
        assert_eq!(p.symbol("g").unwrap().reads[2], 1);
        assert_eq!(p.symbol("g").unwrap().writes[2], 1);
        assert_eq!(p.unattributed_reads, 1);
    }

    #[test]
    fn literal_pool_reads_attribute_to_function() {
        let mut p = Profile::for_exe(&exe());
        // Pool at f+12..16.
        p.record_read(0x0010_000C, AccessWidth::Word);
        assert_eq!(p.symbol("f").unwrap().reads[2], 1);
    }

    #[test]
    fn boundaries() {
        let mut p = Profile::for_exe(&exe());
        p.record_read(0x0010_0017, AccessWidth::Byte); // last byte of g
        p.record_read(0x0010_0018, AccessWidth::Byte); // past g
        assert_eq!(p.symbol("g").unwrap().reads[0], 1);
        assert_eq!(p.unattributed_reads, 1);
    }
}
