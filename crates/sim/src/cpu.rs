//! CPU architectural state and pure operation semantics.

use spmlab_isa::cond::Flags;

/// TH16 core state.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// Low registers `r0..r7`.
    pub regs: [u32; 8],
    /// Stack pointer.
    pub sp: u32,
    /// Link register.
    pub lr: u32,
    /// Program counter (address of the next instruction to execute).
    pub pc: u32,
    /// Condition flags.
    pub flags: Flags,
}

impl Cpu {
    /// Reads a low register.
    pub fn r(&self, reg: spmlab_isa::reg::Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Writes a low register.
    pub fn set_r(&mut self, reg: spmlab_isa::reg::Reg, value: u32) {
        self.regs[reg.index()] = value;
    }
}

/// Logical shift left by a register amount (ARM semantics, C flag ignored).
pub fn lsl_reg(v: u32, amount: u32) -> u32 {
    match amount & 0xFF {
        0 => v,
        a if a < 32 => v << a,
        _ => 0,
    }
}

/// Logical shift right by a register amount.
pub fn lsr_reg(v: u32, amount: u32) -> u32 {
    match amount & 0xFF {
        0 => v,
        a if a < 32 => v >> a,
        _ => 0,
    }
}

/// Arithmetic shift right by a register amount.
pub fn asr_reg(v: u32, amount: u32) -> u32 {
    match amount & 0xFF {
        0 => v,
        a if a < 32 => ((v as i32) >> a) as u32,
        _ => ((v as i32) >> 31) as u32,
    }
}

/// Rotate right by a register amount.
pub fn ror_reg(v: u32, amount: u32) -> u32 {
    let a = amount & 31;
    if a == 0 {
        v
    } else {
        v.rotate_right(a)
    }
}

/// Add with carry, returning `(result, flags)`.
pub fn adc(a: u32, b: u32, carry_in: bool) -> (u32, Flags) {
    let wide = a as u64 + b as u64 + carry_in as u64;
    let res = wide as u32;
    let c = wide >> 32 != 0;
    let v = ((a ^ res) & (b ^ res)) >> 31 != 0;
    (
        res,
        Flags {
            n: res >> 31 != 0,
            z: res == 0,
            c,
            v,
        },
    )
}

/// Subtract with carry (`a - b - !carry_in`), returning `(result, flags)`.
pub fn sbc(a: u32, b: u32, carry_in: bool) -> (u32, Flags) {
    let borrow = 1 - carry_in as u64;
    let wide = (a as u64).wrapping_sub(b as u64).wrapping_sub(borrow);
    let res = wide as u32;
    // C is NOT-borrow, as for SUB.
    let c = (a as u64) >= (b as u64 + borrow);
    let v = ((a ^ b) & (a ^ res)) >> 31 != 0;
    (
        res,
        Flags {
            n: res >> 31 != 0,
            z: res == 0,
            c,
            v,
        },
    )
}

/// Signed division with ARM-style edge cases (x/0 = 0; INT_MIN/-1 wraps).
pub fn sdiv(a: u32, b: u32) -> u32 {
    if b == 0 {
        0
    } else {
        (a as i32).wrapping_div(b as i32) as u32
    }
}

/// Unsigned division (x/0 = 0).
pub fn udiv(a: u32, b: u32) -> u32 {
    a.checked_div(b).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifts_by_register() {
        assert_eq!(lsl_reg(1, 4), 16);
        assert_eq!(lsl_reg(1, 0), 1);
        assert_eq!(lsl_reg(1, 32), 0);
        assert_eq!(lsl_reg(1, 255), 0);
        assert_eq!(lsr_reg(0x8000_0000, 31), 1);
        assert_eq!(lsr_reg(0x8000_0000, 32), 0);
        assert_eq!(asr_reg(0x8000_0000, 31), 0xFFFF_FFFF);
        assert_eq!(asr_reg(0x8000_0000, 40), 0xFFFF_FFFF);
        assert_eq!(asr_reg(0x4000_0000, 40), 0);
        assert_eq!(ror_reg(0x0000_00F0, 4), 0x0000_000F);
        assert_eq!(ror_reg(1, 32), 1);
    }

    #[test]
    fn carry_chain() {
        let (r, f) = adc(u32::MAX, 0, true);
        assert_eq!(r, 0);
        assert!(f.c && f.z);
        let (r, f) = sbc(5, 3, true);
        assert_eq!(r, 2);
        assert!(f.c);
        let (r, f) = sbc(3, 5, true);
        assert_eq!(r as i32, -2);
        assert!(!f.c);
        let (r, _) = sbc(5, 3, false);
        assert_eq!(r, 1);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(sdiv(10, 3), 3);
        assert_eq!(sdiv((-10i32) as u32, 3) as i32, -3, "truncates toward zero");
        assert_eq!(sdiv(7, 0), 0);
        assert_eq!(
            sdiv(i32::MIN as u32, u32::MAX),
            i32::MIN as u32,
            "INT_MIN / -1 wraps"
        );
        assert_eq!(udiv(10, 3), 3);
        assert_eq!(udiv(10, 0), 0);
    }
}
