//! Per-instruction semantic tests through hand-assembled images — covering
//! the instruction behaviours the MiniC compiler never emits (carry
//! chains, rotates, ADR, MMIO registers), so the simulator is trustworthy
//! for *any* TH16 binary, not just compiler output.

use spmlab_isa::cond::Cond;
use spmlab_isa::encode::encode_all;
use spmlab_isa::image::{Executable, LoadRegion, Symbol, SymbolKind};
use spmlab_isa::insn::{AluOp, Insn, ShiftOp};
use spmlab_isa::mem::{AccessWidth, MemoryMap, MAIN_BASE, MMIO_PUTC, MMIO_PUTINT};
use spmlab_isa::reg::{RegList, R0, R1, R2, R3, R4};
use spmlab_sim::{simulate, MachineConfig, SimOptions, SimResult};

/// Runs raw instructions at `MAIN_BASE` with a results area at
/// `MAIN_BASE + 0x1000`; returns the simulation result.
fn run(insns: &[Insn]) -> SimResult {
    let mut all = insns.to_vec();
    all.push(Insn::Swi { imm: 0 });
    let halfwords = encode_all(&all);
    let mut bytes = Vec::new();
    for hw in &halfwords {
        bytes.extend(hw.to_le_bytes());
    }
    let size = bytes.len() as u32;
    bytes.resize(0x2000, 0);
    let exe = Executable {
        regions: vec![LoadRegion {
            addr: MAIN_BASE,
            bytes,
        }],
        symbols: vec![
            Symbol {
                name: "_start".into(),
                addr: MAIN_BASE,
                size,
                kind: SymbolKind::Func { code_size: size },
            },
            Symbol {
                name: "result".into(),
                addr: MAIN_BASE + 0x1000,
                size: 64,
                kind: SymbolKind::Object {
                    width: AccessWidth::Word,
                },
            },
        ],
        entry: MAIN_BASE,
        memory_map: MemoryMap::no_spm(),
    };
    simulate(&exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap()
}

/// Loads a 32-bit constant into a register via MOV/LSL/ADD chains
/// (no literal pool in raw images).
fn load32(rd: spmlab_isa::reg::Reg, v: u32) -> Vec<Insn> {
    let mut out = vec![Insn::MovImm {
        rd,
        imm: (v >> 24) as u8,
    }];
    for shift in [16u32, 8, 0] {
        out.push(Insn::ShiftImm {
            op: ShiftOp::Lsl,
            rd,
            rm: rd,
            imm: 8,
        });
        let byte = ((v >> shift) & 0xFF) as u8;
        if byte != 0 {
            out.push(Insn::AddImm { rd, imm: byte });
        }
    }
    out
}

/// Stores `rd` to the results area slot `slot` (address staged in r4).
fn store_result(rd: spmlab_isa::reg::Reg, slot: u8) -> Vec<Insn> {
    let mut out = load32(R4, MAIN_BASE + 0x1000);
    out.push(Insn::StrImm {
        width: AccessWidth::Word,
        rd,
        rn: R4,
        off: slot * 4,
    });
    out
}

fn result(sim: &SimResult, slot: u32) -> i32 {
    sim.peek(MAIN_BASE + 0x1000 + slot * 4, AccessWidth::Word)
        .unwrap() as i32
}

#[test]
fn adc_sbc_carry_chain() {
    // 64-bit add of 0xFFFFFFFF + 1 via ADC: low word 0, high word 1.
    let mut p = load32(R0, 0xFFFF_FFFF);
    p.push(Insn::MovImm { rd: R1, imm: 1 });
    p.push(Insn::MovImm { rd: R2, imm: 0 });
    p.push(Insn::MovImm { rd: R3, imm: 0 });
    p.push(Insn::AddReg {
        rd: R0,
        rn: R0,
        rm: R1,
    }); // sets carry
    p.push(Insn::Alu {
        op: AluOp::Adc,
        rd: R2,
        rm: R3,
    }); // r2 = 0+0+C = 1
    p.extend(store_result(R0, 0));
    p.extend(store_result(R2, 1));
    let s = run(&p);
    assert_eq!(result(&s, 0), 0);
    assert_eq!(result(&s, 1), 1);

    // SBC: 5 - 3 with borrow clear (C=1 after CMP 5,3 since 5>=3).
    let mut p = vec![
        Insn::MovImm { rd: R0, imm: 5 },
        Insn::MovImm { rd: R1, imm: 3 },
        Insn::Alu {
            op: AluOp::Cmp,
            rd: R0,
            rm: R1,
        }, // C=1
        Insn::Alu {
            op: AluOp::Sbc,
            rd: R0,
            rm: R1,
        }, // 5-3-0 = 2
    ];
    p.extend(store_result(R0, 0));
    let s = run(&p);
    assert_eq!(result(&s, 0), 2);
}

#[test]
fn rotate_and_bit_ops() {
    let mut p = vec![
        Insn::MovImm { rd: R0, imm: 0xF0 },
        Insn::MovImm { rd: R1, imm: 4 },
        Insn::Alu {
            op: AluOp::Ror,
            rd: R0,
            rm: R1,
        }, // 0xF0 ror 4 = 0x0000000F
    ];
    p.extend(store_result(R0, 0));
    p.extend([
        Insn::MovImm { rd: R0, imm: 0xFF },
        Insn::MovImm { rd: R1, imm: 0x0F },
        Insn::Alu {
            op: AluOp::Bic,
            rd: R0,
            rm: R1,
        }, // 0xFF & !0x0F = 0xF0
    ]);
    p.extend(store_result(R0, 1));
    p.extend([
        Insn::MovImm { rd: R0, imm: 0 },
        Insn::Alu {
            op: AluOp::Mvn,
            rd: R0,
            rm: R0,
        }, // !0 = -1
    ]);
    p.extend(store_result(R0, 2));
    let s = run(&p);
    assert_eq!(result(&s, 0), 0x0F);
    assert_eq!(result(&s, 1), 0xF0);
    assert_eq!(result(&s, 2), -1);
}

#[test]
fn tst_and_cmn_set_flags_without_writing() {
    // TST: 0x0F & 0xF0 == 0 → Z set → BEQ taken, skipping the poison MOV
    // (a taken BCond with off 0 lands at pc+4, one halfword past it).
    let mut p = vec![
        Insn::MovImm { rd: R0, imm: 0x0F },
        Insn::MovImm { rd: R1, imm: 0xF0 },
        Insn::MovImm { rd: R2, imm: 7 },
        Insn::Alu {
            op: AluOp::Tst,
            rd: R0,
            rm: R1,
        },
        Insn::BCond {
            cond: Cond::Eq,
            off: 0,
        },
        Insn::MovImm { rd: R2, imm: 9 }, // skipped when Z holds
    ];
    p.extend(store_result(R0, 0)); // r0 unchanged by TST
    p.extend(store_result(R2, 1));
    let s = run(&p);
    assert_eq!(result(&s, 0), 0x0F, "TST must not write its destination");
    assert_eq!(result(&s, 1), 7, "BEQ taken: the poison MOV was skipped");

    // CMN: 5 + (-5) == 0 → Z set → BNE falls through to the witness MOV.
    let mut p = vec![
        Insn::MovImm { rd: R0, imm: 5 },
        Insn::MovImm { rd: R1, imm: 5 },
        Insn::Alu {
            op: AluOp::Neg,
            rd: R1,
            rm: R1,
        },
        Insn::Alu {
            op: AluOp::Cmn,
            rd: R0,
            rm: R1,
        },
        Insn::MovImm { rd: R2, imm: 0 },
        Insn::BCond {
            cond: Cond::Ne,
            off: 0,
        }, // would skip the witness
        Insn::MovImm { rd: R2, imm: 1 },
    ];
    p.extend(store_result(R2, 0));
    let s = run(&p);
    assert_eq!(result(&s, 0), 1, "5 + (-5) compares to zero");
}

#[test]
fn adr_and_addsp_form_addresses() {
    // ADR points into the code region, word-aligned.
    let mut p = vec![Insn::Adr { rd: R0, imm: 2 }];
    p.extend(store_result(R0, 0));
    // ADD r1, sp, #8 — stack-relative address forming.
    p.push(Insn::AddSp { rd: R1, imm: 2 });
    p.extend(store_result(R1, 1));
    let s = run(&p);
    let adr = result(&s, 0) as u32;
    // ADR at MAIN_BASE: align4(pc = MAIN_BASE+4) + 2*4.
    assert_eq!(
        adr,
        ((MAIN_BASE + 4) & !3u32) + 8,
        "pc-relative, aligned, +2 words"
    );
    let stack_top = MemoryMap::no_spm().stack_top;
    assert_eq!(result(&s, 1) as u32, stack_top + 8);
}

#[test]
fn push_pop_roundtrip_and_sp_discipline() {
    let mut p = vec![
        Insn::MovImm { rd: R0, imm: 11 },
        Insn::MovImm { rd: R1, imm: 22 },
        Insn::MovImm { rd: R2, imm: 33 },
        Insn::Push {
            regs: RegList::of(&[R0, R1, R2]),
            lr: false,
        },
        Insn::MovImm { rd: R0, imm: 0 },
        Insn::MovImm { rd: R1, imm: 0 },
        Insn::MovImm { rd: R2, imm: 0 },
        Insn::Pop {
            regs: RegList::of(&[R0, R1, R2]),
            pc: false,
        },
    ];
    p.extend(store_result(R0, 0));
    p.extend(store_result(R1, 1));
    p.extend(store_result(R2, 2));
    let s = run(&p);
    assert_eq!((result(&s, 0), result(&s, 1), result(&s, 2)), (11, 22, 33));
}

#[test]
fn signed_and_unsigned_division_extension() {
    let mut p = vec![
        Insn::MovImm { rd: R0, imm: 100 },
        Insn::MovImm { rd: R1, imm: 7 },
        Insn::Sdiv { rd: R0, rm: R1 },
    ];
    p.extend(store_result(R0, 0));
    // Unsigned: 0xFFFFFFFE / 2 = 0x7FFFFFFF.
    p.extend(load32(R0, 0xFFFF_FFFE));
    p.push(Insn::MovImm { rd: R1, imm: 2 });
    p.push(Insn::Udiv { rd: R0, rm: R1 });
    p.extend(store_result(R0, 1));
    let s = run(&p);
    assert_eq!(result(&s, 0), 14);
    assert_eq!(result(&s, 1), 0x7FFF_FFFF);
}

#[test]
fn mmio_console_from_machine_code() {
    let mut p = load32(R4, MMIO_PUTC);
    p.push(Insn::MovImm { rd: R0, imm: b'k' });
    p.push(Insn::StrImm {
        width: AccessWidth::Word,
        rd: R0,
        rn: R4,
        off: 0,
    });
    p.extend(load32(R4, MMIO_PUTINT));
    p.push(Insn::MovImm { rd: R0, imm: 123 });
    p.push(Insn::StrImm {
        width: AccessWidth::Word,
        rd: R0,
        rn: R4,
        off: 0,
    });
    // SWI console too.
    p.push(Insn::MovImm { rd: R0, imm: b'!' });
    p.push(Insn::Swi { imm: 1 });
    let s = run(&p);
    assert_eq!(s.console, "k!");
    assert_eq!(s.int_outputs, vec![123]);
}

#[test]
fn narrow_loads_zero_extend_and_signed_variants_sign_extend() {
    // Store 0xFFFE halfword; reload unsigned (imm) vs signed (reg).
    let mut p = load32(R4, MAIN_BASE + 0x1000 + 32);
    p.extend(load32(R0, 0xFFFE));
    p.push(Insn::StrImm {
        width: AccessWidth::Half,
        rd: R0,
        rn: R4,
        off: 0,
    });
    p.push(Insn::LdrImm {
        width: AccessWidth::Half,
        rd: R1,
        rn: R4,
        off: 0,
    });
    p.extend(store_result(R1, 0)); // zero-extended: 0x0000FFFE
    p.push(Insn::MovImm { rd: R2, imm: 0 });
    p.extend(load32(R4, MAIN_BASE + 0x1000 + 32));
    p.push(Insn::LdrReg {
        width: AccessWidth::Half,
        signed: true,
        rd: R1,
        rn: R4,
        rm: R2,
    });
    p.extend(store_result(R1, 1)); // sign-extended: -2
    let s = run(&p);
    assert_eq!(result(&s, 0), 0xFFFE);
    assert_eq!(result(&s, 1), -2);
}

#[test]
fn cycle_accounting_matches_table1_for_straight_line_code() {
    // movs r0,#1 (1+2 fetch) ×3 + swi (1+2) = exact cycle arithmetic.
    let p = vec![
        Insn::MovImm { rd: R0, imm: 1 },
        Insn::MovImm { rd: R1, imm: 2 },
        Insn::MovImm { rd: R2, imm: 3 },
    ];
    let s = run(&p);
    // 4 instructions (incl. swi), each 1 base + 2 fetch cycles.
    assert_eq!(s.cycles, 4 * 3);
    assert_eq!(s.instructions, 4);
}
