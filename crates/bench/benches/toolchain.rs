//! Component benches: how fast are the substrates themselves?
//!
//! These track the compiler, simulator, WCET analyzer, allocator and ILP
//! solver in isolation, so performance regressions can be localised.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spmlab_alloc::energy::EnergyModel;
use spmlab_cc::{compile, link, SpmAssignment};
use spmlab_ilp::knapsack::{solve as knapsack_solve, Item};
use spmlab_ilp::model::{Model, Sense, VarKind};
use spmlab_isa::decode::decode;
use spmlab_isa::encode::encode;
use spmlab_isa::insn::Insn;
use spmlab_isa::mem::MemoryMap;
use spmlab_isa::reg::R0;
use spmlab_sim::{simulate, MachineConfig, SimOptions};
use spmlab_wcet::{analyze, WcetConfig};
use spmlab_workloads::{inputs, ADPCM, G721, INSERTSORT};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.throughput(Throughput::Bytes(G721.source.len() as u64));
    g.bench_function("compile_g721", |b| {
        b.iter(|| compile(&G721.source).unwrap())
    });
    g.finish();
}

fn bench_link(c: &mut Criterion) {
    let module = compile(&G721.source).unwrap();
    c.bench_function("link_g721", |b| {
        b.iter(|| link(&module, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap())
    });
}

fn bench_simulate(c: &mut Criterion) {
    let input = inputs::speech_like(64, 1);
    let linked = ADPCM
        .build(&MemoryMap::no_spm(), &SpmAssignment::none(), &input)
        .unwrap();
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.bench_function("adpcm_64_samples_uncached", |b| {
        b.iter(|| {
            simulate(
                &linked.exe,
                &MachineConfig::uncached(),
                &SimOptions::default(),
            )
            .unwrap()
        })
    });
    g.bench_function("adpcm_64_samples_cached", |b| {
        b.iter(|| {
            simulate(
                &linked.exe,
                &MachineConfig::with_unified_cache(1024),
                &SimOptions::default(),
            )
            .unwrap()
        })
    });
    let fast = SimOptions {
        insn_stats: false,
        profile: false,
        ..SimOptions::default()
    };
    g.bench_function("adpcm_64_samples_no_stats", |b| {
        b.iter(|| simulate(&linked.exe, &MachineConfig::uncached(), &fast).unwrap())
    });
    g.finish();
}

fn bench_wcet(c: &mut Criterion) {
    let input = INSERTSORT.typical_input();
    let linked = INSERTSORT
        .build(&MemoryMap::no_spm(), &SpmAssignment::none(), &input)
        .unwrap();
    let mut g = c.benchmark_group("wcet");
    g.sample_size(20);
    g.bench_function("region_timing_insertsort", |b| {
        b.iter(|| {
            analyze(
                &linked.exe,
                &WcetConfig::region_timing(),
                &linked.annotations,
            )
            .unwrap()
        })
    });
    let cache = spmlab_isa::cachecfg::CacheConfig::unified(1024);
    g.bench_function("cache_must_insertsort", |b| {
        b.iter(|| {
            analyze(
                &linked.exe,
                &WcetConfig::with_cache(cache.clone()),
                &linked.annotations,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_alloc(c: &mut Criterion) {
    let module = compile(&G721.source).unwrap();
    let input = inputs::speech_like(64, 1);
    let linked = G721
        .link_with_input(
            &module,
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
            &input,
        )
        .unwrap();
    let profile = simulate(
        &linked.exe,
        &MachineConfig::uncached(),
        &SimOptions::default(),
    )
    .unwrap()
    .profile;
    c.bench_function("knapsack_allocate_g721", |b| {
        b.iter(|| spmlab_alloc::allocate(&module, &profile, 2048, &EnergyModel::default()))
    });
}

fn bench_ilp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ilp");
    g.bench_function("knapsack_dp_64_items", |b| {
        let items: Vec<Item> = (0..64)
            .map(|i| Item {
                weight: 8 + (i * 7) % 120,
                value: (i % 13) as f64 + 1.0,
            })
            .collect();
        b.iter(|| knapsack_solve(&items, 2048))
    });
    g.bench_function("simplex_30_vars", |b| {
        b.iter(|| {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..30)
                .map(|i| m.add_var(format!("x{i}"), VarKind::Continuous, Some(10.0)))
                .collect();
            for w in vars.windows(2) {
                m.add_le(&[(w[0], 1.0), (w[1], 2.0)], 12.0);
            }
            let obj: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                .collect();
            m.set_objective(&obj);
            spmlab_ilp::simplex::solve_lp(&m).unwrap()
        })
    });
    g.finish();
}

fn bench_isa(c: &mut Criterion) {
    let insns: Vec<Insn> = (0..=u16::MAX)
        .step_by(7)
        .map(|hw| decode(hw, None).0)
        .collect();
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(insns.len() as u64));
    g.bench_function("encode_decode_roundtrip", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in &insns {
                let hw = encode(i);
                let (d, _) = decode(hw[0], hw.get(1).copied());
                acc = acc.wrapping_add(d.size());
            }
            acc
        })
    });
    g.bench_function("encode_movs", |b| {
        b.iter(|| encode(&Insn::MovImm { rd: R0, imm: 42 }))
    });
    g.finish();
}

criterion_group!(
    toolchain,
    bench_compile,
    bench_link,
    bench_simulate,
    bench_wcet,
    bench_alloc,
    bench_ilp,
    bench_isa
);
criterion_main!(toolchain);
