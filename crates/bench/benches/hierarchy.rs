//! Hierarchy-sweep benches: how expensive are simulation and multi-level
//! WCET analysis per memory configuration — and one full sweep emitting
//! the `BENCH_hierarchy.json` artifact so the perf/predictability
//! trajectory accumulates across revisions.

use criterion::{criterion_group, criterion_main, Criterion};
use spmlab::pipeline::Pipeline;
use spmlab::{hierarchy_axis, MemArchSpec, MemHierarchyConfig};
use spmlab_bench::{
    append_history, fnv1a64, hierarchy_figure, hierarchy_json_with_provenance, hierarchy_l1_size,
    workspace_root, BenchRecord, Provenance,
};
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_workloads::ADPCM;

fn bench_hierarchy_points(c: &mut Criterion) {
    let pipeline = Pipeline::new(&ADPCM).unwrap();
    let mut g = c.benchmark_group("hierarchy_sweep");
    g.sample_size(10);
    let l1 = 512;
    let configs: Vec<(&str, MemHierarchyConfig)> = vec![
        (
            "l1_unified",
            MemHierarchyConfig::l1_only(CacheConfig::unified(l1)),
        ),
        ("l1_split", MemHierarchyConfig::split_l1(l1 / 2, l1 / 2)),
        (
            "l1_split_l2",
            MemHierarchyConfig::split_l1(l1 / 2, l1 / 2).with_l2(CacheConfig::l2(4 * l1)),
        ),
    ];
    for (name, cfg) in configs {
        g.bench_function(name, |b| {
            b.iter(|| pipeline.run(&MemArchSpec::from_hierarchy(&cfg)).unwrap())
        });
    }
    g.finish();
}

fn bench_full_axis_and_emit_artifact(c: &mut Criterion) {
    // Time one quick axis under criterion, then write the artifacts from a
    // fresh *full* (slowest-benchmark) run so BENCH_hierarchy.json and the
    // tracked bench history record the heavyweight sweep's wall seconds.
    let mut g = c.benchmark_group("hierarchy_axis");
    g.sample_size(2);
    g.bench_function("adpcm_full_axis", |b| {
        b.iter(|| hierarchy_figure(true).unwrap())
    });
    g.finish();

    let start = std::time::Instant::now();
    let fig = hierarchy_figure(false).unwrap();
    let wall = start.elapsed().as_secs_f64();
    // Same provenance the `experiments hierarchy` path records: the
    // spec-axis hash always; counters/phases only under --profile (the
    // bench never profiles, so those stay absent).
    let provenance = Provenance {
        spec_hash: fnv1a64(
            &hierarchy_axis(hierarchy_l1_size(false))
                .iter()
                .map(|h| MemArchSpec::from_hierarchy(h).label())
                .collect::<Vec<_>>()
                .join("|"),
        ),
        ..Provenance::default()
    };
    let json = hierarchy_json_with_provenance(&fig, wall, Some(&provenance));
    let root = workspace_root();
    let path = root.join("BENCH_hierarchy.json");
    std::fs::write(&path, json).expect("write BENCH_hierarchy.json");
    let record = BenchRecord::summarise(&fig, false, wall).with_provenance(provenance);
    append_history(&root.join("bench_history.jsonl"), &record).expect("append bench history");
    println!(
        "wrote {} ({} points, l1 = {} B, {:.3}s) and appended bench_history.jsonl @ {}",
        path.display(),
        fig.rows().len(),
        hierarchy_l1_size(false),
        wall,
        record.rev,
    );
}

criterion_group!(
    hierarchy,
    bench_hierarchy_points,
    bench_full_axis_and_emit_artifact
);
criterion_main!(hierarchy);
