//! Hierarchy-sweep benches: how expensive are simulation and multi-level
//! WCET analysis per memory configuration — and one full sweep emitting
//! the `BENCH_hierarchy.json` artifact so the perf/predictability
//! trajectory accumulates across revisions.

use criterion::{criterion_group, criterion_main, Criterion};
use spmlab::pipeline::Pipeline;
use spmlab::MemHierarchyConfig;
use spmlab_bench::{hierarchy_figure, hierarchy_json, hierarchy_l1_size};
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_workloads::ADPCM;

fn bench_hierarchy_points(c: &mut Criterion) {
    let pipeline = Pipeline::new(&ADPCM).unwrap();
    let mut g = c.benchmark_group("hierarchy_sweep");
    g.sample_size(10);
    let l1 = 512;
    let configs: Vec<(&str, MemHierarchyConfig)> = vec![
        (
            "l1_unified",
            MemHierarchyConfig::l1_only(CacheConfig::unified(l1)),
        ),
        ("l1_split", MemHierarchyConfig::split_l1(l1 / 2, l1 / 2)),
        (
            "l1_split_l2",
            MemHierarchyConfig::split_l1(l1 / 2, l1 / 2).with_l2(CacheConfig::l2(4 * l1)),
        ),
    ];
    for (name, cfg) in configs {
        g.bench_function(name, |b| {
            b.iter(|| pipeline.run_hierarchy(cfg.clone()).unwrap())
        });
    }
    g.finish();
}

fn bench_full_axis_and_emit_artifact(c: &mut Criterion) {
    // Time one full quick axis, then write the artifact from a fresh run.
    let mut g = c.benchmark_group("hierarchy_axis");
    g.sample_size(2);
    g.bench_function("adpcm_full_axis", |b| {
        b.iter(|| hierarchy_figure(true).unwrap())
    });
    g.finish();

    let start = std::time::Instant::now();
    let fig = hierarchy_figure(true).unwrap();
    let json = hierarchy_json(&fig, start.elapsed().as_secs_f64());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hierarchy.json");
    std::fs::write(path, json).expect("write BENCH_hierarchy.json");
    println!(
        "wrote {path} ({} points, l1 = {} B)",
        fig.rows().len(),
        hierarchy_l1_size(true)
    );
}

criterion_group!(
    hierarchy,
    bench_hierarchy_points,
    bench_full_axis_and_emit_artifact
);
criterion_main!(hierarchy);
