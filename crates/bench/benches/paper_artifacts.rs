//! Criterion benches, one group per paper artefact (DESIGN.md §4).
//!
//! Each group times the code that regenerates the artefact. Figure groups
//! time one representative sweep point per branch (full sweeps are the
//! `experiments` binary's job) so `cargo bench` stays fast.

use criterion::{criterion_group, criterion_main, Criterion};
use spmlab::figures::{table1, table2, Tightness};
use spmlab::pipeline::Pipeline;
use spmlab::MemArchSpec;
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_workloads::{paper_benchmarks, ADPCM, G721, INSERTSORT, MULTISORT};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_timing_model", |b| b.iter(table1));
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_compile");
    g.sample_size(10);
    g.bench_function("compile_paper_benchmarks", |b| {
        b.iter(|| table2(&paper_benchmarks()).unwrap())
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_g721");
    g.sample_size(10);
    let pipeline = Pipeline::new(&G721).unwrap();
    g.bench_function("spm_point_1024", |b| {
        b.iter(|| pipeline.run(&MemArchSpec::spm(1024)).unwrap())
    });
    g.bench_function("cache_point_1024", |b| {
        b.iter(|| {
            pipeline
                .run(&MemArchSpec::single_cache(CacheConfig::unified(1024)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    // Figure 4 is the ratio of the Figure 3 series; the incremental cost
    // is the ratio computation itself, which we time over a cached run.
    let pipeline = Pipeline::new(&G721).unwrap();
    let point = pipeline.run(&MemArchSpec::spm(1024)).unwrap();
    c.bench_function("fig4_ratio", |b| b.iter(|| point.ratio()));
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_multisort");
    g.sample_size(10);
    let pipeline = Pipeline::new(&MULTISORT).unwrap();
    g.bench_function("spm_point_1024", |b| {
        b.iter(|| pipeline.run(&MemArchSpec::spm(1024)).unwrap())
    });
    g.bench_function("cache_point_1024", |b| {
        b.iter(|| {
            pipeline
                .run(&MemArchSpec::single_cache(CacheConfig::unified(1024)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_adpcm");
    g.sample_size(10);
    let pipeline = Pipeline::new(&ADPCM).unwrap();
    g.bench_function("spm_point_512", |b| {
        b.iter(|| pipeline.run(&MemArchSpec::spm(512)).unwrap())
    });
    g.bench_function("cache_point_512", |b| {
        b.iter(|| {
            pipeline
                .run(&MemArchSpec::single_cache(CacheConfig::unified(512)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_tightness(c: &mut Criterion) {
    let mut g = c.benchmark_group("tightness_sort");
    g.sample_size(10);
    g.bench_function("insertsort_worst_case", |b| {
        b.iter(|| Tightness::run(&INSERTSORT, 0).unwrap())
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_table1,
    bench_table2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_tightness
);
criterion_main!(paper);
