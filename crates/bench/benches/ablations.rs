//! Ablation benches for the design choices DESIGN.md calls out: the
//! persistence extension, instruction-only caches, set-associativity, and
//! WCET-aware allocation (all §5 future-work items of the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use spmlab::pipeline::Pipeline;
use spmlab::MemArchSpec;
use spmlab_alloc::wcet_aware;
use spmlab_isa::annot::AnnotationSet;
use spmlab_isa::cachecfg::{CacheConfig, Replacement};
use spmlab_workloads::{ADPCM, INSERTSORT};

fn bench_persistence(c: &mut Criterion) {
    let pipeline = Pipeline::new(&ADPCM).unwrap();
    let mut g = c.benchmark_group("ablation_persistence");
    g.sample_size(10);
    g.bench_function("must_only_1024", |b| {
        b.iter(|| {
            pipeline
                .run(&MemArchSpec::single_cache(CacheConfig::unified(1024)))
                .unwrap()
        })
    });
    g.bench_function("with_persistence_1024", |b| {
        b.iter(|| {
            pipeline
                .run(&MemArchSpec {
                    persistence: true,
                    ..MemArchSpec::single_cache(CacheConfig::unified(1024))
                })
                .unwrap()
        })
    });
    g.finish();
}

fn bench_icache(c: &mut Criterion) {
    let pipeline = Pipeline::new(&ADPCM).unwrap();
    let mut g = c.benchmark_group("ablation_icache");
    g.sample_size(10);
    g.bench_function("unified_1024", |b| {
        b.iter(|| {
            pipeline
                .run(&MemArchSpec::single_cache(CacheConfig::unified(1024)))
                .unwrap()
        })
    });
    g.bench_function("instr_only_1024", |b| {
        b.iter(|| {
            pipeline
                .run(&MemArchSpec::single_cache(CacheConfig::instr_only(1024)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_assoc(c: &mut Criterion) {
    let pipeline = Pipeline::new(&ADPCM).unwrap();
    let mut g = c.benchmark_group("ablation_assoc");
    g.sample_size(10);
    for (name, cfg) in [
        ("direct", CacheConfig::unified(1024)),
        (
            "2way_lru",
            CacheConfig::set_assoc(1024, 2, Replacement::Lru),
        ),
        (
            "4way_random",
            CacheConfig::set_assoc(1024, 4, Replacement::Random { seed: 7 }),
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                pipeline
                    .run(&MemArchSpec::single_cache(cfg.clone()))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_wcet_aware_alloc(c: &mut Criterion) {
    let module = INSERTSORT.compile().unwrap();
    let mut g = c.benchmark_group("ablation_wcet_alloc");
    g.sample_size(10);
    g.bench_function("greedy_wcet_allocation_512", |b| {
        b.iter(|| wcet_aware::allocate(&module, 512, &AnnotationSet::new()).unwrap())
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_persistence,
    bench_icache,
    bench_assoc,
    bench_wcet_aware_alloc
);
criterion_main!(ablations);
