//! CLI surface of the design-space-exploration engine: `experiments
//! sweep` runs one shard of a grid, `experiments merge-shards`
//! reassembles shard streams into one run and reports its Pareto
//! frontier.
//!
//! A shard run is an ordinary checkpointed sweep (the PR 7 engine) over
//! the shard's stride of the grid axis; `--checkpoint <dir>` places each
//! stream at `<dir>/shard-<k>-of-<n>.jsonl` and resumes it when the file
//! already exists, so a retry loop needs no extra flags. `--dry-run`
//! prints the enumerated grid size, what dedup collapsed, and every
//! shard's point count without building a pipeline — the guard between a
//! typo and a million-point launch.

use crate::git_revision;
use spmlab::dse::{merge_texts, shard_header, GridSpec, MergedSweep, Shard};
use spmlab::sweep::{spec_sweep_with_session, SweepSession};
use spmlab::MemArchSpec;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Runs (or dry-runs) one shard of the grid in `grid_json`.
///
/// # Errors
///
/// A rendered description: grid parse/validation failures, an unknown
/// benchmark, pipeline construction errors, checkpoint I/O failures.
pub fn run_sweep(
    grid_json: &str,
    shard: Shard,
    checkpoint_dir: Option<&Path>,
    dry_run: bool,
) -> Result<String, String> {
    let started = std::time::Instant::now();
    let grid = GridSpec::from_json(grid_json)?;
    let (axis, stats) = grid.axis()?;
    if spmlab_obs::enabled() {
        spmlab_obs::counter("dse_grid_raw", stats.raw as u64);
        spmlab_obs::counter("dse_grid_points", stats.points as u64);
        spmlab_obs::counter("dse_shard_points", shard.points(axis.len()) as u64);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "grid `{}`: {} raw points -> {} invalid skipped, {} duplicates collapsed, \
         {} distinct points",
        grid.benchmark, stats.raw, stats.invalid, stats.duplicates, stats.points
    );
    if dry_run {
        for k in 0..shard.count {
            let s = Shard {
                index: k,
                count: shard.count,
            };
            let _ = writeln!(out, "  shard {s}: {} points", s.points(axis.len()));
        }
        let _ = writeln!(out, "dry run: nothing measured");
        return Ok(out);
    }

    let bench = spmlab_workloads::benchmark(&grid.benchmark)
        .ok_or_else(|| format!("unknown benchmark `{}`", grid.benchmark))?;
    let sub_axis: Vec<MemArchSpec> = shard.take(&axis);
    let header = shard_header(&git_revision(), &grid.benchmark, &axis, shard);
    let (session, ckpt_path) = match checkpoint_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = dir.join(format!("shard-{}-of-{}.jsonl", shard.index, shard.count));
            let session = if path.exists() {
                SweepSession::resume_from(&path, &header)
            } else {
                SweepSession::checkpoint_to(&path, &header)
            }
            .map_err(|e| e.to_string())?;
            (session, Some(path))
        }
        None => (SweepSession::none(), None),
    };

    let span = spmlab_obs::span_labeled("dse_shard", &shard.to_string());
    let pipeline = spmlab::pipeline::Pipeline::new(bench).map_err(|e| e.to_string())?;
    let resumed = session.resumed_points();
    let outcomes =
        spec_sweep_with_session(&pipeline, &sub_axis, &session).map_err(|e| e.to_string())?;
    drop(span);

    let ok = outcomes
        .iter()
        .filter(|o| o.outcome.result().is_some() && !o.outcome.is_degraded())
        .count();
    let degraded = outcomes.iter().filter(|o| o.outcome.is_degraded()).count();
    let failed = outcomes.iter().filter(|o| o.outcome.is_failed()).count();
    let secs = started.elapsed().as_secs_f64();
    let _ = writeln!(
        out,
        "shard {shard}: {} points ({resumed} resumed) -> {ok} ok, {degraded} degraded, \
         {failed} failed in {secs:.1}s ({:.2} points/s)",
        sub_axis.len(),
        sub_axis.len() as f64 / secs.max(1e-9),
    );
    if let Some(path) = ckpt_path {
        let _ = writeln!(out, "checkpoint stream: {}", path.display());
    }
    if failed > 0 {
        let _ = writeln!(
            out,
            "WARNING: {failed} failed points are recorded in the stream; resume re-runs them"
        );
    }
    Ok(out)
}

/// Merges shard streams into `out_path` and reports coverage, soundness,
/// and the Pareto frontier. The boolean is the CI gate: `true` only when
/// the merged run covers every point without failures, the frontier is
/// non-empty, and the WCET bound is sound (`sim <= bound`) at every
/// frontier point.
///
/// # Errors
///
/// Unreadable inputs, inconsistent streams (see
/// [`merge_texts`]), or an unwritable output path.
pub fn run_merge(out_path: &Path, inputs: &[PathBuf]) -> Result<(String, bool), String> {
    let mut texts = Vec::with_capacity(inputs.len());
    for path in inputs {
        texts.push(std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let merged = merge_texts(&refs)?;
    std::fs::write(out_path, merged.to_jsonl())
        .map_err(|e| format!("{}: {e}", out_path.display()))?;
    let (report, ok) = merge_report(&merged, inputs.len());
    if spmlab_obs::enabled() {
        spmlab_obs::counter("dse_merge_streams", inputs.len() as u64);
        spmlab_obs::counter("dse_frontier_points", merged.frontier().len() as u64);
    }
    Ok((
        format!("merged stream: {}\n{report}", out_path.display()),
        ok,
    ))
}

/// The human-readable merge report plus the pass/fail verdict.
pub fn merge_report(merged: &MergedSweep, streams: usize) -> (String, bool) {
    let frontier = merged.frontier();
    let covered = merged.covered();
    let failed = merged.failed();
    let complete = covered == merged.header.points && failed == 0;
    let unsound: Vec<&spmlab::FrontierPoint> = frontier
        .points()
        .iter()
        .filter(|p| p.wcet_cycles < p.sim_cycles)
        .collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} stream(s) -> rev {} benchmark `{}`: {covered}/{} points covered, {failed} failed",
        streams, merged.header.rev, merged.header.benchmark, merged.header.points
    );
    let _ = writeln!(
        out,
        "pareto frontier: {} of {covered} covered points",
        frontier.len()
    );
    out.push_str(&frontier.render());
    let ok = complete && !frontier.is_empty() && unsound.is_empty();
    if !complete {
        let _ = writeln!(out, "INCOMPLETE: resume the missing shards and re-merge");
    }
    if frontier.is_empty() {
        let _ = writeln!(out, "EMPTY FRONTIER: no completed points");
    }
    for p in &unsound {
        let _ = writeln!(
            out,
            "UNSOUND: point {} ({}) simulates {} cycles above its bound {}",
            p.index, p.label, p.sim_cycles, p.wcet_cycles
        );
    }
    if ok {
        let _ = writeln!(
            out,
            "OK: frontier non-empty, sim <= bound at every frontier point"
        );
    }
    (out, ok)
}
