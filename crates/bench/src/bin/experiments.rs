//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] all              # everything, report order
//! experiments [--quick] <id> [<id>..]    # selected experiments
//! experiments verify                     # check the paper's claims hold
//! experiments list                       # available ids
//! experiments bench-history --figure     # + plottable CSV/gnuplot artifacts
//! experiments --dump-spec [--quick]      # every axis point as reusable JSON
//! experiments --spec <file.json> [--bench <name>]
//!                                        # reproduce one sweep point
//! ```
//!
//! `--dump-spec` prints each standard sweep point as one `MemArchSpec`
//! JSON document; saving one to a file and feeding it back with `--spec`
//! reproduces that exact point (machine *and* analysis method) from the
//! command line.

use spmlab_bench::{
    dump_specs, exp_bench_history, exp_hierarchy_with_artifacts, run_experiment, run_spec_on,
    verify_claims, workspace_root, EXPERIMENTS,
};

fn usage() -> String {
    format!(
        "usage: experiments [--quick] <all|verify|{}>\n\
         \x20      experiments bench-history --figure\n\
         \x20      experiments --dump-spec [--quick]\n\
         \x20      experiments --spec <file.json> [--bench <name>]",
        EXPERIMENTS.join("|")
    )
}

/// The value following `--flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let figure = args.iter().any(|a| a == "--figure");

    // Single-spec reproduction mode.
    if let Some(spec_path) = flag_value(&args, "--spec") {
        let bench = flag_value(&args, "--bench").unwrap_or_else(|| "g721".into());
        let json = match std::fs::read_to_string(&spec_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{spec_path}`: {e}");
                std::process::exit(1);
            }
        };
        match run_spec_on(&bench, &json) {
            Ok(text) => {
                println!("{text}");
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    // Spec-inventory mode: every standard axis point as reusable JSON.
    if args.iter().any(|a| a == "--dump-spec") {
        for (label, spec) in dump_specs(quick) {
            println!("// {label}");
            println!("{}", spec.to_json());
        }
        return;
    }

    // Skip the values of value-taking flags when collecting experiment ids.
    let mut ids: Vec<&str> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--spec" || a == "--bench" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            ids.push(a.as_str());
        }
    }

    if ids.is_empty() || ids.contains(&"list") {
        eprintln!("{}", usage());
        std::process::exit(if ids.contains(&"list") { 0 } else { 2 });
    }

    if ids.contains(&"verify") {
        match verify_claims(quick) {
            Ok(claims) => {
                let mut ok = true;
                for (claim, holds) in claims {
                    println!("[{}] {claim}", if holds { "PASS" } else { "FAIL" });
                    ok &= holds;
                }
                std::process::exit(if ok { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let selected: Vec<&str> = if ids.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        ids
    };
    for id in selected {
        // The hierarchy scenario additionally maintains the tracked bench
        // artifacts (BENCH_hierarchy.json + bench_history.jsonl), and
        // bench-history honours --figure.
        let result = if id == "hierarchy" {
            exp_hierarchy_with_artifacts(quick, &workspace_root())
        } else if id == "bench-history" {
            Ok(exp_bench_history(figure))
        } else {
            run_experiment(id, quick)
        };
        match result {
            Ok(text) => {
                println!("==== {id} ====");
                println!("{text}");
            }
            Err(e) => {
                eprintln!("error in `{id}`: {e}");
                std::process::exit(1);
            }
        }
    }
}
