//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] all              # everything, report order
//! experiments [--quick] <id> [<id>..]    # selected experiments
//! experiments verify                     # check the paper's claims hold
//! experiments list                       # available ids
//! experiments bench-history --figure     # + plottable CSV/gnuplot artifacts
//! experiments --profile[=out.jsonl] <id> # instrumented run + phase table
//! experiments check-profile <file.jsonl> # validate a recorded stream
//! experiments --dump-spec [--quick]      # every axis point as reusable JSON
//! experiments --spec <file.json> [--bench <name>]
//!                                        # reproduce one sweep point
//! experiments --checkpoint c.jsonl hierarchy  # stream per-point checkpoints
//! experiments --resume c.jsonl hierarchy      # replay missing points only
//! experiments check-checkpoint <c.jsonl>      # validate a checkpoint stream
//! experiments sweep --spec-grid grid.json --shard 0/2 --checkpoint dir
//!                                        # run one shard of a DSE grid
//! experiments sweep --spec-grid grid.json --dry-run  # count, don't run
//! experiments merge-shards out.jsonl a.jsonl b.jsonl # reassemble + frontier
//! experiments fuzz --seed-range 0..500               # differential fuzzing
//! experiments fuzz --seed-range 0..64 --inject-miscompile
//!                                        # prove the harness catches bugs
//! ```
//!
//! `--checkpoint` streams one JSON line per completed sweep point of the
//! hierarchy scenario; a run killed mid-sweep loses at most its in-flight
//! points. `--resume` validates the checkpoint's header (git revision,
//! benchmark, spec-axis hash) against the current build, reuses the stored
//! points bit-identically, and measures only the missing ones — when the
//! file does not exist yet it starts a fresh checkpoint, so a retry loop
//! needs only the one flag. `check-checkpoint` is the strict stream gate:
//! every line must parse, and the run counts as complete only when every
//! axis point has a non-failed record.
//!
//! `--dump-spec` prints each standard sweep point as one `MemArchSpec`
//! JSON document; saving one to a file and feeding it back with `--spec`
//! reproduces that exact point (machine *and* analysis method) from the
//! command line.
//!
//! `sweep` runs one shard of a design-space grid (see the
//! `spmlab::dse` module docs): the grid JSON enumerates the space, `--shard
//! k/n` selects every n-th point, `--checkpoint <dir>` streams (and on a
//! second run resumes) `<dir>/shard-k-of-n.jsonl`, and `--dry-run` prints
//! the grid arithmetic without measuring anything. `merge-shards`
//! validates that its inputs are the complete shard set of one run,
//! writes the reassembled unsharded stream, and reports the 3-objective
//! Pareto frontier — exiting non-zero unless the merged run is complete,
//! the frontier is non-empty, and every frontier point is sound.
//!
//! `fuzz` drives the seeded MiniC generator through every differential the
//! toolchain supports (interpreter oracle, printer round-trip, simulator
//! checksum, v2-trace replay vs fresh simulation, WCET soundness — the
//! latter two at the default spec points *plus* a random machine drawn
//! deterministically per seed); the first failing
//! seed is delta-debugged to a minimal `.mc` repro written to
//! `--repro-out` (default `fuzz-repro.mc`). `--inject-miscompile` plants a
//! wrong strength-reduction into the compiled side only and demands the
//! harness catch and shrink it — the end-to-end proof the differentials
//! have teeth.
//!
//! `--profile` records every span/counter/gauge event to a JSON-lines file
//! (default `profile.jsonl`, `=-` streams to stderr) and prints a flat
//! per-phase breakdown when the run finishes. Profiled sweeps run
//! single-threaded so phase self-times add up to the wall time.

use std::sync::Arc;

use spmlab_bench::{
    dump_specs, exp_bench_history, exp_hierarchy_with_artifacts_ckpt, run_experiment, run_spec_on,
    verify_claims, workspace_root, CheckpointMode, EXPERIMENTS,
};
use spmlab_obs::collector::MemorySink;
use spmlab_obs::jsonl::{check_stream, JsonlSink};

fn usage() -> String {
    format!(
        "usage: experiments [--quick] [--profile[=out.jsonl|=-]] <all|verify|{}>\n\
         \x20      experiments bench-history --figure\n\
         \x20      experiments check-profile <file.jsonl>\n\
         \x20      experiments check-checkpoint <ckpt.jsonl>\n\
         \x20      experiments [--quick] --checkpoint <ckpt.jsonl> hierarchy\n\
         \x20      experiments [--quick] --resume <ckpt.jsonl> hierarchy\n\
         \x20      experiments --dump-spec [--quick]\n\
         \x20      experiments --spec <file.json> [--bench <name>]\n\
         \x20      experiments sweep --spec-grid <grid.json> [--shard k/n] \
         [--checkpoint <dir>] [--dry-run]\n\
         \x20      experiments merge-shards <out.jsonl> <shard.jsonl>...\n\
         \x20      experiments fuzz --seed-range <a..b> [--spec <file.json>] \
         [--inject-miscompile] [--repro-out <f.mc>]\n\
         \x20      experiments [--quick] dump-trace <out.bin>",
        EXPERIMENTS.join("|")
    )
}

/// Renders the flat per-phase breakdown collected during a profiled run.
fn render_profile(mem: &MemorySink) -> String {
    let rows = mem.flat_profile();
    let total: u64 = rows.iter().map(|r| r.self_ns).sum();
    let mut out = String::from("\nper-phase breakdown (self time):\n");
    out.push_str(&format!(
        "  {:<20} {:>8} {:>12} {:>12} {:>7}\n",
        "phase", "count", "incl ms", "self ms", "self %"
    ));
    for r in &rows {
        out.push_str(&format!(
            "  {:<20} {:>8} {:>12.3} {:>12.3} {:>6.1}%\n",
            r.name,
            r.count,
            r.inclusive_ns as f64 / 1e6,
            r.self_ns as f64 / 1e6,
            100.0 * r.self_ns as f64 / total.max(1) as f64
        ));
    }
    out.push_str(&format!(
        "  total attributed: {:.3} ms over {} phases\n",
        total as f64 / 1e6,
        rows.len()
    ));
    for (name, total) in mem.counters() {
        out.push_str(&format!("  counter {name} = {total}\n"));
    }
    if let Err(e) = mem.validate() {
        out.push_str(&format!("  WARNING: span tree malformed: {e}\n"));
    }
    out
}

/// The value following `--flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Installs the `--profile` sinks: a JSONL stream to `dest` (`-` =
/// stderr) plus an in-memory collector for the breakdown table. The
/// guards keep the sinks installed while held.
fn install_profile(dest: &str) -> (Arc<MemorySink>, [spmlab_obs::SinkGuard; 2]) {
    let stream_guard = if dest == "-" {
        spmlab_obs::add_sink(Arc::new(JsonlSink::new(std::io::stderr())))
    } else {
        match std::fs::File::create(dest) {
            Ok(f) => spmlab_obs::add_sink(Arc::new(JsonlSink::new(std::io::BufWriter::new(f)))),
            Err(e) => {
                eprintln!("error: cannot create profile `{dest}`: {e}");
                std::process::exit(1);
            }
        }
    };
    let mem = Arc::new(MemorySink::default());
    let mem_guard = spmlab_obs::add_sink(mem.clone());
    (mem, [stream_guard, mem_guard])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let figure = args.iter().any(|a| a == "--figure");
    let profile: Option<String> = args.iter().find_map(|a| {
        if a == "--profile" {
            Some("profile.jsonl".to_string())
        } else {
            a.strip_prefix("--profile=").map(str::to_string)
        }
    });

    // Stream-verification mode: sanity-check a recorded profile.
    if let Some(pos) = args.iter().position(|a| a == "check-profile") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("error: check-profile needs a file argument");
            std::process::exit(2);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                std::process::exit(1);
            }
        };
        match check_stream(&text) {
            Ok(s) => {
                println!(
                    "{path}: OK — {} lines ({} span opens, {} closes, {} counters, \
                     {} gauges, {} progress)",
                    s.lines, s.span_opens, s.span_closes, s.counters, s.gauges, s.progress
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    // Checkpoint-stream verification mode: the CI gate for resumable
    // sweeps. Exit 0 only for a valid stream covering every point with a
    // non-failed record.
    if let Some(pos) = args.iter().position(|a| a == "check-checkpoint") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("error: check-checkpoint needs a file argument");
            std::process::exit(2);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                std::process::exit(1);
            }
        };
        match spmlab::check_checkpoint(&text) {
            Ok(s) => {
                println!(
                    "{path}: {} points declared, {} covered ({} ok, {} degraded, {} failed)",
                    s.points, s.covered, s.ok, s.degraded, s.failed
                );
                if s.covered == s.points && s.failed == 0 {
                    println!("{path}: OK — complete");
                    return;
                }
                eprintln!("{path}: INCOMPLETE — resume the run to finish it");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    // Differential fuzzing over generated workloads: `fuzz --seed-range
    // a..b [--spec file.json] [--inject-miscompile] [--repro-out f.mc]`.
    if args.iter().any(|a| a == "fuzz") {
        let range = flag_value(&args, "--seed-range").unwrap_or_else(|| "0..64".into());
        let (start, end) = match spmlab_bench::fuzz::parse_seed_range(&range) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let spec = flag_value(&args, "--spec").map(|path| {
            let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: cannot read `{path}`: {e}");
                std::process::exit(1);
            });
            spmlab_isa::archspec::MemArchSpec::from_json(&json).unwrap_or_else(|e| {
                eprintln!("error: bad spec `{path}`: {e}");
                std::process::exit(1);
            })
        });
        let repro_out = flag_value(&args, "--repro-out").unwrap_or_else(|| "fuzz-repro.mc".into());
        let write_repro = |repro: &str| {
            if let Err(e) = std::fs::write(&repro_out, repro) {
                eprintln!("warning: cannot write repro `{repro_out}`: {e}");
            } else {
                eprintln!("shrunk repro written to {repro_out}");
            }
        };
        if args.iter().any(|a| a == "--inject-miscompile") {
            match spmlab_bench::fuzz::run_inject_demo(start, end, spec.as_ref()) {
                Ok(f) => {
                    println!(
                        "inject demo: caught the planted miscompile at seed {} — {}",
                        f.seed, f.detail
                    );
                    println!(
                        "minimal repro ({} lines):\n{}",
                        f.repro.lines().count(),
                        f.repro
                    );
                    write_repro(&f.repro);
                    return;
                }
                Err(e) => {
                    eprintln!("inject demo FAILED: {e}");
                    std::process::exit(1);
                }
            }
        }
        let mut specs = spmlab_bench::fuzz::default_fuzz_specs();
        if let Some(s) = &spec {
            specs.push(("spec-file".into(), s.clone()));
        }
        let outcome = spmlab_bench::fuzz::run_fuzz(start, end, spec.as_ref(), &specs);
        print!(
            "{}",
            spmlab_bench::fuzz::render_fuzz_report(start, end, &outcome)
        );
        if let Some(f) = &outcome.failure {
            write_repro(&f.repro);
            std::process::exit(1);
        }
        return;
    }

    // Golden-corpus regeneration: `gen-corpus <dir>` rewrites the pinned
    // generated programs + manifest (run after intentional generator or
    // timing-model changes; the corpus test diffs against these files).
    // v2-trace artifact: `dump-trace <out.bin>` serializes the G.721
    // (ADPCM with --quick) baseline's ordered trace, round-trip-verified.
    if let Some(pos) = args.iter().position(|a| a == "dump-trace") {
        let Some(out) = args.get(pos + 1) else {
            eprintln!("error: dump-trace needs an output path argument");
            std::process::exit(2);
        };
        let quick = args.iter().any(|a| a == "--quick");
        match spmlab_bench::dump_trace(quick, std::path::Path::new(out)) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(pos) = args.iter().position(|a| a == "gen-corpus") {
        let Some(dir) = args.get(pos + 1) else {
            eprintln!("error: gen-corpus needs a directory argument");
            std::process::exit(2);
        };
        match spmlab_bench::fuzz::write_corpus(std::path::Path::new(dir)) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    // DSE shard run: `sweep --spec-grid grid.json [--shard k/n]
    // [--checkpoint dir] [--dry-run]`.
    if args.iter().any(|a| a == "sweep") {
        let Some(grid_path) = flag_value(&args, "--spec-grid") else {
            eprintln!("error: sweep needs --spec-grid <grid.json>");
            std::process::exit(2);
        };
        let shard = match spmlab::Shard::parse(
            &flag_value(&args, "--shard").unwrap_or_else(|| "0/1".into()),
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let dry_run = args.iter().any(|a| a == "--dry-run");
        let ckpt_dir = flag_value(&args, "--checkpoint").map(std::path::PathBuf::from);
        let grid_json = match std::fs::read_to_string(&grid_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read `{grid_path}`: {e}");
                std::process::exit(1);
            }
        };
        let profile_state = profile.as_deref().map(install_profile);
        let result = spmlab_bench::dse::run_sweep(&grid_json, shard, ckpt_dir.as_deref(), dry_run);
        if let Some((mem, guards)) = profile_state {
            drop(guards);
            print!("{}", render_profile(&mem));
        }
        match result {
            Ok(text) => {
                print!("{text}");
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    // DSE shard reassembly: `merge-shards out.jsonl a.jsonl b.jsonl ...`.
    if let Some(pos) = args.iter().position(|a| a == "merge-shards") {
        let rest: Vec<std::path::PathBuf> = args[pos + 1..]
            .iter()
            .map(std::path::PathBuf::from)
            .collect();
        if rest.len() < 2 {
            eprintln!("error: merge-shards needs an output path and at least one input");
            std::process::exit(2);
        }
        match spmlab_bench::dse::run_merge(&rest[0], &rest[1..]) {
            Ok((report, ok)) => {
                print!("{report}");
                std::process::exit(i32::from(!ok));
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    // Single-spec reproduction mode.
    if let Some(spec_path) = flag_value(&args, "--spec") {
        let bench = flag_value(&args, "--bench").unwrap_or_else(|| "g721".into());
        let json = match std::fs::read_to_string(&spec_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{spec_path}`: {e}");
                std::process::exit(1);
            }
        };
        match run_spec_on(&bench, &json) {
            Ok(text) => {
                println!("{text}");
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    // Spec-inventory mode: every standard axis point as reusable JSON.
    if args.iter().any(|a| a == "--dump-spec") {
        for (label, spec) in dump_specs(quick) {
            println!("// {label}");
            println!("{}", spec.to_json());
        }
        return;
    }

    // Checkpoint/resume flags (hierarchy scenario only).
    let ckpt_mode = match (
        flag_value(&args, "--checkpoint"),
        flag_value(&args, "--resume"),
    ) {
        (Some(_), Some(_)) => {
            eprintln!("error: --checkpoint and --resume are mutually exclusive");
            std::process::exit(2);
        }
        (Some(p), None) => CheckpointMode::Fresh(p.into()),
        (None, Some(p)) => CheckpointMode::Resume(p.into()),
        (None, None) => CheckpointMode::Off,
    };

    // Skip the values of value-taking flags when collecting experiment ids.
    let mut ids: Vec<&str> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--spec" || a == "--bench" || a == "--checkpoint" || a == "--resume" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            ids.push(a.as_str());
        }
    }

    if ids.is_empty() || ids.contains(&"list") {
        eprintln!("{}", usage());
        std::process::exit(if ids.contains(&"list") { 0 } else { 2 });
    }

    if ids.contains(&"verify") {
        match verify_claims(quick) {
            Ok(claims) => {
                let mut ok = true;
                for (claim, holds) in claims {
                    println!("[{}] {claim}", if holds { "PASS" } else { "FAIL" });
                    ok &= holds;
                }
                std::process::exit(if ok { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let selected: Vec<&str> = if ids.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        ids
    };

    // --profile: record the run to a JSON-lines stream and collect an
    // in-memory copy for the breakdown table. The guards keep the sinks
    // installed until the end of main.
    let profile_state = profile.as_deref().map(install_profile);

    for id in &selected {
        let span = spmlab_obs::span_labeled("experiment", id);
        // The hierarchy scenario additionally maintains the tracked bench
        // artifacts (BENCH_hierarchy.json + bench_history.jsonl), and
        // bench-history honours --figure.
        let result = if *id == "hierarchy" {
            exp_hierarchy_with_artifacts_ckpt(quick, &workspace_root(), &ckpt_mode)
        } else if *id == "bench-history" {
            Ok(exp_bench_history(figure))
        } else {
            run_experiment(id, quick)
        };
        drop(span);
        match result {
            Ok(text) => {
                println!("==== {id} ====");
                println!("{text}");
            }
            Err(e) => {
                eprintln!("error in `{id}`: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some((mem, guards)) = profile_state {
        drop(guards); // flush + close the stream before reporting
        print!("{}", render_profile(&mem));
        if let Some(dest) = &profile {
            if dest != "-" {
                println!("profile stream written to {dest}");
            }
        }
    }
}
