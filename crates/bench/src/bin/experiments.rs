//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] all            # everything, report order
//! experiments [--quick] <id> [<id>..]  # selected experiments
//! experiments verify                   # check the paper's claims hold
//! experiments list                     # available ids
//! ```

use spmlab_bench::{
    exp_hierarchy_with_artifacts, run_experiment, verify_claims, workspace_root, EXPERIMENTS,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if ids.is_empty() || ids.contains(&"list") {
        eprintln!(
            "usage: experiments [--quick] <all|verify|{}>",
            EXPERIMENTS.join("|")
        );
        std::process::exit(if ids.contains(&"list") { 0 } else { 2 });
    }

    if ids.contains(&"verify") {
        match verify_claims(quick) {
            Ok(claims) => {
                let mut ok = true;
                for (claim, holds) in claims {
                    println!("[{}] {claim}", if holds { "PASS" } else { "FAIL" });
                    ok &= holds;
                }
                std::process::exit(if ok { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let selected: Vec<&str> = if ids.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        ids
    };
    for id in selected {
        // The hierarchy scenario additionally maintains the tracked bench
        // artifacts (BENCH_hierarchy.json + bench_history.jsonl).
        let result = if id == "hierarchy" {
            exp_hierarchy_with_artifacts(quick, &workspace_root())
        } else {
            run_experiment(id, quick)
        };
        match result {
            Ok(text) => {
                println!("==== {id} ====");
                println!("{text}");
            }
            Err(e) => {
                eprintln!("error in `{id}`: {e}");
                std::process::exit(1);
            }
        }
    }
}
