//! # spmlab-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (see DESIGN.md §4 for the index). The `experiments` binary prints the
//! same rows/series the paper reports:
//!
//! ```text
//! cargo run --release -p spmlab-bench --bin experiments -- all
//! cargo run --release -p spmlab-bench --bin experiments -- fig4
//! cargo run --release -p spmlab-bench --bin experiments -- --quick fig5
//! ```
//!
//! The Criterion benches in `benches/` time the same artefact generators
//! on reduced inputs, one group per paper artefact.

pub mod dse;
pub mod fuzz;
pub mod history;

pub use history::{
    append_history, fnv1a64, git_revision, read_history, render_history, render_history_csv,
    render_history_gnuplot, write_history_figure, BenchRecord, Provenance,
};

use spmlab::figures::{table1, table2, Figure3, FigureHierarchy, FigureSpmHierarchy, Tightness};
use spmlab::pipeline::Pipeline;
use spmlab::report;
use spmlab::sweep::{cache_sweep_with, spec_sweep, SweepSession};
use spmlab::{
    cache_axis, hierarchy_axis, hierarchy_spec_axis, hierarchy_spm_axis, hierarchy_spm_machines,
    spm_axis, write_policy_axis, CheckpointHeader, CoreError, MemArchSpec, SpmAllocation,
    PAPER_SIZES,
};
use spmlab_isa::cachecfg::{CacheConfig, Replacement};
use spmlab_workloads::{paper_benchmarks, Benchmark, ADPCM, G721, INSERTSORT, MULTISORT};

/// Experiment sizes: the paper's 64 B … 8 KiB, or a reduced set for quick
/// runs and benches.
pub fn sizes(quick: bool) -> &'static [u32] {
    if quick {
        &spmlab::config::QUICK_SIZES
    } else {
        &PAPER_SIZES
    }
}

/// Table 1: memory access cycles.
pub fn exp_table1() -> String {
    report::render_table1(&table1())
}

/// Table 2: benchmark inventory.
///
/// # Errors
///
/// Compiler failures.
pub fn exp_table2() -> Result<String, CoreError> {
    Ok(report::render_table2(&table2(&paper_benchmarks())?))
}

/// Figures 3 (G.721, panels a+b) and 4 (its ratio plot).
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_fig3_fig4(quick: bool) -> Result<String, CoreError> {
    let fig = Figure3::run(&G721, sizes(quick))?;
    let (spm_r, cache_r) = fig.ratio_series();
    Ok(format!(
        "{}\n{}",
        report::render_figure3(&fig, "Figure 3"),
        report::render_ratios("Figure 4", &fig.benchmark, &spm_r, &cache_r)
    ))
}

/// Figure 5: MultiSort WCET/sim ratios.
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_fig5(quick: bool) -> Result<String, CoreError> {
    let fig = Figure3::run(&MULTISORT, sizes(quick))?;
    let (spm_r, cache_r) = fig.ratio_series();
    Ok(format!(
        "{}\n{}",
        report::render_figure3(&fig, "Figure 5 (underlying sweeps)"),
        report::render_ratios("Figure 5", &fig.benchmark, &spm_r, &cache_r)
    ))
}

/// Figure 6: ADPCM absolute cycles and WCET for both branches.
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_fig6(quick: bool) -> Result<String, CoreError> {
    let fig = Figure3::run(&ADPCM, sizes(quick))?;
    let (spm_r, cache_r) = fig.ratio_series();
    Ok(format!(
        "{}\n{}",
        report::render_figure3(&fig, "Figure 6"),
        report::render_ratios("Figure 6 (ratios)", &fig.benchmark, &spm_r, &cache_r)
    ))
}

/// §4 tightness experiment: insertion sort with worst-case input.
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_tightness() -> Result<String, CoreError> {
    let t = Tightness::run(&INSERTSORT, 0)?;
    Ok(report::render_tightness(&t))
}

/// The L1 capacity the hierarchy scenario builds its axis around.
pub fn hierarchy_l1_size(quick: bool) -> u32 {
    if quick {
        512
    } else {
        1024
    }
}

/// The hierarchy comparison data (shared by the report experiment, the
/// criterion bench and the `BENCH_hierarchy.json` artifact).
///
/// # Errors
///
/// Pipeline failures.
pub fn hierarchy_figure(quick: bool) -> Result<FigureHierarchy, CoreError> {
    let l1 = hierarchy_l1_size(quick);
    let bench = if quick { &ADPCM } else { &G721 };
    FigureHierarchy::run(bench, l1, &hierarchy_axis(l1))
}

/// The benchmark behind the hierarchy scenario.
pub fn hierarchy_benchmark(quick: bool) -> &'static Benchmark {
    if quick {
        &ADPCM
    } else {
        &G721
    }
}

/// The checkpoint header binding a hierarchy-scenario checkpoint to this
/// build (git revision) and the scenario's exact spec axis — a resume with
/// a different revision, benchmark, or axis is rejected up front.
pub fn hierarchy_checkpoint_header(quick: bool) -> CheckpointHeader {
    let l1 = hierarchy_l1_size(quick);
    let axis = FigureHierarchy::spec_axis(l1, &hierarchy_axis(l1));
    CheckpointHeader::new(&git_revision(), &hierarchy_benchmark(quick).name, &axis)
}

/// How (or whether) a hierarchy run persists per-point checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointMode {
    /// No checkpointing (the default).
    Off,
    /// Stream a fresh checkpoint to the path (`--checkpoint`), truncating
    /// any existing file.
    Fresh(std::path::PathBuf),
    /// Resume from the path (`--resume`): reuse completed points and
    /// re-measure only the missing ones. A missing file starts a fresh
    /// checkpoint, so one flag serves a retry loop end to end.
    Resume(std::path::PathBuf),
}

/// Builds the [`SweepSession`] for a hierarchy run under `mode`.
///
/// # Errors
///
/// Checkpoint I/O failures; header mismatches on resume.
pub fn hierarchy_session(quick: bool, mode: &CheckpointMode) -> Result<SweepSession, CoreError> {
    match mode {
        CheckpointMode::Off => Ok(SweepSession::none()),
        CheckpointMode::Fresh(path) => {
            SweepSession::checkpoint_to(path, &hierarchy_checkpoint_header(quick))
        }
        CheckpointMode::Resume(path) => {
            let header = hierarchy_checkpoint_header(quick);
            if path.exists() {
                SweepSession::resume_from(path, &header)
            } else {
                SweepSession::checkpoint_to(path, &header)
            }
        }
    }
}

/// Fault-isolated hierarchy comparison: failures are contained per point
/// (reported in [`FigureHierarchy::failed`]) and `session` can checkpoint
/// and resume the whole figure.
///
/// # Errors
///
/// Pipeline construction and checkpoint I/O failures.
pub fn hierarchy_figure_with_session(
    quick: bool,
    session: &SweepSession,
) -> Result<FigureHierarchy, CoreError> {
    let l1 = hierarchy_l1_size(quick);
    FigureHierarchy::run_with_session(hierarchy_benchmark(quick), l1, &hierarchy_axis(l1), session)
}

/// Hierarchy scenario: the WCET-vs-simulation comparison across memory
/// hierarchies — scratchpad (both main-memory timings), unified/split L1,
/// and split L1 backed by a unified L2 at two capacities and two
/// main-memory timings.
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_hierarchy(quick: bool) -> Result<String, CoreError> {
    let fig = hierarchy_figure(quick)?;
    let mut out = report::render_hierarchy(&fig);
    out.push_str(&format!(
        "sound (wcet >= sim) at every point: {}\n",
        if fig.all_sound() { "yes" } else { "NO — BUG" }
    ));
    Ok(out)
}

/// Runs the hierarchy scenario and emits its tracked artifacts into the
/// workspace root: full runs rewrite `BENCH_hierarchy.json` with this
/// run's sweep (quick smoke runs leave it untouched), and every run
/// appends a one-line summary (with the git revision) to
/// `bench_history.jsonl`, then renders the report plus the accumulated
/// trajectory table.
///
/// # Errors
///
/// Pipeline failures; artifact IO errors are reported inline, not fatal.
pub fn exp_hierarchy_with_artifacts(
    quick: bool,
    root: &std::path::Path,
) -> Result<String, CoreError> {
    exp_hierarchy_with_artifacts_ckpt(quick, root, &CheckpointMode::Off)
}

/// [`exp_hierarchy_with_artifacts`] with per-point checkpointing: under
/// [`CheckpointMode::Fresh`]/[`CheckpointMode::Resume`] every completed
/// point streams to the checkpoint file as it finishes, and a resumed run
/// reuses the stored points bit-identically, re-measuring only the missing
/// ones. Per-point failures are contained and reported (in the table, the
/// JSON artifact, and the checkpoint) instead of aborting the run.
///
/// # Errors
///
/// Pipeline construction and checkpoint I/O failures; artifact IO errors
/// are reported inline, not fatal.
pub fn exp_hierarchy_with_artifacts_ckpt(
    quick: bool,
    root: &std::path::Path,
    mode: &CheckpointMode,
) -> Result<String, CoreError> {
    // The spec hash fingerprints the canonical sweep axis, so two history
    // lines with the same hash measured the same configurations even across
    // axis-definition refactors. Cheap enough to compute on every run.
    let spec_hash = fnv1a64(
        &hierarchy_axis(hierarchy_l1_size(quick))
            .iter()
            .map(|h| MemArchSpec::from_hierarchy(h).label())
            .collect::<Vec<_>>()
            .join("|"),
    );
    // Counter/phase provenance needs a collector listening during the run.
    // Only ride along when profiling is already active: installing a sink
    // unconditionally would flip `spmlab_obs::enabled()` and serialise the
    // sweep, costing far more than the provenance is worth on plain runs.
    let collector = if spmlab_obs::enabled() {
        let sink = std::sync::Arc::new(spmlab_obs::collector::MemorySink::default());
        Some((spmlab_obs::add_sink(sink.clone()), sink))
    } else {
        None
    };
    let session = hierarchy_session(quick, mode)?;
    let start = std::time::Instant::now();
    let fig = hierarchy_figure_with_session(quick, &session)?;
    let wall = start.elapsed().as_secs_f64();
    let mut provenance = Provenance {
        spec_hash,
        replay_points: None,
        full_sim_points: None,
        memo_hits: None,
        memo_misses: None,
        phase_ns: Vec::new(),
    };
    if let Some((guard, sink)) = collector {
        // Stop recording before reading the totals back. Replay-eligible =
        // served from a recorded trace (replayed, or the recording machine
        // itself); full-sim = fell back to the interpreter.
        drop(guard);
        provenance.replay_points =
            Some(sink.counter_total("sweep_replay") + sink.counter_total("sweep_recorded_reuse"));
        provenance.full_sim_points = Some(sink.counter_total("sweep_full_sim"));
        provenance.memo_hits = Some(sink.counter_total("sweep_memo_hit"));
        provenance.memo_misses = Some(sink.counter_total("sweep_memo_miss"));
        provenance.phase_ns = sink
            .flat_profile()
            .into_iter()
            .map(|row| (row.name.to_string(), row.self_ns))
            .collect();
    }
    let mut out = report::render_hierarchy(&fig);
    out.push_str(&format!(
        "sound (wcet >= sim) at every point: {}\n",
        if fig.all_sound() { "yes" } else { "NO — BUG" }
    ));
    match mode {
        CheckpointMode::Off => {}
        CheckpointMode::Fresh(p) => {
            out.push_str(&format!("checkpoint streamed to {}\n", p.display()));
        }
        CheckpointMode::Resume(p) => {
            out.push_str(&format!(
                "resume: reused {} completed points from {}\n",
                session.resumed_points(),
                p.display()
            ));
        }
    }
    // Only full runs refresh the tracked sweep artifact — a --quick smoke
    // run must not clobber the committed full-axis numbers (the history
    // line below still records it, flagged as quick).
    if quick {
        out.push_str("quick axis: BENCH_hierarchy.json left untouched\n");
    } else {
        let json_path = root.join("BENCH_hierarchy.json");
        match std::fs::write(
            &json_path,
            hierarchy_json_with_provenance(&fig, wall, Some(&provenance)),
        ) {
            Ok(()) => out.push_str(&format!("wrote {}\n", json_path.display())),
            Err(e) => out.push_str(&format!("could not write {}: {e}\n", json_path.display())),
        }
    }
    let record = BenchRecord::summarise(&fig, quick, wall).with_provenance(provenance);
    let history_path = root.join("bench_history.jsonl");
    match append_history(&history_path, &record) {
        Ok(()) => out.push_str(&format!("appended {}\n", history_path.display())),
        Err(e) => out.push_str(&format!(
            "could not append {}: {e}\n",
            history_path.display()
        )),
    }
    out.push('\n');
    out.push_str(&render_history(&read_history(&history_path)));
    Ok(out)
}

/// Serialises the hierarchy comparison as the `BENCH_hierarchy.json`
/// artifact (hand-rolled JSON: the build environment has no serde_json).
pub fn hierarchy_json(fig: &FigureHierarchy, wall_seconds: f64) -> String {
    hierarchy_json_with_provenance(fig, wall_seconds, None)
}

/// [`hierarchy_json`] plus an optional `"provenance"` block recording the
/// git revision, canonical spec-axis hash and — when the run was profiled —
/// replay/memo counters and per-phase self times.
pub fn hierarchy_json_with_provenance(
    fig: &FigureHierarchy,
    wall_seconds: f64,
    provenance: Option<&Provenance>,
) -> String {
    // Degraded flags in `rows()` order (SPM pairs first, then hierarchy
    // points) — a widened-but-sound bound is marked, never passed off as
    // precise.
    let mut degraded: Vec<bool> = Vec::new();
    for p in &fig.spm {
        degraded.push(p.table1.degraded);
        degraded.push(p.dram.degraded);
    }
    degraded.extend(fig.points.iter().map(|p| p.result.degraded));
    let mut rows = String::new();
    for (i, (label, sim, wcet)) in fig.rows().into_iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"config\": \"{}\", \"sim_cycles\": {sim}, \"wcet_cycles\": {wcet}, \
             \"ratio\": {:.4}, \"degraded\": {}}}",
            label.replace('"', "'"),
            wcet as f64 / sim.max(1) as f64,
            degraded.get(i).copied().unwrap_or(false)
        ));
    }
    // Failed points are part of the artifact, never silently dropped.
    let failed = if fig.failed.is_empty() {
        String::new()
    } else {
        let mut entries = String::new();
        for (i, fp) in fig.failed.iter().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            entries.push_str(&format!(
                "\n    {{\"index\": {}, \"config\": \"{}\", \"error\": \"{}\", \
                 \"panicked\": {}}}",
                fp.index,
                fp.label.replace('"', "'"),
                fp.error.replace('"', "'").replace('\n', " "),
                fp.panicked
            ));
        }
        format!(",\n  \"failed\": [{entries}\n  ]")
    };
    let prov = provenance.map_or_else(String::new, |p| {
        let opt = |name: &str, v: Option<u64>| {
            v.map_or_else(String::new, |v| format!(",\n    \"{name}\": {v}"))
        };
        let mut phases = String::new();
        for (i, (name, ns)) in p.phase_ns.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&format!(
                "\n      {{\"phase\": \"{}\", \"self_ns\": {ns}}}",
                name.replace('"', "'")
            ));
        }
        let phases = if phases.is_empty() {
            String::new()
        } else {
            format!(",\n    \"phases\": [{phases}\n    ]")
        };
        format!(
            ",\n  \"provenance\": {{\n    \"rev\": \"{}\",\n    \"spec_hash\": \"{}\"{}{}{}{}{}\n  }}",
            git_revision().replace('"', "'"),
            p.spec_hash.replace('"', "'"),
            opt("replay_points", p.replay_points),
            opt("full_sim_points", p.full_sim_points),
            opt("memo_hits", p.memo_hits),
            opt("memo_misses", p.memo_misses),
            phases
        )
    });
    format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"wall_seconds\": {wall_seconds:.3},\n  \
         \"sound\": {}{prov}{failed},\n  \"points\": [{rows}\n  ]\n}}\n",
        fig.benchmark,
        fig.all_sound()
    )
}

/// One point of the `multilevel-precision` experiment: the same machine
/// analyzed by the pre-MAY baseline (per-function TOP entries, no
/// Always-Miss filter) and by the interprocedural MAY/CAC analysis.
#[derive(Debug, Clone)]
pub struct PrecisionPoint {
    /// Machine label.
    pub label: String,
    /// Simulated cycles (soundness reference).
    pub sim_cycles: u64,
    /// WCET bound of the pre-MAY baseline analysis.
    pub baseline_wcet: u64,
    /// WCET bound of the interprocedural MAY/CAC analysis.
    pub wcet: u64,
    /// Accesses proven Always-Miss at their L1 (the `A` filter).
    pub l1_always_miss: u64,
    /// Accesses guaranteed to hit the L2.
    pub l2_hits: u64,
    /// Whether every cached access sits behind an L1 (split or fully
    /// unified L1) *and* an L2 exists — the configurations whose L2 hits
    /// the baseline could never classify.
    pub behind_l1: bool,
}

impl PrecisionPoint {
    /// Relative WCET tightening over the baseline (positive = tighter).
    pub fn tightening_pct(&self) -> f64 {
        (1.0 - self.wcet as f64 / self.baseline_wcet.max(1) as f64) * 100.0
    }
}

/// Measures the `multilevel-precision` points over the standard hierarchy
/// axis: one link + one simulation per machine, two analyses.
///
/// # Errors
///
/// Compile, link, simulation or analysis failures.
pub fn multilevel_precision_points(quick: bool) -> Result<Vec<PrecisionPoint>, CoreError> {
    use spmlab_cc::SpmAssignment;
    use spmlab_isa::mem::MemoryMap;
    use spmlab_sim::{simulate, MachineConfig, SimOptions};
    use spmlab_wcet::{analyze, WcetConfig};

    let l1 = hierarchy_l1_size(quick);
    let bench = if quick { &ADPCM } else { &G721 };
    let module = bench.compile().map_err(CoreError::Cc)?;
    let input = bench.typical_input();
    let linked = bench
        .link_with_input(
            &module,
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
            &input,
        )
        .map_err(CoreError::Cc)?;
    let sim_options = SimOptions {
        insn_stats: false,
        profile: false,
        ..SimOptions::default()
    };
    hierarchy_axis(l1)
        .into_iter()
        .map(|h| {
            let sim = simulate(
                &linked.exe,
                &MachineConfig::with_hierarchy(h.clone()),
                &sim_options,
            )
            .map_err(CoreError::Sim)?;
            let new = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy(h.clone()),
                &linked.annotations,
            )
            .map_err(CoreError::Wcet)?;
            let base = analyze(
                &linked.exe,
                &WcetConfig::with_hierarchy_baseline(h.clone()),
                &linked.annotations,
            )
            .map_err(CoreError::Wcet)?;
            let c = new.total_classify();
            Ok(PrecisionPoint {
                label: h.label(),
                sim_cycles: sim.cycles,
                baseline_wcet: base.wcet_cycles,
                wcet: new.wcet_cycles,
                l1_always_miss: c.fetch_always_miss + c.data_always_miss,
                l2_hits: c.l2_hits,
                behind_l1: h.l2.is_some() && h.cached(true) && h.cached(false),
            })
        })
        .collect()
}

/// The `multilevel-precision` experiment: quantifies what the
/// interprocedural MAY analysis and the full Hardy–Puaut CAC buy over the
/// pre-MAY baseline, per machine of the hierarchy axis.
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_multilevel_precision(quick: bool) -> Result<String, CoreError> {
    let points = multilevel_precision_points(quick)?;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.sim_cycles.to_string(),
                p.baseline_wcet.to_string(),
                p.wcet.to_string(),
                format!("{:.2}%", p.tightening_pct()),
                p.l1_always_miss.to_string(),
                p.l2_hits.to_string(),
            ]
        })
        .collect();
    let mut out = format!(
        "Multi-level precision: pre-MAY baseline vs interprocedural MAY/CAC analysis\n{}",
        report::render_table(
            &[
                "machine",
                "sim",
                "baseline wcet",
                "may/cac wcet",
                "gain",
                "L1 AM",
                "L2 AH"
            ],
            &rows
        )
    );
    out.push_str(&format!(
        "never looser than the baseline: {}\n",
        if points.iter().all(|p| p.wcet <= p.baseline_wcet) {
            "yes"
        } else {
            "NO — BUG"
        }
    ));
    out.push_str(&format!(
        "L2 hits classified behind an L1: {}\n",
        if points.iter().any(|p| p.behind_l1 && p.l2_hits > 0) {
            "yes"
        } else {
            "NO — BUG"
        }
    ));
    Ok(out)
}

/// One write-through/write-back pair of the `write-policy` experiment.
#[derive(Debug, Clone)]
pub struct WritePolicyPoint {
    /// Label of the write-through reference machine.
    pub wt_label: String,
    /// Label of the write-back (or store-buffered) twin.
    pub wb_label: String,
    /// Simulated cycles, write-through.
    pub wt_sim: u64,
    /// WCET bound, write-through.
    pub wt_wcet: u64,
    /// Simulated cycles, write-back twin.
    pub wb_sim: u64,
    /// WCET bound, write-back twin.
    pub wb_wcet: u64,
}

impl WritePolicyPoint {
    /// Simulated-cycle change of the write-back twin vs write-through
    /// (negative = faster).
    pub fn sim_delta_pct(&self) -> f64 {
        (self.wb_sim as f64 / self.wt_sim.max(1) as f64 - 1.0) * 100.0
    }

    /// WCET-bound change of the write-back twin vs write-through.
    pub fn wcet_delta_pct(&self) -> f64 {
        (self.wb_wcet as f64 / self.wt_wcet.max(1) as f64 - 1.0) * 100.0
    }
}

/// A measured write-policy axis: the paired points plus the
/// replay-vs-full-sim provenance the run demonstrated.
#[derive(Debug, Clone)]
pub struct WritePolicySweep {
    /// Write-through/write-back pairs, axis order.
    pub points: Vec<WritePolicyPoint>,
    /// Replay/memo counters (from the replay-mode sweep) and the two
    /// timed phases (`sweep-replay` / `sweep-full-sim`, nanoseconds).
    pub provenance: Provenance,
    /// Wall time of the replay-mode sweep, seconds.
    pub replay_wall: f64,
    /// Wall time of the full-simulation reference sweep, seconds.
    pub full_sim_wall: f64,
}

impl WritePolicySweep {
    /// Full-simulation wall time over replay wall time (> 1 means
    /// replay was faster).
    pub fn speedup(&self) -> f64 {
        self.full_sim_wall / self.replay_wall.max(1e-9)
    }
}

/// Measures the write-policy axis ([`write_policy_axis`]) on the G.721
/// benchmark (ADPCM for quick runs) **twice**: once with the baseline's
/// ordered (v2) trace replayed at every point — write-back and
/// store-buffered machines included — and once with the trace disabled
/// as the full-simulation reference. The two sweeps must agree
/// bit-identically on cycles, bounds, checksums and (stats-derived)
/// energy at every point; the replay sweep's counters and both phase
/// times land in the returned provenance.
///
/// # Errors
///
/// Pipeline failures, or [`CoreError::ChecksumMismatch`]-style
/// divergence mapped to a panic — replay/full-sim disagreement is a
/// simulator bug, not a reportable measurement.
pub fn write_policy_sweep(quick: bool) -> Result<WritePolicySweep, CoreError> {
    let bench = if quick { &ADPCM } else { &G721 };
    let l1 = hierarchy_l1_size(quick);
    let specs = write_policy_axis(l1);
    let spec_hash = fnv1a64(
        &specs
            .iter()
            .map(MemArchSpec::label)
            .collect::<Vec<_>>()
            .join("|"),
    );

    // Full-simulation reference: same pipeline, trace dropped. A sink
    // listens here too so both timed phases carry identical
    // instrumentation overhead — the speedup compares like with like.
    let mut full_pipeline = Pipeline::new(bench)?;
    full_pipeline.disable_trace();
    let full_sink = std::sync::Arc::new(spmlab_obs::collector::MemorySink::default());
    let full_guard = spmlab_obs::add_sink(full_sink.clone());
    let start = std::time::Instant::now();
    let full = spec_sweep(&full_pipeline, &specs)?;
    let full_sim_wall = start.elapsed().as_secs_f64();
    drop(full_guard);
    assert_eq!(
        full_sink.counter_total("sweep_replay"),
        0,
        "trace-disabled reference must not replay"
    );

    // Replay mode, with a collector listening so the provenance can
    // prove the flip (every point replayed, zero full-sim fallbacks).
    let pipeline = Pipeline::new(bench)?;
    let sink = std::sync::Arc::new(spmlab_obs::collector::MemorySink::default());
    let guard = spmlab_obs::add_sink(sink.clone());
    let start = std::time::Instant::now();
    let results = spec_sweep(&pipeline, &specs)?;
    let replay_wall = start.elapsed().as_secs_f64();
    drop(guard);

    // The differential: replay must be indistinguishable from full
    // simulation at every point (energy is a pure function of the
    // per-level memory statistics, so equal energy ⇒ equal stats
    // weighting on top of the cycle/bound/checksum identity).
    for (r, f) in results.iter().zip(&full) {
        assert_eq!(
            (r.result.sim_cycles, r.result.wcet_cycles, r.result.checksum),
            (f.result.sim_cycles, f.result.wcet_cycles, f.result.checksum),
            "replay diverged from full simulation at {}",
            r.result.label
        );
        assert_eq!(
            r.result.energy_nj.to_bits(),
            f.result.energy_nj.to_bits(),
            "replayed memory statistics diverged at {}",
            r.result.label
        );
    }

    let provenance = Provenance {
        spec_hash,
        replay_points: Some(
            sink.counter_total("sweep_replay") + sink.counter_total("sweep_recorded_reuse"),
        ),
        full_sim_points: Some(sink.counter_total("sweep_full_sim")),
        memo_hits: Some(sink.counter_total("sweep_memo_hit")),
        memo_misses: Some(sink.counter_total("sweep_memo_miss")),
        phase_ns: vec![
            ("sweep-replay".into(), (replay_wall * 1e9).round() as u64),
            (
                "sweep-full-sim".into(),
                (full_sim_wall * 1e9).round() as u64,
            ),
        ],
    };
    let points = results
        .chunks(2)
        .map(|pair| WritePolicyPoint {
            wt_label: pair[0].result.label.clone(),
            wb_label: pair[1].result.label.clone(),
            wt_sim: pair[0].result.sim_cycles,
            wt_wcet: pair[0].result.wcet_cycles,
            wb_sim: pair[1].result.sim_cycles,
            wb_wcet: pair[1].result.wcet_cycles,
        })
        .collect();
    Ok(WritePolicySweep {
        points,
        provenance,
        replay_wall,
        full_sim_wall,
    })
}

/// The paired points of the write-policy axis (see
/// [`write_policy_sweep`] for the full replay-vs-full-sim measurement).
///
/// # Errors
///
/// Pipeline failures.
pub fn write_policy_points(quick: bool) -> Result<Vec<WritePolicyPoint>, CoreError> {
    Ok(write_policy_sweep(quick)?.points)
}

/// Whether every point of the write-policy comparison is sound
/// (WCET ≥ simulation on both sides of every pair) — the acceptance
/// criterion `verify` checks as a claim.
pub fn write_policy_sound(points: &[WritePolicyPoint]) -> bool {
    points
        .iter()
        .all(|p| p.wt_wcet >= p.wt_sim && p.wb_wcet >= p.wb_sim)
}

/// Serialises the write-policy comparison as the
/// `BENCH_write_policy.json` artifact (hand-rolled JSON; the build
/// environment has no serde_json).
pub fn write_policy_json(points: &[WritePolicyPoint], quick: bool) -> String {
    write_policy_json_with_provenance(points, quick, None)
}

/// [`write_policy_json`] plus an optional `"provenance"` block: git
/// revision, canonical axis hash, the replay/full-sim/memo counters of
/// the replay-mode sweep, and the timed `sweep-replay` /
/// `sweep-full-sim` phases that demonstrate the replay speedup.
pub fn write_policy_json_with_provenance(
    points: &[WritePolicyPoint],
    quick: bool,
    provenance: Option<&Provenance>,
) -> String {
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"write_through\": \"{}\", \"write_back\": \"{}\", \
             \"wt_sim\": {}, \"wt_wcet\": {}, \"wb_sim\": {}, \"wb_wcet\": {}}}",
            p.wt_label.replace('"', "'"),
            p.wb_label.replace('"', "'"),
            p.wt_sim,
            p.wt_wcet,
            p.wb_sim,
            p.wb_wcet,
        ));
    }
    let prov = provenance.map_or_else(String::new, |p| {
        let opt = |name: &str, v: Option<u64>| {
            v.map_or_else(String::new, |v| format!(",\n    \"{name}\": {v}"))
        };
        let mut phases = String::new();
        for (i, (name, ns)) in p.phase_ns.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&format!(
                "\n      {{\"phase\": \"{}\", \"self_ns\": {ns}}}",
                name.replace('"', "'")
            ));
        }
        let phases = if phases.is_empty() {
            String::new()
        } else {
            format!(",\n    \"phases\": [{phases}\n    ]")
        };
        format!(
            ",\n  \"provenance\": {{\n    \"rev\": \"{}\",\n    \"spec_hash\": \"{}\"{}{}{}{}{}\n  }}",
            git_revision().replace('"', "'"),
            p.spec_hash.replace('"', "'"),
            opt("replay_points", p.replay_points),
            opt("full_sim_points", p.full_sim_points),
            opt("memo_hits", p.memo_hits),
            opt("memo_misses", p.memo_misses),
            phases
        )
    });
    format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"quick\": {quick},\n  \"sound\": {}{prov},\n  \
         \"points\": [{rows}\n  ]\n}}\n",
        if quick { &ADPCM.name } else { &G721.name },
        write_policy_sound(points)
    )
}

/// Write-policy scenario: write-through vs write-back (and a store
/// buffer) across the standard machine shapes — simulated cycles, WCET
/// bounds, and the per-pair deltas. The axis is measured twice (trace
/// replay vs full simulation, bit-identical by construction); the
/// report shows the replay speedup and the counter flip, every run
/// appends a history line to `bench_history.jsonl`, and full runs also
/// rewrite the tracked `BENCH_write_policy.json` artifact in the
/// workspace root (quick smoke runs leave it untouched).
///
/// # Errors
///
/// Pipeline failures; artifact IO errors are reported inline, not fatal.
pub fn exp_write_policy(quick: bool) -> Result<String, CoreError> {
    exp_write_policy_with_artifacts(quick, &workspace_root())
}

/// [`exp_write_policy`] against an explicit artifact root (tests point
/// this at a temp directory).
///
/// # Errors
///
/// Pipeline failures; artifact IO errors are reported inline, not fatal.
pub fn exp_write_policy_with_artifacts(
    quick: bool,
    root: &std::path::Path,
) -> Result<String, CoreError> {
    let sweep = write_policy_sweep(quick)?;
    let points = sweep.points.clone();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.wb_label.clone(),
                p.wt_sim.to_string(),
                p.wt_wcet.to_string(),
                p.wb_sim.to_string(),
                p.wb_wcet.to_string(),
                format!("{:+.1}%", p.sim_delta_pct()),
                format!("{:+.1}%", p.wcet_delta_pct()),
            ]
        })
        .collect();
    let mut out = format!(
        "Write policies: write-through (paper's machine) vs write-back / store buffer\n{}",
        report::render_table(
            &[
                "write-back twin",
                "wt sim",
                "wt wcet",
                "wb sim",
                "wb wcet",
                "sim Δ",
                "wcet Δ"
            ],
            &rows
        )
    );
    out.push_str(&format!(
        "sound (wcet >= sim) at every point, both policies: {}\n",
        if write_policy_sound(&points) {
            "yes"
        } else {
            "NO — BUG"
        }
    ));
    out.push_str(&format!(
        "replay vs full simulation: bit-identical at every point; \
         {} replayed, {} full-sim fallbacks, {} memo hits; \
         replay sweep {:.3}s vs full-sim sweep {:.3}s ({:.1}x)\n",
        sweep.provenance.replay_points.unwrap_or(0),
        sweep.provenance.full_sim_points.unwrap_or(0),
        sweep.provenance.memo_hits.unwrap_or(0),
        sweep.replay_wall,
        sweep.full_sim_wall,
        sweep.speedup(),
    ));
    // Only full runs refresh the tracked artifact — a --quick smoke run
    // (CI) must not clobber the committed full-axis numbers, mirroring
    // the hierarchy experiment's convention.
    if quick {
        out.push_str("quick axis: BENCH_write_policy.json left untouched\n");
    } else {
        let path = root.join("BENCH_write_policy.json");
        match std::fs::write(
            &path,
            write_policy_json_with_provenance(&points, quick, Some(&sweep.provenance)),
        ) {
            Ok(()) => out.push_str(&format!("wrote {}\n", path.display())),
            Err(e) => out.push_str(&format!("could not write {}: {e}\n", path.display())),
        }
    }
    // Every run (quick included) records the replay-vs-full-sim split
    // and both phase times in the tracked history log — the speedup is
    // a measured, versioned fact, not a claim in prose.
    let max_ratio = points
        .iter()
        .flat_map(|p| {
            [
                p.wt_wcet as f64 / p.wt_sim.max(1) as f64,
                p.wb_wcet as f64 / p.wb_sim.max(1) as f64,
            ]
        })
        .fold(0.0, f64::max);
    let record = BenchRecord {
        rev: git_revision(),
        benchmark: format!(
            "{}-write-policy",
            if quick { &ADPCM.name } else { &G721.name }
        ),
        quick,
        wall_seconds: sweep.replay_wall,
        points: points.len() * 2,
        max_ratio,
        sound: write_policy_sound(&points),
        provenance: None,
    }
    .with_provenance(sweep.provenance.clone());
    let history_path = root.join("bench_history.jsonl");
    match append_history(&history_path, &record) {
        Ok(()) => out.push_str(&format!("appended {}\n", history_path.display())),
        Err(e) => out.push_str(&format!(
            "could not append {}: {e}\n",
            history_path.display()
        )),
    }
    Ok(out)
}

/// Ablation: MUST-only vs MUST+persistence cache analysis (paper §5:
/// "the full scale of cache analysis techniques … would probably lead to
/// improved cache results").
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_ablation_persistence(quick: bool) -> Result<String, CoreError> {
    let pipeline = Pipeline::new(&G721)?;
    let szs = sizes(quick);
    let must = cache_sweep_with(&pipeline, szs, false, CacheConfig::unified)?;
    let pers = cache_sweep_with(&pipeline, szs, true, CacheConfig::unified)?;
    let rows: Vec<Vec<String>> = must
        .iter()
        .zip(&pers)
        .map(|(m, p)| {
            vec![
                m.size.to_string(),
                m.result.wcet_cycles.to_string(),
                p.result.wcet_cycles.to_string(),
                format!(
                    "{:.1}%",
                    (1.0 - p.result.wcet_cycles as f64 / m.result.wcet_cycles as f64) * 100.0
                ),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation: cache WCET, MUST-only vs +persistence (G.721)\n{}",
        report::render_table(&["bytes", "must-only", "+persistence", "gain"], &rows)
    ))
}

/// Ablation: unified vs instruction-only cache analysis (paper §5 future
/// work: "other cache configurations, e.g. instruction caches instead of
/// unified caches").
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_ablation_icache(quick: bool) -> Result<String, CoreError> {
    let pipeline = Pipeline::new(&G721)?;
    let szs = sizes(quick);
    let unified = cache_sweep_with(&pipeline, szs, false, CacheConfig::unified)?;
    let icache = cache_sweep_with(&pipeline, szs, false, CacheConfig::instr_only)?;
    let rows: Vec<Vec<String>> = unified
        .iter()
        .zip(&icache)
        .map(|(u, i)| {
            vec![
                u.size.to_string(),
                u.result.sim_cycles.to_string(),
                u.result.wcet_cycles.to_string(),
                i.result.sim_cycles.to_string(),
                i.result.wcet_cycles.to_string(),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation: unified vs instruction-only cache (G.721)\n{}",
        report::render_table(
            &["bytes", "uni sim", "uni wcet", "icache sim", "icache wcet"],
            &rows
        )
    ))
}

/// Ablation: associativity and replacement policy (paper §5 future work:
/// "set associative caches").
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_ablation_assoc(quick: bool) -> Result<String, CoreError> {
    let pipeline = Pipeline::new(&G721)?;
    let size = if quick { 1024 } else { 4096 };
    let configs: Vec<(&str, CacheConfig)> = vec![
        ("direct-mapped", CacheConfig::unified(size)),
        (
            "2-way LRU",
            CacheConfig::set_assoc(size, 2, Replacement::Lru),
        ),
        (
            "4-way LRU",
            CacheConfig::set_assoc(size, 4, Replacement::Lru),
        ),
        (
            "4-way random",
            CacheConfig::set_assoc(size, 4, Replacement::Random { seed: 7 }),
        ),
        (
            "4-way round-robin",
            CacheConfig::set_assoc(size, 4, Replacement::RoundRobin),
        ),
    ];
    let specs: Vec<MemArchSpec> = configs
        .iter()
        .map(|(_, cfg)| MemArchSpec::single_cache(cfg.clone()))
        .collect();
    let points = spec_sweep(&pipeline, &specs)?;
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&points)
        .map(|((name, _), p)| {
            vec![
                (*name).to_string(),
                p.result.sim_cycles.to_string(),
                p.result.wcet_cycles.to_string(),
                format!("{:.3}", p.result.ratio()),
            ]
        })
        .collect();
    Ok(format!(
        "Ablation: associativity/replacement at {size} B (G.721)\n{}",
        report::render_table(&["configuration", "sim", "wcet", "ratio"], &rows)
    ))
}

/// Serializes the G.721 (ADPCM for quick runs) baseline's ordered (v2)
/// memory trace in its versioned wire format to `path` — the CI
/// artifact proving the recorded stream decodes and replays. The bytes
/// are round-trip-verified (decode + uncached replay) before writing.
///
/// # Errors
///
/// Pipeline failures; IO errors are reported in the returned text.
pub fn dump_trace(quick: bool, path: &std::path::Path) -> Result<String, CoreError> {
    let bench = if quick { &ADPCM } else { &G721 };
    let pipeline = Pipeline::new(bench)?;
    let bytes = pipeline
        .trace_bytes()
        .expect("the uncached baseline always records a replayable v2 trace");
    let decoded =
        spmlab_sim::MemTrace::from_bytes(&bytes).expect("a freshly serialized trace must decode");
    assert_eq!(decoded.version(), 2, "the recorder emits ordered traces");
    decoded
        .replay(&spmlab::MemHierarchyConfig::uncached())
        .expect("a decoded v2 trace must replay");
    match std::fs::write(path, &bytes) {
        Ok(()) => Ok(format!(
            "wrote {} ({} bytes, v2, {} events) for benchmark {}\n",
            path.display(),
            bytes.len(),
            decoded.events(),
            bench.name,
        )),
        Err(e) => Ok(format!("could not write {}: {e}\n", path.display())),
    }
}

/// Ablation: energy-optimal vs WCET-aware allocation (paper §5 future
/// work: place "objects … that lie on the critical path").
///
/// # Errors
///
/// Pipeline or allocation failures.
pub fn exp_ablation_wcet_alloc(quick: bool) -> Result<String, CoreError> {
    let szs: &[u32] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096]
    };
    let mut rows = Vec::new();
    for bench in [&INSERTSORT, &MULTISORT] {
        let pipeline = Pipeline::new(bench)?;
        let specs: Vec<MemArchSpec> = szs
            .iter()
            .flat_map(|&size| {
                [
                    MemArchSpec::spm(size),
                    MemArchSpec::spm_with(size, SpmAllocation::WcetRegion),
                ]
            })
            .collect();
        let points = spec_sweep(&pipeline, &specs)?;
        for (i, &size) in szs.iter().enumerate() {
            rows.push(vec![
                bench.name.to_string(),
                size.to_string(),
                points[2 * i].result.wcet_cycles.to_string(),
                points[2 * i + 1].result.wcet_cycles.to_string(),
            ]);
        }
    }
    Ok(format!(
        "Ablation: energy-optimal vs WCET-aware allocation (WCET bound)\n{}",
        report::render_table(
            &[
                "benchmark",
                "spm bytes",
                "energy-opt wcet",
                "wcet-aware wcet"
            ],
            &rows
        )
    ))
}

/// The SPM×hierarchy scenario parameters: scratchpad capacities and the
/// multi-level machines of [`hierarchy_spm_machines`].
pub fn hierarchy_spm_params(quick: bool) -> (&'static Benchmark, Vec<u32>, u32) {
    if quick {
        (&ADPCM, vec![512], 512)
    } else {
        (&G721, vec![1024, 4096], 1024)
    }
}

/// The SPM×hierarchy comparison data (shared by the report experiment and
/// the claims).
///
/// # Errors
///
/// Pipeline failures.
pub fn hierarchy_spm_figure(quick: bool) -> Result<FigureSpmHierarchy, CoreError> {
    let (bench, spm_sizes, l1) = hierarchy_spm_params(quick);
    FigureSpmHierarchy::run(bench, &spm_sizes, &hierarchy_spm_machines(l1))
}

/// SPM×hierarchy scenario: the first result the composable spec unlocks —
/// scratchpad and multi-level hierarchy in one machine, with the
/// WCET-aware allocator optimising against the multi-level critical path
/// instead of flat region timing.
///
/// # Errors
///
/// Pipeline failures.
pub fn exp_hierarchy_spm(quick: bool) -> Result<String, CoreError> {
    let fig = hierarchy_spm_figure(quick)?;
    let mut out = report::render_spm_hierarchy(&fig);
    out.push_str(&format!(
        "hierarchy-aware wcet <= region-objective wcet at every point: {}\n",
        if fig.aware_never_worse() {
            "yes"
        } else {
            "NO — BUG"
        }
    ));
    out.push_str(&format!(
        "sound (wcet >= sim) at every point: {}\n",
        if fig.all_sound() { "yes" } else { "NO — BUG" }
    ));
    Ok(out)
}

/// Renders the tracked bench history; with `figure` additionally emits
/// the plottable CSV + gnuplot artifact pair next to the JSONL file and
/// inlines the CSV.
pub fn exp_bench_history(figure: bool) -> String {
    let root = workspace_root();
    let records = read_history(&root.join("bench_history.jsonl"));
    let mut out = render_history(&records);
    if figure {
        out.push('\n');
        out.push_str(&render_history_csv(&records));
        match write_history_figure(&root, &records) {
            Ok((csv, plot)) => {
                out.push_str(&format!(
                    "wrote {}\nwrote {}\n",
                    csv.display(),
                    plot.display()
                ));
            }
            Err(e) => out.push_str(&format!("could not write figure artifacts: {e}\n")),
        }
    }
    out
}

/// Every spec of the standard experiment axes, labelled — the
/// `--dump-spec` inventory. Any line's JSON can be fed back through
/// `--spec` to reproduce that sweep point.
pub fn dump_specs(quick: bool) -> Vec<(String, MemArchSpec)> {
    let szs = sizes(quick);
    let l1 = hierarchy_l1_size(quick);
    let (_, spm_sizes, spm_l1) = hierarchy_spm_params(quick);
    spm_axis(szs)
        .into_iter()
        .chain(cache_axis(szs))
        .chain(hierarchy_spec_axis(l1))
        .chain(hierarchy_spm_axis(
            &spm_sizes,
            &hierarchy_spm_machines(spm_l1),
        ))
        .chain(write_policy_axis(l1))
        .map(|s| (s.label(), s))
        .collect()
}

/// Runs one spec on one benchmark and renders the result row plus the
/// spec's canonical JSON (so the output is itself reproducible).
///
/// # Errors
///
/// Unknown benchmark, JSON/validation failures, pipeline failures — all
/// rendered as strings for the CLI.
pub fn run_spec_on(bench_name: &str, spec_json: &str) -> Result<String, String> {
    let bench = spmlab_workloads::benchmark(bench_name).ok_or_else(|| {
        format!(
            "unknown benchmark `{bench_name}`; try one of: {}",
            spmlab_workloads::all_benchmarks()
                .iter()
                .map(|b| b.name.as_ref())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let spec = MemArchSpec::from_json(spec_json).map_err(|e| e.to_string())?;
    let pipeline = Pipeline::new(bench).map_err(|e| e.to_string())?;
    let r = pipeline.run(&spec).map_err(|e| e.to_string())?;
    let row = vec![vec![
        r.label.clone(),
        r.sim_cycles.to_string(),
        r.wcet_cycles.to_string(),
        format!("{:.3}", r.ratio()),
        format!("{:.0}", r.energy_nj / 1000.0),
        r.spm_used.to_string(),
    ]];
    Ok(format!(
        "spec point on `{}`\n{}\nspec (canonical):\n{}\n",
        bench.name,
        report::render_table(
            &["configuration", "sim", "wcet", "ratio", "µJ", "spm used B"],
            &row
        ),
        spec.canonical().to_json()
    ))
}

/// Runs one experiment by id; `all` runs everything in order.
///
/// # Errors
///
/// Unknown ids or pipeline failures.
pub fn run_experiment(id: &str, quick: bool) -> Result<String, CoreError> {
    match id {
        "table1" => Ok(exp_table1()),
        "table2" => exp_table2(),
        "fig3" | "fig3a" | "fig3b" | "fig4" => exp_fig3_fig4(quick),
        "fig5" => exp_fig5(quick),
        "fig6" => exp_fig6(quick),
        "tightness" => exp_tightness(),
        "hierarchy" => exp_hierarchy(quick),
        "hierarchy-spm" => exp_hierarchy_spm(quick),
        "multilevel-precision" => exp_multilevel_precision(quick),
        "write-policy" => exp_write_policy(quick),
        "bench-history" => Ok(exp_bench_history(false)),
        "ablation-persistence" => exp_ablation_persistence(quick),
        "ablation-icache" => exp_ablation_icache(quick),
        "ablation-assoc" => exp_ablation_assoc(quick),
        "ablation-wcet-alloc" => exp_ablation_wcet_alloc(quick),
        other => Err(CoreError::Cc(spmlab_cc::CcError::Sema {
            pos: spmlab_cc::Pos::default(),
            msg: format!("unknown experiment `{other}`"),
        })),
    }
}

/// The workspace root (where the tracked bench artifacts live).
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// All experiment ids in report order.
pub const EXPERIMENTS: [&str; 15] = [
    "table1",
    "table2",
    "fig3",
    "fig5",
    "fig6",
    "tightness",
    "hierarchy",
    "hierarchy-spm",
    "multilevel-precision",
    "write-policy",
    "bench-history",
    "ablation-persistence",
    "ablation-icache",
    "ablation-assoc",
    "ablation-wcet-alloc",
];

/// Spot checks of the paper's qualitative claims, used by tests and the
/// `verify` subcommand. Returns a list of `(claim, holds)` pairs.
///
/// # Errors
///
/// Pipeline failures.
pub fn verify_claims(quick: bool) -> Result<Vec<(String, bool)>, CoreError> {
    let szs = sizes(quick);
    let mut claims = Vec::new();
    let fig = Figure3::run(&G721, szs)?;
    let (spm_r, cache_r) = fig.ratio_series();

    // Claim 1: scratchpad WCET decreases as capacity grows.
    let spm_wcets: Vec<u64> = fig.spm.iter().map(|p| p.result.wcet_cycles).collect();
    claims.push((
        "G.721: scratchpad WCET decreases with capacity".into(),
        spm_wcets.first() > spm_wcets.last(),
    ));
    // Claim 2: scratchpad ratio roughly constant (max/min < 1.5).
    let rmax = spm_r.iter().map(|(_, r)| *r).fold(f64::MIN, f64::max);
    let rmin = spm_r.iter().map(|(_, r)| *r).fold(f64::MAX, f64::min);
    claims.push((
        "G.721: scratchpad WCET/sim ratio ~constant".into(),
        rmax / rmin < 1.5,
    ));
    // Claim 3: cache WCET stays at a high level — it falls by less than 2×
    // across the whole sweep while the simulated cycles fall by more than
    // 2×, and even the best cache WCET stays above the *worst* scratchpad
    // WCET ("it is doubtful that the results achieved by an inherently
    // predictable scratchpad can be reached").
    let cache_wcets: Vec<u64> = fig.cache.iter().map(|p| p.result.wcet_cycles).collect();
    let cache_sims: Vec<u64> = fig.cache.iter().map(|p| p.result.sim_cycles).collect();
    let wmax = *cache_wcets.iter().max().unwrap() as f64;
    let wmin = *cache_wcets.iter().min().unwrap() as f64;
    let sim_drop = cache_sims[0] as f64 / *cache_sims.last().unwrap() as f64;
    let spm_worst_wcet = fig.spm.iter().map(|p| p.result.wcet_cycles).max().unwrap();
    claims.push((
        "G.721: cache WCET stays at a high level".into(),
        wmax / wmin < 2.0 && sim_drop > 2.0 && wmin > spm_worst_wcet as f64,
    ));
    // Claim 4: cache ratio grows with size.
    claims.push((
        "G.721: cache WCET/sim ratio grows with cache size".into(),
        cache_r.last().unwrap().1 > cache_r.first().unwrap().1 * 1.5,
    ));
    // Claim 5: spm beats cache on WCET at every size.
    let spm_beats = fig
        .spm
        .iter()
        .zip(&fig.cache)
        .all(|(s, c)| s.result.wcet_cycles <= c.result.wcet_cycles);
    claims.push((
        "G.721: scratchpad WCET ≤ cache WCET at every size".into(),
        spm_beats,
    ));
    // Claim 6: soundness everywhere.
    let sound = fig
        .spm
        .iter()
        .chain(&fig.cache)
        .all(|p| p.result.wcet_cycles >= p.result.sim_cycles);
    claims.push(("G.721: WCET ≥ simulation at every point".into(), sound));

    // Claim 7 (beyond the paper): the invariant extends to multi-level
    // hierarchies, and the scratchpad bound stays tighter than every
    // cached configuration's.
    let hier = hierarchy_figure(quick)?;
    claims.push((
        "hierarchy: WCET ≥ simulation at every configuration".into(),
        hier.all_sound(),
    ));
    let spm_ratio = hier
        .spm
        .iter()
        .map(|p| p.table1.ratio())
        .fold(f64::MIN, f64::max);
    let cached_best = hier
        .points
        .iter()
        .map(|p| p.result.ratio())
        .fold(f64::MAX, f64::min);
    claims.push((
        "hierarchy: scratchpad WCET/sim ratio beats every cache hierarchy".into(),
        spm_ratio < cached_best,
    ));

    // Claim 10 (the interprocedural MAY/CAC result): the upgraded
    // multi-level analysis is never looser than the pre-MAY baseline on
    // the hierarchy axis, stays sound, and — what the baseline could
    // never do — classifies L2 hits *behind* an L1 on at least one
    // split-L1+L2 machine.
    let precision = multilevel_precision_points(quick)?;
    claims.push((
        "multilevel-precision: MAY/CAC analysis never looser, sound, classifies L2 hits behind an L1"
            .into(),
        precision
            .iter()
            .all(|p| p.wcet <= p.baseline_wcet && p.wcet >= p.sim_cycles)
            && precision.iter().any(|p| p.behind_l1 && p.l2_hits > 0),
    ));

    // Claim 9 (the composable-spec result): under SPM×hierarchy machines,
    // allocating against the multi-level critical path never yields a
    // worse bound than the seed's region-timing allocation, and every
    // point stays sound.
    let spm_hier = hierarchy_spm_figure(quick)?;
    claims.push((
        format!(
            "{}: hierarchy-aware allocation WCET ≤ region-timing allocation at every \
             SPM×hierarchy point",
            spm_hier.benchmark
        ),
        spm_hier.aware_never_worse() && spm_hier.all_sound(),
    ));

    // Claim 11 (the write-policy axis): the charge-at-store write-back
    // rule keeps the bound sound when levels turn write-back and a store
    // buffer appears — sim ≤ bound at every point, both policies.
    let wp = write_policy_points(quick)?;
    claims.push((
        "write-policy: WCET ≥ simulation at every write-through AND write-back point".into(),
        write_policy_sound(&wp),
    ));

    Ok(claims)
}
