//! Tracked bench history: every hierarchy-sweep run appends one JSON line
//! to `bench_history.jsonl` (git revision, wall seconds, WCET-ratio
//! summary), so the perf/predictability trajectory accumulates across
//! revisions instead of being overwritten by each `BENCH_hierarchy.json`.
//!
//! The file is hand-rolled JSON-lines (the build environment has no
//! serde_json); the reader below only understands the writer's own schema:
//!
//! ```text
//! {"rev":"8a63b2c","benchmark":"g721","quick":false,"wall_seconds":1.370,
//!  "points":8,"max_ratio":9.028,"sound":true}
//! ```
//!
//! Since the observability release each line may additionally carry a
//! flat *provenance* block — canonical spec-axis hash, replay vs full-sim
//! point counts, sweep memo hit rates, and per-phase self times:
//!
//! ```text
//! {...,"sound":true,"spec_hash":"a1b2c3d4e5f60718","replay_points":6,
//!  "full_sim_points":0,"memo_hits":2,"memo_misses":6,
//!  "phases":"simulate=1200;analyze=3400"}
//! ```
//!
//! The reader tolerates lines both with and without the block (pre-PR-6
//! history keeps parsing), and the renderer shows `-` where a run
//! predates it.

use spmlab::figures::FigureHierarchy;
use spmlab::report::render_table;
use std::path::Path;

/// One recorded hierarchy-sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Git revision the run was taken at (short hash, or `unknown`).
    pub rev: String,
    /// Benchmark swept.
    pub benchmark: String,
    /// Whether the quick (reduced) axis was used.
    pub quick: bool,
    /// Wall-clock seconds for the full sweep (pipeline setup included).
    pub wall_seconds: f64,
    /// Number of sweep points.
    pub points: usize,
    /// Worst WCET/sim ratio across the sweep.
    pub max_ratio: f64,
    /// Whether WCET ≥ simulation held at every point.
    pub sound: bool,
    /// Run provenance (absent on lines recorded before the observability
    /// release).
    pub provenance: Option<Provenance>,
}

/// Where a recorded run's numbers came from: the canonical hash of the
/// swept spec axis plus — when the run was profiled — the replay/full-sim
/// split, the sweep memo hit rate, and per-phase self times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Provenance {
    /// FNV-1a 64 hash (hex) of the canonical spec axis swept.
    pub spec_hash: String,
    /// Points priced by trace replay (profiled runs only).
    pub replay_points: Option<u64>,
    /// Points that fell back to full simulation (profiled runs only).
    pub full_sim_points: Option<u64>,
    /// Sweep points served from the effective-spec memo.
    pub memo_hits: Option<u64>,
    /// Sweep points actually measured.
    pub memo_misses: Option<u64>,
    /// Per-phase self time `(name, ns)`, largest first (profiled runs
    /// only; empty otherwise).
    pub phase_ns: Vec<(String, u64)>,
}

impl Provenance {
    /// Serialises the flat provenance fields (leading comma included).
    fn json_fields(&self) -> String {
        let mut out = format!(",\"spec_hash\":\"{}\"", self.spec_hash.replace('"', "'"));
        for (key, v) in [
            ("replay_points", self.replay_points),
            ("full_sim_points", self.full_sim_points),
            ("memo_hits", self.memo_hits),
            ("memo_misses", self.memo_misses),
        ] {
            if let Some(v) = v {
                out.push_str(&format!(",\"{key}\":{v}"));
            }
        }
        if !self.phase_ns.is_empty() {
            let phases: Vec<String> = self
                .phase_ns
                .iter()
                .map(|(name, ns)| format!("{}={ns}", name.replace(['=', ';', '"'], "_")))
                .collect();
            out.push_str(&format!(",\"phases\":\"{}\"", phases.join(";")));
        }
        out
    }

    /// Parses the provenance fields out of a history line; `None` when
    /// the line predates the block (no `spec_hash` key).
    fn from_json_line(line: &str) -> Option<Provenance> {
        let spec_hash = json_str(line, "spec_hash")?;
        let phase_ns = json_str(line, "phases")
            .map(|p| {
                p.split(';')
                    .filter_map(|kv| {
                        let (name, ns) = kv.split_once('=')?;
                        Some((name.to_string(), ns.parse().ok()?))
                    })
                    .collect()
            })
            .unwrap_or_default();
        Some(Provenance {
            spec_hash,
            replay_points: json_raw(line, "replay_points").and_then(|v| v.parse().ok()),
            full_sim_points: json_raw(line, "full_sim_points").and_then(|v| v.parse().ok()),
            memo_hits: json_raw(line, "memo_hits").and_then(|v| v.parse().ok()),
            memo_misses: json_raw(line, "memo_misses").and_then(|v| v.parse().ok()),
            phase_ns,
        })
    }
}

/// FNV-1a 64 over `data` — the canonical spec-axis hash recorded in the
/// provenance block (stable, dependency-free, not cryptographic). The one
/// implementation lives in [`spmlab::checkpoint`], shared with the sweep
/// checkpoint format so the two artifact families can never drift.
pub fn fnv1a64(data: &str) -> String {
    spmlab::checkpoint::fnv1a64(data)
}

impl BenchRecord {
    /// Summarises one hierarchy figure as a record for the current git
    /// revision.
    pub fn summarise(fig: &FigureHierarchy, quick: bool, wall_seconds: f64) -> BenchRecord {
        let max_ratio = fig
            .rows()
            .iter()
            .map(|(_, sim, wcet)| *wcet as f64 / (*sim).max(1) as f64)
            .fold(0.0, f64::max);
        BenchRecord {
            rev: git_revision(),
            benchmark: fig.benchmark.clone(),
            quick,
            wall_seconds,
            points: fig.rows().len(),
            max_ratio,
            sound: fig.all_sound(),
            provenance: None,
        }
    }

    /// Attaches a provenance block (builder style).
    #[must_use]
    pub fn with_provenance(mut self, provenance: Provenance) -> BenchRecord {
        self.provenance = Some(provenance);
        self
    }

    /// The JSON line for this record (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"rev\":\"{}\",\"benchmark\":\"{}\",\"quick\":{},\"wall_seconds\":{:.3},\
             \"points\":{},\"max_ratio\":{:.4},\"sound\":{}{}}}",
            self.rev.replace('"', "'"),
            self.benchmark.replace('"', "'"),
            self.quick,
            self.wall_seconds,
            self.points,
            self.max_ratio,
            self.sound,
            self.provenance
                .as_ref()
                .map(Provenance::json_fields)
                .unwrap_or_default()
        )
    }

    /// Parses one line written by [`BenchRecord::to_json_line`] — with or
    /// without the provenance block, so pre-observability history lines
    /// keep parsing. Returns `None` for malformed or foreign lines.
    pub fn from_json_line(line: &str) -> Option<BenchRecord> {
        Some(BenchRecord {
            rev: json_str(line, "rev")?,
            benchmark: json_str(line, "benchmark")?,
            quick: json_raw(line, "quick")? == "true",
            wall_seconds: json_raw(line, "wall_seconds")?.parse().ok()?,
            points: json_raw(line, "points")?.parse().ok()?,
            max_ratio: json_raw(line, "max_ratio")?.parse().ok()?,
            sound: json_raw(line, "sound")? == "true",
            provenance: Provenance::from_json_line(line),
        })
    }
}

/// Extracts the raw (unquoted) value of `"key":value` from a flat JSON line.
fn json_raw(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line.get(start..)?;
    let end = rest
        .find([',', '}'])
        .filter(|_| !rest.starts_with('"'))
        .or_else(|| {
            // Quoted value: find the closing quote. `get` (not slicing)
            // keeps a line truncated right after the key — untrusted
            // input — a parse failure instead of a panic.
            let inner = rest.get(1..)?;
            inner.find('"').map(|i| i + 2)
        })?;
    Some(rest.get(..end)?.to_string())
}

/// Extracts a quoted string value.
fn json_str(line: &str, key: &str) -> Option<String> {
    let raw = json_raw(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

/// The current short git revision, or `unknown` outside a checkout.
pub fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| String::from("unknown"))
}

/// Appends `record` to the JSON-lines history at `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_history(path: &Path, record: &BenchRecord) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", record.to_json_line())
}

/// Reads every parseable record from the history file (empty when absent).
pub fn read_history(path: &Path) -> Vec<BenchRecord> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter_map(BenchRecord::from_json_line)
        .collect()
}

/// Renders the wall-seconds + WCET-ratio trajectory table across recorded
/// revisions, oldest first.
pub fn render_history(records: &[BenchRecord]) -> String {
    if records.is_empty() {
        return String::from("bench history: no recorded runs (bench_history.jsonl is empty)\n");
    }
    let pair = |a: Option<u64>, b: Option<u64>| match (a, b) {
        (Some(a), Some(b)) => format!("{a}/{b}"),
        _ => String::from("-"),
    };
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            let p = r.provenance.as_ref();
            vec![
                r.rev.clone(),
                r.benchmark.clone(),
                if r.quick { "quick" } else { "full" }.to_string(),
                format!("{:.3}", r.wall_seconds),
                format!("{:.4}", r.max_ratio),
                if r.sound { "yes" } else { "NO" }.to_string(),
                p.map_or_else(|| String::from("-"), |p| pair(p.memo_hits, p.memo_misses)),
                p.map_or_else(
                    || String::from("-"),
                    |p| pair(p.replay_points, p.full_sim_points),
                ),
            ]
        })
        .collect();
    format!(
        "Bench history: hierarchy-sweep trajectory ({} runs)\n{}",
        records.len(),
        render_table(
            &[
                "rev",
                "benchmark",
                "axis",
                "wall s",
                "max ratio",
                "sound",
                "memo h/m",
                "replay/sim"
            ],
            &rows
        )
    )
}

/// Renders the recorded trajectory as a plottable CSV (one row per run,
/// in recorded order): `index,rev,benchmark,axis,wall_seconds,max_ratio,
/// sound`.
pub fn render_history_csv(records: &[BenchRecord]) -> String {
    let mut out = String::from("index,rev,benchmark,axis,wall_seconds,max_ratio,sound\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "{i},{},{},{},{:.3},{:.4},{}\n",
            r.rev.replace(',', "_"),
            r.benchmark.replace(',', "_"),
            if r.quick { "quick" } else { "full" },
            r.wall_seconds,
            r.max_ratio,
            r.sound
        ));
    }
    out
}

/// The gnuplot script plotting `csv_name`: wall-seconds per revision on
/// the left axis, worst WCET/sim ratio on the right, revisions along x.
pub fn render_history_gnuplot(csv_name: &str) -> String {
    format!(
        "# Perf/predictability trajectory across revisions.\n\
         # Usage: gnuplot bench_history.gnuplot  (emits bench_history.svg)\n\
         set datafile separator ','\n\
         set terminal svg size 900,420 background 'white'\n\
         set output 'bench_history.svg'\n\
         set title 'hierarchy sweep: wall seconds and worst WCET/sim ratio per revision'\n\
         set xlabel 'revision'\n\
         set ylabel 'wall seconds'\n\
         set y2label 'max WCET/sim ratio'\n\
         set y2tics\n\
         set ytics nomirror\n\
         set key top left\n\
         set grid\n\
         plot '{csv_name}' skip 1 using 1:5:xtic(2) with linespoints title 'wall s (axis 1)', \\\n\
         \x20    '{csv_name}' skip 1 using 1:6 axes x1y2 with linespoints title 'max ratio (axis 2)'\n"
    )
}

/// Writes the plottable figure next to the history file: a CSV of the
/// trajectory and a gnuplot script rendering it. Returns both paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_history_figure(
    root: &Path,
    records: &[BenchRecord],
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let csv = root.join("bench_history.csv");
    let plot = root.join("bench_history.gnuplot");
    std::fs::write(&csv, render_history_csv(records))?;
    std::fs::write(&plot, render_history_gnuplot("bench_history.csv"))?;
    Ok((csv, plot))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json_line() {
        let r = BenchRecord {
            rev: "abc1234".into(),
            benchmark: "g721".into(),
            quick: false,
            wall_seconds: 1.375,
            points: 8,
            max_ratio: 9.0281,
            sound: true,
            provenance: None,
        };
        let line = r.to_json_line();
        let back = BenchRecord::from_json_line(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn provenance_roundtrips_through_json_line() {
        let r = BenchRecord {
            rev: "abc1234".into(),
            benchmark: "g721".into(),
            quick: false,
            wall_seconds: 1.375,
            points: 8,
            max_ratio: 9.0281,
            sound: true,
            provenance: None,
        }
        .with_provenance(Provenance {
            spec_hash: fnv1a64("g721 hierarchy axis"),
            replay_points: Some(6),
            full_sim_points: Some(2),
            memo_hits: Some(0),
            memo_misses: Some(8),
            phase_ns: vec![("simulate".into(), 1_200_000), ("analyze".into(), 950_000)],
        });
        let line = r.to_json_line();
        let back = BenchRecord::from_json_line(&line).unwrap();
        assert_eq!(back, r);
        let p = back.provenance.unwrap();
        assert_eq!(p.spec_hash.len(), 16, "fnv1a64 renders 16 hex digits");
        assert_eq!(p.phase_ns[0], ("simulate".to_string(), 1_200_000));
    }

    /// Satellite: `bench-history` must keep parsing lines written before the
    /// provenance block existed. These fixtures are verbatim pre-provenance
    /// history lines (the old `to_json_line` layout).
    #[test]
    fn pre_provenance_history_lines_still_parse() {
        let fixtures = [
            "{\"rev\":\"8a63b2c\",\"benchmark\":\"g721\",\"quick\":false,\
             \"wall_seconds\":1.370,\"points\":8,\"max_ratio\":9.0281,\"sound\":true}",
            "{\"rev\":\"unknown\",\"benchmark\":\"adpcm\",\"quick\":true,\
             \"wall_seconds\":0.042,\"points\":8,\"max_ratio\":7.9797,\"sound\":true}",
        ];
        let recs: Vec<BenchRecord> = fixtures
            .iter()
            .filter_map(|l| BenchRecord::from_json_line(l))
            .collect();
        assert_eq!(recs.len(), 2, "every old-format line parses");
        assert!(recs.iter().all(|r| r.provenance.is_none()));
        assert_eq!(recs[0].benchmark, "g721");
        assert_eq!(recs[1].points, 8);
        // Mixed old/new histories render with a placeholder memo column.
        let with_new = vec![
            recs[0].clone(),
            recs[1].clone().with_provenance(Provenance {
                spec_hash: fnv1a64("adpcm"),
                replay_points: Some(7),
                full_sim_points: Some(1),
                memo_hits: Some(3),
                memo_misses: Some(5),
                phase_ns: Vec::new(),
            }),
        ];
        let table = render_history(&with_new);
        assert!(table.contains("memo h/m"));
        assert!(table.contains("3/5") && table.contains("7/1"));
        assert!(table.contains(" - "), "old rows show a placeholder");
    }

    #[test]
    fn malformed_lines_are_skipped() {
        assert!(BenchRecord::from_json_line("").is_none());
        assert!(BenchRecord::from_json_line("{\"rev\":\"x\"}").is_none());
        assert!(BenchRecord::from_json_line("not json at all").is_none());
    }

    #[test]
    fn history_appends_and_renders() {
        let dir = std::env::temp_dir().join("spmlab_bench_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_history.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut r = BenchRecord {
            rev: "aaaaaaa".into(),
            benchmark: "adpcm".into(),
            quick: true,
            wall_seconds: 0.043,
            points: 8,
            max_ratio: 7.9797,
            sound: true,
            provenance: None,
        };
        append_history(&path, &r).unwrap();
        r.rev = "bbbbbbb".into();
        r.wall_seconds = 0.021;
        append_history(&path, &r).unwrap();
        let recs = read_history(&path);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].rev, "aaaaaaa");
        assert_eq!(recs[1].wall_seconds, 0.021);
        let table = render_history(&recs);
        assert!(table.contains("bbbbbbb") && table.contains("max ratio"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn csv_and_gnuplot_figure_emitted() {
        let recs = vec![
            BenchRecord {
                rev: "aaaaaaa".into(),
                benchmark: "g721".into(),
                quick: false,
                wall_seconds: 1.234,
                points: 8,
                max_ratio: 9.0281,
                sound: true,
                provenance: None,
            },
            BenchRecord {
                rev: "bbbbbbb".into(),
                benchmark: "g721".into(),
                quick: true,
                wall_seconds: 0.111,
                points: 8,
                max_ratio: 8.5,
                sound: true,
                provenance: None,
            },
        ];
        let csv = render_history_csv(&recs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[0].starts_with("index,rev,"));
        assert!(lines[1].contains("aaaaaaa") && lines[1].contains("1.234"));
        assert!(lines[2].contains("quick") && lines[2].contains("8.5000"));
        let plot = render_history_gnuplot("bench_history.csv");
        assert!(plot.contains("bench_history.csv"));
        assert!(plot.contains("y2label"), "ratio on the second axis");
        // gnuplot requires datafile modifiers before `using`:
        // index / every / skip, then using.
        assert!(
            plot.contains("skip 1 using"),
            "`skip` must precede `using`: {plot}"
        );
        assert!(!plot.contains(") skip"), "no trailing skip modifiers");

        let dir = std::env::temp_dir().join("spmlab_bench_history_figure_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (csv_path, plot_path) = write_history_figure(&dir, &recs).unwrap();
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), csv);
        assert!(std::fs::read_to_string(&plot_path)
            .unwrap()
            .contains("linespoints"));
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(plot_path);
    }
}
