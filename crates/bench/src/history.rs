//! Tracked bench history: every hierarchy-sweep run appends one JSON line
//! to `bench_history.jsonl` (git revision, wall seconds, WCET-ratio
//! summary), so the perf/predictability trajectory accumulates across
//! revisions instead of being overwritten by each `BENCH_hierarchy.json`.
//!
//! The file is hand-rolled JSON-lines (the build environment has no
//! serde_json); the reader below only understands the writer's own schema:
//!
//! ```text
//! {"rev":"8a63b2c","benchmark":"g721","quick":false,"wall_seconds":1.370,
//!  "points":8,"max_ratio":9.028,"sound":true}
//! ```

use spmlab::figures::FigureHierarchy;
use spmlab::report::render_table;
use std::path::Path;

/// One recorded hierarchy-sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Git revision the run was taken at (short hash, or `unknown`).
    pub rev: String,
    /// Benchmark swept.
    pub benchmark: String,
    /// Whether the quick (reduced) axis was used.
    pub quick: bool,
    /// Wall-clock seconds for the full sweep (pipeline setup included).
    pub wall_seconds: f64,
    /// Number of sweep points.
    pub points: usize,
    /// Worst WCET/sim ratio across the sweep.
    pub max_ratio: f64,
    /// Whether WCET ≥ simulation held at every point.
    pub sound: bool,
}

impl BenchRecord {
    /// Summarises one hierarchy figure as a record for the current git
    /// revision.
    pub fn summarise(fig: &FigureHierarchy, quick: bool, wall_seconds: f64) -> BenchRecord {
        let max_ratio = fig
            .rows()
            .iter()
            .map(|(_, sim, wcet)| *wcet as f64 / (*sim).max(1) as f64)
            .fold(0.0, f64::max);
        BenchRecord {
            rev: git_revision(),
            benchmark: fig.benchmark.clone(),
            quick,
            wall_seconds,
            points: fig.rows().len(),
            max_ratio,
            sound: fig.all_sound(),
        }
    }

    /// The JSON line for this record (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"rev\":\"{}\",\"benchmark\":\"{}\",\"quick\":{},\"wall_seconds\":{:.3},\
             \"points\":{},\"max_ratio\":{:.4},\"sound\":{}}}",
            self.rev.replace('"', "'"),
            self.benchmark.replace('"', "'"),
            self.quick,
            self.wall_seconds,
            self.points,
            self.max_ratio,
            self.sound
        )
    }

    /// Parses one line written by [`BenchRecord::to_json_line`]. Returns
    /// `None` for malformed or foreign lines.
    pub fn from_json_line(line: &str) -> Option<BenchRecord> {
        Some(BenchRecord {
            rev: json_str(line, "rev")?,
            benchmark: json_str(line, "benchmark")?,
            quick: json_raw(line, "quick")? == "true",
            wall_seconds: json_raw(line, "wall_seconds")?.parse().ok()?,
            points: json_raw(line, "points")?.parse().ok()?,
            max_ratio: json_raw(line, "max_ratio")?.parse().ok()?,
            sound: json_raw(line, "sound")? == "true",
        })
    }
}

/// Extracts the raw (unquoted) value of `"key":value` from a flat JSON line.
fn json_raw(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .filter(|_| !rest.starts_with('"'))
        .or_else(|| {
            // Quoted value: find the closing quote.
            let inner = &rest[1..];
            inner.find('"').map(|i| i + 2)
        })?;
    Some(rest[..end].to_string())
}

/// Extracts a quoted string value.
fn json_str(line: &str, key: &str) -> Option<String> {
    let raw = json_raw(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

/// The current short git revision, or `unknown` outside a checkout.
pub fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| String::from("unknown"))
}

/// Appends `record` to the JSON-lines history at `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_history(path: &Path, record: &BenchRecord) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", record.to_json_line())
}

/// Reads every parseable record from the history file (empty when absent).
pub fn read_history(path: &Path) -> Vec<BenchRecord> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter_map(BenchRecord::from_json_line)
        .collect()
}

/// Renders the wall-seconds + WCET-ratio trajectory table across recorded
/// revisions, oldest first.
pub fn render_history(records: &[BenchRecord]) -> String {
    if records.is_empty() {
        return String::from("bench history: no recorded runs (bench_history.jsonl is empty)\n");
    }
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.rev.clone(),
                r.benchmark.clone(),
                if r.quick { "quick" } else { "full" }.to_string(),
                format!("{:.3}", r.wall_seconds),
                format!("{:.4}", r.max_ratio),
                if r.sound { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    format!(
        "Bench history: hierarchy-sweep trajectory ({} runs)\n{}",
        records.len(),
        render_table(
            &["rev", "benchmark", "axis", "wall s", "max ratio", "sound"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_through_json_line() {
        let r = BenchRecord {
            rev: "abc1234".into(),
            benchmark: "g721".into(),
            quick: false,
            wall_seconds: 1.375,
            points: 8,
            max_ratio: 9.0281,
            sound: true,
        };
        let line = r.to_json_line();
        let back = BenchRecord::from_json_line(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        assert!(BenchRecord::from_json_line("").is_none());
        assert!(BenchRecord::from_json_line("{\"rev\":\"x\"}").is_none());
        assert!(BenchRecord::from_json_line("not json at all").is_none());
    }

    #[test]
    fn history_appends_and_renders() {
        let dir = std::env::temp_dir().join("spmlab_bench_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_history.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut r = BenchRecord {
            rev: "aaaaaaa".into(),
            benchmark: "adpcm".into(),
            quick: true,
            wall_seconds: 0.043,
            points: 8,
            max_ratio: 7.9797,
            sound: true,
        };
        append_history(&path, &r).unwrap();
        r.rev = "bbbbbbb".into();
        r.wall_seconds = 0.021;
        append_history(&path, &r).unwrap();
        let recs = read_history(&path);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].rev, "aaaaaaa");
        assert_eq!(recs[1].wall_seconds, 0.021);
        let table = render_history(&recs);
        assert!(table.contains("bbbbbbb") && table.contains("max ratio"));
        let _ = std::fs::remove_file(&path);
    }
}
