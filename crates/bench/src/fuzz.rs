//! Differential fuzzing over generated MiniC workloads.
//!
//! [`run_fuzz`] drives the seeded generator ([`spmlab_workloads::gen`])
//! through every cross-check the toolchain supports, one seed at a time:
//!
//! 1. **Interp reference** — the AST runs under [`spmlab_cc::interp`]
//!    within its step estimate; its `checksum` global is the oracle.
//! 2. **Printer round-trip** — the emitted `.mc` source re-parses,
//!    re-prints to the identical text (fixed point), and compiles to the
//!    same object module as the direct AST path.
//! 3. **Simulator differential** — the program links and runs on the
//!    uncached machine; the simulated `checksum` must equal the oracle.
//! 4. **Replay differential** — the run is re-recorded as an ordered
//!    (v2) event trace and replayed on every spec machine; replay must
//!    be bit-identical to fresh simulation (cycles and every
//!    [`spmlab_sim::MemStats`] counter) on each.
//! 5. **Soundness** — a [`Pipeline`] over the generated benchmark runs
//!    at every default spec point (uncached, unified L1, split L1 + L2,
//!    and a write-back variant); `sim_cycles ≤ wcet_cycles` must hold at
//!    each, and the pipeline's own checksum verification must pass.
//!
//! Stages 4 and 5 also cover a **per-seed random machine**
//! ([`random_spec_for_seed`]): a splitmix64 stream keyed by the seed
//! draws a fresh `MemArchSpec` — random L1 shape/size/associativity/
//! replacement/write policy, optional (possibly write-back) L2, random
//! main-memory timing with an optional store buffer — so the fuzzer
//! explores the machine space alongside the program space while staying
//! reproducible from the seed alone.
//!
//! On the first failing seed the integrated delta-debugging shrinker
//! ([`spmlab_workloads::gen::shrink`]) minimises the program under "same
//! stage still fails" and the report carries the minimal `.mc` repro.
//!
//! [`run_inject_demo`] is the end-to-end proof that the harness can
//! actually catch a miscompile: it plants the classic wrong
//! `x / 2^k → x >> k` strength reduction
//! ([`spmlab_workloads::gen::inject_miscompile`]) into the *compiled*
//! side only, scans seeds until the differential fires, and shrinks the
//! witness to a ≤ 30-line repro.

use spmlab::pipeline::Pipeline;
use spmlab_cc::ast::Program;
use spmlab_cc::{codegen, compile, interp, link, parse_source, print, sema, SpmAssignment};
use spmlab_isa::archspec::MemArchSpec;
use spmlab_isa::cachecfg::{CacheConfig, CacheScope, Replacement, WritePolicy};
use spmlab_isa::hierarchy::{MainMemoryTiming, MemHierarchyConfig, StoreBuffer, L1};
use spmlab_isa::mem::MemoryMap;
use spmlab_sim::machine::{simulate, SimOptions};
use spmlab_sim::{simulate_with_trace, MachineConfig};
use spmlab_workloads::gen::{
    estimate_steps, generate_for_seed, inject_miscompile, reference_arch, shrink, FootprintClass,
    GeneratedProgram,
};
use std::fmt::Write as _;
use std::sync::Arc;

/// One failing seed, minimised.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The generating seed.
    pub seed: u64,
    /// Which cross-check failed (e.g. `sim-vs-interp`, `unsound-bound`).
    pub stage: &'static str,
    /// Human-readable mismatch details from the original (unshrunk) run.
    pub detail: String,
    /// Minimal `.mc` source that still fails the same stage.
    pub repro: String,
}

/// Outcome of a fuzzing run: either all seeds passed or the first
/// failure, shrunk.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Seeds actually checked (stops early on failure).
    pub seeds_run: u64,
    /// Per-footprint-class seed counts, in [`FootprintClass::ALL`] order.
    pub class_counts: [u64; 4],
    /// The first failure, if any.
    pub failure: Option<FuzzFailure>,
}

/// Parses an `a..b` seed range (half-open, `a < b`).
///
/// # Errors
///
/// A description of the malformed range.
pub fn parse_seed_range(text: &str) -> Result<(u64, u64), String> {
    let (a, b) = text
        .split_once("..")
        .ok_or_else(|| format!("`{text}` is not a range; expected `a..b`"))?;
    let lo: u64 = a
        .trim()
        .parse()
        .map_err(|_| format!("`{a}` is not a seed"))?;
    let hi: u64 = b
        .trim()
        .parse()
        .map_err(|_| format!("`{b}` is not a seed"))?;
    if lo >= hi {
        return Err(format!("empty seed range {lo}..{hi}"));
    }
    Ok((lo, hi))
}

/// The default spec points every generated benchmark is pipelined
/// through: the two paper machines plus a two-level hierarchy in both
/// write policies.
#[must_use]
pub fn default_fuzz_specs() -> Vec<(String, MemArchSpec)> {
    let wb = {
        let mut h = MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048));
        if let L1::Split { d: Some(d), .. } = &mut h.l1 {
            *d = d.clone().write_back();
        }
        h.l2 = h.l2.map(CacheConfig::write_back);
        h
    };
    vec![
        (
            "uncached".into(),
            MemArchSpec::from_hierarchy(&MemHierarchyConfig::uncached()),
        ),
        (
            "unified-l1-512".into(),
            MemArchSpec::from_hierarchy(&MemHierarchyConfig::l1_only(CacheConfig::unified(512))),
        ),
        (
            "split-l1+l2-wt".into(),
            MemArchSpec::from_hierarchy(
                &MemHierarchyConfig::split_l1(256, 256).with_l2(CacheConfig::l2(2048)),
            ),
        ),
        ("split-l1+l2-wb".into(), MemArchSpec::from_hierarchy(&wb)),
    ]
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_cache(state: &mut u64, scope: CacheScope) -> CacheConfig {
    let size = 64u32 << (splitmix64(state) % 5); // 64..=1024
    let assoc = 1u32 << (splitmix64(state) % 3); // 1/2/4-way; 64/16 = 4 lines
    let replacement = match splitmix64(state) % 3 {
        0 => Replacement::Lru,
        1 => Replacement::RoundRobin,
        _ => Replacement::Random {
            seed: splitmix64(state) % 1024,
        },
    };
    let write_policy = if splitmix64(state).is_multiple_of(2) {
        WritePolicy::WriteThrough
    } else {
        WritePolicy::WriteBack
    };
    CacheConfig {
        scope,
        write_policy,
        ..CacheConfig::set_assoc(size, assoc, replacement)
    }
}

/// A deterministic per-seed machine: a splitmix64 stream keyed by the
/// fuzz seed draws every choice, so a failing seed rebuilds the same
/// machine on re-run with no state outside the seed. Roughly half the
/// drawn machines are write-policy-dependent (write-back levels or
/// store buffers), which keeps the replay differential exercising the
/// ordered-event half of the v2 trace format.
#[must_use]
pub fn random_spec_for_seed(seed: u64) -> (String, MemArchSpec) {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let s = &mut state;
    let l1 = match splitmix64(s) % 3 {
        0 => L1::None,
        1 => L1::Unified(random_cache(s, CacheScope::Unified)),
        _ => L1::Split {
            i: Some(random_cache(s, CacheScope::InstrOnly)),
            d: Some(random_cache(s, CacheScope::DataOnly)),
        },
    };
    let l2 = (splitmix64(s).is_multiple_of(2)).then(|| {
        let mut l2 = CacheConfig::l2(512 << (splitmix64(s) % 4));
        if splitmix64(s).is_multiple_of(2) {
            l2 = l2.write_back();
        }
        l2
    });
    let mut main = if splitmix64(s).is_multiple_of(2) {
        MainMemoryTiming::table1()
    } else {
        MainMemoryTiming::dram(2 + splitmix64(s) % 10)
    };
    if splitmix64(s).is_multiple_of(3) {
        main = main.with_store_buffer(StoreBuffer::new(
            1 + (splitmix64(s) % 4) as u32,
            1 + splitmix64(s) % 9,
        ));
    }
    let h = MemHierarchyConfig { l1, l2, main };
    (
        format!("random[{}]", h.label()),
        MemArchSpec::from_hierarchy(&h),
    )
}

/// Interprets a program and reads its `checksum` global.
fn interp_checksum(p: &Program) -> Result<i32, String> {
    let max_steps = estimate_steps(p) * 4 + 100_000;
    let out = interp::run(p, max_steps).map_err(|e| format!("interp failed: {e}"))?;
    out.globals
        .get("checksum")
        .and_then(|v| v.first())
        .copied()
        .ok_or_else(|| "program has no checksum global".into())
}

/// Compiles and links `.mc` source without a scratchpad. The generator
/// bakes the input vector into the `input` array's initialiser, so no
/// link-time patching is needed.
fn link_source(source: &str) -> Result<spmlab_cc::LinkedProgram, String> {
    let module = compile(source).map_err(|e| format!("compile failed: {e}"))?;
    link(&module, &MemoryMap::no_spm(), &SpmAssignment::none())
        .map_err(|e| format!("link failed: {e}"))
}

/// Compiles `.mc` source, links it uncached, simulates it and reads the
/// `checksum` global.
fn sim_checksum_of_source(source: &str) -> Result<i32, String> {
    let linked = link_source(source)?;
    let res = simulate(
        &linked.exe,
        &MachineConfig::uncached(),
        &SimOptions::default(),
    )
    .map_err(|e| format!("simulation failed: {e}"))?;
    res.read_global(&linked.exe, "checksum")
        .ok_or_else(|| "no checksum symbol in image".into())
}

/// Runs every cross-check for one generated program. `Err((stage,
/// detail))` identifies the first failing stage — the shrinker predicate
/// keys on the stage name.
fn check_program(
    g: &GeneratedProgram,
    specs: &[(String, MemArchSpec)],
) -> Result<(), (&'static str, String)> {
    // 1. Interp reference semantics.
    let expected = interp_checksum(&g.program).map_err(|e| ("interp", e))?;

    // 2. Printer round-trip: fixed point + identical object code.
    let reparsed = parse_source(&g.source)
        .map_err(|e| ("reparse", format!("printed source does not re-parse: {e}")))?;
    let reprinted = print(&reparsed);
    if reprinted != g.source {
        return Err((
            "print-fixed-point",
            "print ∘ parse is not a fixed point of the printed source".into(),
        ));
    }
    let direct = sema::check(&g.program)
        .map_err(|e| ("sema", format!("direct AST rejected: {e}")))
        .and_then(|t| {
            codegen::generate(&t).map_err(|e| ("sema", format!("direct AST codegen: {e}")))
        })?;
    let via_text = sema::check(&reparsed)
        .map_err(|e| ("reparse-sema", format!("reparsed AST rejected: {e}")))
        .and_then(|t| {
            codegen::generate(&t).map_err(|e| ("reparse-sema", format!("reparsed codegen: {e}")))
        })?;
    if direct != via_text {
        return Err((
            "reparse-compile-differs",
            "direct AST and reparsed source compile to different object modules".into(),
        ));
    }

    // 3. Simulator differential against the interp oracle.
    let linked = link_source(&g.source).map_err(|e| ("sim", e))?;
    let uncached = simulate(
        &linked.exe,
        &MachineConfig::uncached(),
        &SimOptions::default(),
    )
    .map_err(|e| ("sim", format!("simulation failed: {e}")))?;
    let got = uncached
        .read_global(&linked.exe, "checksum")
        .ok_or_else(|| ("sim", "no checksum symbol in image".to_string()))?;
    if got != expected {
        return Err((
            "sim-vs-interp",
            format!("interp checksum {expected}, simulated checksum {got}"),
        ));
    }

    // 4. Replay differential: the ordered (v2) trace recorded on the
    // uncached machine must replay bit-identically to fresh simulation
    // on every spec machine — cycles and all MemStats counters,
    // write-back/store-buffer machinery included.
    let (_, trace) = simulate_with_trace(&linked.exe, &SimOptions::default())
        .map_err(|e| ("trace-record", format!("trace recording failed: {e}")))?;
    for (label, spec) in specs {
        let h = spec.hierarchy();
        if !trace.supports(&h) {
            return Err((
                "replay-unsupported",
                format!("[{label}] v2 trace refuses {}", h.label()),
            ));
        }
        let (cycles, stats) = trace
            .replay(&h)
            .map_err(|e| ("replay-vs-sim", format!("[{label}] replay failed: {e}")))?;
        let fresh = simulate(
            &linked.exe,
            &MachineConfig::with_hierarchy(h.clone()),
            &SimOptions::default(),
        )
        .map_err(|e| ("replay-vs-sim", format!("[{label}] simulation failed: {e}")))?;
        if cycles != fresh.cycles {
            return Err((
                "replay-vs-sim",
                format!(
                    "[{label}] replay {} cycles, fresh simulation {} cycles",
                    cycles, fresh.cycles
                ),
            ));
        }
        if stats != fresh.mem_stats {
            return Err((
                "replay-vs-sim",
                format!(
                    "[{label}] replay stats {stats:?} differ from fresh {:?}",
                    fresh.mem_stats
                ),
            ));
        }
    }

    // 5. Pipeline soundness at every spec point (the pipeline re-verifies
    // the simulated checksum against the interp oracle internally).
    let bench = g.benchmark();
    let pipeline = Pipeline::new(&bench).map_err(|e| ("pipeline", e.to_string()))?;
    for (label, spec) in specs {
        let r = pipeline
            .run(spec)
            .map_err(|e| ("pipeline", format!("[{label}] {e}")))?;
        if r.sim_cycles > r.wcet_cycles {
            return Err((
                "unsound-bound",
                format!(
                    "[{label}] simulated {} cycles exceeds WCET bound {}",
                    r.sim_cycles, r.wcet_cycles
                ),
            ));
        }
    }
    Ok(())
}

/// Rebuilds a [`GeneratedProgram`] around a shrunk AST so the full check
/// can re-run on it. Input and class are inherited from the original.
fn rebuild(g: &GeneratedProgram, p: &Program) -> GeneratedProgram {
    GeneratedProgram {
        seed: g.seed,
        class: g.class,
        program: p.clone(),
        source: print(p),
        input: Arc::clone(&g.input),
        steps_estimate: estimate_steps(p),
    }
}

/// Fuzzes seeds `start..end` (generated against `arch`, or the
/// [`reference_arch`] if `None`), pipelining each through `specs` plus
/// a per-seed random machine ([`random_spec_for_seed`]). Stops at the
/// first failure and shrinks it to a minimal repro.
#[must_use]
pub fn run_fuzz(
    start: u64,
    end: u64,
    arch: Option<&MemArchSpec>,
    specs: &[(String, MemArchSpec)],
) -> FuzzOutcome {
    let reference = reference_arch();
    let arch = arch.unwrap_or(&reference);
    let mut class_counts = [0u64; 4];
    let mut seeds_run = 0;
    for seed in start..end {
        let g = generate_for_seed(seed, arch);
        seeds_run += 1;
        class_counts[(seed % 4) as usize] += 1;
        let mut seed_specs = specs.to_vec();
        seed_specs.push(random_spec_for_seed(seed));
        if let Err((stage, detail)) = check_program(&g, &seed_specs) {
            let small = shrink(
                &g.program,
                |p| matches!(check_program(&rebuild(&g, p), &seed_specs), Err((s, _)) if s == stage),
            );
            return FuzzOutcome {
                seeds_run,
                class_counts,
                failure: Some(FuzzFailure {
                    seed,
                    stage,
                    detail,
                    repro: print(&small),
                }),
            };
        }
    }
    FuzzOutcome {
        seeds_run,
        class_counts,
        failure: None,
    }
}

/// Renders a fuzz outcome as the CLI report.
#[must_use]
pub fn render_fuzz_report(start: u64, end: u64, outcome: &FuzzOutcome) -> String {
    let mut out = String::new();
    match &outcome.failure {
        None => {
            let _ = writeln!(
                out,
                "fuzz {start}..{end}: OK — {} seeds, every differential agreed",
                outcome.seeds_run
            );
            for (class, n) in FootprintClass::ALL.iter().zip(outcome.class_counts) {
                let _ = writeln!(out, "  {:>14}: {n} seeds", class.label());
            }
        }
        Some(f) => {
            let _ = writeln!(
                out,
                "fuzz {start}..{end}: FAILED at seed {} (stage `{}`) after {} seeds",
                f.seed, f.stage, outcome.seeds_run
            );
            let _ = writeln!(out, "  {}", f.detail);
            let _ = writeln!(
                out,
                "  minimal repro ({} lines):\n{}",
                f.repro.lines().count(),
                f.repro
            );
        }
    }
    out
}

/// End-to-end harness proof: plant the `x / 2^k → x >> k` miscompile
/// into the compiled side, scan `start..end` for a seed whose input
/// drives a negative dividend through it, and shrink the witness.
///
/// # Errors
///
/// When no seed in the range triggers the planted bug, or the shrunk
/// repro exceeds 30 lines — both mean the harness lost its teeth.
pub fn run_inject_demo(
    start: u64,
    end: u64,
    arch: Option<&MemArchSpec>,
) -> Result<FuzzFailure, String> {
    let reference = reference_arch();
    let arch = arch.unwrap_or(&reference);

    // The differential: interp the original, simulate the injected
    // program through the real compile → link → simulate path.
    let diverges = |p: &Program| -> bool {
        let buggy = inject_miscompile(p);
        if buggy == *p {
            return false;
        }
        match (interp_checksum(p), sim_checksum_of_source(&print(&buggy))) {
            (Ok(a), Ok(b)) => a != b,
            _ => false,
        }
    };

    for seed in start..end {
        let g = generate_for_seed(seed, arch);
        if !diverges(&g.program) {
            continue;
        }
        let expected = interp_checksum(&g.program).map_err(|e| e.to_string())?;
        let got = sim_checksum_of_source(&print(&inject_miscompile(&g.program)))
            .map_err(|e| e.to_string())?;
        let small = shrink(&g.program, diverges);
        let repro = print(&small);
        let lines = repro.lines().count();
        if lines > 30 {
            return Err(format!(
                "shrunk repro for seed {seed} is still {lines} lines (> 30):\n{repro}"
            ));
        }
        return Ok(FuzzFailure {
            seed,
            stage: "injected-miscompile",
            detail: format!(
                "planted x/2^k → x>>k: interp checksum {expected}, miscompiled simulation {got}"
            ),
            repro,
        });
    }
    Err(format!(
        "no seed in {start}..{end} triggered the planted miscompile — widen the range"
    ))
}

// ---------------------------------------------------------------------
// Golden corpus: pinned seeds with stored checksums and cycle counts.
// ---------------------------------------------------------------------

/// The seeds pinned in `tests/corpus/` — three per footprint class.
pub const CORPUS_SEEDS: [u64; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];

/// One pinned corpus program with its measured invariants.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The generating seed.
    pub seed: u64,
    /// Benchmark name (`gen-{seed:04x}-{class}` — also the `.mc` stem).
    pub name: String,
    /// The program's `.mc` source.
    pub source: String,
    /// Final `checksum` global on the uncached machine.
    pub checksum: i32,
    /// Simulated cycles on the uncached machine.
    pub uncached_cycles: u64,
    /// WCET bound for the uncached machine.
    pub wcet_cycles: u64,
}

/// Generates one corpus entry: the program for `seed` (against the
/// [`reference_arch`]) plus its simulated checksum, cycle count and
/// uncached WCET bound.
///
/// # Errors
///
/// Compile/link/simulation/analysis failures (generator bugs).
pub fn corpus_entry(seed: u64) -> Result<CorpusEntry, String> {
    let g = generate_for_seed(seed, &reference_arch());
    let module = compile(&g.source).map_err(|e| format!("seed {seed}: compile: {e}"))?;
    let linked = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none())
        .map_err(|e| format!("seed {seed}: link: {e}"))?;
    let res = simulate(
        &linked.exe,
        &MachineConfig::uncached(),
        &SimOptions::default(),
    )
    .map_err(|e| format!("seed {seed}: simulate: {e}"))?;
    let checksum = res
        .read_global(&linked.exe, "checksum")
        .ok_or_else(|| format!("seed {seed}: no checksum symbol"))?;
    let wcet = spmlab_wcet::analyze(
        &linked.exe,
        &spmlab_wcet::WcetConfig::with_hierarchy(MemHierarchyConfig::uncached()),
        &linked.annotations,
    )
    .map_err(|e| format!("seed {seed}: wcet: {e}"))?;
    Ok(CorpusEntry {
        seed,
        name: g.name(),
        source: g.source,
        checksum,
        uncached_cycles: res.cycles,
        wcet_cycles: wcet.wcet_cycles,
    })
}

/// Renders the corpus manifest (tab-separated, one line per entry).
#[must_use]
pub fn render_corpus_manifest(entries: &[CorpusEntry]) -> String {
    let mut out = String::from("# seed\tname\tchecksum\tuncached_cycles\twcet_cycles\n");
    for e in entries {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}",
            e.seed, e.name, e.checksum, e.uncached_cycles, e.wcet_cycles
        );
    }
    out
}

/// Writes the full pinned corpus (`.mc` sources + `manifest.tsv`) into
/// `dir`, creating it if needed.
///
/// # Errors
///
/// Generation failures or IO errors, as text.
pub fn write_corpus(dir: &std::path::Path) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for seed in CORPUS_SEEDS {
        let e = corpus_entry(seed)?;
        let path = dir.join(format!("{}.mc", e.name));
        std::fs::write(&path, &e.source)
            .map_err(|err| format!("cannot write {}: {err}", path.display()))?;
        entries.push(e);
    }
    let manifest = dir.join("manifest.tsv");
    std::fs::write(&manifest, render_corpus_manifest(&entries))
        .map_err(|e| format!("cannot write {}: {e}", manifest.display()))?;
    Ok(format!(
        "wrote {} programs + manifest.tsv to {}\n",
        entries.len(),
        dir.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_range_parses() {
        assert_eq!(parse_seed_range("0..64"), Ok((0, 64)));
        assert_eq!(parse_seed_range(" 3 .. 9 "), Ok((3, 9)));
        assert!(parse_seed_range("5").is_err());
        assert!(parse_seed_range("9..3").is_err());
        assert!(parse_seed_range("a..b").is_err());
    }

    #[test]
    fn random_specs_are_deterministic_and_valid() {
        for seed in 0..64 {
            let (label_a, a) = random_spec_for_seed(seed);
            let (label_b, b) = random_spec_for_seed(seed);
            assert_eq!(label_a, label_b, "seed {seed}: label must be stable");
            assert_eq!(a, b, "seed {seed}: spec must be stable");
            a.hierarchy().validate();
        }
        // The stream must actually vary the machines and keep a healthy
        // share of write-policy-dependent ones for the replay stage.
        let wpd = (0..64)
            .filter(|&s| {
                random_spec_for_seed(s)
                    .1
                    .hierarchy()
                    .write_policy_dependent()
            })
            .count();
        assert!(
            (8..64).contains(&wpd),
            "expected a mixed machine population, got {wpd}/64 write-policy-dependent"
        );
    }

    #[test]
    fn clean_seeds_fuzz_green() {
        let specs = default_fuzz_specs();
        let outcome = run_fuzz(0, 6, None, &specs);
        assert!(
            outcome.failure.is_none(),
            "clean seeds failed: {:?}",
            outcome.failure
        );
        assert_eq!(outcome.seeds_run, 6);
    }

    #[test]
    fn injected_miscompile_shrinks_to_small_repro() {
        let f = run_inject_demo(0, 64, None).expect("inject demo must find its planted bug");
        assert_eq!(f.stage, "injected-miscompile");
        let lines = f.repro.lines().count();
        assert!(
            lines <= 30,
            "repro should be ≤ 30 lines, got {lines}:\n{}",
            f.repro
        );
        // The witness must still reproduce through the real pipeline.
        let p = parse_source(&f.repro).expect("repro parses");
        let good = interp_checksum(&p).expect("repro interps");
        let bad = sim_checksum_of_source(&print(&inject_miscompile(&p))).expect("repro simulates");
        assert_ne!(good, bad, "shrunk repro no longer diverges");
    }
}
