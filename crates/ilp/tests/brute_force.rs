//! Property tests: branch & bound agrees with exhaustive enumeration on
//! random small integer programs, and the knapsack DP agrees with the ILP
//! formulation (the paper's CPLEX cross-check).

use proptest::prelude::*;
use spmlab_ilp::knapsack::{as_ilp, solve as knapsack_solve, Item};
use spmlab_ilp::model::{Model, Sense, VarKind};
use spmlab_ilp::IlpError;

/// Enumerates all integer points in [0, ub]^n and returns the best feasible
/// objective, if any.
fn brute_force(
    objective: &[i32],
    constraints: &[(Vec<i32>, i32)], // Σ a_i x_i <= b
    ub: i32,
) -> Option<i64> {
    let n = objective.len();
    let mut best: Option<i64> = None;
    let mut x = vec![0i32; n];
    loop {
        let feasible = constraints.iter().all(|(coeffs, b)| {
            coeffs
                .iter()
                .zip(&x)
                .map(|(a, v)| (*a as i64) * (*v as i64))
                .sum::<i64>()
                <= *b as i64
        });
        if feasible {
            let obj: i64 = objective
                .iter()
                .zip(&x)
                .map(|(c, v)| (*c as i64) * (*v as i64))
                .sum();
            best = Some(best.map_or(obj, |b: i64| b.max(obj)));
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            x[i] += 1;
            if x[i] > ub {
                x[i] = 0;
                i += 1;
            } else {
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bnb_matches_brute_force(
        n in 1usize..4,
        ncons in 1usize..4,
        seed_obj in prop::collection::vec(0i32..8, 3),
        seed_cons in prop::collection::vec((prop::collection::vec(-2i32..5, 3), 0i32..20), 3),
    ) {
        let ub = 4;
        let objective: Vec<i32> = seed_obj.iter().take(n).copied().collect();
        let constraints: Vec<(Vec<i32>, i32)> = seed_cons
            .iter()
            .take(ncons)
            .map(|(c, b)| (c.iter().take(n).copied().collect(), *b))
            .collect();

        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, Some(ub as f64)))
            .collect();
        for (coeffs, b) in &constraints {
            let terms: Vec<_> = vars.iter().zip(coeffs).map(|(v, c)| (*v, *c as f64)).collect();
            m.add_le(&terms, *b as f64);
        }
        let terms: Vec<_> = vars.iter().zip(&objective).map(|(v, c)| (*v, *c as f64)).collect();
        m.set_objective(&terms);

        let expect = brute_force(&objective, &constraints, ub);
        match spmlab_ilp::branch::solve(&m) {
            Ok(sol) => {
                let bf = expect.expect("solver found a point, brute force must too");
                prop_assert!((sol.objective - bf as f64).abs() < 1e-6,
                    "bnb {} vs brute force {}", sol.objective, bf);
                // The returned point itself must be feasible and integral.
                for (coeffs, b) in &constraints {
                    let lhs: f64 = vars.iter().zip(coeffs)
                        .map(|(v, c)| sol.value(*v) * *c as f64).sum();
                    prop_assert!(lhs <= *b as f64 + 1e-6);
                }
                for v in &vars {
                    let x = sol.value(*v);
                    prop_assert!((x - x.round()).abs() < 1e-6);
                    prop_assert!(x >= -1e-9 && x <= ub as f64 + 1e-9);
                }
            }
            Err(IlpError::Infeasible) => prop_assert!(expect.is_none()),
            Err(e) => return Err(TestCaseError::fail(format!("solver error: {e}"))),
        }
    }

    #[test]
    fn knapsack_dp_matches_ilp(
        weights in prop::collection::vec(1u32..12, 1..7),
        values in prop::collection::vec(0u32..30, 7),
        capacity in 0u32..40,
    ) {
        let items: Vec<Item> = weights
            .iter()
            .zip(&values)
            .map(|(w, v)| Item { weight: *w, value: *v as f64 })
            .collect();
        let dp = knapsack_solve(&items, capacity);
        let ilp = spmlab_ilp::branch::solve(&as_ilp(&items, capacity)).unwrap();
        prop_assert!((dp.total_value - ilp.objective).abs() < 1e-6,
            "dp {} vs ilp {}", dp.total_value, ilp.objective);
        prop_assert!(dp.total_weight <= capacity);
        // Chosen indices are strictly ascending and within range.
        prop_assert!(dp.chosen.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(dp.chosen.iter().all(|&i| i < items.len()));
    }
}
