//! Depth-first branch & bound on top of the simplex relaxation.

use crate::model::{Constraint, Model, Op, Sense, Solution};
use crate::simplex::solve_relaxation;
use crate::{IlpError, INT_EPS};

/// Default node budget; IPET and knapsack instances in this workspace stay
/// far below it (their relaxations are nearly integral).
pub const DEFAULT_NODE_LIMIT: usize = 200_000;

/// Solves `model` to integer optimality (integer variables only; continuous
/// variables remain fractional).
///
/// # Errors
///
/// [`IlpError::Infeasible`] when no integer point exists,
/// [`IlpError::Unbounded`] when the relaxation is unbounded (for IPET:
/// a loop is missing its bound), [`IlpError::NodeLimit`] when the search
/// exceeds [`DEFAULT_NODE_LIMIT`] nodes.
pub fn solve(model: &Model) -> Result<Solution, IlpError> {
    solve_with_limit(model, DEFAULT_NODE_LIMIT)
}

/// Like [`solve`], with an explicit node budget.
pub fn solve_with_limit(model: &Model, node_limit: usize) -> Result<Solution, IlpError> {
    let int_vars = model.integer_vars();
    let root = solve_relaxation(model, &[])?;
    if int_vars.is_empty() || integral(&root, &int_vars) {
        return Ok(round_solution(root, &int_vars));
    }

    let better = |a: f64, b: f64| match model.sense {
        Sense::Maximize => a > b + 1e-9,
        Sense::Minimize => a < b - 1e-9,
    };

    let mut incumbent: Option<Solution> = None;
    // DFS over (extra-bound-constraints, relaxation) nodes.
    let mut stack: Vec<(Vec<Constraint>, Solution)> = vec![(Vec::new(), root)];
    let mut explored = 0usize;

    while let Some((bounds, relax)) = stack.pop() {
        explored += 1;
        if explored > node_limit {
            return Err(IlpError::NodeLimit { explored });
        }
        if let Some(inc) = &incumbent {
            if !better(relax.objective, inc.objective) {
                continue; // Bound: relaxation can't beat the incumbent.
            }
        }
        match pick_branch_var(&relax, &int_vars) {
            None => {
                let cand = round_solution(relax, &int_vars);
                let accept = incumbent
                    .as_ref()
                    .is_none_or(|inc| better(cand.objective, inc.objective));
                if accept {
                    incumbent = Some(cand);
                }
            }
            Some(v) => {
                let x = relax.values[v];
                let floor = x.floor();
                // Explore the "down" branch last (popped first) so counts
                // bias small — helps IPET instances prove optimality fast.
                for (op, rhs) in [(Op::Ge, floor + 1.0), (Op::Le, floor)] {
                    let mut b = bounds.clone();
                    b.push(Constraint {
                        terms: vec![(v, 1.0)],
                        op,
                        rhs,
                    });
                    match solve_relaxation(model, &b) {
                        Ok(r) => stack.push((b, r)),
                        Err(IlpError::Infeasible) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    incumbent.ok_or(IlpError::Infeasible)
}

fn integral(sol: &Solution, int_vars: &[usize]) -> bool {
    int_vars
        .iter()
        .all(|&v| (sol.values[v] - sol.values[v].round()).abs() <= INT_EPS)
}

fn pick_branch_var(sol: &Solution, int_vars: &[usize]) -> Option<usize> {
    int_vars
        .iter()
        .copied()
        .filter(|&v| (sol.values[v] - sol.values[v].round()).abs() > INT_EPS)
        .max_by(|&a, &b| {
            let fa = frac_distance(sol.values[a]);
            let fb = frac_distance(sol.values[b]);
            fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
        })
}

fn frac_distance(x: f64) -> f64 {
    let f = x - x.floor();
    f.min(1.0 - f)
}

fn round_solution(mut sol: Solution, int_vars: &[usize]) -> Solution {
    for &v in int_vars {
        sol.values[v] = sol.values[v].round();
    }
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, VarKind};

    #[test]
    fn fractional_lp_optimum_forces_branching() {
        // max x + y st 2x + y <= 5, x + 2y <= 5 → LP (5/3,5/3); ILP obj 3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, None);
        let y = m.add_var("y", VarKind::Integer, None);
        m.add_le(&[(x, 2.0), (y, 1.0)], 5.0);
        m.add_le(&[(x, 1.0), (y, 2.0)], 5.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve(&m).unwrap();
        assert!(
            (s.objective - 3.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        let xv = s.int_value(x);
        let yv = s.int_value(y);
        assert!(2 * xv + yv <= 5 && xv + 2 * yv <= 5);
    }

    #[test]
    fn knapsack_as_ilp() {
        // weights 3,4,5; values 4,5,6; capacity 7 → take {3,4} value 9.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..3)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, Some(1.0)))
            .collect();
        m.add_le(&[(xs[0], 3.0), (xs[1], 4.0), (xs[2], 5.0)], 7.0);
        m.set_objective(&[(xs[0], 4.0), (xs[1], 5.0), (xs[2], 6.0)]);
        let s = solve(&m).unwrap();
        assert!((s.objective - 9.0).abs() < 1e-6);
        assert_eq!(s.int_value(xs[0]), 1);
        assert_eq!(s.int_value(xs[1]), 1);
        assert_eq!(s.int_value(xs[2]), 0);
    }

    #[test]
    fn integer_infeasible() {
        // 0.4 <= x <= 0.6 has no integer point.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, Some(0.6));
        m.add_ge(&[(x, 1.0)], 0.4);
        m.set_objective(&[(x, 1.0)]);
        assert_eq!(solve(&m), Err(IlpError::Infeasible));
    }

    #[test]
    fn already_integral_lp_needs_no_branching() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, Some(3.0));
        m.set_objective(&[(x, 1.0)]);
        let s = solve(&m).unwrap();
        assert_eq!(s.int_value(x), 3);
    }

    #[test]
    fn minimize_integer() {
        // min 3x + 2y st x + y >= 3.5, integers → obj min is 7 at (0,4)?
        // candidates: (0,4)=8, (1,3)=9, (2,2)=10, (3,1)=11, (4,0)=12 → 8.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, None);
        let y = m.add_var("y", VarKind::Integer, None);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 3.5);
        m.set_objective(&[(x, 3.0), (y, 2.0)]);
        let s = solve(&m).unwrap();
        assert!(
            (s.objective - 8.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x integer, y continuous; x + y <= 3.7, x <= 2.2.
        // x=2, y=1.7 → 5.7.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, Some(2.2));
        let y = m.add_var("y", VarKind::Continuous, None);
        m.add_le(&[(x, 1.0), (y, 1.0)], 3.7);
        m.set_objective(&[(x, 2.0), (y, 1.0)]);
        let s = solve(&m).unwrap();
        assert!(
            (s.objective - 5.7).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert_eq!(s.int_value(x), 2);
    }
}
