//! Dense two-phase primal simplex.
//!
//! Sized for this workspace's problems (IPET systems with a few hundred
//! variables, knapsacks with a few dozen): a dense tableau with Dantzig
//! pricing, switching permanently to Bland's rule after a fixed number of
//! iterations to guarantee termination on degenerate problems.

use crate::model::{Constraint, Model, Op, Sense, Solution};
use crate::{IlpError, EPS};

/// Solves the LP relaxation of `model` (integrality ignored), with
/// `extra` appended as additional constraints (used by branch & bound for
/// branching bounds).
pub fn solve_relaxation(model: &Model, extra: &[Constraint]) -> Result<Solution, IlpError> {
    let n = model.num_vars();

    // Collect rows: model constraints, upper bounds, extra constraints.
    let mut rows: Vec<(Vec<f64>, Op, f64)> = Vec::new();
    for c in model.constraints.iter().chain(extra.iter()) {
        let mut coeffs = vec![0.0; n];
        for &(i, v) in &c.terms {
            if i >= n {
                return Err(IlpError::BadVariable(i));
            }
            coeffs[i] += v;
        }
        rows.push((coeffs, c.op, c.rhs));
    }
    for (i, def) in model.vars.iter().enumerate() {
        if let Some(ub) = def.upper {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            rows.push((coeffs, Op::Le, ub));
        }
    }

    // Normalise to rhs >= 0.
    for (coeffs, op, rhs) in &mut rows {
        if *rhs < 0.0 {
            for c in coeffs.iter_mut() {
                *c = -*c;
            }
            *rhs = -*rhs;
            *op = match *op {
                Op::Le => Op::Ge,
                Op::Ge => Op::Le,
                Op::Eq => Op::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: structural | slacks/surpluses | artificials | rhs.
    let n_slack = rows
        .iter()
        .filter(|(_, op, _)| !matches!(op, Op::Eq))
        .count();
    let n_art = rows
        .iter()
        .filter(|(_, op, _)| !matches!(op, Op::Le))
        .count();
    let ncols = n + n_slack + n_art;

    let mut t = vec![vec![0.0f64; ncols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut is_artificial = vec![false; ncols];
    {
        let mut slack_at = n;
        let mut art_at = n + n_slack;
        for (r, (coeffs, op, rhs)) in rows.iter().enumerate() {
            t[r][..n].copy_from_slice(coeffs);
            t[r][ncols] = *rhs;
            match op {
                Op::Le => {
                    t[r][slack_at] = 1.0;
                    basis[r] = slack_at;
                    slack_at += 1;
                }
                Op::Ge => {
                    t[r][slack_at] = -1.0;
                    slack_at += 1;
                    t[r][art_at] = 1.0;
                    is_artificial[art_at] = true;
                    basis[r] = art_at;
                    art_at += 1;
                }
                Op::Eq => {
                    t[r][art_at] = 1.0;
                    is_artificial[art_at] = true;
                    basis[r] = art_at;
                    art_at += 1;
                }
            }
        }
    }

    let iter_limit = 20_000 + 200 * (m + n);

    // Phase 1: minimise the sum of artificials.
    if n_art > 0 {
        let mut obj = vec![0.0f64; ncols + 1];
        for (j, flag) in is_artificial.iter().enumerate() {
            if *flag {
                obj[j] = 1.0;
            }
        }
        // Zero out reduced costs of basic artificials.
        for r in 0..m {
            if is_artificial[basis[r]] {
                for j in 0..=ncols {
                    obj[j] -= t[r][j];
                }
            }
        }
        run_pivots(&mut t, &mut obj, &mut basis, None, iter_limit)?;
        // Phase-1 objective value = -obj[ncols].
        if -obj[ncols] > 1e-6 {
            return Err(IlpError::Infeasible);
        }
        // Drive remaining basic artificials out of the basis.
        for r in 0..m {
            if is_artificial[basis[r]] {
                let pivot_col = (0..n + n_slack).find(|&j| t[r][j].abs() > EPS);
                if let Some(j) = pivot_col {
                    pivot(&mut t, &mut obj, &mut basis, r, j);
                }
                // Otherwise the row is redundant; the artificial stays basic
                // at value zero and is barred from re-entering below.
            }
        }
    }

    // Phase 2: optimise the real objective, never pricing artificials in.
    let mut obj = vec![0.0f64; ncols + 1];
    let flip = match model.sense {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    for (o, &c) in obj.iter_mut().take(n).zip(&model.objective) {
        *o = flip * c;
    }
    for r in 0..m {
        let b = basis[r];
        let cb = obj[b];
        if cb != 0.0 {
            for j in 0..=ncols {
                obj[j] -= cb * t[r][j];
            }
        }
    }
    run_pivots(
        &mut t,
        &mut obj,
        &mut basis,
        Some(&is_artificial),
        iter_limit,
    )?;

    // Extract the solution.
    let mut values = vec![0.0f64; n];
    for r in 0..m {
        if basis[r] < n {
            values[basis[r]] = t[r][ncols];
        }
    }
    let objective: f64 = values
        .iter()
        .zip(model.objective.iter())
        .map(|(x, c)| x * c)
        .sum();
    Ok(Solution { values, objective })
}

/// Solves the LP (relaxation) of `model` directly.
pub fn solve_lp(model: &Model) -> Result<Solution, IlpError> {
    solve_relaxation(model, &[])
}

fn run_pivots(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    banned: Option<&[bool]>,
    iter_limit: usize,
) -> Result<(), IlpError> {
    let m = t.len();
    if m == 0 {
        return Ok(());
    }
    let ncols = t[0].len() - 1;
    let bland_after = iter_limit / 2;
    for iter in 0..iter_limit {
        let bland = iter >= bland_after;
        // Entering column: negative reduced cost.
        let mut enter: Option<usize> = None;
        let mut best = -EPS;
        for j in 0..ncols {
            if banned.is_some_and(|b| b[j]) {
                continue;
            }
            if obj[j] < -EPS {
                if bland {
                    enter = Some(j);
                    break;
                }
                if obj[j] < best {
                    best = obj[j];
                    enter = Some(j);
                }
            }
        }
        let Some(j) = enter else { return Ok(()) };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m {
            if t[r][j] > EPS {
                let ratio = t[r][ncols] / t[r][j];
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_some_and(|l| basis[r] < basis[l]));
                if leave.is_none() || better {
                    best_ratio = ratio;
                    leave = Some(r);
                }
            }
        }
        let Some(r) = leave else {
            return Err(IlpError::Unbounded);
        };
        pivot(t, obj, basis, r, j);
    }
    Err(IlpError::IterationLimit)
}

fn pivot(t: &mut [Vec<f64>], obj: &mut [f64], basis: &mut [usize], r: usize, j: usize) {
    let m = t.len();
    let ncols = t[0].len() - 1;
    let p = t[r][j];
    for v in t[r].iter_mut() {
        *v /= p;
    }
    for i in 0..m {
        if i == r || t[i][j].abs() == 0.0 {
            continue;
        }
        let f = t[i][j];
        let (row_i, row_r) = if i < r {
            let (lo, hi) = t.split_at_mut(r);
            (&mut lo[i], &hi[0])
        } else {
            let (lo, hi) = t.split_at_mut(i);
            (&mut hi[0], &lo[r])
        };
        for (x, &p) in row_i.iter_mut().zip(row_r.iter()).take(ncols + 1) {
            *x -= f * p;
        }
        row_i[j] = 0.0;
    }
    if obj[j].abs() > 0.0 {
        let f = obj[j];
        for (o, &p) in obj.iter_mut().zip(t[r].iter()).take(ncols + 1) {
            *o -= f * p;
        }
        obj[j] = 0.0;
    }
    basis[r] = j;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), obj 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, None);
        let y = m.add_var("y", VarKind::Continuous, None);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(y, 2.0)], 12.0);
        m.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        m.set_objective(&[(x, 3.0), (y, 5.0)]);
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 36.0), "objective {}", s.objective);
        assert!(close(s.value(x), 2.0));
        assert!(close(s.value(y), 6.0));
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y st x + y >= 4, x >= 1 → (4, 0)? obj candidates:
        // x=4,y=0 → 8; y cheaper per unit? 2 < 3, so all x: obj 8.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, None);
        let y = m.add_var("y", VarKind::Continuous, None);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        m.add_ge(&[(x, 1.0)], 1.0);
        m.set_objective(&[(x, 2.0), (y, 3.0)]);
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 8.0), "objective {}", s.objective);
    }

    #[test]
    fn equality_constraints() {
        // max x + y st x + 2y == 6, x <= 2 → x=2, y=2, obj 4.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, Some(2.0));
        let y = m.add_var("y", VarKind::Continuous, None);
        m.add_eq(&[(x, 1.0), (y, 2.0)], 6.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 4.0), "objective {}", s.objective);
        assert!(close(s.value(x), 2.0));
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, None);
        m.add_le(&[(x, 1.0)], 1.0);
        m.add_ge(&[(x, 1.0)], 2.0);
        m.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&m), Err(IlpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, None);
        m.add_ge(&[(x, 1.0)], 1.0);
        m.set_objective(&[(x, 1.0)]);
        assert_eq!(solve_lp(&m), Err(IlpError::Unbounded));
    }

    #[test]
    fn negative_rhs_normalised() {
        // x - y <= -2  ≡  y - x >= 2; max x st also y <= 5 → x = 3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, None);
        let y = m.add_var("y", VarKind::Continuous, Some(5.0));
        m.add_le(&[(x, 1.0), (y, -1.0)], -2.0);
        m.set_objective(&[(x, 1.0)]);
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 3.0), "objective {}", s.objective);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, None);
        let y = m.add_var("y", VarKind::Continuous, None);
        m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        m.add_le(&[(x, 2.0), (y, 2.0)], 8.0);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(x, 3.0), (y, 3.0)], 12.0);
        m.set_objective(&[(x, 1.0), (y, 1.0)]);
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 4.0));
    }

    #[test]
    fn zero_objective_is_fine() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, Some(1.0));
        m.add_le(&[(x, 1.0)], 1.0);
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 0.0));
    }

    #[test]
    fn redundant_equalities() {
        // Same equality twice leaves a basic artificial in a redundant row.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, None);
        let y = m.add_var("y", VarKind::Continuous, None);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
        m.add_eq(&[(x, 2.0), (y, 2.0)], 6.0);
        m.set_objective(&[(x, 1.0)]);
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 3.0), "objective {}", s.objective);
    }
}
