//! # spmlab-ilp — linear and integer linear programming
//!
//! The paper solves two optimisation problems with a commercial ILP solver
//! (CPLEX): the knapsack formulation of static scratchpad allocation, and —
//! inside the aiT-style WCET analyzer — the implicit path enumeration
//! technique (IPET) maximum over basic-block execution counts. This crate
//! replaces CPLEX with:
//!
//! * [`model::Model`] — a small modelling API (variables, linear
//!   constraints, objective),
//! * [`simplex`] — a dense two-phase primal simplex solver,
//! * [`branch`] — depth-first branch & bound for integrality,
//! * [`knapsack`] — an exact dynamic program for 0/1 knapsacks, used both
//!   directly and as a cross-check of the ILP path.
//!
//! ```
//! use spmlab_ilp::model::{Model, Sense, VarKind};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2.5, x,y integer >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", VarKind::Integer, Some(2.5));
//! let y = m.add_var("y", VarKind::Integer, None);
//! m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
//! m.set_objective(&[(x, 3.0), (y, 2.0)]);
//! let sol = spmlab_ilp::branch::solve(&m)?;
//! assert_eq!(sol.value(x), 2.0);
//! assert_eq!(sol.value(y), 2.0);
//! assert!((sol.objective - 10.0).abs() < 1e-6);
//! # Ok::<(), spmlab_ilp::IlpError>(())
//! ```

pub mod branch;
pub mod knapsack;
pub mod model;
pub mod simplex;

/// Numerical tolerance used across the solvers.
pub const EPS: f64 = 1e-7;

/// Tolerance for accepting a relaxation value as integral.
pub const INT_EPS: f64 = 1e-6;

/// Errors from the LP/ILP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region (for IPET this
    /// means a loop without a bound constraint).
    Unbounded,
    /// Branch & bound exceeded its node budget without proving optimality.
    NodeLimit { explored: usize },
    /// A variable index was used that does not belong to the model.
    BadVariable(usize),
    /// The simplex iteration limit was hit (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for IlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IlpError::Infeasible => write!(f, "model is infeasible"),
            IlpError::Unbounded => write!(f, "objective is unbounded"),
            IlpError::NodeLimit { explored } => {
                write!(
                    f,
                    "branch & bound node limit reached after {explored} nodes"
                )
            }
            IlpError::BadVariable(i) => write!(f, "unknown variable index {i}"),
            IlpError::IterationLimit => write!(f, "simplex iteration limit reached"),
        }
    }
}

impl std::error::Error for IlpError {}
