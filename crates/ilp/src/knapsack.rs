//! Exact 0/1 knapsack by dynamic programming.
//!
//! The paper's scratchpad allocation is a 0/1 knapsack: each memory object
//! has a size (weight) and an energy benefit (value); the scratchpad
//! capacity is the budget. The instances are tiny (tens of objects, a few
//! KiB of capacity), so an `O(n·C)` DP is exact and instant. The ILP path
//! ([`crate::branch`]) solves the same formulation; tests assert the two
//! agree, standing in for the paper's CPLEX.

/// One knapsack item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Weight in capacity units (bytes, for scratchpad allocation).
    pub weight: u32,
    /// Value (energy benefit); must be non-negative.
    pub value: f64,
}

/// Result of a knapsack solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Indices of chosen items, ascending.
    pub chosen: Vec<usize>,
    /// Total value of the chosen items.
    pub total_value: f64,
    /// Total weight of the chosen items.
    pub total_weight: u32,
}

/// Solves the 0/1 knapsack exactly.
///
/// Items with `weight == 0` and positive value are always taken. Items with
/// negative value are never taken (callers filter them; we clamp to 0 gain).
///
/// ```
/// use spmlab_ilp::knapsack::{solve, Item};
///
/// let items = [
///     Item { weight: 3, value: 4.0 },
///     Item { weight: 4, value: 5.0 },
///     Item { weight: 5, value: 6.0 },
/// ];
/// let sel = solve(&items, 7);
/// assert_eq!(sel.chosen, vec![0, 1]);
/// assert_eq!(sel.total_value, 9.0);
/// ```
pub fn solve(items: &[Item], capacity: u32) -> Selection {
    let cap = capacity as usize;
    let n = items.len();
    // dp[c] = best value with capacity c over items processed so far.
    let mut dp = vec![0.0f64; cap + 1];
    // take[i][c] = item i taken in the optimum for capacity c at stage i.
    let mut take = vec![vec![false; cap + 1]; n];

    for (i, item) in items.iter().enumerate() {
        if item.value <= 0.0 {
            continue;
        }
        let w = item.weight as usize;
        if w > cap {
            continue;
        }
        // Descending order keeps this 0/1 (each item used at most once).
        for c in (w..=cap).rev() {
            let with = dp[c - w] + item.value;
            if with > dp[c] + 1e-12 {
                dp[c] = with;
                take[i][c] = true;
            }
        }
    }

    // Backtrack.
    let mut chosen = Vec::new();
    let mut c = cap;
    for i in (0..n).rev() {
        if *take.get(i).and_then(|row| row.get(c)).unwrap_or(&false) {
            chosen.push(i);
            c -= items[i].weight as usize;
        }
    }
    chosen.reverse();
    let total_value = chosen.iter().map(|&i| items[i].value).sum();
    let total_weight = chosen.iter().map(|&i| items[i].weight).sum();
    Selection {
        chosen,
        total_value,
        total_weight,
    }
}

/// Builds the equivalent ILP model (used by tests to cross-check the DP
/// against the branch & bound solver, mirroring the paper's CPLEX usage).
pub fn as_ilp(items: &[Item], capacity: u32) -> crate::model::Model {
    use crate::model::{Model, Sense, VarKind};
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = items
        .iter()
        .enumerate()
        .map(|(i, _)| m.add_var(format!("obj{i}"), VarKind::Integer, Some(1.0)))
        .collect();
    let weight_terms: Vec<_> = vars
        .iter()
        .zip(items)
        .map(|(v, it)| (*v, it.weight as f64))
        .collect();
    m.add_le(&weight_terms, capacity as f64);
    let value_terms: Vec<_> = vars
        .iter()
        .zip(items)
        .map(|(v, it)| (*v, it.value))
        .collect();
    m.set_objective(&value_terms);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_zero_capacity() {
        assert_eq!(solve(&[], 10).chosen, Vec::<usize>::new());
        let items = [Item {
            weight: 1,
            value: 1.0,
        }];
        assert_eq!(solve(&items, 0).chosen, Vec::<usize>::new());
    }

    #[test]
    fn takes_everything_when_it_fits() {
        let items = [
            Item {
                weight: 2,
                value: 1.0,
            },
            Item {
                weight: 3,
                value: 2.0,
            },
        ];
        let sel = solve(&items, 10);
        assert_eq!(sel.chosen, vec![0, 1]);
        assert_eq!(sel.total_weight, 5);
    }

    #[test]
    fn classic_instance() {
        let items = [
            Item {
                weight: 12,
                value: 4.0,
            },
            Item {
                weight: 2,
                value: 2.0,
            },
            Item {
                weight: 1,
                value: 2.0,
            },
            Item {
                weight: 1,
                value: 1.0,
            },
            Item {
                weight: 4,
                value: 10.0,
            },
        ];
        let sel = solve(&items, 15);
        // Known optimum: items 1,2,3,4 → value 15, weight 8.
        assert_eq!(sel.chosen, vec![1, 2, 3, 4]);
        assert!((sel.total_value - 15.0).abs() < 1e-9);
    }

    #[test]
    fn worthless_items_skipped() {
        let items = [
            Item {
                weight: 1,
                value: 0.0,
            },
            Item {
                weight: 1,
                value: 5.0,
            },
        ];
        let sel = solve(&items, 1);
        assert_eq!(sel.chosen, vec![1]);
    }

    #[test]
    fn matches_ilp_on_small_instances() {
        let items = [
            Item {
                weight: 3,
                value: 4.0,
            },
            Item {
                weight: 4,
                value: 5.0,
            },
            Item {
                weight: 5,
                value: 6.0,
            },
            Item {
                weight: 2,
                value: 3.0,
            },
        ];
        for cap in 0..=14 {
            let dp = solve(&items, cap);
            let ilp = crate::branch::solve(&as_ilp(&items, cap)).unwrap();
            assert!(
                (dp.total_value - ilp.objective).abs() < 1e-6,
                "capacity {cap}: dp {} vs ilp {}",
                dp.total_value,
                ilp.objective
            );
        }
    }
}
