//! Linear-program model building.

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximise the objective (IPET, knapsack benefit).
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Continuous or integer variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous, non-negative.
    Continuous,
    /// Integer, non-negative (branch & bound enforces integrality).
    Integer,
}

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The variable's index within its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub kind: VarKind,
    pub upper: Option<f64>,
}

/// A raw linear constraint over variable indices (rarely constructed by
/// hand; used by branch & bound to inject branching bounds).
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs.
    pub terms: Vec<(usize, f64)>,
    /// Comparison operator.
    pub op: Op,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: non-negative variables, linear constraints, linear
/// objective. Integer variables are relaxed by [`crate::simplex`] and
/// enforced by [`crate::branch`].
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Vec<f64>,
}

impl Model {
    /// Creates an empty model with the given optimisation direction.
    pub fn new(sense: Sense) -> Model {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
        }
    }

    /// Adds a variable with lower bound 0 and optional upper bound.
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind, upper: Option<f64>) -> Var {
        let idx = self.vars.len();
        self.vars.push(VarDef {
            name: name.into(),
            kind,
            upper,
        });
        self.objective.push(0.0);
        Var(idx)
    }

    /// Sets the objective coefficients (unmentioned variables keep 0).
    pub fn set_objective(&mut self, terms: &[(Var, f64)]) {
        for (v, c) in terms {
            self.objective[v.0] = *c;
        }
    }

    /// Adds `Σ terms <= rhs`.
    pub fn add_le(&mut self, terms: &[(Var, f64)], rhs: f64) {
        self.add_constraint(terms, Op::Le, rhs);
    }

    /// Adds `Σ terms >= rhs`.
    pub fn add_ge(&mut self, terms: &[(Var, f64)], rhs: f64) {
        self.add_constraint(terms, Op::Ge, rhs);
    }

    /// Adds `Σ terms == rhs`.
    pub fn add_eq(&mut self, terms: &[(Var, f64)], rhs: f64) {
        self.add_constraint(terms, Op::Eq, rhs);
    }

    /// Adds a constraint with an explicit operator.
    pub fn add_constraint(&mut self, terms: &[(Var, f64)], op: Op, rhs: f64) {
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            debug_assert!(v.0 < self.vars.len(), "variable from another model");
            match merged.iter_mut().find(|(i, _)| *i == v.0) {
                Some((_, acc)) => *acc += *c,
                None => merged.push((v.0, *c)),
            }
        }
        self.constraints.push(Constraint {
            terms: merged,
            op,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints (upper bounds not included).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The name given to a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.0].name
    }

    /// Indices of integer variables.
    pub(crate) fn integer_vars(&self) -> Vec<usize> {
        self.vars
            .iter()
            .enumerate()
            .filter_map(|(i, d)| matches!(d.kind, VarKind::Integer).then_some(i))
            .collect()
    }
}

/// A solution: value per variable plus the objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value of each variable, indexed like the model's variables.
    pub values: Vec<f64>,
    /// Objective value in the model's own sense.
    pub objective: f64,
}

impl Solution {
    /// Value of `v`.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.0]
    }

    /// Value of `v` rounded to the nearest integer (for integer variables).
    pub fn int_value(&self, v: Var) -> i64 {
        self.values[v.0].round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, Some(10.0));
        let y = m.add_var("y", VarKind::Integer, None);
        m.set_objective(&[(x, 1.0), (y, 2.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 5.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.integer_vars(), vec![1]);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, None);
        m.add_le(&[(x, 1.0), (x, 2.0)], 3.0);
        assert_eq!(m.constraints[0].terms, vec![(0, 3.0)]);
    }
}
