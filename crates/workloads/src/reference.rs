//! Host-side Rust twins of every MiniC benchmark.
//!
//! Each function mirrors its `.mc` source line by line (same integer
//! widths: `i32` arithmetic, `i16`/`i8` storage with sign extension,
//! wrapping multiplication) and returns the final `checksum` value. The
//! test-suite runs the MiniC binary in the instruction-set simulator and
//! asserts the checksums agree — a differential test of the whole
//! compiler + linker + simulator stack.

// The twins below intentionally mirror their `.mc` sources statement by
// statement — clippy's structural simplifications (merging identical
// branches, `<` for `+ 1 <=`, iterator loops) would break the one-to-one
// correspondence the differential tests rely on for auditability.
#![allow(
    clippy::if_same_then_else,
    clippy::int_plus_one,
    clippy::needless_range_loop
)]

fn wrap_mul_add(acc: i32, mul: i32, add: i32) -> i32 {
    acc.wrapping_mul(mul).wrapping_add(add)
}

/// Twin of `adpcm.mc`.
pub fn adpcm(input: &[i32]) -> i32 {
    const STEPSIZE: [i32; 89] = [
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60,
        66, 73, 80, 88, 97, 107, 118, 130, 143, 158, 173, 192, 211, 233, 257, 282, 311, 343, 378,
        417, 460, 505, 555, 612, 670, 733, 805, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878,
        2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845,
        8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
        29794, 32767,
    ];
    const INDEX: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

    let n = input.len();
    let mut encoded = vec![0i8; n];
    let mut decoded = vec![0i16; n];

    let (mut enc_valpred, mut enc_index) = (0i32, 0i32);
    let mut step = STEPSIZE[enc_index as usize];
    for k in 0..n {
        let sample = input[k];
        let mut diff = sample - enc_valpred;
        let sign = if diff < 0 {
            diff = -diff;
            8
        } else {
            0
        };
        let mut delta = 0;
        let mut vpdiff = step >> 3;
        if diff >= step {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 1;
            vpdiff += step;
        }
        if sign != 0 {
            enc_valpred -= vpdiff;
        } else {
            enc_valpred += vpdiff;
        }
        enc_valpred = enc_valpred.clamp(-32768, 32767);
        delta |= sign;
        enc_index += INDEX[delta as usize];
        enc_index = enc_index.clamp(0, 88);
        step = STEPSIZE[enc_index as usize];
        encoded[k] = delta as i8;
    }

    let (mut dec_valpred, mut dec_index) = (0i32, 0i32);
    let mut step = STEPSIZE[dec_index as usize];
    for k in 0..n {
        let full = encoded[k] as i32;
        let sign = full & 8;
        let delta = full & 7;
        let mut vpdiff = step >> 3;
        if delta & 4 != 0 {
            vpdiff += step;
        }
        if delta & 2 != 0 {
            vpdiff += step >> 1;
        }
        if delta & 1 != 0 {
            vpdiff += step >> 2;
        }
        if sign != 0 {
            dec_valpred -= vpdiff;
        } else {
            dec_valpred += vpdiff;
        }
        dec_valpred = dec_valpred.clamp(-32768, 32767);
        dec_index += INDEX[(sign | delta) as usize];
        dec_index = dec_index.clamp(0, 88);
        step = STEPSIZE[dec_index as usize];
        decoded[k] = dec_valpred as i16;
    }

    let mut checksum = 0i32;
    for k in 0..n {
        checksum = wrap_mul_add(checksum, 31, encoded[k] as i32);
        checksum = checksum.wrapping_add(decoded[k] as i32);
        checksum &= 0x7FFF_FFFF;
    }
    checksum
}

/// Twin of `multisort.mc`.
pub fn multisort(input: &[i32]) -> i32 {
    let n = input.len();
    let mut checksum = 0i32;
    let accumulate = |work: &[i32], tag: i32, checksum: &mut i32| {
        for &w in work.iter().take(n) {
            *checksum = wrap_mul_add(*checksum, 13, w.wrapping_add(tag));
            *checksum &= 0x7FFF_FFFF;
        }
    };

    // bubble (with early exit)
    let mut work: Vec<i32> = input.to_vec();
    for i in 0..n - 1 {
        let mut swapped = false;
        for j in 0..n - 1 - i {
            if work[j] > work[j + 1] {
                work.swap(j, j + 1);
                swapped = true;
            }
        }
        if !swapped {
            break;
        }
    }
    accumulate(&work, 1, &mut checksum);

    // insertion
    let mut work: Vec<i32> = input.to_vec();
    for i in 1..n {
        let key = work[i];
        let mut j = i;
        while j > 0 && work[j - 1] > key {
            work[j] = work[j - 1];
            j -= 1;
        }
        work[j] = key;
    }
    accumulate(&work, 2, &mut checksum);

    // selection
    let mut work: Vec<i32> = input.to_vec();
    for i in 0..n - 1 {
        let mut min = i;
        for j in i + 1..n {
            if work[j] < work[min] {
                min = j;
            }
        }
        if min != i {
            work.swap(i, min);
        }
    }
    accumulate(&work, 3, &mut checksum);

    // bottom-up merge
    let mut work: Vec<i32> = input.to_vec();
    let mut aux = vec![0i32; n];
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                if work[i] <= work[j] {
                    aux[k] = work[i];
                    i += 1;
                } else {
                    aux[k] = work[j];
                    j += 1;
                }
                k += 1;
            }
            while i < mid {
                aux[k] = work[i];
                i += 1;
                k += 1;
            }
            while j < hi {
                aux[k] = work[j];
                j += 1;
                k += 1;
            }
            work[lo..hi].copy_from_slice(&aux[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    accumulate(&work, 4, &mut checksum);

    // heap
    let mut work: Vec<i32> = input.to_vec();
    fn sift_down(w: &mut [i32], start: usize, end: usize) {
        let mut root = start;
        while root * 2 + 1 <= end {
            let mut child = root * 2 + 1;
            if child + 1 <= end && w[child] < w[child + 1] {
                child += 1;
            }
            if w[root] < w[child] {
                w.swap(root, child);
                root = child;
            } else {
                break;
            }
        }
    }
    let mut start = (n - 2) / 2;
    loop {
        sift_down(&mut work, start, n - 1);
        if start == 0 {
            break;
        }
        start -= 1;
    }
    let mut end = n - 1;
    while end > 0 {
        work.swap(0, end);
        end -= 1;
        sift_down(&mut work, 0, end);
    }
    accumulate(&work, 5, &mut checksum);

    checksum
}

/// Twin of `insertsort.mc`.
pub fn insertsort(input: &[i32]) -> i32 {
    let mut data: Vec<i32> = input.to_vec();
    let n = data.len();
    for i in 1..n {
        let key = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > key {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = key;
    }
    let mut checksum = 0i32;
    for &d in &data {
        checksum = wrap_mul_add(checksum, 17, d);
        checksum &= 0x7FFF_FFFF;
    }
    checksum
}

/// Twin of `fir.mc`.
pub fn fir(input: &[i32]) -> i32 {
    const COEFF: [i32; 16] = [
        3, -5, 9, -16, 27, -44, 73, 123, 123, 73, -44, 27, -16, 9, -5, 3,
    ];
    let n = input.len();
    let mut checksum = 0i32;
    let mut output = vec![0i32; n];
    for k in 0..n {
        let mut acc = 0i32;
        for (j, &c) in COEFF.iter().enumerate() {
            if k as i32 - j as i32 >= 0 {
                acc = acc.wrapping_add(c.wrapping_mul(input[k - j] as i16 as i32));
            }
        }
        output[k] = acc >> 8;
    }
    for k in 0..n {
        checksum = wrap_mul_add(checksum, 7, output[k]);
        checksum &= 0x7FFF_FFFF;
    }
    checksum
}

/// Twin of `crc32.mc`.
pub fn crc32(input: &[i32]) -> i32 {
    let mut crc = -1i32;
    for &v in input {
        let byte = (v as i8 as i32) & 0xFF;
        crc ^= byte;
        for _ in 0..8 {
            let feedback = crc & 1;
            crc = (crc >> 1) & 0x7FFF_FFFF;
            if feedback != 0 {
                crc ^= 0xEDB8_8320u32 as i32;
            }
        }
    }
    !crc & 0x7FFF_FFFF
}

/// Twin of `g721.mc`: the full two-channel tandem transcoder.
pub fn g721(input: &[i32]) -> i32 {
    G721::run(input)
}

struct G721 {
    b: [i16; 12],
    dq: [i16; 12],
    a: [i16; 4],
    pk: [i16; 4],
    sr: [i16; 4],
    yl: [i32; 2],
    yu: [i16; 2],
    dms: [i16; 2],
    dml: [i16; 2],
    ap: [i16; 2],
    td: [i16; 2],
    g_y: i32,
    g_wi: i32,
    g_fi: i32,
    g_dq: i32,
    g_sr: i32,
    g_dqsez: i32,
}

const QTAB: [i32; 7] = [-124, 80, 178, 246, 300, 349, 400];
const DQLNTAB: [i32; 16] = [
    -2048, 4, 135, 213, 273, 323, 373, 425, 425, 373, 323, 273, 213, 135, 4, -2048,
];
const WITAB: [i32; 16] = [
    -12, 18, 41, 64, 112, 198, 355, 1122, 1122, 355, 198, 112, 64, 41, 18, -12,
];
const FITAB: [i32; 16] = [
    0, 0, 0, 512, 512, 512, 1536, 3584, 3584, 1536, 512, 512, 512, 0, 0, 0,
];
const POWER2: [i32; 15] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
];

fn quan_qtab(val: i32) -> i32 {
    for (i, &q) in QTAB.iter().enumerate() {
        if val < q {
            return i as i32;
        }
    }
    7
}

fn quan_power2(val: i32) -> i32 {
    for (i, &p) in POWER2.iter().enumerate() {
        if val < p {
            return i as i32;
        }
    }
    15
}

fn fmult(an: i32, srn: i32) -> i32 {
    let anmag = if an > 0 { an } else { (-an) & 8191 };
    let anexp = quan_power2(anmag) - 6;
    let anmant = if anmag == 0 {
        32
    } else if anexp >= 0 {
        anmag >> anexp
    } else {
        anmag << -anexp
    };
    let wanexp = anexp + ((srn >> 6) & 15) - 13;
    let wanmant = (anmant.wrapping_mul(srn & 63) + 48) >> 4;
    let retval = if wanexp >= 0 {
        (wanmant << wanexp) & 32767
    } else {
        wanmant >> -wanexp
    };
    if (an ^ srn) < 0 {
        -retval
    } else {
        retval
    }
}

impl G721 {
    fn new() -> G721 {
        let mut s = G721 {
            b: [0; 12],
            dq: [32; 12],
            a: [0; 4],
            pk: [0; 4],
            sr: [32; 4],
            yl: [34816; 2],
            yu: [544; 2],
            dms: [0; 2],
            dml: [0; 2],
            ap: [0; 2],
            td: [0; 2],
            g_y: 0,
            g_wi: 0,
            g_fi: 0,
            g_dq: 0,
            g_sr: 0,
            g_dqsez: 0,
        };
        s.dq = [32; 12];
        s
    }

    fn predictor_zero(&self, ch: usize) -> i32 {
        let mut sezi = 0;
        for i in 0..6 {
            sezi += fmult((self.b[ch * 6 + i] as i32) >> 2, self.dq[ch * 6 + i] as i32);
        }
        sezi
    }

    fn predictor_pole(&self, ch: usize) -> i32 {
        fmult((self.a[ch * 2 + 1] as i32) >> 2, self.sr[ch * 2 + 1] as i32)
            + fmult((self.a[ch * 2] as i32) >> 2, self.sr[ch * 2] as i32)
    }

    fn step_size(&self, ch: usize) -> i32 {
        if self.ap[ch] as i32 >= 256 {
            return self.yu[ch] as i32;
        }
        let mut y = self.yl[ch] >> 6;
        let dif = self.yu[ch] as i32 - y;
        let al = (self.ap[ch] as i32) >> 2;
        if dif > 0 {
            y += (dif.wrapping_mul(al)) >> 6;
        } else if dif < 0 {
            y += (dif.wrapping_mul(al) + 63) >> 6;
        }
        y
    }

    fn quantize(d: i32, y: i32) -> i32 {
        let dqm = d.abs();
        let exp = quan_power2(dqm >> 1);
        let mant = ((dqm << 7) >> exp) & 127;
        let dl = (exp << 7) + mant;
        let dln = dl - (y >> 2);
        let mut i = quan_qtab(dln);
        if d < 0 {
            i = 15 - i;
        } else if i == 0 {
            i = 15;
        }
        i
    }

    fn reconstruct(sign: i32, dqln: i32, y: i32) -> i32 {
        let dql = dqln + (y >> 2);
        if dql < 0 {
            return if sign != 0 { -32768 } else { 0 };
        }
        let dex = (dql >> 7) & 15;
        let dqt = 128 + (dql & 127);
        let dq = (dqt << 7) >> (14 - dex);
        if sign != 0 {
            dq - 32768
        } else {
            dq
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn update(&mut self, ch: usize) {
        let pk0 = if self.g_dqsez < 0 { 1 } else { 0 };
        let mut mag = self.g_dq & 32767;

        let ylint = self.yl[ch] >> 15;
        let ylfrac = (self.yl[ch] >> 10) & 31;
        let thr1 = (32 + ylfrac) << ylint;
        let thr2 = if ylint > 9 { 31744 } else { thr1 };
        let dqthr = (thr2 + (thr2 >> 1)) >> 1;
        let tr = if self.td[ch] == 0 {
            0
        } else if mag <= dqthr {
            0
        } else {
            1
        };

        let mut yu = self.g_y + ((self.g_wi - self.g_y) >> 5);
        yu = yu.clamp(544, 5120);
        self.yu[ch] = yu as i16;
        self.yl[ch] = self.yl[ch] + yu + ((-self.yl[ch]) >> 6);

        let mut a2p = 0;
        if tr == 1 {
            self.a[ch * 2] = 0;
            self.a[ch * 2 + 1] = 0;
            for cnt in 0..6 {
                self.b[ch * 6 + cnt] = 0;
            }
        } else {
            let pks1 = pk0 ^ self.pk[ch * 2] as i32;
            a2p = self.a[ch * 2 + 1] as i32 - ((self.a[ch * 2 + 1] as i32) >> 7);
            if self.g_dqsez != 0 {
                let fa1 = if pks1 != 0 {
                    self.a[ch * 2] as i32
                } else {
                    -(self.a[ch * 2] as i32)
                };
                if fa1 < -8191 {
                    a2p -= 256;
                } else if fa1 > 8191 {
                    a2p += 255;
                } else {
                    a2p += fa1 >> 5;
                }
                if (pk0 ^ self.pk[ch * 2 + 1] as i32) != 0 {
                    if a2p <= -12160 {
                        a2p = -12288;
                    } else if a2p >= 12416 {
                        a2p = 12288;
                    } else {
                        a2p -= 128;
                    }
                } else if a2p <= -12416 {
                    a2p = -12288;
                } else if a2p >= 12160 {
                    a2p = 12288;
                } else {
                    a2p += 128;
                }
            }
            self.a[ch * 2 + 1] = a2p as i16;
            let mut a0 = self.a[ch * 2] as i32 - ((self.a[ch * 2] as i32) >> 8);
            if self.g_dqsez != 0 {
                if pks1 == 0 {
                    a0 += 192;
                } else {
                    a0 -= 192;
                }
            }
            let a1ul = 15360 - a2p;
            if a0 < -a1ul {
                a0 = -a1ul;
            } else if a0 > a1ul {
                a0 = a1ul;
            }
            self.a[ch * 2] = a0 as i16;

            for cnt in 0..6 {
                let mut b = self.b[ch * 6 + cnt] as i32 - ((self.b[ch * 6 + cnt] as i32) >> 8);
                if self.g_dq & 32767 != 0 {
                    if (self.g_dq ^ self.dq[ch * 6 + cnt] as i32) >= 0 {
                        b += 128;
                    } else {
                        b -= 128;
                    }
                }
                self.b[ch * 6 + cnt] = b as i16;
            }
        }

        for cnt in (1..6).rev() {
            self.dq[ch * 6 + cnt] = self.dq[ch * 6 + cnt - 1];
        }
        if mag == 0 {
            self.dq[ch * 6] = if self.g_dq >= 0 { 32 } else { 0xFC20u16 as i16 };
        } else {
            let exp = quan_power2(mag);
            let v = if self.g_dq >= 0 {
                (exp << 6) + ((mag << 6) >> exp)
            } else {
                (exp << 6) + ((mag << 6) >> exp) - 1024
            };
            self.dq[ch * 6] = v as i16;
        }

        self.sr[ch * 2 + 1] = self.sr[ch * 2];
        if self.g_sr == 0 {
            self.sr[ch * 2] = 32;
        } else if self.g_sr > 0 {
            let exp = quan_power2(self.g_sr);
            self.sr[ch * 2] = ((exp << 6) + ((self.g_sr << 6) >> exp)) as i16;
        } else if self.g_sr > -32768 {
            mag = -self.g_sr;
            let exp = quan_power2(mag);
            self.sr[ch * 2] = ((exp << 6) + ((mag << 6) >> exp) - 1024) as i16;
        } else {
            self.sr[ch * 2] = 0xFC20u16 as i16;
        }

        self.pk[ch * 2 + 1] = self.pk[ch * 2];
        self.pk[ch * 2] = pk0 as i16;
        self.td[ch] = if tr == 1 {
            0
        } else if a2p < -11776 {
            1
        } else {
            0
        };

        self.dms[ch] = (self.dms[ch] as i32 + ((self.g_fi - self.dms[ch] as i32) >> 5)) as i16;
        self.dml[ch] =
            (self.dml[ch] as i32 + (((self.g_fi << 2) - self.dml[ch] as i32) >> 7)) as i16;
        let tmp = ((self.dms[ch] as i32) << 2) - self.dml[ch] as i32;
        let tmp = tmp.abs();
        let ap = self.ap[ch] as i32;
        self.ap[ch] = if tr == 1 {
            256
        } else if self.g_y < 1536 {
            ap + ((512 - ap) >> 4)
        } else if self.td[ch] == 1 {
            ap + ((512 - ap) >> 4)
        } else if tmp >= (self.dml[ch] as i32) >> 3 {
            ap + ((512 - ap) >> 4)
        } else {
            ap + ((-ap) >> 4)
        } as i16;
    }

    fn encoder(&mut self, sl: i32) -> i32 {
        let sl = sl >> 2;
        let sezi = self.predictor_zero(0);
        let sez = sezi >> 1;
        let se = (sezi + self.predictor_pole(0)) >> 1;
        let d = sl - se;
        let y = self.step_size(0);
        let i = Self::quantize(d, y);
        let dq = Self::reconstruct(i & 8, DQLNTAB[i as usize], y);
        let sr = if dq < 0 { se - (dq & 16383) } else { se + dq };
        self.g_y = y;
        self.g_wi = WITAB[i as usize] << 5;
        self.g_fi = FITAB[i as usize];
        self.g_dq = dq;
        self.g_sr = sr;
        self.g_dqsez = sr + sez - se;
        self.update(0);
        i
    }

    fn decoder(&mut self, i: i32) -> i32 {
        let sezi = self.predictor_zero(1);
        let sez = sezi >> 1;
        let se = (sezi + self.predictor_pole(1)) >> 1;
        let y = self.step_size(1);
        let dq = Self::reconstruct(i & 8, DQLNTAB[i as usize], y);
        let sr = if dq < 0 { se - (dq & 16383) } else { se + dq };
        self.g_y = y;
        self.g_wi = WITAB[i as usize] << 5;
        self.g_fi = FITAB[i as usize];
        self.g_dq = dq;
        self.g_sr = sr;
        self.g_dqsez = sr + sez - se;
        self.update(1);
        sr << 2
    }

    fn run(input: &[i32]) -> i32 {
        let mut s = G721::new();
        let mut checksum = 0i32;
        for &sample in input {
            let code = s.encoder(sample as i16 as i32);
            // `out` enters the checksum as the raw decoder return value
            // (the .mc source only truncates it when storing to outsamp).
            let out = s.decoder(code);
            checksum = wrap_mul_add(checksum, 31, code.wrapping_add(out));
            checksum &= 0x7FFF_FFFF;
        }
        checksum
    }
}
