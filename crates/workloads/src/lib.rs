//! # spmlab-workloads — the paper's benchmark programs
//!
//! MiniC implementations of the paper's Table 2 plus extra kernels:
//!
//! | name | paper | description |
//! |------|-------|-------------|
//! | `g721` | ✓ | G.721 speech transcoder, CCITT-reference style |
//! | `adpcm` | ✓ | IMA/DVI ADPCM encoder + decoder |
//! | `multisort` | ✓ | mix of sorting algorithms |
//! | `insertsort` | §4 | tightness experiment (known worst-case input) |
//! | `fir` | extra | branch-free 16-tap FIR filter |
//! | `crc32` | extra | bitwise CRC-32 |
//!
//! Each [`Benchmark`] bundles the MiniC source, the name of its input
//! array, deterministic typical/worst-case input generators, and a
//! reference oracle computing the expected checksum — the basis of the
//! differential tests that validate compiler, linker and simulator. The
//! hand-written kernels use a host Rust twin ([`mod@reference`]); programs
//! produced by the seeded generator ([`mod@gen`]) use the MiniC
//! interpreter on their own AST instead, so every benchmark — shipped or
//! generated — carries an independent semantic oracle.
//!
//! ```
//! use spmlab_workloads::{benchmark, paper_benchmarks};
//!
//! let g721 = benchmark("g721").unwrap();
//! let input = g721.typical_input();
//! let expected = g721.reference_checksum(&input);
//! assert_ne!(expected, 0);
//! assert_eq!(paper_benchmarks().len(), 3);
//! ```

pub mod gen;
pub mod inputs;
pub mod reference;

use std::borrow::Cow;
use std::sync::Arc;

use spmlab_cc::ast::Program;
use spmlab_cc::{compile, interp, link, CcError, LinkedProgram, ObjModule, SpmAssignment};
use spmlab_isa::mem::MemoryMap;

/// How a benchmark produces an input data set.
///
/// The shipped kernels use const-constructible function pointers; the
/// seeded generator pins one concrete input per seed so the `.mc` source,
/// the interpreted AST, and the linked image all observe identical data.
#[derive(Clone)]
pub enum InputGen {
    /// Deterministic generator function (the shipped statics).
    Fn(fn() -> Vec<i32>),
    /// A fixed input vector (generated benchmarks).
    Fixed(Arc<Vec<i32>>),
}

impl InputGen {
    /// Produces the input vector.
    #[must_use]
    pub fn generate(&self) -> Vec<i32> {
        match self {
            InputGen::Fn(f) => f(),
            InputGen::Fixed(v) => v.as_ref().clone(),
        }
    }
}

/// The semantic oracle computing a benchmark's expected `checksum`.
#[derive(Clone)]
pub enum Reference {
    /// Host Rust twin (the shipped kernels).
    Host(fn(&[i32]) -> i32),
    /// The MiniC interpreter run on the benchmark's own AST with the
    /// input patched into its globals — reference semantics for
    /// generated programs, independent of codegen/linker/simulator.
    Interp {
        /// The program to interpret (input/count globals get patched).
        program: Arc<Program>,
        /// Interpreter step budget (generated programs carry a
        /// generation-time estimate with headroom).
        max_steps: u64,
    },
}

/// A benchmark program with everything needed to run experiments on it.
///
/// String fields are [`Cow`] and the input/oracle fields are enums so the
/// six shipped kernels stay `static` (const-constructed from borrowed
/// strings and function pointers) while [`gen`] builds owned `Benchmark`
/// values for seeded programs at runtime.
#[derive(Clone)]
pub struct Benchmark {
    /// Short name (also the experiment id).
    pub name: Cow<'static, str>,
    /// Table-2-style description.
    pub description: Cow<'static, str>,
    /// MiniC source text.
    pub source: Cow<'static, str>,
    /// Name of the global array the harness patches with input data.
    pub input_global: Cow<'static, str>,
    /// Name of the scalar holding the element count, patched to the
    /// input's length (the loop-bound annotations cover the maximum).
    pub count_global: Cow<'static, str>,
    /// Generates the "typical input data set" (paper terminology).
    pub typical_input: InputGen,
    /// Generates a known worst-case input, when one is known.
    pub worst_input: Option<InputGen>,
    /// Oracle computing the expected `checksum` global.
    pub reference_checksum: Reference,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

/// Overwrites the input/count global initialisers of an AST so the
/// interpreter observes exactly the data the linker patches into the
/// executable image.
pub(crate) fn patch_program_input(
    program: &mut Program,
    input_global: &str,
    count_global: &str,
    input: &[i32],
) {
    for g in &mut program.globals {
        if g.name == input_global {
            g.init = input.iter().map(|&v| i64::from(v)).collect();
        } else if g.name == count_global {
            g.init = vec![input.len() as i64];
        }
    }
}

impl Benchmark {
    /// Produces the typical input data set.
    #[must_use]
    pub fn typical_input(&self) -> Vec<i32> {
        self.typical_input.generate()
    }

    /// Produces the known worst-case input, when one is known.
    #[must_use]
    pub fn worst_input(&self) -> Option<Vec<i32>> {
        self.worst_input.as_ref().map(InputGen::generate)
    }

    /// Computes the expected `checksum` for the given input via the
    /// benchmark's oracle.
    ///
    /// # Panics
    ///
    /// Panics if an [`Reference::Interp`] oracle fails to execute — for
    /// generated benchmarks the generator guarantees in-bounds accesses
    /// and a sufficient step budget, so a panic here means the benchmark
    /// value was constructed by hand with a broken program. Callers
    /// holding arbitrary (e.g. shrinker-mutated) programs should use
    /// [`Benchmark::try_reference_checksum`].
    #[must_use]
    pub fn reference_checksum(&self, input: &[i32]) -> i32 {
        self.try_reference_checksum(input)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name))
    }

    /// Fallible form of [`Benchmark::reference_checksum`]: an
    /// [`Reference::Interp`] oracle that fails to execute (or a program
    /// without a `checksum` global) becomes an error instead of a panic.
    ///
    /// # Errors
    ///
    /// A description of the oracle failure.
    pub fn try_reference_checksum(&self, input: &[i32]) -> Result<i32, String> {
        match &self.reference_checksum {
            Reference::Host(f) => Ok(f(input)),
            Reference::Interp { program, max_steps } => {
                let mut p = (**program).clone();
                patch_program_input(&mut p, &self.input_global, &self.count_global, input);
                let out = interp::run(&p, *max_steps)
                    .map_err(|e| format!("interpreter oracle failed: {e}"))?;
                out.globals
                    .get("checksum")
                    .and_then(|v| v.first().copied())
                    .ok_or_else(|| "no `checksum` global".to_string())
            }
        }
    }

    /// Compiles the benchmark to a relocatable module.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (should not happen for shipped sources).
    pub fn compile(&self) -> Result<ObjModule, CcError> {
        compile(&self.source)
    }

    /// Compiles, links and patches the given input in one step.
    ///
    /// # Errors
    ///
    /// Propagates compile/link errors and input-patching failures.
    pub fn build(
        &self,
        map: &MemoryMap,
        assignment: &SpmAssignment,
        input: &[i32],
    ) -> Result<LinkedProgram, CcError> {
        let module = self.compile()?;
        self.link_with_input(&module, map, assignment, input)
    }

    /// Links a pre-compiled module and patches the input (cheaper when
    /// sweeping configurations).
    ///
    /// # Errors
    ///
    /// Propagates link errors and input-patching failures.
    pub fn link_with_input(
        &self,
        module: &ObjModule,
        map: &MemoryMap,
        assignment: &SpmAssignment,
        input: &[i32],
    ) -> Result<LinkedProgram, CcError> {
        let mut linked = link(module, map, assignment)?;
        linked.exe.patch_global(&self.input_global, input)?;
        linked
            .exe
            .patch_global(&self.count_global, &[input.len() as i32])?;
        Ok(linked)
    }
}

/// G.721 speech transcoder (Table 2: "Speech encoding and decoding,
/// reference implementation of the CCITT standard").
pub static G721: Benchmark = Benchmark {
    name: Cow::Borrowed("g721"),
    description: Cow::Borrowed("G.721 speech encoding and decoding, CCITT-reference style"),
    source: Cow::Borrowed(include_str!("mc/g721.mc")),
    input_global: Cow::Borrowed("input"),
    count_global: Cow::Borrowed("n_samples"),
    typical_input: InputGen::Fn(|| inputs::speech_like(256, 0xC0FFEE)),
    worst_input: None,
    reference_checksum: Reference::Host(reference::g721),
};

/// IMA ADPCM encoder/decoder (Table 2: "Adaptive Diff. PCM").
pub static ADPCM: Benchmark = Benchmark {
    name: Cow::Borrowed("adpcm"),
    description: Cow::Borrowed("IMA/DVI ADPCM speech encoder and decoder"),
    source: Cow::Borrowed(include_str!("mc/adpcm.mc")),
    input_global: Cow::Borrowed("input"),
    count_global: Cow::Borrowed("n_samples"),
    typical_input: InputGen::Fn(|| inputs::speech_like(256, 0xBEEF)),
    worst_input: None,
    reference_checksum: Reference::Host(reference::adpcm),
};

/// MultiSort (Table 2: "mix of sorting algorithms commonly found in many
/// algorithms").
pub static MULTISORT: Benchmark = Benchmark {
    name: Cow::Borrowed("multisort"),
    description: Cow::Borrowed(
        "Mix of sorting algorithms (bubble, insertion, selection, merge, heap)",
    ),
    source: Cow::Borrowed(include_str!("mc/multisort.mc")),
    input_global: Cow::Borrowed("input"),
    count_global: Cow::Borrowed("n"),
    typical_input: InputGen::Fn(|| inputs::random_ints(64, 0x5EED, -1000, 1000)),
    worst_input: Some(InputGen::Fn(|| inputs::descending(64))),
    reference_checksum: Reference::Host(reference::multisort),
};

/// Insertion sort with a known worst case (the paper's §4 tightness
/// experiment).
pub static INSERTSORT: Benchmark = Benchmark {
    name: Cow::Borrowed("insertsort"),
    description: Cow::Borrowed("Insertion sort, tightness check with known worst-case input"),
    source: Cow::Borrowed(include_str!("mc/insertsort.mc")),
    input_global: Cow::Borrowed("data"),
    count_global: Cow::Borrowed("n"),
    typical_input: InputGen::Fn(|| inputs::random_ints(32, 0xAB, -500, 500)),
    worst_input: Some(InputGen::Fn(|| inputs::descending(32))),
    reference_checksum: Reference::Host(reference::insertsort),
};

/// FIR filter (extra kernel, branch-free).
pub static FIR: Benchmark = Benchmark {
    name: Cow::Borrowed("fir"),
    description: Cow::Borrowed("16-tap FIR filter over a speech-like buffer"),
    source: Cow::Borrowed(include_str!("mc/fir.mc")),
    input_global: Cow::Borrowed("input"),
    count_global: Cow::Borrowed("n_samples"),
    typical_input: InputGen::Fn(|| inputs::speech_like(256, 0xF1A)),
    worst_input: None,
    reference_checksum: Reference::Host(reference::fir),
};

/// CRC-32 (extra kernel, balanced data-dependent branches).
pub static CRC32: Benchmark = Benchmark {
    name: Cow::Borrowed("crc32"),
    description: Cow::Borrowed("Bitwise CRC-32 over a byte buffer"),
    source: Cow::Borrowed(include_str!("mc/crc32.mc")),
    input_global: Cow::Borrowed("data"),
    count_global: Cow::Borrowed("n_bytes"),
    typical_input: InputGen::Fn(|| inputs::random_bytes(256, 0xCAFE)),
    worst_input: None,
    reference_checksum: Reference::Host(reference::crc32),
};

/// The three benchmarks of the paper's Table 2.
pub fn paper_benchmarks() -> Vec<&'static Benchmark> {
    vec![&G721, &ADPCM, &MULTISORT]
}

/// Every shipped benchmark.
pub fn all_benchmarks() -> Vec<&'static Benchmark> {
    vec![&G721, &ADPCM, &MULTISORT, &INSERTSORT, &FIR, &CRC32]
}

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_sim::{simulate, MachineConfig, SimOptions};

    fn run_checksum(b: &Benchmark, input: &[i32]) -> i32 {
        let linked = b
            .build(&MemoryMap::no_spm(), &SpmAssignment::none(), input)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let res = simulate(
            &linked.exe,
            &MachineConfig::uncached(),
            &SimOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        res.read_global(&linked.exe, "checksum")
            .expect("checksum global")
    }

    #[test]
    fn every_benchmark_compiles() {
        for b in all_benchmarks() {
            b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn adpcm_matches_reference() {
        let input = ADPCM.typical_input();
        assert_eq!(run_checksum(&ADPCM, &input), reference::adpcm(&input));
    }

    #[test]
    fn g721_matches_reference() {
        // Shorter input keeps the debug-mode test quick; the checksum still
        // exercises every code path after a few dozen samples.
        let input = inputs::speech_like(96, 0xC0FFEE);
        assert_eq!(run_checksum(&G721, &input), reference::g721(&input));
    }

    #[test]
    fn multisort_matches_reference_typical_and_worst() {
        let t = MULTISORT.typical_input();
        assert_eq!(run_checksum(&MULTISORT, &t), reference::multisort(&t));
        let w = MULTISORT.worst_input().unwrap();
        assert_eq!(run_checksum(&MULTISORT, &w), reference::multisort(&w));
    }

    #[test]
    fn insertsort_matches_reference() {
        for input in [
            INSERTSORT.typical_input(),
            INSERTSORT.worst_input().unwrap(),
        ] {
            assert_eq!(
                run_checksum(&INSERTSORT, &input),
                reference::insertsort(&input)
            );
        }
    }

    #[test]
    fn fir_matches_reference() {
        let input = FIR.typical_input();
        assert_eq!(run_checksum(&FIR, &input), reference::fir(&input));
    }

    #[test]
    fn crc32_matches_reference() {
        let input = CRC32.typical_input();
        assert_eq!(run_checksum(&CRC32, &input), reference::crc32(&input));
    }

    #[test]
    fn registry_lookup() {
        assert!(benchmark("g721").is_some());
        assert!(benchmark("nope").is_none());
        assert_eq!(all_benchmarks().len(), 6);
    }

    #[test]
    fn fixed_input_and_interp_oracle_roundtrip() {
        // A hand-rolled generated-style benchmark: fixed input + interp
        // oracle must agree with the simulated checksum.
        let src = "int input[4] = {0}; int n_samples = 4; int checksum;\n\
                   void main() { int i; for (i = 0; i < 4; i = i + 1) { __loopbound(4); \
                   checksum = checksum * 17 + input[i]; } }";
        let program = spmlab_cc::parse_source(src).expect("parse");
        let b = Benchmark {
            name: Cow::Owned("gen-smoke".to_string()),
            description: Cow::Borrowed("interp-oracle smoke test"),
            source: Cow::Owned(src.to_string()),
            input_global: Cow::Borrowed("input"),
            count_global: Cow::Borrowed("n_samples"),
            typical_input: InputGen::Fixed(Arc::new(vec![3, -7, 11, 100])),
            worst_input: None,
            reference_checksum: Reference::Interp {
                program: Arc::new(program),
                max_steps: 100_000,
            },
        };
        let input = b.typical_input();
        assert_eq!(input, vec![3, -7, 11, 100]);
        assert!(b.worst_input().is_none());
        let expected = b.reference_checksum(&input);
        assert_eq!(run_checksum(&b, &input), expected);
    }
}
