//! # spmlab-workloads — the paper's benchmark programs
//!
//! MiniC implementations of the paper's Table 2 plus extra kernels:
//!
//! | name | paper | description |
//! |------|-------|-------------|
//! | `g721` | ✓ | G.721 speech transcoder, CCITT-reference style |
//! | `adpcm` | ✓ | IMA/DVI ADPCM encoder + decoder |
//! | `multisort` | ✓ | mix of sorting algorithms |
//! | `insertsort` | §4 | tightness experiment (known worst-case input) |
//! | `fir` | extra | branch-free 16-tap FIR filter |
//! | `crc32` | extra | bitwise CRC-32 |
//!
//! Each [`Benchmark`] bundles the MiniC source, the name of its input
//! array, deterministic typical/worst-case input generators, and a Rust
//! twin ([`mod@reference`]) computing the expected checksum — the basis of the
//! differential tests that validate compiler, linker and simulator.
//!
//! ```
//! use spmlab_workloads::{benchmark, paper_benchmarks};
//!
//! let g721 = benchmark("g721").unwrap();
//! let input = (g721.typical_input)();
//! let expected = (g721.reference_checksum)(&input);
//! assert_ne!(expected, 0);
//! assert_eq!(paper_benchmarks().len(), 3);
//! ```

pub mod inputs;
pub mod reference;

use spmlab_cc::{compile, link, CcError, LinkedProgram, ObjModule, SpmAssignment};
use spmlab_isa::mem::MemoryMap;

/// A benchmark program with everything needed to run experiments on it.
#[derive(Clone)]
pub struct Benchmark {
    /// Short name (also the experiment id).
    pub name: &'static str,
    /// Table-2-style description.
    pub description: &'static str,
    /// MiniC source text.
    pub source: &'static str,
    /// Name of the global array the harness patches with input data.
    pub input_global: &'static str,
    /// Name of the scalar holding the element count, patched to the
    /// input's length (the loop-bound annotations cover the maximum).
    pub count_global: &'static str,
    /// Generates the "typical input data set" (paper terminology).
    pub typical_input: fn() -> Vec<i32>,
    /// Generates a known worst-case input, when one is known.
    pub worst_input: Option<fn() -> Vec<i32>>,
    /// Host twin computing the expected `checksum` global.
    pub reference_checksum: fn(&[i32]) -> i32,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

impl Benchmark {
    /// Compiles the benchmark to a relocatable module.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (should not happen for shipped sources).
    pub fn compile(&self) -> Result<ObjModule, CcError> {
        compile(self.source)
    }

    /// Compiles, links and patches the given input in one step.
    ///
    /// # Errors
    ///
    /// Propagates compile/link errors and input-patching failures.
    pub fn build(
        &self,
        map: &MemoryMap,
        assignment: &SpmAssignment,
        input: &[i32],
    ) -> Result<LinkedProgram, CcError> {
        let module = self.compile()?;
        self.link_with_input(&module, map, assignment, input)
    }

    /// Links a pre-compiled module and patches the input (cheaper when
    /// sweeping configurations).
    ///
    /// # Errors
    ///
    /// Propagates link errors and input-patching failures.
    pub fn link_with_input(
        &self,
        module: &ObjModule,
        map: &MemoryMap,
        assignment: &SpmAssignment,
        input: &[i32],
    ) -> Result<LinkedProgram, CcError> {
        let mut linked = link(module, map, assignment)?;
        linked.exe.patch_global(self.input_global, input)?;
        linked
            .exe
            .patch_global(self.count_global, &[input.len() as i32])?;
        Ok(linked)
    }
}

/// G.721 speech transcoder (Table 2: "Speech encoding and decoding,
/// reference implementation of the CCITT standard").
pub static G721: Benchmark = Benchmark {
    name: "g721",
    description: "G.721 speech encoding and decoding, CCITT-reference style",
    source: include_str!("mc/g721.mc"),
    input_global: "input",
    count_global: "n_samples",
    typical_input: || inputs::speech_like(256, 0xC0FFEE),
    worst_input: None,
    reference_checksum: |i| reference::g721(i),
};

/// IMA ADPCM encoder/decoder (Table 2: "Adaptive Diff. PCM").
pub static ADPCM: Benchmark = Benchmark {
    name: "adpcm",
    description: "IMA/DVI ADPCM speech encoder and decoder",
    source: include_str!("mc/adpcm.mc"),
    input_global: "input",
    count_global: "n_samples",
    typical_input: || inputs::speech_like(256, 0xBEEF),
    worst_input: None,
    reference_checksum: |i| reference::adpcm(i),
};

/// MultiSort (Table 2: "mix of sorting algorithms commonly found in many
/// algorithms").
pub static MULTISORT: Benchmark = Benchmark {
    name: "multisort",
    description: "Mix of sorting algorithms (bubble, insertion, selection, merge, heap)",
    source: include_str!("mc/multisort.mc"),
    input_global: "input",
    count_global: "n",
    typical_input: || inputs::random_ints(64, 0x5EED, -1000, 1000),
    worst_input: Some(|| inputs::descending(64)),
    reference_checksum: |i| reference::multisort(i),
};

/// Insertion sort with a known worst case (the paper's §4 tightness
/// experiment).
pub static INSERTSORT: Benchmark = Benchmark {
    name: "insertsort",
    description: "Insertion sort, tightness check with known worst-case input",
    source: include_str!("mc/insertsort.mc"),
    input_global: "data",
    count_global: "n",
    typical_input: || inputs::random_ints(32, 0xAB, -500, 500),
    worst_input: Some(|| inputs::descending(32)),
    reference_checksum: |i| reference::insertsort(i),
};

/// FIR filter (extra kernel, branch-free).
pub static FIR: Benchmark = Benchmark {
    name: "fir",
    description: "16-tap FIR filter over a speech-like buffer",
    source: include_str!("mc/fir.mc"),
    input_global: "input",
    count_global: "n_samples",
    typical_input: || inputs::speech_like(256, 0xF1A),
    worst_input: None,
    reference_checksum: |i| reference::fir(i),
};

/// CRC-32 (extra kernel, balanced data-dependent branches).
pub static CRC32: Benchmark = Benchmark {
    name: "crc32",
    description: "Bitwise CRC-32 over a byte buffer",
    source: include_str!("mc/crc32.mc"),
    input_global: "data",
    count_global: "n_bytes",
    typical_input: || inputs::random_bytes(256, 0xCAFE),
    worst_input: None,
    reference_checksum: |i| reference::crc32(i),
};

/// The three benchmarks of the paper's Table 2.
pub fn paper_benchmarks() -> Vec<&'static Benchmark> {
    vec![&G721, &ADPCM, &MULTISORT]
}

/// Every shipped benchmark.
pub fn all_benchmarks() -> Vec<&'static Benchmark> {
    vec![&G721, &ADPCM, &MULTISORT, &INSERTSORT, &FIR, &CRC32]
}

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_sim::{simulate, MachineConfig, SimOptions};

    fn run_checksum(b: &Benchmark, input: &[i32]) -> i32 {
        let linked = b
            .build(&MemoryMap::no_spm(), &SpmAssignment::none(), input)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let res = simulate(
            &linked.exe,
            &MachineConfig::uncached(),
            &SimOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        res.read_global(&linked.exe, "checksum")
            .expect("checksum global")
    }

    #[test]
    fn every_benchmark_compiles() {
        for b in all_benchmarks() {
            b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn adpcm_matches_reference() {
        let input = (ADPCM.typical_input)();
        assert_eq!(run_checksum(&ADPCM, &input), reference::adpcm(&input));
    }

    #[test]
    fn g721_matches_reference() {
        // Shorter input keeps the debug-mode test quick; the checksum still
        // exercises every code path after a few dozen samples.
        let input = inputs::speech_like(96, 0xC0FFEE);
        assert_eq!(run_checksum(&G721, &input), reference::g721(&input));
    }

    #[test]
    fn multisort_matches_reference_typical_and_worst() {
        let t = (MULTISORT.typical_input)();
        assert_eq!(run_checksum(&MULTISORT, &t), reference::multisort(&t));
        let w = (MULTISORT.worst_input.unwrap())();
        assert_eq!(run_checksum(&MULTISORT, &w), reference::multisort(&w));
    }

    #[test]
    fn insertsort_matches_reference() {
        for input in [
            (INSERTSORT.typical_input)(),
            (INSERTSORT.worst_input.unwrap())(),
        ] {
            assert_eq!(
                run_checksum(&INSERTSORT, &input),
                reference::insertsort(&input)
            );
        }
    }

    #[test]
    fn fir_matches_reference() {
        let input = (FIR.typical_input)();
        assert_eq!(run_checksum(&FIR, &input), reference::fir(&input));
    }

    #[test]
    fn crc32_matches_reference() {
        let input = (CRC32.typical_input)();
        assert_eq!(run_checksum(&CRC32, &input), reference::crc32(&input));
    }

    #[test]
    fn registry_lookup() {
        assert!(benchmark("g721").is_some());
        assert!(benchmark("nope").is_none());
        assert_eq!(all_benchmarks().len(), 6);
    }
}
