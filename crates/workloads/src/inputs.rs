//! Deterministic input-data generators.
//!
//! The paper simulates with "a typical input data set"; we synthesise
//! speech-like waveforms (mixed triangle carriers plus pseudo-random
//! noise) and structured arrays, all reproducible from fixed seeds — the
//! simulated substitute for their speech recordings.

/// A tiny xorshift PRNG so inputs never depend on external crates' version
/// behaviour.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// Creates a generator from a non-zero seed.
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: i32, hi: i32) -> i32 {
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span.max(1)) as i32
    }
}

/// Speech-like 16-bit samples: two triangle waves at different periods plus
/// noise, amplitude well inside i16.
pub fn speech_like(n: usize, seed: u64) -> Vec<i32> {
    let mut rng = Lcg::new(seed);
    let tri = |k: usize, period: usize, amp: i32| {
        let phase = (k % period) as i32;
        let half = (period / 2) as i32;
        let v = if phase < half {
            phase
        } else {
            period as i32 - phase
        };
        (v - half / 2) * amp / half.max(1)
    };
    (0..n)
        .map(|k| {
            let s = tri(k, 37, 9000) + tri(k, 11, 4000) + rng.range(-800, 800);
            s.clamp(-32768, 32767)
        })
        .collect()
}

/// Uniformly random integers in `[lo, hi)`.
pub fn random_ints(n: usize, seed: u64, lo: i32, hi: i32) -> Vec<i32> {
    let mut rng = Lcg::new(seed);
    (0..n).map(|_| rng.range(lo, hi)).collect()
}

/// Strictly descending values — the worst case for insertion/bubble sorts.
pub fn descending(n: usize) -> Vec<i32> {
    (0..n).map(|k| (n - k) as i32 * 3).collect()
}

/// Already sorted ascending values — the best case for insertion sort.
pub fn ascending(n: usize) -> Vec<i32> {
    (0..n).map(|k| k as i32 * 3).collect()
}

/// Pseudo-random bytes as i32 values in `[-128, 128)`.
pub fn random_bytes(n: usize, seed: u64) -> Vec<i32> {
    random_ints(n, seed, -128, 128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(speech_like(64, 7), speech_like(64, 7));
        assert_ne!(speech_like(64, 7), speech_like(64, 8));
        assert_eq!(random_ints(10, 3, 0, 100), random_ints(10, 3, 0, 100));
    }

    #[test]
    fn ranges_respected() {
        for v in speech_like(512, 42) {
            assert!((-32768..=32767).contains(&v));
        }
        for v in random_ints(256, 5, -50, 50) {
            assert!((-50..50).contains(&v));
        }
        for v in random_bytes(64, 9) {
            assert!((-128..128).contains(&v));
        }
    }

    #[test]
    fn descending_is_descending() {
        let d = descending(16);
        assert!(d.windows(2).all(|w| w[0] > w[1]));
        let a = ascending(16);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }
}
