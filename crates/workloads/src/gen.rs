//! Seeded random MiniC program generator + delta-debugging shrinker.
//!
//! [`generate`] turns `(seed, FootprintClass, MemArchSpec)` into a
//! well-typed MiniC program emitted three ways from the one seed:
//!
//! 1. an AST ([`GeneratedProgram::program`]) interpreted via
//!    [`spmlab_cc::interp`] for reference semantics,
//! 2. `.mc` source text ([`GeneratedProgram::source`], exactly
//!    [`fn@spmlab_cc::print`] of the AST) that round-trips through the real
//!    lexer/parser, and
//! 3. a synthetic [`Benchmark`] ([`GeneratedProgram::benchmark`]) that
//!    flows through the whole pipeline — `Pipeline::run(&spec)`, WCET
//!    analysis, sweeps — like any shipped kernel.
//!
//! ## Guaranteed invariants (the exact-bound annotation contract)
//!
//! * Every loop is a counter loop `i = 0; …; i < N; i = i + 1` over a
//!   reserved counter the body never writes, with no `break`/`continue`,
//!   so each loop executes **exactly** its `__loopbound(N)` per entry —
//!   the annotation is exact, not just an upper bound. `__looptotal` is
//!   only emitted on non-nested loops, where the per-call total equals N.
//! * Every array index is masked `expr & (len - 1)` with a power-of-two
//!   length, so accesses are in bounds for any expression value.
//! * The call graph is acyclic by construction: functions are generated
//!   deepest level first and only ever call already-generated functions.
//! * Calls appear only in statement position (`x = f(…);`) with pure
//!   argument expressions, so evaluation-order differences cannot masquerade
//!   as miscompiles.
//! * The input array's initialiser holds the same values
//!   [`Benchmark::link_with_input`] patches into the image, so interp,
//!   reparsed source, and simulation observe identical data.
//!
//! Array footprints are sized from the [`FootprintClass`] knob against a
//! [`MemArchSpec`], so generated programs deliberately fit in, straddle,
//! or exceed each cache level.
//!
//! [`shrink`] is a generic greedy delta-debugger over any failure
//! predicate: it drops statements and functions, halves trip counts
//! (keeping `__loopbound` in sync), narrows arrays (re-masking their
//! indices), and prunes unused globals until a fixed point.
//! [`inject_miscompile`] plants a classic wrong "optimisation"
//! (`x / 2^k` → `x >> k`, incorrect for negative `x`) used to prove the
//! fuzzing harness end to end.

use crate::{Benchmark, InputGen, Reference};
use spmlab_cc::ast::{BinOp, Expr, Func, Global, Program, Stmt, Type, UnOp};
use spmlab_cc::{print, sema, Pos};
use spmlab_isa::archspec::MemArchSpec;
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_isa::hierarchy::MemHierarchyConfig;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64).
// ---------------------------------------------------------------------

#[derive(Clone)]
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        // i64 arithmetic: the span can exceed i32::MAX (e.g. ±2^30).
        let span = (i64::from(hi) - i64::from(lo) + 1) as u64;
        (i64::from(lo) + self.below(span) as i64) as i32
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

// ---------------------------------------------------------------------
// Footprint classes.
// ---------------------------------------------------------------------

/// Sizes a generated program's global-array footprint relative to the
/// cache levels of a [`MemArchSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FootprintClass {
    /// Data fits comfortably inside the (data-serving) L1.
    FitsL1,
    /// Data exceeds the L1 but fits inside the L2.
    StraddlesL1,
    /// Data exceeds the L2 capacity by half.
    StraddlesL2,
    /// Data is several times the L2 capacity.
    ExceedsL2,
}

impl FootprintClass {
    /// All classes, in increasing footprint order.
    pub const ALL: [FootprintClass; 4] = [
        FootprintClass::FitsL1,
        FootprintClass::StraddlesL1,
        FootprintClass::StraddlesL2,
        FootprintClass::ExceedsL2,
    ];

    /// Deterministic class for a seed (cycles through [`Self::ALL`]).
    #[must_use]
    pub fn for_seed(seed: u64) -> FootprintClass {
        Self::ALL[(seed % 4) as usize]
    }

    /// Kebab-case label (used in generated benchmark names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FootprintClass::FitsL1 => "fits-l1",
            FootprintClass::StraddlesL1 => "straddles-l1",
            FootprintClass::StraddlesL2 => "straddles-l2",
            FootprintClass::ExceedsL2 => "exceeds-l2",
        }
    }

    /// Target global-array bytes for this class under `arch`. Nominal
    /// level sizes (L1 1 KiB, L2 8×L1) stand in for absent levels so the
    /// knob stays meaningful on uncached machines; the result is capped
    /// so folds and simulation stay fast.
    #[must_use]
    pub fn data_budget(self, arch: &MemArchSpec) -> u32 {
        let h = arch.hierarchy();
        let l1d = h.l1_for(false).map_or(1024, |c| c.size).max(256);
        let l2 = arch.l2.as_ref().map_or(l1d * 8, |c| c.size).max(l1d);
        let bytes = match self {
            FootprintClass::FitsL1 => (l1d / 2).max(128),
            FootprintClass::StraddlesL1 => (l1d * 2).min(l2),
            FootprintClass::StraddlesL2 => l2 + l2 / 2,
            FootprintClass::ExceedsL2 => l2 * 4,
        };
        bytes.clamp(128, 64 * 1024)
    }
}

/// The fixed architecture the golden corpus and the default test matrix
/// size footprints against: split 512 B L1 halves over a 4 KiB L2.
#[must_use]
pub fn reference_arch() -> MemArchSpec {
    let h = MemHierarchyConfig::split_l1(512, 512).with_l2(CacheConfig::l2(4096));
    MemArchSpec::from_hierarchy(&h)
}

// ---------------------------------------------------------------------
// Generated program.
// ---------------------------------------------------------------------

/// One seeded program, emitted as AST + source + synthetic benchmark.
#[derive(Clone)]
pub struct GeneratedProgram {
    /// The generating seed.
    pub seed: u64,
    /// The footprint class the arrays were sized for.
    pub class: FootprintClass,
    /// The AST (reference semantics via [`spmlab_cc::interp`]).
    pub program: Program,
    /// `.mc` source text — exactly `print(&self.program)`.
    pub source: String,
    /// The pinned input vector (also baked into the AST's `input` init).
    pub input: Arc<Vec<i32>>,
    /// Estimated interpreter steps for one run (loops multiplied out).
    pub steps_estimate: u64,
}

impl GeneratedProgram {
    /// The benchmark name, e.g. `gen-002a-exceeds-l2`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("gen-{:04x}-{}", self.seed, self.class.label())
    }

    /// Packages the program as a pipeline-ready [`Benchmark`] with a
    /// fixed input and the interpreter as its semantic oracle.
    #[must_use]
    pub fn benchmark(&self) -> Benchmark {
        Benchmark {
            name: Cow::Owned(self.name()),
            description: Cow::Owned(format!(
                "seeded MiniC program (seed {}, {} footprint)",
                self.seed,
                self.class.label()
            )),
            source: Cow::Owned(self.source.clone()),
            input_global: Cow::Borrowed(INPUT_GLOBAL),
            count_global: Cow::Borrowed(COUNT_GLOBAL),
            typical_input: InputGen::Fixed(Arc::clone(&self.input)),
            worst_input: None,
            reference_checksum: Reference::Interp {
                program: Arc::new(self.program.clone()),
                max_steps: self.steps_estimate * 4 + 100_000,
            },
        }
    }
}

/// The input-array global every generated program declares.
pub const INPUT_GLOBAL: &str = "input";
/// The element-count global every generated program declares.
pub const COUNT_GLOBAL: &str = "n_samples";
/// Elements in the pinned input vector.
const INPUT_LEN: u32 = 64;
/// Per-call dynamic step budget for a generated helper function.
const FUNC_BUDGET: u64 = 4_000;
/// Dynamic step budget for `main`'s own statements (before the folds).
const MAIN_BUDGET: u64 = 10_000;
/// Longest loop the generator emits (fold/walk loops are capped here).
const MAX_TRIP: u32 = 4_096;

// ---------------------------------------------------------------------
// AST construction helpers (all positions defaulted).
// ---------------------------------------------------------------------

fn num(v: i64) -> Expr {
    Expr::Num {
        value: v,
        pos: Pos::default(),
    }
}

fn var(name: &str) -> Expr {
    Expr::Var {
        name: name.to_string(),
        pos: Pos::default(),
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Bin {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
        pos: Pos::default(),
    }
}

fn assign(lhs: Expr, rhs: Expr) -> Expr {
    Expr::Assign {
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
        pos: Pos::default(),
    }
}

/// `name[(inner) & mask]` — the only array-access shape the generator
/// emits; the shrinker's array narrowing rewrites exactly this shape.
fn index_masked(name: &str, inner: Expr, mask: i64) -> Expr {
    Expr::Index {
        name: name.to_string(),
        index: Box::new(bin(BinOp::And, inner, num(mask))),
        pos: Pos::default(),
    }
}

fn estmt(e: Expr) -> Stmt {
    Stmt::Expr(e)
}

fn decl(name: &str, ty: Type, init: i64) -> Stmt {
    Stmt::Decl {
        name: name.to_string(),
        ty,
        init: Some(num(init)),
        pos: Pos::default(),
    }
}

/// `for (c = 0; c < trip; c = c + 1) { __loopbound(trip); body… }`.
fn counter_for(counter: &str, trip: u32, body: Vec<Stmt>) -> Stmt {
    let mut full = vec![Stmt::LoopBound {
        bound: trip,
        pos: Pos::default(),
    }];
    full.extend(body);
    Stmt::For {
        init: Some(Box::new(estmt(assign(var(counter), num(0))))),
        cond: Some(bin(BinOp::Lt, var(counter), num(i64::from(trip)))),
        step: Some(assign(var(counter), bin(BinOp::Add, var(counter), num(1)))),
        body: full,
        pos: Pos::default(),
    }
}

// ---------------------------------------------------------------------
// The generator.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct ArrayInfo {
    name: String,
    len: u32,
    writable: bool,
}

#[derive(Clone)]
struct FuncSig {
    name: String,
    n_params: usize,
    cost: u64,
}

struct Ctx<'a> {
    callable: &'a [FuncSig],
    params: Vec<String>,
    depth: usize,
    trip_product: u64,
    budget: u64,
}

impl Ctx<'_> {
    fn spend(&mut self, per_iteration_cost: u64) {
        self.budget = self
            .budget
            .saturating_sub(per_iteration_cost * self.trip_product);
    }
}

struct Gen {
    rng: Rng,
    arrays: Vec<ArrayInfo>,
    scalars: Vec<String>,
}

const LOCALS: [&str; 3] = ["x0", "x1", "x2"];
const COUNTERS: [&str; 3] = ["i0", "i1", "i2"];

impl Gen {
    // ---- expressions -------------------------------------------------

    fn gen_leaf(&mut self, ctx: &Ctx) -> Expr {
        match self.rng.below(10) {
            0..=3 => {
                if self.rng.chance(10) {
                    num(i64::from(self.rng.range_i32(-(1 << 30), 1 << 30)))
                } else {
                    num(i64::from(self.rng.range_i32(-64, 64)))
                }
            }
            4..=7 => {
                let mut pool: Vec<&str> = ctx.params.iter().map(String::as_str).collect();
                pool.extend(LOCALS);
                pool.extend(self.scalars.iter().map(String::as_str));
                pool.push("checksum");
                pool.extend(&COUNTERS[..ctx.depth.min(COUNTERS.len())]);
                let i = self.rng.below(pool.len() as u64) as usize;
                var(pool[i])
            }
            _ => {
                let a = self.rng.pick(&self.arrays).clone();
                let inner = if self.rng.chance(50) {
                    num(i64::from(self.rng.range_i32(0, 255)))
                } else {
                    let mut pool: Vec<&str> = ctx.params.iter().map(String::as_str).collect();
                    pool.extend(LOCALS);
                    pool.extend(&COUNTERS[..ctx.depth.min(COUNTERS.len())]);
                    if pool.is_empty() {
                        num(1)
                    } else {
                        let i = self.rng.below(pool.len() as u64) as usize;
                        var(pool[i])
                    }
                };
                index_masked(&a.name, inner, i64::from(a.len - 1))
            }
        }
    }

    fn gen_expr(&mut self, ctx: &Ctx, depth: u32) -> Expr {
        if depth == 0 || self.rng.chance(30) {
            return self.gen_leaf(ctx);
        }
        match self.rng.below(10) {
            0..=6 => {
                const OPS: [BinOp; 18] = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::LogAnd,
                    BinOp::LogOr,
                ];
                let op = *self.rng.pick(&OPS);
                let lhs = self.gen_expr(ctx, depth - 1);
                let rhs = match op {
                    // Divisions by power-of-two constants are the trigger
                    // material for `inject_miscompile`.
                    BinOp::Div if self.rng.chance(60) => {
                        num(i64::from(*self.rng.pick(&[2, 4, 8, 16, 32])))
                    }
                    BinOp::Rem if self.rng.chance(50) => {
                        num(i64::from(*self.rng.pick(&[3, 5, 7, 10])))
                    }
                    // Shift amounts past 31 exercise the saturation rule.
                    BinOp::Shl | BinOp::Shr if self.rng.chance(70) => {
                        num(self.rng.below(35) as i64)
                    }
                    _ => self.gen_expr(ctx, depth - 1),
                };
                bin(op, lhs, rhs)
            }
            7 | 8 => {
                let op = *self.rng.pick(&[UnOp::Neg, UnOp::Not, UnOp::BitNot]);
                let operand = self.gen_expr(ctx, depth - 1);
                // Fold -literal like the parser does, so the direct AST
                // and the reparsed printed source compile identically.
                if let (UnOp::Neg, Expr::Num { value, .. }) = (op, &operand) {
                    num(-*value)
                } else {
                    Expr::Un {
                        op,
                        operand: Box::new(operand),
                        pos: Pos::default(),
                    }
                }
            }
            _ => {
                let a = self.rng.pick(&self.arrays).clone();
                let inner = self.gen_leaf(ctx);
                index_masked(&a.name, inner, i64::from(a.len - 1))
            }
        }
    }

    fn assign_target(&mut self) -> Expr {
        let mut pool: Vec<&str> = LOCALS.to_vec();
        pool.extend(self.scalars.iter().map(String::as_str));
        pool.push("checksum");
        let i = self.rng.below(pool.len() as u64) as usize;
        var(pool[i])
    }

    // ---- statements --------------------------------------------------

    fn gen_stmts(&mut self, ctx: &mut Ctx<'_>, n: usize) -> Vec<Stmt> {
        let mut out = Vec::new();
        for _ in 0..n {
            out.extend(self.gen_stmt(ctx));
        }
        out
    }

    fn gen_stmt(&mut self, ctx: &mut Ctx<'_>) -> Vec<Stmt> {
        let roll = self.rng.below(100);
        match roll {
            0..=24 => {
                ctx.spend(2);
                let tgt = self.assign_target();
                let rhs = self.gen_expr(ctx, 2);
                vec![estmt(assign(tgt, rhs))]
            }
            25..=39 => {
                ctx.spend(2);
                let writable: Vec<ArrayInfo> =
                    self.arrays.iter().filter(|a| a.writable).cloned().collect();
                let a = self.rng.pick(&writable).clone();
                let inner = self.gen_expr(ctx, 1);
                let rhs = self.gen_expr(ctx, 2);
                vec![estmt(assign(
                    index_masked(&a.name, inner, i64::from(a.len - 1)),
                    rhs,
                ))]
            }
            40..=49 => {
                ctx.spend(2);
                let k = i64::from(*self.rng.pick(&[17, 31, 33]));
                let mixed = self.gen_expr(ctx, 1);
                vec![estmt(assign(
                    var("checksum"),
                    bin(BinOp::Add, bin(BinOp::Mul, var("checksum"), num(k)), mixed),
                ))]
            }
            50..=61 => {
                ctx.spend(3);
                let cond = self.gen_expr(ctx, 2);
                let n_then = 1 + self.rng.below(2) as usize;
                let then = self.gen_stmts(ctx, n_then);
                let else_ = if self.rng.chance(50) {
                    self.gen_stmts(ctx, 1)
                } else {
                    Vec::new()
                };
                vec![Stmt::If {
                    cond,
                    then,
                    else_,
                    pos: Pos::default(),
                }]
            }
            62..=79 if ctx.depth < 2 && ctx.budget > 300 * ctx.trip_product => self.gen_loop(ctx),
            80..=87 if ctx.depth == 0 && ctx.budget > 1_000 => self.gen_walk(ctx),
            _ => self.gen_call_or_assign(ctx),
        }
    }

    /// A constant-trip counter loop in one of the three syntactic forms;
    /// all three execute exactly `trip` iterations.
    fn gen_loop(&mut self, ctx: &mut Ctx<'_>) -> Vec<Stmt> {
        let trip = u32::from(*self.rng.pick(&[2u8, 3, 4, 6, 8]));
        let counter = COUNTERS[ctx.depth];
        let style = self.rng.below(10);
        let emit_total = ctx.depth == 0 && self.rng.chance(30);

        ctx.depth += 1;
        ctx.trip_product *= u64::from(trip);
        ctx.spend(2);
        let mut body = vec![Stmt::LoopBound {
            bound: trip,
            pos: Pos::default(),
        }];
        if emit_total {
            body.push(Stmt::LoopTotal {
                total: trip,
                pos: Pos::default(),
            });
        }
        let n_body = 1 + self.rng.below(2) as usize;
        body.extend(self.gen_stmts(ctx, n_body));
        ctx.trip_product /= u64::from(trip);
        ctx.depth -= 1;

        let cond = bin(BinOp::Lt, var(counter), num(i64::from(trip)));
        let incr = assign(var(counter), bin(BinOp::Add, var(counter), num(1)));
        match style {
            0..=5 => {
                let mut loop_body = body;
                loop_body.rotate_left(0);
                vec![Stmt::For {
                    init: Some(Box::new(estmt(assign(var(counter), num(0))))),
                    cond: Some(cond),
                    step: Some(incr),
                    body: loop_body,
                    pos: Pos::default(),
                }]
            }
            6 | 7 => {
                let mut loop_body = body;
                loop_body.push(estmt(incr));
                vec![
                    estmt(assign(var(counter), num(0))),
                    Stmt::While {
                        cond,
                        body: loop_body,
                        pos: Pos::default(),
                    },
                ]
            }
            _ => {
                let mut loop_body = body;
                loop_body.push(estmt(incr));
                vec![
                    estmt(assign(var(counter), num(0))),
                    Stmt::DoWhile {
                        body: loop_body,
                        cond,
                        pos: Pos::default(),
                    },
                ]
            }
        }
    }

    /// A strided masked walk over one array — the footprint stressor.
    fn gen_walk(&mut self, ctx: &mut Ctx<'_>) -> Vec<Stmt> {
        let a = self.rng.pick(&self.arrays).clone();
        let mut trip = a.len.min(MAX_TRIP);
        while u64::from(trip) * 4 > ctx.budget && trip > 16 {
            trip /= 2;
        }
        let counter = COUNTERS[0];
        let stride = i64::from(*self.rng.pick(&[1, 3, 5, 7]));
        let offset = self.rng.below(8) as i64;
        let idx = bin(
            BinOp::Add,
            bin(BinOp::Mul, var(counter), num(stride)),
            num(offset),
        );
        let cell = index_masked(&a.name, idx, i64::from(a.len - 1));
        let body_stmt = if a.writable && self.rng.chance(50) {
            ctx.depth += 1;
            let rhs = self.gen_expr(ctx, 2);
            ctx.depth -= 1;
            estmt(assign(cell, rhs))
        } else {
            estmt(assign(
                var("checksum"),
                bin(BinOp::Add, bin(BinOp::Mul, var("checksum"), num(31)), cell),
            ))
        };
        ctx.budget = ctx.budget.saturating_sub(u64::from(trip) * 3);
        vec![counter_for(counter, trip, vec![body_stmt])]
    }

    fn gen_call_or_assign(&mut self, ctx: &mut Ctx<'_>) -> Vec<Stmt> {
        let affordable: Vec<FuncSig> = ctx
            .callable
            .iter()
            .filter(|f| (f.cost + 2) * ctx.trip_product * 2 <= ctx.budget)
            .cloned()
            .collect();
        if affordable.is_empty() || ctx.trip_product > 8 {
            ctx.spend(2);
            let tgt = self.assign_target();
            let rhs = self.gen_expr(ctx, 2);
            return vec![estmt(assign(tgt, rhs))];
        }
        let f = self.rng.pick(&affordable).clone();
        ctx.spend(f.cost + 2);
        let args: Vec<Expr> = (0..f.n_params).map(|_| self.gen_expr(ctx, 1)).collect();
        let x = *self.rng.pick(&LOCALS);
        vec![
            estmt(assign(
                var(x),
                Expr::Call {
                    name: f.name,
                    args,
                    pos: Pos::default(),
                },
            )),
            estmt(assign(
                var("checksum"),
                bin(
                    BinOp::Add,
                    bin(BinOp::Mul, var("checksum"), num(31)),
                    var(x),
                ),
            )),
        ]
    }

    // ---- functions ---------------------------------------------------

    fn prologue(&mut self) -> Vec<Stmt> {
        let mut body = Vec::new();
        for x in LOCALS {
            body.push(decl(x, Type::Int, i64::from(self.rng.range_i32(-20, 20))));
        }
        for c in COUNTERS {
            body.push(decl(c, Type::Int, 0));
        }
        body
    }

    fn gen_func(&mut self, name: &str, callable: &[FuncSig]) -> Func {
        let n_params = self.rng.below(4) as usize;
        let params: Vec<(String, Type)> = (0..n_params)
            .map(|i| (format!("p{i}"), Type::Int))
            .collect();
        let mut ctx = Ctx {
            callable,
            params: params.iter().map(|(n, _)| n.clone()).collect(),
            depth: 0,
            trip_product: 1,
            budget: FUNC_BUDGET,
        };
        let mut body = self.prologue();
        let n = 3 + self.rng.below(4) as usize;
        body.extend(self.gen_stmts(&mut ctx, n));
        let ret = self.gen_expr(&ctx, 2);
        body.push(Stmt::Return {
            value: Some(ret),
            pos: Pos::default(),
        });
        Func {
            name: name.to_string(),
            ret: Type::Int,
            params,
            body,
            pos: Pos::default(),
        }
    }

    fn gen_main(&mut self, level1: &[FuncSig]) -> Func {
        let mut ctx = Ctx {
            callable: level1,
            params: Vec::new(),
            depth: 0,
            trip_product: 1,
            budget: MAIN_BUDGET,
        };
        let mut body = self.prologue();
        // Every top-level function is called at least once so the whole
        // call tree is live.
        for f in level1 {
            let args: Vec<Expr> = (0..f.n_params).map(|_| self.gen_expr(&ctx, 1)).collect();
            let x = *self.rng.pick(&LOCALS);
            body.push(estmt(assign(
                var(x),
                Expr::Call {
                    name: f.name.clone(),
                    args,
                    pos: Pos::default(),
                },
            )));
            body.push(estmt(assign(
                var("checksum"),
                bin(
                    BinOp::Add,
                    bin(BinOp::Mul, var("checksum"), num(31)),
                    var(x),
                ),
            )));
            ctx.budget = ctx.budget.saturating_sub(f.cost + 2);
        }
        let n = 2 + self.rng.below(3) as usize;
        let extra = self.gen_stmts(&mut ctx, n);
        body.extend(extra);
        // One walk over each large array guarantees the class's footprint
        // is actually touched even if the random statements missed it.
        let big: Vec<ArrayInfo> = self
            .arrays
            .iter()
            .filter(|a| a.len >= 256)
            .cloned()
            .collect();
        for a in big {
            ctx.budget = ctx.budget.saturating_add(u64::from(a.len) * 3);
            body.extend(self.gen_walk_over(&a));
        }
        // Final folds make every array element and scalar observable in
        // the checksum.
        for a in self.arrays.clone() {
            let trip = a.len.min(MAX_TRIP);
            body.push(counter_for(
                COUNTERS[0],
                trip,
                vec![estmt(assign(
                    var("checksum"),
                    bin(
                        BinOp::Add,
                        bin(BinOp::Mul, var("checksum"), num(17)),
                        index_masked(&a.name, var(COUNTERS[0]), i64::from(a.len - 1)),
                    ),
                ))],
            ));
        }
        for g in self.scalars.clone() {
            body.push(estmt(assign(
                var("checksum"),
                bin(BinOp::Xor, var("checksum"), var(&g)),
            )));
        }
        Func {
            name: "main".to_string(),
            ret: Type::Void,
            params: Vec::new(),
            body,
            pos: Pos::default(),
        }
    }

    /// A deterministic full-coverage walk used by `gen_main` (odd stride
    /// over a power-of-two length visits every element).
    fn gen_walk_over(&mut self, a: &ArrayInfo) -> Vec<Stmt> {
        let trip = a.len.min(MAX_TRIP);
        let stride = i64::from(*self.rng.pick(&[1, 3, 5]));
        let idx = bin(BinOp::Mul, var(COUNTERS[1]), num(stride));
        let cell = index_masked(&a.name, idx, i64::from(a.len - 1));
        let stmt = if a.writable {
            estmt(assign(
                cell,
                bin(
                    BinOp::Xor,
                    var(COUNTERS[1]),
                    num(i64::from(self.rng.range_i32(-128, 127))),
                ),
            ))
        } else {
            estmt(assign(
                var("checksum"),
                bin(BinOp::Add, bin(BinOp::Mul, var("checksum"), num(31)), cell),
            ))
        };
        vec![counter_for(COUNTERS[1], trip, vec![stmt])]
    }
}

/// Generates the program for `(seed, class)` sized against `arch`.
///
/// Deterministic: the same arguments always produce byte-identical
/// source. The result is guaranteed to pass [`spmlab_cc::sema::check`].
///
/// # Panics
///
/// Panics if the generator emits a semantically invalid program — a bug
/// in this module, caught eagerly so fuzzing never chases it downstream.
#[must_use]
pub fn generate(seed: u64, class: FootprintClass, arch: &MemArchSpec) -> GeneratedProgram {
    let mut rng = Rng::new(seed);
    // Pinned input vector, baked into the `input` initialiser below and
    // re-patched (identically) by `Benchmark::link_with_input`.
    let input: Vec<i32> = (0..INPUT_LEN)
        .map(|_| rng.range_i32(-30_000, 30_000))
        .collect();

    let mut globals = vec![
        Global {
            name: INPUT_GLOBAL.to_string(),
            ty: Type::Int,
            array_len: Some(INPUT_LEN),
            init: input.iter().map(|&v| i64::from(v)).collect(),
            pos: Pos::default(),
        },
        Global {
            name: COUNT_GLOBAL.to_string(),
            ty: Type::Int,
            array_len: None,
            init: vec![i64::from(INPUT_LEN)],
            pos: Pos::default(),
        },
        Global {
            name: "checksum".to_string(),
            ty: Type::Int,
            array_len: None,
            init: Vec::new(),
            pos: Pos::default(),
        },
    ];

    let mut arrays = vec![ArrayInfo {
        name: INPUT_GLOBAL.to_string(),
        len: INPUT_LEN,
        writable: false,
    }];

    // Scalar globals over all three widths.
    let scalar_types = [Type::Int, Type::Short, Type::Char];
    let mut scalars = Vec::new();
    for (i, ty) in scalar_types.iter().enumerate() {
        let name = format!("g{i}");
        globals.push(Global {
            name: name.clone(),
            ty: *ty,
            array_len: None,
            init: vec![i64::from(rng.range_i32(-100, 100))],
            pos: Pos::default(),
        });
        scalars.push(name);
    }

    // Scratch arrays sized to the class's byte budget, mixing element
    // widths; lengths are powers of two so masked indexing stays exact.
    let budget_bytes = class.data_budget(arch);
    let mut remaining = budget_bytes;
    let n_arrays = 2 + rng.below(3) as usize;
    for idx in 0..n_arrays {
        if remaining < 64 {
            break;
        }
        let ty = *rng.pick(&[Type::Int, Type::Int, Type::Short, Type::Char]);
        let share = if idx + 1 == n_arrays {
            remaining
        } else {
            (remaining / 2 + rng.below(u64::from(remaining / 4).max(1)) as u32).max(64)
        };
        let len = pow2_floor((share / ty.bytes()).clamp(16, MAX_TRIP));
        remaining = remaining.saturating_sub(len * ty.bytes());
        let name = format!("a{idx}");
        let init: Vec<i64> = if len <= 64 {
            (0..len)
                .map(|_| i64::from(rng.range_i32(-120, 120)))
                .collect()
        } else {
            Vec::new()
        };
        globals.push(Global {
            name: name.clone(),
            ty,
            array_len: Some(len),
            init,
            pos: Pos::default(),
        });
        arrays.push(ArrayInfo {
            name,
            len,
            writable: true,
        });
    }

    let mut g = Gen {
        rng,
        arrays,
        scalars,
    };

    // Acyclic call tree, deepest level first: a function only ever calls
    // functions generated before it (the level below).
    let depth_below_main = 1 + g.rng.below(3) as usize; // call tree 2–4 deep incl. main
    let mut funcs: Vec<Func> = Vec::new();
    let mut func_costs: HashMap<String, u64> = HashMap::new();
    let mut below: Vec<FuncSig> = Vec::new();
    let mut next_id = 0usize;
    for _level in 0..depth_below_main {
        let n_funcs = 1 + g.rng.below(2) as usize;
        let mut this_level = Vec::new();
        for _ in 0..n_funcs {
            let name = format!("f{next_id}");
            next_id += 1;
            let f = g.gen_func(&name, &below);
            let cost = func_dynamic_cost(&f, &func_costs);
            func_costs.insert(name.clone(), cost);
            this_level.push(FuncSig {
                name,
                n_params: f.params.len(),
                cost,
            });
            funcs.push(f);
        }
        below = this_level;
    }
    funcs.push(g.gen_main(&below));

    let program = Program { globals, funcs };
    let source = print(&program);
    sema::check(&program).unwrap_or_else(|e| {
        panic!("generator produced invalid program (seed {seed}): {e}\n{source}")
    });
    let steps_estimate = estimate_steps(&program);
    GeneratedProgram {
        seed,
        class,
        program,
        source,
        input: Arc::new(input),
        steps_estimate,
    }
}

/// [`generate`] with the class derived from the seed
/// ([`FootprintClass::for_seed`]).
#[must_use]
pub fn generate_for_seed(seed: u64, arch: &MemArchSpec) -> GeneratedProgram {
    generate(seed, FootprintClass::for_seed(seed), arch)
}

fn pow2_floor(x: u32) -> u32 {
    let x = x.max(1);
    1 << (31 - x.leading_zeros())
}

// ---------------------------------------------------------------------
// Dynamic-step estimation (mirrors the interpreter's tick accounting:
// one tick per executed statement plus one per loop iteration).
// ---------------------------------------------------------------------

/// Estimates the interpreter steps one run of `main` takes, multiplying
/// loop bodies by their `__loopbound` and inlining call costs. An upper
/// bound for generated programs (`if` branches count the larger arm).
#[must_use]
pub fn estimate_steps(p: &Program) -> u64 {
    let mut memo: HashMap<String, u64> = HashMap::new();
    // Generated call graphs only reference earlier functions, but iterate
    // to a fixed point so hand-written orderings work too (MiniC has no
    // recursion, so this converges).
    for _ in 0..p.funcs.len() {
        for f in &p.funcs {
            let c = func_dynamic_cost(f, &memo);
            memo.insert(f.name.clone(), c);
        }
    }
    memo.get("main").copied().unwrap_or(0)
}

fn func_dynamic_cost(f: &Func, costs: &HashMap<String, u64>) -> u64 {
    block_cost(&f.body, costs)
}

fn block_cost(stmts: &[Stmt], costs: &HashMap<String, u64>) -> u64 {
    stmts.iter().map(|s| stmt_cost(s, costs)).sum()
}

fn loop_bound_of(body: &[Stmt]) -> u64 {
    body.iter()
        .find_map(|s| match s {
            Stmt::LoopBound { bound, .. } => Some(u64::from(*bound)),
            _ => None,
        })
        .unwrap_or(1)
}

fn stmt_cost(s: &Stmt, costs: &HashMap<String, u64>) -> u64 {
    match s {
        Stmt::Decl { init, .. } => 1 + init.as_ref().map_or(0, |e| expr_cost(e, costs)),
        Stmt::Expr(e) => 1 + expr_cost(e, costs),
        Stmt::If {
            cond, then, else_, ..
        } => 1 + expr_cost(cond, costs) + block_cost(then, costs).max(block_cost(else_, costs)),
        Stmt::While { cond, body, .. } | Stmt::DoWhile { body, cond, .. } => {
            let trips = loop_bound_of(body);
            1 + trips * (2 + expr_cost(cond, costs) + block_cost(body, costs))
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let trips = loop_bound_of(body);
            let per = 2
                + cond.as_ref().map_or(0, |e| expr_cost(e, costs))
                + step.as_ref().map_or(0, |e| expr_cost(e, costs))
                + block_cost(body, costs);
            1 + init.as_ref().map_or(0, |s| stmt_cost(s, costs)) + trips * per
        }
        Stmt::Return { value, .. } => 1 + value.as_ref().map_or(0, |e| expr_cost(e, costs)),
        Stmt::Break { .. }
        | Stmt::Continue { .. }
        | Stmt::LoopBound { .. }
        | Stmt::LoopTotal { .. } => 1,
        Stmt::Block(b) => 1 + block_cost(b, costs),
    }
}

fn expr_cost(e: &Expr, costs: &HashMap<String, u64>) -> u64 {
    match e {
        Expr::Num { .. } | Expr::Var { .. } => 0,
        Expr::Index { index, .. } => expr_cost(index, costs),
        Expr::Assign { lhs, rhs, .. } | Expr::Bin { lhs, rhs, .. } => {
            expr_cost(lhs, costs) + expr_cost(rhs, costs)
        }
        Expr::Un { operand, .. } => expr_cost(operand, costs),
        Expr::Call { name, args, .. } => {
            1 + costs.get(name).copied().unwrap_or(0)
                + args.iter().map(|a| expr_cost(a, costs)).sum::<u64>()
        }
    }
}

// ---------------------------------------------------------------------
// Generic AST walkers (shared by the shrinker and the fault injector).
// ---------------------------------------------------------------------

fn map_exprs_in_stmt(s: &mut Stmt, f: &mut dyn FnMut(&mut Expr)) {
    match s {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                map_expr(e, f);
            }
        }
        Stmt::Expr(e) => map_expr(e, f),
        Stmt::If {
            cond, then, else_, ..
        } => {
            map_expr(cond, f);
            for s in then.iter_mut().chain(else_.iter_mut()) {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::While { cond, body, .. } | Stmt::DoWhile { body, cond, .. } => {
            map_expr(cond, f);
            for s in body {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(s) = init {
                map_exprs_in_stmt(s, f);
            }
            if let Some(e) = cond {
                map_expr(e, f);
            }
            if let Some(e) = step {
                map_expr(e, f);
            }
            for s in body {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                map_expr(e, f);
            }
        }
        Stmt::Block(b) => {
            for s in b {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::Break { .. }
        | Stmt::Continue { .. }
        | Stmt::LoopBound { .. }
        | Stmt::LoopTotal { .. } => {}
    }
}

/// Post-order: children first, then the node itself (so `f` sees final
/// children and may replace the whole node).
fn map_expr(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    match e {
        Expr::Num { .. } | Expr::Var { .. } => {}
        Expr::Index { index, .. } => map_expr(index, f),
        Expr::Assign { lhs, rhs, .. } | Expr::Bin { lhs, rhs, .. } => {
            map_expr(lhs, f);
            map_expr(rhs, f);
        }
        Expr::Un { operand, .. } => map_expr(operand, f),
        Expr::Call { args, .. } => {
            for a in args {
                map_expr(a, f);
            }
        }
    }
    f(e);
}

fn map_program_exprs(p: &mut Program, f: &mut dyn FnMut(&mut Expr)) {
    for func in &mut p.funcs {
        for s in &mut func.body {
            map_exprs_in_stmt(s, f);
        }
    }
}

// ---------------------------------------------------------------------
// Injected miscompile (for harness end-to-end proof).
// ---------------------------------------------------------------------

/// Plants a classic wrong strength reduction: every `x / 2^k` with a
/// constant power-of-two divisor becomes `x >> k`. Correct for
/// non-negative `x`, wrong for negative `x` (truncating division vs
/// flooring shift: `-7 / 4 == -1` but `-7 >> 2 == -2`). Compiling the
/// transformed AST while interpreting the original models a real
/// miscompile for the fuzz harness and the shrinker demo.
#[must_use]
pub fn inject_miscompile(p: &Program) -> Program {
    let mut out = p.clone();
    map_program_exprs(&mut out, &mut |e| {
        if let Expr::Bin { op, rhs, .. } = e {
            if *op == BinOp::Div {
                if let Expr::Num { value, .. } = rhs.as_ref() {
                    let v = *value;
                    if v >= 2 && (v as u64).is_power_of_two() {
                        *op = BinOp::Shr;
                        **rhs = num(i64::from((v as u64).trailing_zeros()));
                    }
                }
            }
        }
    });
    out
}

// ---------------------------------------------------------------------
// Delta-debugging shrinker.
// ---------------------------------------------------------------------

/// Greedily minimises `program` while `still_fails` keeps returning
/// `true`. The predicate must return `false` for candidates that error
/// (fail to compile, exceed step budgets, …) — "can't reproduce" and
/// "fixed" are the same answer to a shrinker.
///
/// Transformations, applied to a fixed point:
/// 1. drop whole functions (calls to them become `0`),
/// 2. drop individual statements (recursively, innermost included),
/// 3. halve constant trip counts (updating the matching `__loopbound`,
///    dropping now-stale `__looptotal` facts),
/// 4. narrow power-of-two arrays (halving `& (len-1)` masks with them),
/// 5. drop globals no expression references.
///
/// Every accepted step strictly shrinks the program, so this terminates.
pub fn shrink<F: FnMut(&Program) -> bool>(program: &Program, mut still_fails: F) -> Program {
    let mut cur = program.clone();
    loop {
        let mut improved = false;

        // 1. Whole functions.
        loop {
            let names: Vec<String> = cur
                .funcs
                .iter()
                .filter(|f| f.name != "main")
                .map(|f| f.name.clone())
                .collect();
            let mut any = false;
            for name in names {
                let cand = drop_function(&cur, &name);
                if still_fails(&cand) {
                    cur = cand;
                    any = true;
                    improved = true;
                    break;
                }
            }
            if !any {
                break;
            }
        }

        // 2. Individual statements.
        'stmts: loop {
            let n = count_stmts(&cur);
            for i in 0..n {
                let mut cand = cur.clone();
                if remove_stmt(&mut cand, i) && still_fails(&cand) {
                    cur = cand;
                    improved = true;
                    continue 'stmts;
                }
            }
            break;
        }

        // 3. Trip counts.
        'trips: loop {
            let n = count_loops(&cur);
            for i in 0..n {
                if let Some(cand) = halve_loop(&cur, i) {
                    if still_fails(&cand) {
                        cur = cand;
                        improved = true;
                        continue 'trips;
                    }
                }
            }
            break;
        }

        // 4. Array lengths.
        'arrays: loop {
            let arrs: Vec<(String, u32)> = cur
                .globals
                .iter()
                .filter_map(|g| match g.array_len {
                    Some(len) if len >= 2 && len.is_power_of_two() => Some((g.name.clone(), len)),
                    _ => None,
                })
                .collect();
            for (name, len) in arrs {
                let cand = narrow_array(&cur, &name, len);
                if still_fails(&cand) {
                    cur = cand;
                    improved = true;
                    continue 'arrays;
                }
            }
            break;
        }

        // 5. Unreferenced globals.
        'globals: loop {
            let referenced = referenced_names(&cur);
            let unused: Vec<String> = cur
                .globals
                .iter()
                .filter(|g| !referenced.contains(&g.name))
                .map(|g| g.name.clone())
                .collect();
            for name in unused {
                let mut cand = cur.clone();
                cand.globals.retain(|g| g.name != name);
                if still_fails(&cand) {
                    cur = cand;
                    improved = true;
                    continue 'globals;
                }
            }
            break;
        }

        if !improved {
            return cur;
        }
    }
}

fn drop_function(p: &Program, name: &str) -> Program {
    let mut out = p.clone();
    out.funcs.retain(|f| f.name != name);
    map_program_exprs(&mut out, &mut |e| {
        if let Expr::Call { name: n, .. } = e {
            if n == name {
                *e = num(0);
            }
        }
    });
    out
}

fn count_stmts(p: &Program) -> usize {
    fn count_block(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| {
                1 + match s {
                    Stmt::If { then, else_, .. } => count_block(then) + count_block(else_),
                    Stmt::While { body, .. }
                    | Stmt::DoWhile { body, .. }
                    | Stmt::For { body, .. } => count_block(body),
                    Stmt::Block(b) => count_block(b),
                    _ => 0,
                }
            })
            .sum()
    }
    p.funcs.iter().map(|f| count_block(&f.body)).sum()
}

fn remove_stmt(p: &mut Program, target: usize) -> bool {
    fn remove_in_block(stmts: &mut Vec<Stmt>, target: usize, idx: &mut usize) -> bool {
        let mut i = 0;
        while i < stmts.len() {
            if *idx == target {
                stmts.remove(i);
                return true;
            }
            *idx += 1;
            let found = match &mut stmts[i] {
                Stmt::If { then, else_, .. } => {
                    remove_in_block(then, target, idx) || remove_in_block(else_, target, idx)
                }
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                    remove_in_block(body, target, idx)
                }
                Stmt::Block(b) => remove_in_block(b, target, idx),
                _ => false,
            };
            if found {
                return true;
            }
            i += 1;
        }
        false
    }
    let mut idx = 0usize;
    for f in &mut p.funcs {
        if remove_in_block(&mut f.body, target, &mut idx) {
            return true;
        }
    }
    false
}

/// Halves the `k`-th loop's trip count (preorder over all loops),
/// rewriting its `counter < N` condition, its `__loopbound`, and
/// dropping `__looptotal` facts that the change would invalidate.
fn halve_loop(p: &Program, target: usize) -> Option<Program> {
    fn patch_cond(cond: &mut Expr, old: i64, new: i64) -> bool {
        if let Expr::Bin { rhs, .. } = cond {
            if let Expr::Num { value, .. } = rhs.as_mut() {
                if *value == old {
                    *value = new;
                    return true;
                }
            }
        }
        false
    }
    fn patch_body(body: &mut Vec<Stmt>, old: u32, new: u32) {
        body.retain(|s| !matches!(s, Stmt::LoopTotal { .. }));
        for s in body {
            if let Stmt::LoopBound { bound, .. } = s {
                if *bound == old {
                    *bound = new;
                }
            }
        }
    }
    fn visit(stmts: &mut [Stmt], target: usize, idx: &mut usize) -> Option<bool> {
        for s in stmts {
            match s {
                Stmt::While { cond, body, .. } | Stmt::DoWhile { body, cond, .. } => {
                    if *idx == target {
                        let old = loop_bound_of(body);
                        if old < 2 {
                            return Some(false);
                        }
                        let new = old / 2;
                        if !patch_cond(cond, old as i64, new as i64) {
                            return Some(false);
                        }
                        patch_body(body, old as u32, new as u32);
                        return Some(true);
                    }
                    *idx += 1;
                    if let Some(r) = visit(body, target, idx) {
                        return Some(r);
                    }
                }
                Stmt::For { cond, body, .. } => {
                    if *idx == target {
                        let old = loop_bound_of(body);
                        if old < 2 {
                            return Some(false);
                        }
                        let new = old / 2;
                        let patched = cond
                            .as_mut()
                            .is_some_and(|c| patch_cond(c, old as i64, new as i64));
                        if !patched {
                            return Some(false);
                        }
                        patch_body(body, old as u32, new as u32);
                        return Some(true);
                    }
                    *idx += 1;
                    if let Some(r) = visit(body, target, idx) {
                        return Some(r);
                    }
                }
                Stmt::If { then, else_, .. } => {
                    if let Some(r) = visit(then, target, idx) {
                        return Some(r);
                    }
                    if let Some(r) = visit(else_, target, idx) {
                        return Some(r);
                    }
                }
                Stmt::Block(b) => {
                    if let Some(r) = visit(b, target, idx) {
                        return Some(r);
                    }
                }
                _ => {}
            }
        }
        None
    }
    let mut out = p.clone();
    let mut idx = 0usize;
    for f in &mut out.funcs {
        match visit(&mut f.body, target, &mut idx) {
            Some(true) => return Some(out),
            Some(false) => return None,
            None => {}
        }
    }
    None
}

fn count_loops(p: &Program) -> usize {
    fn count_block(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                    1 + count_block(body)
                }
                Stmt::If { then, else_, .. } => count_block(then) + count_block(else_),
                Stmt::Block(b) => count_block(b),
                _ => 0,
            })
            .sum()
    }
    p.funcs.iter().map(|f| count_block(&f.body)).sum()
}

/// Halves `name`'s length, truncating its initialiser and rewriting the
/// `& (len-1)` masks of its indices (the only access shape the generator
/// emits) to the new length.
fn narrow_array(p: &Program, name: &str, len: u32) -> Program {
    let mut out = p.clone();
    let new_len = len / 2;
    for g in &mut out.globals {
        if g.name == name {
            g.array_len = Some(new_len);
            g.init.truncate(new_len as usize);
        }
    }
    let old_mask = i64::from(len - 1);
    let new_mask = i64::from(new_len - 1);
    map_program_exprs(&mut out, &mut |e| {
        if let Expr::Index { name: n, index, .. } = e {
            if n == name {
                if let Expr::Bin {
                    op: BinOp::And,
                    rhs,
                    ..
                } = index.as_mut()
                {
                    if let Expr::Num { value, .. } = rhs.as_mut() {
                        if *value == old_mask {
                            *value = new_mask;
                        }
                    }
                }
            }
        }
    });
    out
}

fn referenced_names(p: &Program) -> std::collections::HashSet<String> {
    let mut names = std::collections::HashSet::new();
    let mut q = p.clone();
    map_program_exprs(&mut q, &mut |e| match e {
        Expr::Var { name, .. } | Expr::Index { name, .. } => {
            names.insert(name.clone());
        }
        _ => {}
    });
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::interp;
    use spmlab_cc::link::SpmAssignment;
    use spmlab_isa::mem::MemoryMap;
    use spmlab_sim::{simulate, MachineConfig, SimOptions};

    fn interp_checksum(p: &Program) -> Option<i32> {
        let out = interp::run(p, 10_000_000).ok()?;
        out.globals.get("checksum").and_then(|v| v.first().copied())
    }

    #[test]
    fn generation_is_deterministic() {
        let arch = reference_arch();
        let a = generate(7, FootprintClass::StraddlesL1, &arch);
        let b = generate(7, FootprintClass::StraddlesL1, &arch);
        assert_eq!(a.source, b.source);
        assert_eq!(a.input, b.input);
        let c = generate(8, FootprintClass::StraddlesL1, &arch);
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn generated_programs_compile_and_roundtrip() {
        let arch = reference_arch();
        for seed in 0..8u64 {
            let g = generate_for_seed(seed, &arch);
            assert_eq!(g.source, print(&g.program), "seed {seed}: source drift");
            let reparsed = spmlab_cc::parse_source(&g.source)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}"));
            assert_eq!(
                print(&reparsed),
                g.source,
                "seed {seed}: print∘parse not a fixed point"
            );
            spmlab_cc::compile(&g.source)
                .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{}", g.source));
        }
    }

    #[test]
    fn interp_oracle_matches_simulator() {
        let arch = reference_arch();
        for seed in 0..4u64 {
            let g = generate_for_seed(seed, &arch);
            let b = g.benchmark();
            let input = b.typical_input();
            let expected = b.reference_checksum(&input);
            let linked = b
                .build(&MemoryMap::no_spm(), &SpmAssignment::none(), &input)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let res = simulate(
                &linked.exe,
                &MachineConfig::uncached(),
                &SimOptions::default(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let got = res
                .read_global(&linked.exe, "checksum")
                .expect("checksum global");
            assert_eq!(got, expected, "seed {seed}: interp vs sim divergence");
        }
    }

    #[test]
    fn footprint_classes_scale_with_arch() {
        let arch = reference_arch();
        let bytes = |class: FootprintClass| -> u32 {
            let g = generate(3, class, &arch);
            g.program
                .globals
                .iter()
                .filter(|gl| gl.name.starts_with('a'))
                .map(|gl| gl.array_len.unwrap_or(1) * gl.ty.bytes())
                .sum()
        };
        let fits = bytes(FootprintClass::FitsL1);
        let exceeds = bytes(FootprintClass::ExceedsL2);
        assert!(fits <= 512, "fits-l1 footprint {fits} exceeds the L1");
        assert!(
            exceeds > 4096,
            "exceeds-l2 footprint {exceeds} does not exceed the L2"
        );
    }

    #[test]
    fn step_estimate_bounds_the_interpreter() {
        let arch = reference_arch();
        for seed in 0..4u64 {
            let g = generate_for_seed(seed, &arch);
            let out = interp::run(&g.program, g.steps_estimate * 4 + 100_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                out.steps <= g.steps_estimate * 4 + 100_000,
                "seed {seed}: {} steps vs estimate {}",
                out.steps,
                g.steps_estimate
            );
        }
    }

    #[test]
    fn injected_miscompile_is_found_and_shrunk() {
        let arch = reference_arch();
        // Scan seeds for one where the planted div→shr bug actually
        // diverges (needs a negative dividend reaching a /2^k).
        let mut found = None;
        for seed in 0..64u64 {
            let g = generate_for_seed(seed, &arch);
            let buggy = inject_miscompile(&g.program);
            if buggy == g.program {
                continue;
            }
            let good = interp_checksum(&g.program);
            let bad = interp_checksum(&buggy);
            if good.is_some() && good != bad {
                found = Some(g);
                break;
            }
        }
        let g = found.expect("no seed in 0..64 triggers the planted miscompile");
        let fails = |p: &Program| -> bool {
            let buggy = inject_miscompile(p);
            match (interp_checksum(p), interp_checksum(&buggy)) {
                (Some(a), Some(b)) => a != b,
                _ => false,
            }
        };
        let small = shrink(&g.program, fails);
        assert!(fails(&small), "shrunk program no longer reproduces");
        assert!(
            count_stmts(&small) < count_stmts(&g.program),
            "shrinker made no progress"
        );
        let src = print(&small);
        assert!(
            src.lines().count() <= 40,
            "shrunk repro still {} lines:\n{src}",
            src.lines().count()
        );
    }
}
