//! Steinke-style instruction/memory energy model.
//!
//! Per-access energies approximate the published numbers of the Dortmund
//! energy model (Steinke et al., PATMOS'01) and the CACTI-derived
//! scratchpad/cache figures of Banakar et al. (CODES'02): main memory is
//! roughly an order of magnitude more expensive per access than a small
//! on-chip scratchpad, and scratchpad energy grows slowly with capacity.

use spmlab_isa::mem::AccessWidth;

/// Per-access energies in nanojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Main-memory access energy for an 8/16-bit access.
    pub main_half_nj: f64,
    /// Main-memory access energy for a 32-bit access (two bus cycles).
    pub main_word_nj: f64,
    /// Scratchpad energy per access, by capacity: `(bytes, nJ)` breakpoints.
    pub spm_nj: Vec<(u32, f64)>,
    /// Cache energy per access (tag + data array), by capacity.
    pub cache_nj: Vec<(u32, f64)>,
    /// CPU core energy per cycle.
    pub cpu_nj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel {
            main_half_nj: 15.5,
            main_word_nj: 31.0,
            spm_nj: vec![
                (64, 0.57),
                (128, 0.62),
                (256, 0.69),
                (512, 0.79),
                (1024, 0.93),
                (2048, 1.10),
                (4096, 1.32),
                (8192, 1.64),
            ],
            cache_nj: vec![
                (64, 0.90),
                (128, 0.98),
                (256, 1.08),
                (512, 1.22),
                (1024, 1.43),
                (2048, 1.69),
                (4096, 2.02),
                (8192, 2.49),
            ],
            cpu_nj_per_cycle: 2.5,
        }
    }
}

fn lookup(table: &[(u32, f64)], size: u32) -> f64 {
    let mut last = table.first().map(|&(_, e)| e).unwrap_or(1.0);
    for &(cap, e) in table {
        last = e;
        if size <= cap {
            return e;
        }
    }
    last
}

impl EnergyModel {
    /// Main-memory energy for one access of `width`.
    pub fn main_access_nj(&self, width: AccessWidth) -> f64 {
        match width {
            AccessWidth::Byte | AccessWidth::Half => self.main_half_nj,
            AccessWidth::Word => self.main_word_nj,
        }
    }

    /// Scratchpad energy per access for a scratchpad of `size` bytes.
    pub fn spm_access_nj(&self, size: u32) -> f64 {
        lookup(&self.spm_nj, size)
    }

    /// Cache energy per access for a cache of `size` bytes.
    pub fn cache_access_nj(&self, size: u32) -> f64 {
        lookup(&self.cache_nj, size)
    }

    /// Energy saved by serving one access of `width` from a scratchpad of
    /// `spm_size` bytes instead of main memory.
    pub fn saving_nj(&self, width: AccessWidth, spm_size: u32) -> f64 {
        (self.main_access_nj(width) - self.spm_access_nj(spm_size)).max(0.0)
    }

    /// Total energy estimate for a simulation run.
    ///
    /// `spm_size`/`cache_size` describe the configuration; counts come from
    /// the simulator's [`spmlab_sim::MemStats`].
    pub fn run_energy_nj(
        &self,
        stats: &spmlab_sim::MemStats,
        cycles: u64,
        spm_size: u32,
        cache_size: Option<u32>,
    ) -> f64 {
        let widths = [AccessWidth::Byte, AccessWidth::Half, AccessWidth::Word];
        let mut e = cycles as f64 * self.cpu_nj_per_cycle;
        for (i, w) in widths.iter().enumerate() {
            e += stats.spm[i] as f64 * self.spm_access_nj(spm_size);
            match cache_size {
                // With a cache, core-visible main accesses go through the
                // cache array; line fills hit main memory per word.
                Some(cs) => e += stats.main[i] as f64 * self.cache_access_nj(cs),
                None => e += stats.main[i] as f64 * self.main_access_nj(*w),
            }
        }
        e += stats.fill_words as f64 * self.main_word_nj;
        // Write-throughs pay main memory too (half as a mid estimate is
        // avoided: count them at word cost only when a cache is present;
        // without a cache they are already in `stats.main`).
        if cache_size.is_some() {
            e += stats.write_throughs as f64 * self.main_word_nj;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spm_cheaper_than_main() {
        let m = EnergyModel::default();
        for size in [64, 256, 1024, 8192] {
            assert!(m.spm_access_nj(size) < m.main_access_nj(AccessWidth::Half));
            assert!(m.saving_nj(AccessWidth::Word, size) > 0.0);
        }
    }

    #[test]
    fn spm_energy_monotone_in_size() {
        let m = EnergyModel::default();
        let mut prev = 0.0;
        for size in [64, 128, 256, 512, 1024, 2048, 4096, 8192] {
            let e = m.spm_access_nj(size);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn cache_costs_more_than_spm() {
        let m = EnergyModel::default();
        for size in [64, 1024, 8192] {
            assert!(
                m.cache_access_nj(size) > m.spm_access_nj(size),
                "tag overhead"
            );
        }
    }

    #[test]
    fn lookup_clamps() {
        let m = EnergyModel::default();
        assert_eq!(m.spm_access_nj(1), m.spm_access_nj(64));
        assert_eq!(m.spm_access_nj(1 << 20), m.spm_access_nj(8192));
    }
}
