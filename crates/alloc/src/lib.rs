//! # spmlab-alloc — static scratchpad allocation
//!
//! Implements the paper's allocation flow (after Steinke et al., DATE'02):
//! every function and global data object is a *memory object* with a size
//! and an energy benefit derived from profiled access counts; choosing the
//! subset that fits the scratchpad is a 0/1 knapsack, solved exactly (DP,
//! cross-checked against the ILP formulation like the paper's CPLEX).
//!
//! Two benefit functions are provided:
//!
//! * [`knapsack::allocate`] — the paper's **energy-optimal** allocation
//!   using the Steinke-style [`energy::EnergyModel`];
//! * [`wcet_aware::allocate`] — the paper's *future work*: a greedy
//!   WCET-driven allocator that re-runs the static WCET analysis to pick
//!   the objects that shrink the bound most per byte.
//!
//! ```
//! use spmlab_alloc::energy::EnergyModel;
//! use spmlab_alloc::knapsack;
//! use spmlab_cc::{compile, link, SpmAssignment};
//! use spmlab_isa::mem::MemoryMap;
//! use spmlab_sim::{simulate, MachineConfig, SimOptions};
//!
//! let src = "int t[16]; int s; void main() { int i;
//!     for (i = 0; i < 16; i = i + 1) { __loopbound(16); t[i] = i; }
//!     for (i = 0; i < 16; i = i + 1) { __loopbound(16); s = s + t[i]; } }";
//! let module = compile(src)?;
//! // Profile on the baseline (no scratchpad), as the paper's workflow does.
//! let base = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none())?;
//! let prof = simulate(&base.exe, &MachineConfig::uncached(), &SimOptions::default())?.profile;
//! let alloc = knapsack::allocate(&module, &prof, 256, &EnergyModel::default());
//! assert!(alloc.assignment.len() > 0, "something fits in 256 bytes");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod energy;
pub mod knapsack;
pub mod objects;
pub mod wcet_aware;

pub use knapsack::{allocate, Allocation};
pub use objects::MemoryObject;
