//! Energy-optimal static allocation — the paper's knapsack.

use crate::energy::EnergyModel;
use crate::objects::{memory_objects, MemoryObject};
use spmlab_cc::{ObjModule, SpmAssignment};
use spmlab_ilp::knapsack::{solve as knapsack_solve, Item};
use spmlab_sim::Profile;

/// Result of an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The chosen assignment, ready for the linker.
    pub assignment: SpmAssignment,
    /// All candidates, with benefits (diagnostics/reports).
    pub objects: Vec<MemoryObject>,
    /// Scratchpad capacity used, bytes (object sizes without alignment
    /// padding).
    pub used_bytes: u32,
    /// Capacity offered, bytes.
    pub capacity: u32,
    /// Total energy benefit of the selection (nJ per profiled run).
    pub benefit_nj: f64,
}

impl Allocation {
    /// Scratchpad utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used_bytes as f64 / self.capacity as f64
        }
    }
}

/// Word-aligned footprint of an object in the scratchpad (the linker
/// aligns every object to 4 bytes).
fn aligned_size(size: u32) -> u32 {
    (size.max(1) + 3) & !3
}

/// Solves the paper's knapsack: choose functions and globals maximising
/// energy benefit subject to the scratchpad capacity.
///
/// Profiling comes from the baseline (no-scratchpad) run, exactly like the
/// paper profiles with ARMulator before allocating.
pub fn allocate(
    module: &ObjModule,
    profile: &Profile,
    capacity: u32,
    energy: &EnergyModel,
) -> Allocation {
    let objects = memory_objects(module, profile, capacity, energy);
    let items: Vec<Item> = objects
        .iter()
        .map(|o| Item {
            weight: aligned_size(o.size),
            value: o.benefit_nj,
        })
        .collect();
    let sel = knapsack_solve(&items, capacity);
    let assignment = SpmAssignment::of(sel.chosen.iter().map(|&i| objects[i].name.clone()));
    Allocation {
        assignment,
        used_bytes: sel.total_weight,
        capacity,
        benefit_nj: sel.total_value,
        objects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::{compile, link};
    use spmlab_isa::mem::MemoryMap;
    use spmlab_sim::{simulate, MachineConfig, SimOptions};

    const SRC: &str = "
        int hot[32]; int cold[512]; int s;
        int kernel() {
            int i; int acc;
            acc = 0;
            for (i = 0; i < 32; i = i + 1) { __loopbound(32); acc = acc + hot[i]; }
            return acc;
        }
        void main() {
            int r; int k;
            for (k = 0; k < 10; k = k + 1) { __loopbound(10); r = kernel(); }
            cold[0] = r; s = r;
        }";

    fn profiled() -> (ObjModule, Profile) {
        let module = compile(SRC).unwrap();
        let l = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let r = simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();
        (module, r.profile)
    }

    #[test]
    fn small_capacity_picks_hottest() {
        let (module, profile) = profiled();
        let alloc = allocate(&module, &profile, 192, &EnergyModel::default());
        // 192 bytes: `hot` (128 B) plus maybe `s`; never `cold` (2 KiB).
        assert!(alloc.assignment.contains("hot"));
        assert!(!alloc.assignment.contains("cold"));
        assert!(alloc.used_bytes <= 192);
        assert!(alloc.benefit_nj > 0.0);
    }

    #[test]
    fn capacity_zero_allocates_nothing() {
        let (module, profile) = profiled();
        let alloc = allocate(&module, &profile, 0, &EnergyModel::default());
        assert!(alloc.assignment.is_empty());
        assert_eq!(alloc.utilization(), 0.0);
    }

    #[test]
    fn capacity_sweep_is_feasible_and_saturates() {
        // Benefit is not globally monotone in capacity (bigger scratchpads
        // cost more energy per access), but each solution must be feasible
        // and, at a fixed per-access energy, more capacity can only help.
        let (module, profile) = profiled();
        let energy = EnergyModel::default();
        let mut prev_selected = 0usize;
        for cap in [64, 128, 256, 512, 1024, 4096] {
            let a = allocate(&module, &profile, cap, &energy);
            assert!(a.used_bytes <= cap, "selection must fit at {cap}");
            assert!(a.utilization() <= 1.0);
            assert!(
                a.assignment.len() >= prev_selected || cap <= 256,
                "larger capacity should not select fewer objects once the hot set fits"
            );
            prev_selected = a.assignment.len();
        }
        // At 4 KiB everything hot fits; benefit clearly beats the 64 B one.
        let small = allocate(&module, &profile, 64, &energy);
        let large = allocate(&module, &profile, 4096, &energy);
        assert!(large.benefit_nj > small.benefit_nj);
    }

    #[test]
    fn allocation_links_and_speeds_up() {
        let (module, profile) = profiled();
        let alloc = allocate(&module, &profile, 512, &EnergyModel::default());
        let map = MemoryMap::with_spm(512);
        let fast = link(&module, &map, &alloc.assignment).unwrap();
        let base = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let rf = simulate(
            &fast.exe,
            &MachineConfig::uncached(),
            &SimOptions::default(),
        )
        .unwrap();
        let rb = simulate(
            &base.exe,
            &MachineConfig::uncached(),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(rf.cycles < rb.cycles, "{} < {}", rf.cycles, rb.cycles);
        assert_eq!(
            rf.read_global(&fast.exe, "s"),
            rb.read_global(&base.exe, "s"),
            "allocation must not change results"
        );
    }
}
