//! WCET-aware allocation — the paper's closing future-work item:
//! "the allocation technique will be extended … to consider placing those
//! objects onto the faster memory that lie on the critical path", so the
//! objective is the WCET bound itself rather than profiled energy.
//!
//! The allocator is a greedy best-improvement-per-byte loop: each round it
//! relinks the program with each remaining candidate added, runs the static
//! WCET analysis, and commits the object with the best WCET reduction per
//! scratchpad byte. This needs no profile at all — everything comes from
//! the analyzer, keeping the method fully static like the paper's vision.
//!
//! The objective is pluggable: [`allocate`] optimises the flat Table-1
//! region-timing bound (the seed behaviour), while [`allocate_with`] takes
//! an arbitrary [`WcetConfig`] — in particular
//! `WcetConfig::with_hierarchy`, so placement optimises the *multi-level
//! critical path*: an object whose accesses would mostly hit in the L1
//! anyway is no longer worth scratchpad bytes, while one whose accesses
//! the analysis cannot classify (and must charge the full L2-miss penalty
//! for) is. [`allocate_hierarchy_aware`] additionally evaluates the
//! region-timing greedy result under the real objective and keeps
//! whichever assignment bounds lower, so it can never lose to the seed
//! allocator on the metric that matters.

use spmlab_cc::{link, CcError, ObjModule, SpmAssignment};
use spmlab_isa::annot::AnnotationSet;
use spmlab_isa::mem::MemoryMap;
use spmlab_wcet::{analyze, WcetConfig, WcetError};

/// Outcome of the WCET-driven allocation.
#[derive(Debug, Clone)]
pub struct WcetAllocation {
    /// Chosen assignment.
    pub assignment: SpmAssignment,
    /// WCET bound with nothing in the scratchpad.
    pub baseline_wcet: u64,
    /// WCET bound with the final assignment.
    pub final_wcet: u64,
    /// Objects committed, in selection order, with the bound after each.
    pub steps: Vec<(String, u64)>,
}

/// Errors from the WCET-aware allocator.
#[derive(Debug)]
pub enum WcetAllocError {
    /// Linking a candidate assignment failed.
    Link(CcError),
    /// The WCET analysis failed.
    Wcet(WcetError),
}

impl std::fmt::Display for WcetAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WcetAllocError::Link(e) => write!(f, "link: {e}"),
            WcetAllocError::Wcet(e) => write!(f, "wcet: {e}"),
        }
    }
}

impl std::error::Error for WcetAllocError {}

fn wcet_of(
    module: &ObjModule,
    map: &MemoryMap,
    assignment: &SpmAssignment,
    extra_annotations: &AnnotationSet,
    config: &WcetConfig,
) -> Result<u64, WcetAllocError> {
    let linked = link(module, map, assignment).map_err(WcetAllocError::Link)?;
    let mut ann = linked.annotations.clone();
    ann.merge_from(extra_annotations);
    let res = analyze(&linked.exe, config, &ann).map_err(WcetAllocError::Wcet)?;
    Ok(res.wcet_cycles)
}

/// Greedily allocates objects to minimise the flat region-timing WCET
/// bound (the seed objective).
///
/// `extra_annotations` carries user loop bounds that the linker-generated
/// set does not already contain.
///
/// # Errors
///
/// Fails when the baseline program cannot be linked or analysed (a
/// candidate that overflows the scratchpad is simply skipped).
pub fn allocate(
    module: &ObjModule,
    capacity: u32,
    extra_annotations: &AnnotationSet,
) -> Result<WcetAllocation, WcetAllocError> {
    allocate_with(
        module,
        capacity,
        extra_annotations,
        &WcetConfig::region_timing(),
    )
}

/// Greedily allocates objects to minimise the WCET bound under an
/// arbitrary analyzer configuration — pass `WcetConfig::with_hierarchy`
/// to optimise placement against the multi-level critical path.
///
/// # Errors
///
/// Fails when the baseline program cannot be linked or analysed (a
/// candidate that overflows the scratchpad is simply skipped).
pub fn allocate_with(
    module: &ObjModule,
    capacity: u32,
    extra_annotations: &AnnotationSet,
    config: &WcetConfig,
) -> Result<WcetAllocation, WcetAllocError> {
    let map = MemoryMap::with_spm(capacity);
    let baseline_map = MemoryMap::no_spm();
    let baseline_wcet = wcet_of(
        module,
        &baseline_map,
        &SpmAssignment::none(),
        extra_annotations,
        config,
    )?;

    let mut assignment = SpmAssignment::none();
    let mut current = wcet_of(module, &map, &assignment, extra_annotations, config)?;
    let mut remaining: Vec<(String, u32)> = module.memory_objects();
    let mut used = 0u32;
    let mut steps = Vec::new();

    loop {
        let mut best: Option<(usize, u64, f64)> = None;
        for (i, (name, size)) in remaining.iter().enumerate() {
            let aligned = (size.max(&1) + 3) & !3;
            if used + aligned > capacity {
                continue;
            }
            let mut trial = assignment.clone();
            trial.insert(name.clone());
            let w = match wcet_of(module, &map, &trial, extra_annotations, config) {
                Ok(w) => w,
                Err(WcetAllocError::Link(_)) => continue, // Doesn't fit with padding.
                Err(e) => return Err(e),
            };
            if w < current {
                let gain_per_byte = (current - w) as f64 / aligned as f64;
                if best.is_none_or(|(_, _, g)| gain_per_byte > g) {
                    best = Some((i, w, gain_per_byte));
                }
            }
        }
        let Some((i, w, _)) = best else { break };
        let (name, size) = remaining.remove(i);
        used += (size.max(1) + 3) & !3;
        assignment.insert(name.clone());
        current = w;
        steps.push((name, w));
    }

    Ok(WcetAllocation {
        assignment,
        baseline_wcet,
        final_wcet: current,
        steps,
    })
}

/// Hierarchy-aware allocation that can never lose to the seed allocator:
/// runs the greedy loop under `config` (normally a multi-level hierarchy
/// objective) *and* re-scores the region-timing greedy assignment under
/// the same objective, returning whichever assignment yields the lower
/// bound. Greedy search under a different objective is not monotone in
/// general; the portfolio step turns "usually better" into "never worse".
///
/// `region_assignment` is the region-timing greedy result when the caller
/// already has it (the pipeline memoises it per capacity — the greedy loop
/// is O(n²) link+analyze steps, so recomputing it here would dominate);
/// pass `None` to let this function derive it.
///
/// # Errors
///
/// Fails when the baseline program cannot be linked or analysed.
pub fn allocate_hierarchy_aware(
    module: &ObjModule,
    capacity: u32,
    extra_annotations: &AnnotationSet,
    config: &WcetConfig,
    region_assignment: Option<&SpmAssignment>,
) -> Result<WcetAllocation, WcetAllocError> {
    let aware = allocate_with(module, capacity, extra_annotations, config)?;
    let region = match region_assignment {
        Some(a) => a.clone(),
        None => allocate(module, capacity, extra_annotations)?.assignment,
    };
    if region == aware.assignment {
        return Ok(aware);
    }
    let map = MemoryMap::with_spm(capacity);
    let region_under_config = wcet_of(module, &map, &region, extra_annotations, config)?;
    if region_under_config < aware.final_wcet {
        Ok(WcetAllocation {
            assignment: region,
            baseline_wcet: aware.baseline_wcet,
            final_wcet: region_under_config,
            steps: Vec::new(), // Not produced by the greedy path under `config`.
        })
    } else {
        Ok(aware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::compile;

    const SRC: &str = "
        int buf[16]; int out;
        int work() {
            int i; int acc;
            acc = 0;
            for (i = 0; i < 16; i = i + 1) { __loopbound(16); acc = acc + buf[i]; }
            return acc;
        }
        void main() { out = work(); }";

    #[test]
    fn wcet_aware_allocation_reduces_bound() {
        let module = compile(SRC).unwrap();
        let res = allocate(&module, 512, &AnnotationSet::new()).unwrap();
        assert!(
            res.final_wcet < res.baseline_wcet,
            "final {} < baseline {}",
            res.final_wcet,
            res.baseline_wcet
        );
        assert!(!res.steps.is_empty());
        // The hot loop's data and code should be selected.
        assert!(res.assignment.contains("work") || res.assignment.contains("buf"));
        // Bounds along the greedy path are monotonically decreasing.
        let mut prev = u64::MAX;
        for (_, w) in &res.steps {
            assert!(*w < prev);
            prev = *w;
        }
    }

    #[test]
    fn zero_capacity_changes_nothing() {
        let module = compile(SRC).unwrap();
        let res = allocate(&module, 0, &AnnotationSet::new()).unwrap();
        assert!(res.assignment.is_empty());
        assert_eq!(res.final_wcet, res.baseline_wcet);
    }

    #[test]
    fn hierarchy_aware_allocation_never_loses_to_region_greedy() {
        use spmlab_isa::cachecfg::CacheConfig;
        use spmlab_isa::hierarchy::MemHierarchyConfig;
        let module = compile(SRC).unwrap();
        let annot = AnnotationSet::new();
        for hierarchy in [
            MemHierarchyConfig::l1_only(CacheConfig::instr_only(64)),
            MemHierarchyConfig::split_l1(64, 64).with_l2(CacheConfig::l2(256)),
        ] {
            let cfg = WcetConfig::with_hierarchy(hierarchy);
            for capacity in [64u32, 128, 512] {
                let aware =
                    allocate_hierarchy_aware(&module, capacity, &annot, &cfg, None).unwrap();
                let region = allocate(&module, capacity, &annot).unwrap();
                let region_scored = wcet_of(
                    &module,
                    &MemoryMap::with_spm(capacity),
                    &region.assignment,
                    &annot,
                    &cfg,
                )
                .unwrap();
                assert!(
                    aware.final_wcet <= region_scored,
                    "capacity {capacity}: hierarchy-aware {} must not exceed \
                     region-greedy-under-hierarchy {region_scored}",
                    aware.final_wcet
                );
                // The reported bound matches a fresh scoring of the chosen
                // assignment (no stale objective mixing).
                let rescore = wcet_of(
                    &module,
                    &MemoryMap::with_spm(capacity),
                    &aware.assignment,
                    &annot,
                    &cfg,
                )
                .unwrap();
                assert_eq!(aware.final_wcet, rescore);
            }
        }
    }
}
