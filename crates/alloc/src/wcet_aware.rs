//! WCET-aware allocation — the paper's closing future-work item:
//! "the allocation technique will be extended … to consider placing those
//! objects onto the faster memory that lie on the critical path", so the
//! objective is the WCET bound itself rather than profiled energy.
//!
//! The allocator is a greedy best-improvement-per-byte loop: each round it
//! relinks the program with each remaining candidate added, runs the static
//! WCET analysis, and commits the object with the best WCET reduction per
//! scratchpad byte. This needs no profile at all — everything comes from
//! the analyzer, keeping the method fully static like the paper's vision.

use spmlab_cc::{link, CcError, ObjModule, SpmAssignment};
use spmlab_isa::annot::AnnotationSet;
use spmlab_isa::mem::MemoryMap;
use spmlab_wcet::{analyze, WcetConfig, WcetError};

/// Outcome of the WCET-driven allocation.
#[derive(Debug, Clone)]
pub struct WcetAllocation {
    /// Chosen assignment.
    pub assignment: SpmAssignment,
    /// WCET bound with nothing in the scratchpad.
    pub baseline_wcet: u64,
    /// WCET bound with the final assignment.
    pub final_wcet: u64,
    /// Objects committed, in selection order, with the bound after each.
    pub steps: Vec<(String, u64)>,
}

/// Errors from the WCET-aware allocator.
#[derive(Debug)]
pub enum WcetAllocError {
    /// Linking a candidate assignment failed.
    Link(CcError),
    /// The WCET analysis failed.
    Wcet(WcetError),
}

impl std::fmt::Display for WcetAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WcetAllocError::Link(e) => write!(f, "link: {e}"),
            WcetAllocError::Wcet(e) => write!(f, "wcet: {e}"),
        }
    }
}

impl std::error::Error for WcetAllocError {}

fn wcet_of(
    module: &ObjModule,
    map: &MemoryMap,
    assignment: &SpmAssignment,
    extra_annotations: &AnnotationSet,
) -> Result<u64, WcetAllocError> {
    let linked = link(module, map, assignment).map_err(WcetAllocError::Link)?;
    let mut ann = linked.annotations.clone();
    ann.merge_from(extra_annotations);
    let res =
        analyze(&linked.exe, &WcetConfig::region_timing(), &ann).map_err(WcetAllocError::Wcet)?;
    Ok(res.wcet_cycles)
}

/// Greedily allocates objects to minimise the *WCET bound*.
///
/// `extra_annotations` carries user loop bounds that the linker-generated
/// set does not already contain.
///
/// # Errors
///
/// Fails when the baseline program cannot be linked or analysed (a
/// candidate that overflows the scratchpad is simply skipped).
pub fn allocate(
    module: &ObjModule,
    capacity: u32,
    extra_annotations: &AnnotationSet,
) -> Result<WcetAllocation, WcetAllocError> {
    let map = MemoryMap::with_spm(capacity);
    let baseline_map = MemoryMap::no_spm();
    let baseline_wcet = wcet_of(
        module,
        &baseline_map,
        &SpmAssignment::none(),
        extra_annotations,
    )?;

    let mut assignment = SpmAssignment::none();
    let mut current = wcet_of(module, &map, &assignment, extra_annotations)?;
    let mut remaining: Vec<(String, u32)> = module.memory_objects();
    let mut used = 0u32;
    let mut steps = Vec::new();

    loop {
        let mut best: Option<(usize, u64, f64)> = None;
        for (i, (name, size)) in remaining.iter().enumerate() {
            let aligned = (size.max(&1) + 3) & !3;
            if used + aligned > capacity {
                continue;
            }
            let mut trial = assignment.clone();
            trial.insert(name.clone());
            let w = match wcet_of(module, &map, &trial, extra_annotations) {
                Ok(w) => w,
                Err(WcetAllocError::Link(_)) => continue, // Doesn't fit with padding.
                Err(e) => return Err(e),
            };
            if w < current {
                let gain_per_byte = (current - w) as f64 / aligned as f64;
                if best.is_none_or(|(_, _, g)| gain_per_byte > g) {
                    best = Some((i, w, gain_per_byte));
                }
            }
        }
        let Some((i, w, _)) = best else { break };
        let (name, size) = remaining.remove(i);
        used += (size.max(1) + 3) & !3;
        assignment.insert(name.clone());
        current = w;
        steps.push((name, w));
    }

    Ok(WcetAllocation {
        assignment,
        baseline_wcet,
        final_wcet: current,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::compile;

    const SRC: &str = "
        int buf[16]; int out;
        int work() {
            int i; int acc;
            acc = 0;
            for (i = 0; i < 16; i = i + 1) { __loopbound(16); acc = acc + buf[i]; }
            return acc;
        }
        void main() { out = work(); }";

    #[test]
    fn wcet_aware_allocation_reduces_bound() {
        let module = compile(SRC).unwrap();
        let res = allocate(&module, 512, &AnnotationSet::new()).unwrap();
        assert!(
            res.final_wcet < res.baseline_wcet,
            "final {} < baseline {}",
            res.final_wcet,
            res.baseline_wcet
        );
        assert!(!res.steps.is_empty());
        // The hot loop's data and code should be selected.
        assert!(res.assignment.contains("work") || res.assignment.contains("buf"));
        // Bounds along the greedy path are monotonically decreasing.
        let mut prev = u64::MAX;
        for (_, w) in &res.steps {
            assert!(*w < prev);
            prev = *w;
        }
    }

    #[test]
    fn zero_capacity_changes_nothing() {
        let module = compile(SRC).unwrap();
        let res = allocate(&module, 0, &AnnotationSet::new()).unwrap();
        assert!(res.assignment.is_empty());
        assert_eq!(res.final_wcet, res.baseline_wcet);
    }
}
