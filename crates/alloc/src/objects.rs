//! Memory objects: the allocation candidates.

use crate::energy::EnergyModel;
use spmlab_cc::ObjModule;
use spmlab_isa::mem::AccessWidth;
use spmlab_sim::Profile;

/// One allocation candidate with its profiled access counts and computed
/// energy benefit.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryObject {
    /// Name (function or global).
    pub name: String,
    /// Size in bytes (functions include their literal pool).
    pub size: u32,
    /// Whether this is a function.
    pub is_func: bool,
    /// Profiled 16-bit instruction fetches (functions only).
    pub fetches: u64,
    /// Profiled data accesses by width (reads + writes).
    pub accesses: [u64; 3],
    /// Energy saved by placing the object in the scratchpad (nJ).
    pub benefit_nj: f64,
}

/// Builds the candidate list from a compiled module and a baseline profile
/// (gathered on the no-scratchpad executable, as in the paper's workflow).
///
/// `spm_size` fixes the scratchpad energy used in the benefit function —
/// the paper solves one knapsack per capacity.
pub fn memory_objects(
    module: &ObjModule,
    profile: &Profile,
    spm_size: u32,
    energy: &EnergyModel,
) -> Vec<MemoryObject> {
    let widths = [AccessWidth::Byte, AccessWidth::Half, AccessWidth::Word];
    let mut out = Vec::new();
    for (name, size) in module.memory_objects() {
        let is_func = module.func(&name).is_some();
        let (fetches, accesses) = match profile.symbol(&name) {
            Some(p) => {
                let mut acc = [0u64; 3];
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = p.reads[i] + p.writes[i];
                }
                (p.fetches, acc)
            }
            None => (0, [0; 3]),
        };
        let mut benefit = fetches as f64 * energy.saving_nj(AccessWidth::Half, spm_size);
        for (i, w) in widths.iter().enumerate() {
            benefit += accesses[i] as f64 * energy.saving_nj(*w, spm_size);
        }
        out.push(MemoryObject {
            name,
            size,
            is_func,
            fetches,
            accesses,
            benefit_nj: benefit,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::mem::MemoryMap;
    use spmlab_sim::{simulate, MachineConfig, SimOptions};

    #[test]
    fn hot_objects_have_higher_benefit() {
        let src = "
            int hot[8]; int cold[8]; int s;
            void main() {
                int i; int j;
                for (i = 0; i < 20; i = i + 1) { __loopbound(20);
                    for (j = 0; j < 8; j = j + 1) { __loopbound(8); s = s + hot[j]; }
                }
                cold[0] = s;
            }";
        let module = compile(src).unwrap();
        let l = link(&module, &MemoryMap::no_spm(), &SpmAssignment::none()).unwrap();
        let r = simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();
        let objs = memory_objects(&module, &r.profile, 1024, &EnergyModel::default());
        let find = |n: &str| objs.iter().find(|o| o.name == n).unwrap();
        assert!(find("hot").benefit_nj > find("cold").benefit_nj * 10.0);
        assert!(find("main").is_func);
        assert!(find("main").fetches > 0);
        assert_eq!(find("hot").size, 32);
    }
}
