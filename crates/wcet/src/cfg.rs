//! Control-flow graph reconstruction from machine code.
//!
//! Blocks are discovered by following control flow from the function entry
//! (never by linear sweep), so literal pools — data words living between
//! the last instruction and the end of the function — are never
//! misinterpreted as code, exactly the discipline a binary-level WCET tool
//! needs.

use crate::WcetError;
use spmlab_isa::decode::decode;
use spmlab_isa::image::{Executable, Symbol, SymbolKind};
use spmlab_isa::insn::Insn;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// Instructions with their addresses.
    pub insns: Vec<(u32, Insn)>,
    /// Successor block start addresses (0, 1 or 2 entries).
    pub succs: Vec<u32>,
    /// Callee entry addresses for each `BL` in the block, in order.
    pub calls: Vec<u32>,
    /// Whether the block ends the function (return / halt).
    pub is_exit: bool,
}

impl BasicBlock {
    /// Address just past the last instruction.
    pub fn end(&self) -> u32 {
        self.insns
            .last()
            .map(|(a, i)| a + i.size())
            .unwrap_or(self.start)
    }
}

/// A function's control-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncCfg {
    /// Function name (from the symbol table).
    pub name: String,
    /// Entry block address (== the function's symbol address).
    pub entry: u32,
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u32, BasicBlock>,
}

impl FuncCfg {
    /// Predecessor map (block start → predecessors' starts).
    pub fn predecessors(&self) -> BTreeMap<u32, Vec<u32>> {
        let mut preds: BTreeMap<u32, Vec<u32>> = self.blocks.keys().map(|&k| (k, vec![])).collect();
        for (&s, b) in &self.blocks {
            for &t in &b.succs {
                preds.entry(t).or_default().push(s);
            }
        }
        preds
    }

    /// All exit blocks.
    pub fn exits(&self) -> Vec<u32> {
        self.blocks
            .values()
            .filter(|b| b.is_exit)
            .map(|b| b.start)
            .collect()
    }

    /// Total decoded instructions.
    pub fn insn_count(&self) -> usize {
        self.blocks.values().map(|b| b.insns.len()).sum()
    }
}

/// Reconstructs the CFG of the function at `sym`.
///
/// # Errors
///
/// Fails on undecodable instructions, branches escaping the function, or
/// paths that run off the function end.
pub fn build_cfg(exe: &Executable, sym: &Symbol) -> Result<FuncCfg, WcetError> {
    let code_size = match sym.kind {
        SymbolKind::Func { code_size } => code_size,
        SymbolKind::Object { .. } => {
            return Err(WcetError::InvalidCode {
                func: sym.name.clone(),
                addr: sym.addr,
                reason: "symbol is a data object".into(),
            })
        }
    };
    let lo = sym.addr;
    let hi = sym.addr + code_size;
    let err = |addr: u32, reason: &str| WcetError::InvalidCode {
        func: sym.name.clone(),
        addr,
        reason: reason.to_string(),
    };

    // Pass 1: discover reachable instructions and leaders.
    let mut insn_at: BTreeMap<u32, Insn> = BTreeMap::new();
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(lo);
    let mut work: VecDeque<u32> = VecDeque::from([lo]);
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    while let Some(mut pc) = work.pop_front() {
        if !seen.insert(pc) {
            continue;
        }
        loop {
            if pc < lo || pc + 2 > hi {
                return Err(err(pc, "control flow runs outside the function body"));
            }
            let hw = exe
                .read_half(pc)
                .ok_or_else(|| err(pc, "unreadable code byte"))?;
            let next_hw = if pc + 4 <= hi {
                exe.read_half(pc + 2)
            } else {
                None
            };
            let (insn, size) = decode(hw, next_hw);
            if matches!(insn, Insn::Undefined { .. }) {
                return Err(err(pc, "undefined instruction"));
            }
            let next = pc + size;
            insn_at.insert(pc, insn);
            match &insn {
                Insn::B { off } => {
                    let t = pc.wrapping_add(4).wrapping_add(*off as u32);
                    if t < lo || t >= hi {
                        return Err(WcetError::EscapingBranch {
                            func: sym.name.clone(),
                            from: pc,
                            to: t,
                        });
                    }
                    leaders.insert(t);
                    if !seen.contains(&t) {
                        work.push_back(t);
                    }
                    break;
                }
                Insn::BCond { off, .. } => {
                    let t = pc.wrapping_add(4).wrapping_add(*off as u32);
                    if t < lo || t >= hi {
                        return Err(WcetError::EscapingBranch {
                            func: sym.name.clone(),
                            from: pc,
                            to: t,
                        });
                    }
                    leaders.insert(t);
                    leaders.insert(next);
                    if !seen.contains(&t) {
                        work.push_back(t);
                    }
                    if !seen.contains(&next) {
                        work.push_back(next);
                    }
                    break;
                }
                Insn::Ret | Insn::Pop { pc: true, .. } => break,
                Insn::Swi { imm: 0 } => break,
                Insn::Bl { .. } => {
                    // A call: control returns to the next instruction.
                    pc = next;
                    continue;
                }
                _ => {
                    pc = next;
                    continue;
                }
            }
        }
    }

    // Every instruction following a terminator that is also reachable by
    // fallthrough is already a leader via the branch handling above; we now
    // split the instruction stream at leaders.
    let mut blocks: BTreeMap<u32, BasicBlock> = BTreeMap::new();
    let addrs: Vec<u32> = insn_at.keys().copied().collect();
    let mut current: Option<BasicBlock> = None;
    for &addr in &addrs {
        let insn = insn_at[&addr];
        let size = insn.size();
        if leaders.contains(&addr) {
            if let Some(b) = current.take() {
                // Fallthrough into a leader: implicit edge unless the block
                // already terminated (handled below).
                blocks.insert(b.start, b);
            }
            current = Some(BasicBlock {
                start: addr,
                insns: vec![],
                succs: vec![],
                calls: vec![],
                is_exit: false,
            });
        }
        let cur = match current.as_mut() {
            Some(c) => c,
            // An instruction reachable only mid-stream without a leader
            // start: begin an implicit block (can happen when a branch
            // target bisects a previously-walked straight-line run).
            None => {
                current = Some(BasicBlock {
                    start: addr,
                    insns: vec![],
                    succs: vec![],
                    calls: vec![],
                    is_exit: false,
                });
                current.as_mut().expect("just set")
            }
        };
        if let Insn::Bl { off } = insn {
            cur.calls
                .push(addr.wrapping_add(4).wrapping_add(off as u32));
        }
        cur.insns.push((addr, insn));
        let terminates = insn.is_terminator();
        let next_is_leader = leaders.contains(&(addr + size));
        let next_exists = insn_at.contains_key(&(addr + size));
        if terminates || next_is_leader || !next_exists {
            // Close the block and compute successors.
            let mut b = current.take().expect("current set above");
            match &insn {
                Insn::B { off } => b.succs = vec![addr.wrapping_add(4).wrapping_add(*off as u32)],
                Insn::BCond { off, .. } => {
                    let t = addr.wrapping_add(4).wrapping_add(*off as u32);
                    // A conditional branch targeting its own fallthrough
                    // (e.g. from short-circuit lowering of `(x || 1) && y`)
                    // has one real successor; a duplicated edge would
                    // double-count flow in the IPET model.
                    b.succs = if t == addr + size {
                        vec![t]
                    } else {
                        vec![t, addr + size]
                    };
                }
                Insn::Ret | Insn::Pop { pc: true, .. } | Insn::Swi { imm: 0 } => {
                    b.is_exit = true;
                }
                _ => {
                    if next_exists {
                        b.succs = vec![addr + size];
                    } else {
                        return Err(err(addr, "fallthrough off the end of the function"));
                    }
                }
            }
            blocks.insert(b.start, b);
        }
    }
    if let Some(b) = current.take() {
        blocks.insert(b.start, b);
    }

    // Sanity: every successor must be a block start.
    for b in blocks.values() {
        for s in &b.succs {
            if !blocks.contains_key(s) {
                return Err(err(*s, "successor is not a block leader"));
            }
        }
    }

    Ok(FuncCfg {
        name: sym.name.clone(),
        entry: lo,
        blocks,
    })
}

/// Builds CFGs for every function in the executable.
///
/// # Errors
///
/// Propagates the first reconstruction failure.
pub fn build_all(exe: &Executable) -> Result<BTreeMap<u32, FuncCfg>, WcetError> {
    let mut out = BTreeMap::new();
    for sym in exe.functions() {
        out.insert(sym.addr, build_cfg(exe, sym)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::mem::MemoryMap;

    fn cfg_of(src: &str, func: &str) -> FuncCfg {
        let l = link(
            &compile(src).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        build_cfg(&l.exe, l.exe.symbol(func).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_single_block() {
        let c = cfg_of("int x; void main() { x = 1; x = 2; }", "main");
        // Prologue + body + epilogue with the single-exit return jump:
        // main has a `b .Lret` → two blocks.
        assert!(c.blocks.len() <= 3);
        assert_eq!(c.exits().len(), 1);
        let exit = &c.blocks[&c.exits()[0]];
        assert!(matches!(
            exit.insns.last().unwrap().1,
            Insn::Pop { pc: true, .. }
        ));
    }

    #[test]
    fn if_else_diamond() {
        let c = cfg_of(
            "int x; void main() { if (x > 0) { x = 1; } else { x = 2; } x = 3; }",
            "main",
        );
        // At least: entry+cmp, then, else, join, exit.
        assert!(c.blocks.len() >= 4, "blocks: {}", c.blocks.len());
        // Exactly one block has two successors.
        let twos = c.blocks.values().filter(|b| b.succs.len() == 2).count();
        assert_eq!(twos, 1);
    }

    #[test]
    fn loop_has_back_edge() {
        let c = cfg_of(
            "int x; void main() { int i; for (i = 0; i < 5; i = i + 1) { __loopbound(5); x = x + 1; } }",
            "main",
        );
        let preds = c.predecessors();
        // Some block is reached from a later block (back edge).
        let back = c.blocks.keys().any(|&h| preds[&h].iter().any(|&p| p > h));
        assert!(back, "expected a back edge");
    }

    #[test]
    fn calls_recorded_not_terminating() {
        let c = cfg_of(
            "int g(int a) { return a + 1; } int x; void main() { x = g(1) + g(2); }",
            "main",
        );
        let calls: usize = c.blocks.values().map(|b| b.calls.len()).sum();
        assert_eq!(calls, 2);
    }

    #[test]
    fn literal_pools_not_decoded() {
        // 0x12345 needs a literal pool; CFG must stop at the return.
        let c = cfg_of("int x; void main() { x = 74565; }", "main");
        for b in c.blocks.values() {
            for (_, i) in &b.insns {
                assert!(!matches!(i, Insn::Undefined { .. }));
            }
        }
    }

    #[test]
    fn all_functions() {
        let l = link(
            &compile("int f() { return 1; } int g() { return f(); } void main() { g(); }").unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let cfgs = build_all(&l.exe).unwrap();
        assert_eq!(cfgs.len(), 4, "_start, f, g, main");
    }

    #[test]
    fn succs_are_blocks() {
        let c = cfg_of(
            "int x; void main() { int i; i = 0; while (i < 3) { __loopbound(3); if (i == 1) { x = 9; } i = i + 1; } }",
            "main",
        );
        for b in c.blocks.values() {
            for s in &b.succs {
                assert!(c.blocks.contains_key(s));
            }
        }
    }
}
