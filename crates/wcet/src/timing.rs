//! Region-based block timing — the scratchpad branch of the paper.
//!
//! With no cache in the system, the worst-case cost of every instruction is
//! fully determined by the memory map and the paper's Table 1: this is why
//! the paper needs "no additional analysis module" for scratchpads. The
//! only approximations are (a) branch cost is charged as taken and (b)
//! accesses with address ranges pay the worst region in the range.

use crate::addrinfo::data_accesses;
use crate::cache::span_region;
use crate::cfg::BasicBlock;
use spmlab_isa::annot::{AddrInfo, AnnotationSet};
use spmlab_isa::insn::Insn;
use spmlab_isa::mem::{access_cycles, AccessWidth, MemoryMap, RegionKind};
use std::collections::BTreeMap;

/// Worst-case cycles for one block under pure region timing, including the
/// WCET of every callee.
pub fn block_cost(
    block: &BasicBlock,
    map: &MemoryMap,
    annot: &AnnotationSet,
    callee_wcet: &BTreeMap<u32, u64>,
) -> u64 {
    let mut cost = 0u64;
    let mut calls = block.calls.iter();
    for (addr, insn) in &block.insns {
        cost += 1 + insn.worst_extra_cycles();
        // Instruction fetches: one 16-bit access per halfword.
        for off in (0..insn.size()).step_by(2) {
            cost += map.access_cycles(addr + off, AccessWidth::Half);
        }
        for acc in data_accesses(insn, *addr, annot) {
            let region = match acc.info {
                AddrInfo::Exact(a) => map.region_of(a),
                AddrInfo::Range { lo, hi } => span_region(map, lo, hi),
                AddrInfo::Stack | AddrInfo::Unknown => RegionKind::Main,
            };
            cost += access_cycles(region, acc.width);
        }
        if matches!(insn, Insn::Bl { .. }) {
            let callee = calls.next().expect("calls list matches BL count");
            cost += callee_wcet.get(callee).copied().unwrap_or(0);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_isa::insn::Insn;
    use spmlab_isa::reg::{R0, R1};

    fn block(start: u32, insns: Vec<(u32, Insn)>) -> BasicBlock {
        BasicBlock {
            start,
            insns,
            succs: vec![],
            calls: vec![],
            is_exit: false,
        }
    }

    #[test]
    fn main_memory_fetch_costs() {
        let map = MemoryMap::no_spm();
        let annot = AnnotationSet::new();
        let b = block(0x0010_0000, vec![(0x0010_0000, Insn::Nop)]);
        // 1 base + 2 fetch.
        assert_eq!(block_cost(&b, &map, &annot, &BTreeMap::new()), 3);
    }

    #[test]
    fn scratchpad_fetch_is_cheaper() {
        let map = MemoryMap::with_spm(1024);
        let annot = AnnotationSet::new();
        let b = block(0x10, vec![(0x10, Insn::Nop)]);
        // 1 base + 1 fetch.
        assert_eq!(block_cost(&b, &map, &annot, &BTreeMap::new()), 2);
    }

    #[test]
    fn word_load_with_exact_annotation() {
        let map = MemoryMap::with_spm(1024);
        let mut annot = AnnotationSet::new();
        // Load at 0x0010_0000 targets a scratchpad word.
        annot.set_access(0x0010_0000, AccessWidth::Word, AddrInfo::Exact(0x40));
        let b = block(
            0x0010_0000,
            vec![(
                0x0010_0000,
                Insn::LdrImm {
                    width: AccessWidth::Word,
                    rd: R0,
                    rn: R1,
                    off: 0,
                },
            )],
        );
        // 1 base + 2 fetch + 1 spm data.
        assert_eq!(block_cost(&b, &map, &annot, &BTreeMap::new()), 4);
    }

    #[test]
    fn unknown_load_pays_main_word_cost() {
        let map = MemoryMap::with_spm(1024);
        let annot = AnnotationSet::new();
        let b = block(
            0x0010_0000,
            vec![(
                0x0010_0000,
                Insn::LdrImm {
                    width: AccessWidth::Word,
                    rd: R0,
                    rn: R1,
                    off: 0,
                },
            )],
        );
        // 1 base + 2 fetch + 4 main word.
        assert_eq!(block_cost(&b, &map, &annot, &BTreeMap::new()), 7);
    }

    #[test]
    fn callee_wcet_added() {
        let map = MemoryMap::no_spm();
        let annot = AnnotationSet::new();
        let mut callees = BTreeMap::new();
        callees.insert(0x0010_0040u32, 1000u64);
        let mut b = block(0x0010_0000, vec![(0x0010_0000, Insn::Bl { off: 0x3C })]);
        b.calls = vec![0x0010_0040];
        // 1 base + 2 taken + 2×2 fetches + 1000 callee.
        assert_eq!(block_cost(&b, &map, &annot, &callees), 1 + 2 + 4 + 1000);
    }

    #[test]
    fn branch_charged_as_taken() {
        let map = MemoryMap::no_spm();
        let annot = AnnotationSet::new();
        let b = block(
            0x0010_0000,
            vec![(
                0x0010_0000,
                Insn::BCond {
                    cond: spmlab_isa::cond::Cond::Eq,
                    off: 8,
                },
            )],
        );
        // 1 base + 2 taken-penalty + 2 fetch.
        assert_eq!(block_cost(&b, &map, &annot, &BTreeMap::new()), 5);
    }
}
