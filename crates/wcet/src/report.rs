//! Analysis results.

use crate::cache::ClassifyStats;

/// Per-function analysis outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncWcet {
    /// Function name.
    pub name: String,
    /// Entry address.
    pub addr: u32,
    /// WCET bound in cycles (callees included).
    pub wcet_cycles: u64,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Number of instructions.
    pub insns: usize,
    /// Number of natural loops.
    pub loops: usize,
    /// Cache classification statistics (zero for region timing).
    pub classify: ClassifyStats,
}

/// Whole-program analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetResult {
    /// The program's WCET bound in cycles, from the entry function.
    pub wcet_cycles: u64,
    /// Per-function breakdown, callees first.
    pub per_function: Vec<FuncWcet>,
    /// Worst-case stack depth in bytes (whole program).
    pub stack_bytes: u32,
    /// Per-address always-hit proofs (cache configurations; empty for
    /// region timing). Soundness tests check these against simulator
    /// traces.
    pub classification: crate::cache::Classification,
    /// `true` when any abstract-interpretation fixpoint exhausted its
    /// iteration budget and fell back (was *widened*) to the conservative
    /// top state. The bound is still sound but maximally imprecise for
    /// the affected function — previously this happened silently.
    pub widened: bool,
}

impl WcetResult {
    /// Looks up one function's result.
    pub fn function(&self, name: &str) -> Option<&FuncWcet> {
        self.per_function.iter().find(|f| f.name == name)
    }

    /// Aggregated classification statistics.
    pub fn total_classify(&self) -> ClassifyStats {
        let mut t = ClassifyStats::default();
        for f in &self.per_function {
            t.absorb(f.classify);
        }
        t
    }
}

impl std::fmt::Display for WcetResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "WCET bound: {} cycles (stack {} bytes)",
            self.wcet_cycles, self.stack_bytes
        )?;
        if self.widened {
            writeln!(
                f,
                "WARNING: a fixpoint exhausted its iteration budget; states were widened to top (sound but maximally imprecise)"
            )?;
        }
        writeln!(
            f,
            "{:<16} {:>12} {:>7} {:>6} {:>6}",
            "function", "wcet", "blocks", "insns", "loops"
        )?;
        for func in &self.per_function {
            writeln!(
                f,
                "{:<16} {:>12} {:>7} {:>6} {:>6}",
                func.name, func.wcet_cycles, func.blocks, func.insns, func.loops
            )?;
        }
        Ok(())
    }
}
