//! Whole-program analysis orchestration.

use crate::cache::{self, CacheCtx, ClassifyStats, Persistence};
use crate::cfg::{build_all, FuncCfg};
use crate::fixpoint::FixpointBudget;
use crate::ipet;
use crate::loops::natural_loops;
use crate::multilevel::{self, MultiCtx, MultiState};
use crate::report::{FuncWcet, WcetResult};
use crate::stack::total_depths;
use crate::{bounds, timing, WcetError};
use spmlab_isa::annot::AnnotationSet;
use spmlab_isa::cachecfg::CacheConfig;
use spmlab_isa::hierarchy::{MainMemoryTiming, MemHierarchyConfig};
use spmlab_isa::image::Executable;
use std::collections::BTreeMap;

/// Resource budget for one [`analyze`] call, expressed in wall-clock
/// milliseconds and fixpoint iterations so the config stays `Eq`-able and
/// serializable (the absolute [`std::time::Instant`] deadline is derived
/// at `analyze` entry).
///
/// Exhausting either limit is *sound*: the affected fixpoints widen to the
/// conservative `top` state, the bound can only go up, and the result is
/// tagged `widened` — the caller surfaces it as a `Degraded` outcome
/// instead of a silent lie or an unbounded hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisBudget {
    /// Cap on worklist iterations per fixpoint solve (`None` = only the
    /// structural defensive cap applies).
    pub max_fixpoint_iters: Option<u64>,
    /// Wall-clock budget for the whole analysis, in milliseconds, measured
    /// from [`analyze`] entry (`None` = no deadline).
    pub deadline_ms: Option<u64>,
}

impl AnalysisBudget {
    /// No caller-imposed limits — the default for every stock config.
    pub const fn unlimited() -> AnalysisBudget {
        AnalysisBudget {
            max_fixpoint_iters: None,
            deadline_ms: None,
        }
    }

    /// Whether any limit is set.
    pub fn is_limited(&self) -> bool {
        self.max_fixpoint_iters.is_some() || self.deadline_ms.is_some()
    }

    /// The per-solve [`FixpointBudget`], anchoring `deadline_ms` at `now`.
    fn fixpoint_budget(&self) -> FixpointBudget {
        FixpointBudget {
            max_iterations: self.max_fixpoint_iters,
            deadline: self
                .deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms)),
        }
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetConfig {
    /// Single-level cache model; `None` = pure Table-1 region timing (the
    /// scratchpad branch of the paper). Ignored when `hierarchy` is set.
    pub cache: Option<CacheConfig>,
    /// Multi-level hierarchy model (L1 I/D, unified L2, parametric main
    /// memory); takes precedence over `cache`. Analyzed by
    /// [`crate::multilevel`] with Hardy–Puaut cache-access classification.
    pub hierarchy: Option<MemHierarchyConfig>,
    /// Enable the persistence (first-miss) extension — *off* matches the
    /// paper's "only a MUST analysis, no persistence" ARM7 configuration.
    /// Single-level `cache` analyses only; the hierarchy path is MUST-only.
    pub persistence: bool,
    /// Enable the automatic counted-loop bound detector.
    pub auto_loop_bounds: bool,
    /// Run the L2 MUST analysis (hierarchy path only). When false every
    /// access that is not Always-Hit at L1 is charged the full L2-miss
    /// penalty — the baseline the monotonicity sanity checks compare
    /// against.
    pub l2_must_analysis: bool,
    /// Run the cold-start MAY analysis (hierarchy path only): accesses
    /// absent from their L1 MAY state are classified Always-Miss, the
    /// Hardy–Puaut `A` filter that lets the L2 MUST analysis classify hits
    /// behind an L1. When false every non-AH access is Not-Classified.
    pub may_analysis: bool,
    /// Thread abstract states across the call graph (hierarchy path
    /// only): functions are analyzed in call-graph reverse-postorder and
    /// each function's fixpoint starts from the join of its callers'
    /// states at the call sites instead of the conservative TOP. The
    /// program entry starts from the cold-boot state; functions with no
    /// recorded caller (and everything when this is false) fall back to
    /// TOP.
    pub interprocedural: bool,
    /// Resource budget; exhausting it degrades precision (widening to the
    /// conservative state, `widened = true`), never soundness.
    pub budget: AnalysisBudget,
}

impl WcetConfig {
    /// Region timing only (scratchpad / no-cache systems).
    pub fn region_timing() -> WcetConfig {
        WcetConfig {
            cache: None,
            hierarchy: None,
            persistence: false,
            auto_loop_bounds: true,
            l2_must_analysis: true,
            may_analysis: true,
            interprocedural: true,
            budget: AnalysisBudget::unlimited(),
        }
    }

    /// Region timing over custom (e.g. DRAM) main-memory parameters.
    pub fn region_timing_with(main: MainMemoryTiming) -> WcetConfig {
        WcetConfig {
            hierarchy: Some(MemHierarchyConfig::uncached_with(main)),
            ..WcetConfig::region_timing()
        }
    }

    /// Cache analysis with the paper's MUST-only setup.
    pub fn with_cache(cache: CacheConfig) -> WcetConfig {
        WcetConfig {
            cache: Some(cache),
            ..WcetConfig::region_timing()
        }
    }

    /// Cache analysis plus persistence (the paper's "full cache analysis
    /// would probably improve results" future-work configuration).
    pub fn with_cache_persistence(cache: CacheConfig) -> WcetConfig {
        WcetConfig {
            cache: Some(cache),
            persistence: true,
            ..WcetConfig::region_timing()
        }
    }

    /// Multi-level hierarchy analysis (L1 MUST + CAC-filtered L2 MUST).
    pub fn with_hierarchy(hierarchy: MemHierarchyConfig) -> WcetConfig {
        WcetConfig {
            hierarchy: Some(hierarchy),
            ..WcetConfig::region_timing()
        }
    }

    /// Hierarchy analysis with the L2 MUST pass disabled: every non-AH
    /// access pays the full L2-miss penalty. Upper-bounds
    /// [`WcetConfig::with_hierarchy`] by construction.
    pub fn with_hierarchy_l1_only(hierarchy: MemHierarchyConfig) -> WcetConfig {
        WcetConfig {
            l2_must_analysis: false,
            ..WcetConfig::with_hierarchy(hierarchy)
        }
    }

    /// The pre-MAY baseline: per-function TOP entry states and no MAY
    /// analysis — exactly the analysis this toolchain ran before the
    /// interprocedural Hardy–Puaut upgrade. Upper-bounds
    /// [`WcetConfig::with_hierarchy`] at every program point (the
    /// `multilevel-precision` experiment quantifies by how much).
    pub fn with_hierarchy_baseline(hierarchy: MemHierarchyConfig) -> WcetConfig {
        WcetConfig {
            may_analysis: false,
            interprocedural: false,
            ..WcetConfig::with_hierarchy(hierarchy)
        }
    }
}

/// Topological order of the call graph, callees first.
///
/// # Errors
///
/// [`WcetError::Recursion`] on cycles, [`WcetError::MissingFunction`] when
/// a call targets a non-function address.
pub fn topo_order(cfgs: &BTreeMap<u32, FuncCfg>) -> Result<Vec<u32>, WcetError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<u32, Mark> = cfgs.keys().map(|&a| (a, Mark::White)).collect();
    let mut order = Vec::with_capacity(cfgs.len());

    fn visit(
        f: u32,
        cfgs: &BTreeMap<u32, FuncCfg>,
        marks: &mut BTreeMap<u32, Mark>,
        order: &mut Vec<u32>,
        trail: &mut Vec<String>,
    ) -> Result<(), WcetError> {
        match marks[&f] {
            Mark::Black => return Ok(()),
            Mark::Grey => {
                trail.push(cfgs[&f].name.clone());
                return Err(WcetError::Recursion {
                    cycle: trail.clone(),
                });
            }
            Mark::White => {}
        }
        marks.insert(f, Mark::Grey);
        trail.push(cfgs[&f].name.clone());
        for block in cfgs[&f].blocks.values() {
            for &callee in &block.calls {
                if !cfgs.contains_key(&callee) {
                    return Err(WcetError::MissingFunction(format!(
                        "call target {callee:#x} from `{}`",
                        cfgs[&f].name
                    )));
                }
                visit(callee, cfgs, marks, order, trail)?;
            }
        }
        trail.pop();
        marks.insert(f, Mark::Black);
        order.push(f);
        Ok(())
    }

    let keys: Vec<u32> = cfgs.keys().copied().collect();
    for f in keys {
        let mut trail = Vec::new();
        visit(f, cfgs, &mut marks, &mut order, &mut trail)?;
    }
    Ok(order)
}

/// Runs the full analysis: CFG reconstruction, loop bounding, stack-depth
/// analysis, microarchitectural timing, per-function IPET, combined
/// bottom-up over the call graph.
///
/// # Errors
///
/// Any [`WcetError`]; the most common in practice is
/// [`WcetError::UnboundedLoop`] for a loop missing its annotation.
pub fn analyze(
    exe: &Executable,
    config: &WcetConfig,
    annotations: &AnnotationSet,
) -> Result<WcetResult, WcetError> {
    // The single-level analyzer predates the `DataOnly` scope and would
    // model fetches as cached where the simulator bypasses them; the
    // multilevel path routes traffic exactly like the simulator, so
    // data-only single caches are analyzed there.
    let mut config = config.clone();
    if config.hierarchy.is_none() {
        if let Some(c) = &config.cache {
            if c.scope == spmlab_isa::cachecfg::CacheScope::DataOnly {
                config.hierarchy = Some(MemHierarchyConfig::from_single_cache(Some(c.clone())));
            }
        }
    }
    let config = &config;
    // Anchor the wall-clock deadline once, here, so `deadline_ms` budgets
    // the whole analysis rather than each individual fixpoint solve.
    let fx_budget = config.budget.fixpoint_budget();
    let cfgs = build_all(exe)?;
    let order = topo_order(&cfgs)?;
    let depths = total_depths(&cfgs, &order)?;

    // Stack window for the entry function feeds the cache analysis.
    let entry_addr = exe.entry;
    let entry_depth = depths.get(&entry_addr).map(|d| d.total_bytes).unwrap_or(0);
    let stack_top = exe.memory_map.stack_top;
    let mut annot = annotations.clone();
    annot.set_stack_window(stack_top.saturating_sub(entry_depth), stack_top);

    let mut wcet_by_addr: BTreeMap<u32, u64> = BTreeMap::new();
    let mut per_function = Vec::with_capacity(order.len());
    let mut classification = cache::Classification::default();
    let mut widened = false;

    // Hierarchy path, pass 0 — interprocedural call summaries in
    // call-graph topological order (callees first): each function's
    // footprint / definite-access interference record and TOP-entry exit
    // MUST states, folding in the summaries of everything it calls.
    let summaries: BTreeMap<u32, multilevel::CallSummary> = match &config.hierarchy {
        Some(hierarchy) if config.interprocedural => {
            let _pass = spmlab_obs::span("wcet-pass-summaries");
            let mut summaries = BTreeMap::new();
            for &faddr in &order {
                let ctx = MultiCtx {
                    hierarchy,
                    map: &exe.memory_map,
                    annot: &annot,
                    l2_analysis: config.l2_must_analysis,
                    may_analysis: config.may_analysis,
                    summaries: Some(&summaries),
                    budget: fx_budget,
                };
                let _f = spmlab_obs::span_with("wcet-fn-summary", || cfgs[&faddr].name.clone());
                let s = multilevel::summarize_function(&cfgs[&faddr], &ctx);
                widened |= s.widened;
                summaries.insert(faddr, s);
            }
            summaries
        }
        _ => BTreeMap::new(),
    };

    // Hierarchy path, pass A — abstract-state fixpoints in call-graph
    // reverse-postorder (callers first): each function's entry state is
    // the join of its callers' states at the call sites, the program
    // entry starts cold (empty caches at boot), and functions with no
    // recorded caller fall back to the conservative TOP. The costing pass
    // below (callees first, because it needs callee WCET bounds) then
    // reuses the converged in-states.
    let hierarchy_states: BTreeMap<u32, BTreeMap<u32, MultiState>> =
        if let Some(hierarchy) = &config.hierarchy {
            let _pass = spmlab_obs::span("wcet-pass-fixpoints");
            let ctx = MultiCtx {
                hierarchy,
                map: &exe.memory_map,
                annot: &annot,
                l2_analysis: config.l2_must_analysis,
                may_analysis: config.may_analysis,
                summaries: config.interprocedural.then_some(&summaries),
                budget: fx_budget,
            };
            let mut entries: BTreeMap<u32, MultiState> = BTreeMap::new();
            let mut states = BTreeMap::new();
            for &faddr in order.iter().rev() {
                let cfg = &cfgs[&faddr];
                let entry = if !config.interprocedural {
                    MultiState::top(&ctx)
                } else if faddr == entry_addr {
                    // Cold boot: MUST empty *and* MAY empty — every first
                    // touch is a provable Always-Miss.
                    let mut e = MultiState::cold(&ctx);
                    if let Some(recorded) = entries.remove(&faddr) {
                        e.join_into(&recorded);
                    }
                    e
                } else {
                    entries
                        .remove(&faddr)
                        .unwrap_or_else(|| MultiState::top(&ctx))
                };
                let _f = spmlab_obs::span_with("wcet-fn-fixpoint", || cfg.name.clone());
                let fp = multilevel::must_fixpoint(cfg, &ctx, entry);
                widened |= fp.widened;
                let in_states = fp.in_states;
                if config.interprocedural {
                    multilevel::propagate_entry_states(cfg, &in_states, &ctx, &mut entries);
                }
                states.insert(faddr, in_states);
            }
            states
        } else {
            BTreeMap::new()
        };

    let costing_span = spmlab_obs::span("wcet-pass-costing");
    for &faddr in &order {
        let cfg = &cfgs[&faddr];
        let _f = spmlab_obs::span_with("wcet-fn-cost", || cfg.name.clone());
        let loops = natural_loops(cfg)?;
        let loop_bounds = bounds::loop_bounds(cfg, &loops, &annot, config.auto_loop_bounds)?;

        let mut classify = ClassifyStats::default();
        let (block_costs, entry_penalties) = if let Some(hierarchy) = &config.hierarchy {
            let ctx = MultiCtx {
                hierarchy,
                map: &exe.memory_map,
                annot: &annot,
                l2_analysis: config.l2_must_analysis,
                may_analysis: config.may_analysis,
                summaries: config.interprocedural.then_some(&summaries),
                budget: fx_budget,
            };
            let in_states = &hierarchy_states[&faddr];
            let top = MultiState::top(&ctx);
            let costs: BTreeMap<u32, u64> = cfg
                .blocks
                .iter()
                .map(|(&b, block)| {
                    let in_state = in_states.get(&b).unwrap_or(&top);
                    let c = multilevel::block_cost(
                        block,
                        in_state,
                        &ctx,
                        &wcet_by_addr,
                        &mut classify,
                        &mut classification,
                    );
                    (b, c)
                })
                .collect();
            (costs, BTreeMap::new())
        } else {
            match &config.cache {
                None => {
                    let costs: BTreeMap<u32, u64> = cfg
                        .blocks
                        .iter()
                        .map(|(&b, block)| {
                            (
                                b,
                                timing::block_cost(block, &exe.memory_map, &annot, &wcet_by_addr),
                            )
                        })
                        .collect();
                    (costs, BTreeMap::new())
                }
                Some(cache_cfg) => {
                    let ctx = CacheCtx {
                        cache: cache_cfg,
                        map: &exe.memory_map,
                        annot: &annot,
                        budget: fx_budget,
                    };
                    let persistence_info = if config.persistence {
                        cache::persistence(cfg, &loops, &ctx)
                    } else {
                        Persistence::disabled()
                    };
                    let fp = cache::must_fixpoint(cfg, &ctx);
                    widened |= fp.widened;
                    let in_states = fp.in_states;
                    let top = cache::AbstractCache::top(cache_cfg);
                    let costs: BTreeMap<u32, u64> = cfg
                        .blocks
                        .iter()
                        .map(|(&b, block)| {
                            let in_state = in_states.get(&b).unwrap_or(&top);
                            let c = cache::block_cost(
                                block,
                                in_state,
                                &ctx,
                                &persistence_info,
                                &wcet_by_addr,
                                &mut classify,
                                &mut classification,
                            );
                            (b, c)
                        })
                        .collect();
                    (costs, persistence_info.entry_penalties.clone())
                }
            }
        };

        let totals: BTreeMap<u32, u32> = loops
            .iter()
            .filter_map(|l| Some((l.header, annot.loop_total(l.header)?)))
            .collect();
        let wcet = ipet::solve_with_totals(
            cfg,
            &block_costs,
            &loops,
            &loop_bounds,
            &entry_penalties,
            &totals,
        )?;
        wcet_by_addr.insert(faddr, wcet);
        per_function.push(FuncWcet {
            name: cfg.name.clone(),
            addr: faddr,
            wcet_cycles: wcet,
            blocks: cfg.blocks.len(),
            insns: cfg.insn_count(),
            loops: loops.len(),
            classify,
        });
    }

    drop(costing_span);

    let entry_wcet = *wcet_by_addr
        .get(&entry_addr)
        .ok_or_else(|| WcetError::MissingFunction(format!("entry {entry_addr:#x}")))?;
    if widened {
        spmlab_obs::counter("wcet_widened_results", 1);
    }
    Ok(WcetResult {
        wcet_cycles: entry_wcet,
        per_function,
        stack_bytes: entry_depth,
        classification,
        widened,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::mem::MemoryMap;
    use spmlab_sim::{simulate, MachineConfig, SimOptions};

    const LOOP_SRC: &str = "
        int x;
        void main() {
            int i;
            for (i = 0; i < 25; i = i + 1) { __loopbound(25); x = x + i; }
        }
    ";

    fn linked(src: &str, map: MemoryMap, spm: SpmAssignment) -> spmlab_cc::LinkedProgram {
        link(&compile(src).unwrap(), &map, &spm).unwrap()
    }

    #[test]
    fn data_only_single_cache_is_sound() {
        // A data-only single cache is routed through the multilevel path:
        // the legacy single-level analyzer would model fetches as cached
        // where the simulator bypasses them, undercutting the bound.
        let src = "
            int a[32]; int x;
            void main() {
                int i;
                for (i = 0; i < 32; i = i + 1) { __loopbound(32); a[i] = i; }
                for (i = 0; i < 32; i = i + 1) { __loopbound(32); x = x + a[i]; }
            }
        ";
        let l = linked(src, MemoryMap::no_spm(), SpmAssignment::none());
        let cache = spmlab_isa::cachecfg::CacheConfig::data_only(512);
        let w = analyze(
            &l.exe,
            &WcetConfig::with_cache(cache.clone()),
            &l.annotations,
        )
        .unwrap();
        let s = simulate(
            &l.exe,
            &MachineConfig::with_cache(cache),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(
            w.wcet_cycles >= s.cycles,
            "data-only WCET {} must bound sim {}",
            w.wcet_cycles,
            s.cycles
        );
    }

    #[test]
    fn oversized_hit_latency_stays_sound() {
        // hit_latency may exceed the line-fill cost; every unclassified
        // access must then be charged the (larger) hit outcome. Exercised
        // on both the single-level and the hierarchy analysis paths.
        let l = linked(LOOP_SRC, MemoryMap::no_spm(), SpmAssignment::none());
        let cache = spmlab_isa::cachecfg::CacheConfig {
            hit_latency: 25,
            ..spmlab_isa::cachecfg::CacheConfig::unified(1024)
        };
        let s = simulate(
            &l.exe,
            &MachineConfig::with_cache(cache.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        let single = analyze(
            &l.exe,
            &WcetConfig::with_cache(cache.clone()),
            &l.annotations,
        )
        .unwrap();
        assert!(
            single.wcet_cycles >= s.cycles,
            "single-level: wcet {} < sim {} with hit_latency 25",
            single.wcet_cycles,
            s.cycles
        );
        let h = spmlab_isa::hierarchy::MemHierarchyConfig::l1_only(cache);
        let multi = analyze(&l.exe, &WcetConfig::with_hierarchy(h), &l.annotations).unwrap();
        assert!(
            multi.wcet_cycles >= s.cycles,
            "hierarchy: wcet {} < sim {} with hit_latency 25",
            multi.wcet_cycles,
            s.cycles
        );
    }

    #[test]
    fn region_wcet_bounds_simulation() {
        let l = linked(LOOP_SRC, MemoryMap::no_spm(), SpmAssignment::none());
        let w = analyze(&l.exe, &WcetConfig::region_timing(), &l.annotations).unwrap();
        let s = simulate(&l.exe, &MachineConfig::uncached(), &SimOptions::default()).unwrap();
        assert!(
            w.wcet_cycles >= s.cycles,
            "WCET {} must bound simulation {}",
            w.wcet_cycles,
            s.cycles
        );
        // And it should be reasonably tight for this branch-free loop.
        assert!(
            w.wcet_cycles < s.cycles * 2,
            "WCET {} vs sim {} is too loose",
            w.wcet_cycles,
            s.cycles
        );
    }

    #[test]
    fn spm_lowers_wcet() {
        let slow = linked(LOOP_SRC, MemoryMap::no_spm(), SpmAssignment::none());
        let fast = linked(
            LOOP_SRC,
            MemoryMap::with_spm(2048),
            SpmAssignment::of(["main", "x"]),
        );
        let cfg = WcetConfig::region_timing();
        let ws = analyze(&slow.exe, &cfg, &slow.annotations).unwrap();
        let wf = analyze(&fast.exe, &cfg, &fast.annotations).unwrap();
        assert!(
            wf.wcet_cycles < ws.wcet_cycles,
            "spm {} should beat main-memory {}",
            wf.wcet_cycles,
            ws.wcet_cycles
        );
    }

    #[test]
    fn cache_wcet_bounds_cached_simulation() {
        let l = linked(LOOP_SRC, MemoryMap::no_spm(), SpmAssignment::none());
        let cache = spmlab_isa::cachecfg::CacheConfig::unified(1024);
        let w = analyze(
            &l.exe,
            &WcetConfig::with_cache(cache.clone()),
            &l.annotations,
        )
        .unwrap();
        let s = simulate(
            &l.exe,
            &MachineConfig::with_cache(cache),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(
            w.wcet_cycles >= s.cycles,
            "cache WCET {} must bound cached sim {}",
            w.wcet_cycles,
            s.cycles
        );
    }

    #[test]
    fn persistence_tightens_cache_wcet() {
        let l = linked(LOOP_SRC, MemoryMap::no_spm(), SpmAssignment::none());
        let cache = spmlab_isa::cachecfg::CacheConfig::unified(1024);
        let must_only = analyze(
            &l.exe,
            &WcetConfig::with_cache(cache.clone()),
            &l.annotations,
        )
        .unwrap();
        let with_pers = analyze(
            &l.exe,
            &WcetConfig::with_cache_persistence(cache.clone()),
            &l.annotations,
        )
        .unwrap();
        assert!(
            with_pers.wcet_cycles <= must_only.wcet_cycles,
            "persistence can only tighten"
        );
        // Still sound vs simulation.
        let s = simulate(
            &l.exe,
            &MachineConfig::with_cache(cache),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(with_pers.wcet_cycles >= s.cycles);
    }

    #[test]
    fn exhausted_budget_degrades_but_stays_sound() {
        let l = linked(LOOP_SRC, MemoryMap::no_spm(), SpmAssignment::none());
        let cache = spmlab_isa::cachecfg::CacheConfig::unified(1024);
        let s = simulate(
            &l.exe,
            &MachineConfig::with_cache(cache.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        let unlimited = analyze(
            &l.exe,
            &WcetConfig::with_cache(cache.clone()),
            &l.annotations,
        )
        .unwrap();
        // Iteration cap of 1 on the single-level path: every fixpoint
        // widens to top, the result is flagged, and the bound can only
        // grow.
        let capped = analyze(
            &l.exe,
            &WcetConfig {
                budget: AnalysisBudget {
                    max_fixpoint_iters: Some(1),
                    deadline_ms: None,
                },
                ..WcetConfig::with_cache(cache.clone())
            },
            &l.annotations,
        )
        .unwrap();
        assert!(capped.widened, "iteration cap of 1 must widen");
        assert!(capped.wcet_cycles >= s.cycles, "degraded must stay sound");
        assert!(capped.wcet_cycles >= unlimited.wcet_cycles);
        // Expired deadline on the hierarchy path: same story.
        let h = spmlab_isa::hierarchy::MemHierarchyConfig::l1_only(cache.clone());
        let hs = simulate(
            &l.exe,
            &MachineConfig::with_hierarchy(h.clone()),
            &SimOptions::default(),
        )
        .unwrap();
        let deadlined = analyze(
            &l.exe,
            &WcetConfig {
                budget: AnalysisBudget {
                    max_fixpoint_iters: None,
                    deadline_ms: Some(0),
                },
                ..WcetConfig::with_hierarchy(h)
            },
            &l.annotations,
        )
        .unwrap();
        assert!(deadlined.widened, "deadline 0 must widen");
        assert!(
            deadlined.wcet_cycles >= hs.cycles,
            "degraded must stay sound"
        );
    }

    #[test]
    fn recursion_rejected() {
        let l = linked(
            "int f(int n) { if (n > 0) { return f(n - 1); } return 0; } void main() { f(3); }",
            MemoryMap::no_spm(),
            SpmAssignment::none(),
        );
        let err = analyze(&l.exe, &WcetConfig::region_timing(), &l.annotations).unwrap_err();
        assert!(matches!(err, WcetError::Recursion { .. }), "{err}");
    }

    #[test]
    fn per_function_breakdown() {
        let l = linked(
            "int g(int a) { return a * 3; } int x; void main() { x = g(5); }",
            MemoryMap::no_spm(),
            SpmAssignment::none(),
        );
        let w = analyze(&l.exe, &WcetConfig::region_timing(), &l.annotations).unwrap();
        assert!(w.function("g").is_some());
        assert!(w.function("main").unwrap().wcet_cycles > w.function("g").unwrap().wcet_cycles);
        assert!(
            w.function("_start").unwrap().wcet_cycles >= w.function("main").unwrap().wcet_cycles
        );
        assert_eq!(w.wcet_cycles, w.function("_start").unwrap().wcet_cycles);
        assert!(w.stack_bytes > 0);
        assert!(!format!("{w}").is_empty());
    }
}
