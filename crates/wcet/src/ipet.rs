//! Implicit Path Enumeration Technique (IPET).
//!
//! The WCET of a function is the maximum of Σ cost(b)·x(b) over execution
//! counts x satisfying structural flow conservation plus the loop-bound
//! constraints — an integer linear program, solved with the workspace's
//! CPLEX substitute exactly as in the paper's tool chain.

use crate::cfg::FuncCfg;
use crate::loops::NaturalLoop;
use crate::WcetError;
use spmlab_ilp::model::{Model, Sense, Var, VarKind};
use std::collections::BTreeMap;

/// Solves the IPET ILP for one function.
///
/// * `block_costs` — worst-case cycles per block (callee WCETs included);
/// * `bounds` — per loop header, max back-edge executions per loop entry;
/// * `entry_penalties` — extra cycles charged per entry of a loop
///   (persistence first-miss charges), keyed by header.
///
/// # Errors
///
/// [`WcetError::Ilp`] wraps solver failures; an unbounded ILP indicates a
/// structural bug (every loop got a bound before this call).
pub fn solve(
    cfg: &FuncCfg,
    block_costs: &BTreeMap<u32, u64>,
    loops: &[NaturalLoop],
    bounds: &BTreeMap<u32, u32>,
    entry_penalties: &BTreeMap<u32, u64>,
) -> Result<u64, WcetError> {
    solve_with_totals(
        cfg,
        block_costs,
        loops,
        bounds,
        entry_penalties,
        &BTreeMap::new(),
    )
}

/// [`solve`] with additional flow facts: `totals` bounds a loop's
/// back-edge executions *absolutely* per function invocation (aiT-style
/// flow constraints; essential for triangular loop nests).
///
/// # Errors
///
/// As for [`solve`].
pub fn solve_with_totals(
    cfg: &FuncCfg,
    block_costs: &BTreeMap<u32, u64>,
    loops: &[NaturalLoop],
    bounds: &BTreeMap<u32, u32>,
    entry_penalties: &BTreeMap<u32, u64>,
    totals: &BTreeMap<u32, u32>,
) -> Result<u64, WcetError> {
    let mut m = Model::new(Sense::Maximize);

    // Block count variables.
    let mut xb: BTreeMap<u32, Var> = BTreeMap::new();
    for &b in cfg.blocks.keys() {
        xb.insert(b, m.add_var(format!("x_{b:x}"), VarKind::Integer, None));
    }
    // Edge count variables.
    let mut de: BTreeMap<(u32, u32), Var> = BTreeMap::new();
    for (&src, block) in &cfg.blocks {
        for &dst in &block.succs {
            de.entry((src, dst))
                .or_insert_with(|| m.add_var(format!("d_{src:x}_{dst:x}"), VarKind::Integer, None));
        }
    }
    // Virtual entry edge (the function executes once) and exit edges.
    let d_entry = m.add_var("d_entry", VarKind::Integer, Some(1.0));
    m.add_eq(&[(d_entry, 1.0)], 1.0);
    let mut d_exits: Vec<Var> = Vec::new();

    // Flow conservation.
    for (&b, block) in &cfg.blocks {
        // x_b == sum of incoming edges.
        let mut in_terms: Vec<(Var, f64)> = vec![(xb[&b], 1.0)];
        for (&(src, dst), &v) in &de {
            let _ = src;
            if dst == b {
                in_terms.push((v, -1.0));
            }
        }
        if b == cfg.entry {
            in_terms.push((d_entry, -1.0));
        }
        m.add_eq(&in_terms, 0.0);
        // x_b == sum of outgoing edges.
        let mut out_terms: Vec<(Var, f64)> = vec![(xb[&b], 1.0)];
        for &dst in &block.succs {
            out_terms.push((de[&(b, dst)], -1.0));
        }
        if block.is_exit {
            let d = m.add_var(format!("d_exit_{b:x}"), VarKind::Integer, None);
            d_exits.push(d);
            out_terms.push((d, -1.0));
        }
        m.add_eq(&out_terms, 0.0);
    }
    // Exactly one exit.
    if d_exits.is_empty() {
        // A function that cannot return has no finite WCET.
        return Err(WcetError::Ilp(spmlab_ilp::IlpError::Infeasible));
    }
    let exit_terms: Vec<(Var, f64)> = d_exits.iter().map(|&v| (v, 1.0)).collect();
    m.add_eq(&exit_terms, 1.0);

    // Loop bounds: Σ back-edges ≤ bound × Σ entry-edges. When the header
    // is the function's entry block, the virtual entry edge is one of the
    // loop's entries (omitting it would force the back edges to zero — an
    // unsound under-approximation caught by the hostile-binary tests).
    for l in loops {
        let bound = *bounds
            .get(&l.header)
            .expect("bounds computed for every loop");
        let mut terms: Vec<(Var, f64)> = Vec::new();
        for &(s, d) in &l.back_edges {
            terms.push((de[&(s, d)], 1.0));
        }
        for &(s, d) in &l.entry_edges {
            terms.push((de[&(s, d)], -(bound as f64)));
        }
        if l.header == cfg.entry {
            terms.push((d_entry, -(bound as f64)));
        }
        m.add_le(&terms, 0.0);
        // Flow fact: absolute back-edge total per function invocation.
        if let Some(&total) = totals.get(&l.header) {
            let back_terms: Vec<(Var, f64)> = l
                .back_edges
                .iter()
                .map(|&(s, d)| (de[&(s, d)], 1.0))
                .collect();
            m.add_le(&back_terms, total as f64);
        }
    }

    // Objective: block costs plus per-entry persistence penalties.
    let mut obj: Vec<(Var, f64)> = Vec::new();
    for (&b, &v) in &xb {
        obj.push((v, block_costs[&b] as f64));
    }
    for l in loops {
        if let Some(&pen) = entry_penalties.get(&l.header) {
            for &(s, d) in &l.entry_edges {
                obj.push((de[&(s, d)], pen as f64));
            }
        }
    }
    m.set_objective(&obj);

    let sol = spmlab_ilp::branch::solve(&m)?;
    Ok(sol.objective.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::loops::natural_loops;
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::mem::MemoryMap;

    fn ipet_for(src: &str, func: &str, uniform_cost: u64) -> u64 {
        let l = link(
            &compile(src).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let cfg = build_cfg(&l.exe, l.exe.symbol(func).unwrap()).unwrap();
        let loops = natural_loops(&cfg).unwrap();
        let bounds = crate::bounds::loop_bounds(&cfg, &loops, &l.annotations, true).unwrap();
        let costs: BTreeMap<u32, u64> = cfg.blocks.keys().map(|&b| (b, uniform_cost)).collect();
        solve(&cfg, &costs, &loops, &bounds, &BTreeMap::new()).unwrap()
    }

    #[test]
    fn straight_line_counts_each_block_once() {
        let w = ipet_for("int x; void main() { x = 1; }", "main", 10);
        // main without a return statement is a single block (prologue,
        // body, epilogue fall through); allow up to 3 for layout changes.
        assert!((10..=30).contains(&w), "wcet {w}");
    }

    #[test]
    fn branch_takes_worst_arm() {
        // if/else with unbalanced arms: IPET must take the longer one; with
        // uniform block costs both arms count 1 block, so WCET counts one
        // arm exactly once.
        let w = ipet_for(
            "int x; void main() { if (x) { x = 1; } else { x = 2; } }",
            "main",
            7,
        );
        // entry(+cmp), one arm, join/epilogue ≥ 3 blocks; both arms (4
        // blocks) would be structurally infeasible.
        assert_eq!(w % 7, 0);
        let blocks = w / 7;
        assert!((3..=5).contains(&blocks), "took {blocks} blocks");
    }

    #[test]
    fn loop_bound_scales_wcet() {
        let w10 = ipet_for(
            "int x; void main() { int i; for (i = 0; i < 10; i = i + 1) { x = x + 1; } }",
            "main",
            1,
        );
        let w100 = ipet_for(
            "int x; void main() { int i; for (i = 0; i < 100; i = i + 1) { x = x + 1; } }",
            "main",
            1,
        );
        assert!(w100 > w10 + 80, "w10={w10} w100={w100}");
    }

    #[test]
    fn nested_loops_multiply() {
        let w = ipet_for(
            "int x; void main() {
                int i; int j;
                for (i = 0; i < 10; i = i + 1) {
                    for (j = 0; j < 10; j = j + 1) { x = x + 1; }
                }
             }",
            "main",
            1,
        );
        // Inner body ≈ 100 executions.
        assert!(w > 100, "wcet {w}");
        assert!(w < 400, "wcet {w} should stay near the structural count");
    }

    #[test]
    fn persistence_penalty_charged_per_entry() {
        let src = "int x; void main() { int i; for (i = 0; i < 10; i = i + 1) { x = x + 1; } }";
        let l = link(
            &compile(src).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let cfg = build_cfg(&l.exe, l.exe.symbol("main").unwrap()).unwrap();
        let loops = natural_loops(&cfg).unwrap();
        let bounds = crate::bounds::loop_bounds(&cfg, &loops, &l.annotations, true).unwrap();
        let costs: BTreeMap<u32, u64> = cfg.blocks.keys().map(|&b| (b, 1)).collect();
        let base = solve(&cfg, &costs, &loops, &bounds, &BTreeMap::new()).unwrap();
        let mut pens = BTreeMap::new();
        pens.insert(loops[0].header, 160u64);
        let with_pen = solve(&cfg, &costs, &loops, &bounds, &pens).unwrap();
        assert_eq!(with_pen, base + 160, "one loop entry → one penalty");
    }
}
