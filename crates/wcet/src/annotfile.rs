//! Text annotation files, in the spirit of aiT's annotation language.
//!
//! The paper's workflow feeds aiT "user supplied annotation data concerning
//! loop bounds and access addresses" from configuration files. This module
//! parses a small line-based language into an [`AnnotationSet`]:
//!
//! ```text
//! # comments and blank lines are ignored
//! loop   0x00100040      bound 64      # loop header by address
//! loop   sort+0x12       bound 31      # or symbol+offset
//! flow   sort+0x12       total 496     # flow fact: absolute back-edge cap
//! access 0x00100080 word range 0x00100800 0x00100900
//! access main+0x10  half exact 0x00100844
//! access 0x00100088 word unknown
//! stack  0x001ff000 0x00200000
//! ```
//!
//! Addresses are hex (`0x…`) or `symbol+0xOFF` / `symbol` forms resolved
//! against the executable's symbol table.

use spmlab_isa::annot::{AddrInfo, AnnotationSet};
use spmlab_isa::image::Executable;
use spmlab_isa::mem::AccessWidth;

/// Errors from annotation parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotError {
    /// 1-based line number.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for AnnotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "annotation line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AnnotError {}

fn err<T>(line: u32, msg: impl Into<String>) -> Result<T, AnnotError> {
    Err(AnnotError {
        line,
        msg: msg.into(),
    })
}

fn parse_addr(tok: &str, exe: &Executable, line: u32) -> Result<u32, AnnotError> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).map_err(|e| AnnotError {
            line,
            msg: format!("bad address `{tok}`: {e}"),
        });
    }
    let (sym, off) = match tok.split_once('+') {
        Some((s, o)) => {
            let off = match o.strip_prefix("0x") {
                Some(h) => u32::from_str_radix(h, 16).ok(),
                None => o.parse::<u32>().ok(),
            }
            .ok_or_else(|| AnnotError {
                line,
                msg: format!("bad offset in `{tok}`"),
            })?;
            (s, off)
        }
        None => (tok, 0),
    };
    match exe.symbol(sym) {
        Some(s) => Ok(s.addr + off),
        None => err(line, format!("unknown symbol `{sym}`")),
    }
}

fn parse_width(tok: &str, line: u32) -> Result<AccessWidth, AnnotError> {
    match tok {
        "byte" => Ok(AccessWidth::Byte),
        "half" => Ok(AccessWidth::Half),
        "word" => Ok(AccessWidth::Word),
        other => err(line, format!("bad width `{other}` (byte|half|word)")),
    }
}

/// Parses annotation text against an executable's symbol table.
///
/// # Errors
///
/// Returns the first [`AnnotError`] with its line number.
pub fn parse(text: &str, exe: &Executable) -> Result<AnnotationSet, AnnotError> {
    let mut out = AnnotationSet::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i as u32 + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let toks: Vec<&str> = body.split_whitespace().collect();
        match toks[0] {
            "loop" => {
                if toks.len() != 4 || toks[2] != "bound" {
                    return err(line, "expected `loop <addr> bound <n>`");
                }
                let addr = parse_addr(toks[1], exe, line)?;
                let n: u32 = toks[3].parse().map_err(|e| AnnotError {
                    line,
                    msg: format!("bad bound: {e}"),
                })?;
                out.set_loop_bound(addr, n);
            }
            "flow" => {
                if toks.len() != 4 || toks[2] != "total" {
                    return err(line, "expected `flow <addr> total <n>`");
                }
                let addr = parse_addr(toks[1], exe, line)?;
                let n: u32 = toks[3].parse().map_err(|e| AnnotError {
                    line,
                    msg: format!("bad total: {e}"),
                })?;
                out.set_loop_total(addr, n);
            }
            "access" => {
                if toks.len() < 4 {
                    return err(line, "expected `access <addr> <width> <kind> ...`");
                }
                let addr = parse_addr(toks[1], exe, line)?;
                let width = parse_width(toks[2], line)?;
                let info = match toks[3] {
                    "exact" => {
                        if toks.len() != 5 {
                            return err(line, "expected `... exact <addr>`");
                        }
                        AddrInfo::Exact(parse_addr(toks[4], exe, line)?)
                    }
                    "range" => {
                        if toks.len() != 6 {
                            return err(line, "expected `... range <lo> <hi>`");
                        }
                        let lo = parse_addr(toks[4], exe, line)?;
                        let hi = parse_addr(toks[5], exe, line)?;
                        if hi <= lo {
                            return err(line, "empty range");
                        }
                        AddrInfo::Range { lo, hi }
                    }
                    "stack" => AddrInfo::Stack,
                    "unknown" => AddrInfo::Unknown,
                    other => return err(line, format!("bad access kind `{other}`")),
                };
                out.set_access(addr, width, info);
            }
            "stack" => {
                if toks.len() != 3 {
                    return err(line, "expected `stack <lo> <hi>`");
                }
                let lo = parse_addr(toks[1], exe, line)?;
                let hi = parse_addr(toks[2], exe, line)?;
                out.set_stack_window(lo, hi);
            }
            other => return err(line, format!("unknown directive `{other}`")),
        }
    }
    Ok(out)
}

/// Renders an annotation set back to the text format (round-trips through
/// [`parse`]; useful for dumping auto-generated annotations for editing).
pub fn render(annot: &AnnotationSet) -> String {
    let mut out = String::new();
    out.push_str("# spmlab annotation file\n");
    for lb in annot.loop_bounds() {
        out.push_str(&format!(
            "loop 0x{:08x} bound {}\n",
            lb.header_addr, lb.max_iterations
        ));
    }
    for (addr, total) in annot.loop_totals() {
        out.push_str(&format!("flow 0x{addr:08x} total {total}\n"));
    }
    for a in annot.accesses() {
        let width = match a.width {
            AccessWidth::Byte => "byte",
            AccessWidth::Half => "half",
            AccessWidth::Word => "word",
        };
        match a.addr {
            AddrInfo::Exact(x) => out.push_str(&format!(
                "access 0x{:08x} {width} exact 0x{x:08x}\n",
                a.insn_addr
            )),
            AddrInfo::Range { lo, hi } => out.push_str(&format!(
                "access 0x{:08x} {width} range 0x{lo:08x} 0x{hi:08x}\n",
                a.insn_addr
            )),
            AddrInfo::Stack => {
                out.push_str(&format!("access 0x{:08x} {width} stack\n", a.insn_addr))
            }
            AddrInfo::Unknown => {
                out.push_str(&format!("access 0x{:08x} {width} unknown\n", a.insn_addr))
            }
        }
    }
    if let Some((lo, hi)) = annot.stack_window() {
        out.push_str(&format!("stack 0x{lo:08x} 0x{hi:08x}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::mem::MemoryMap;

    fn exe() -> Executable {
        link(
            &compile("int tab[8]; void main() { tab[0] = 1; }").unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap()
        .exe
    }

    #[test]
    fn parse_all_directives() {
        let exe = exe();
        let text = "
            # header comment
            loop main+0x10 bound 64
            flow 0x00100040 total 496
            access main+0x4 word range tab tab+0x20
            access 0x00100010 half exact tab+0x4
            access 0x00100014 byte unknown
            stack 0x001ff000 0x00200000
        ";
        let a = parse(text, &exe).unwrap();
        let main = exe.symbol("main").unwrap().addr;
        let tab = exe.symbol("tab").unwrap().addr;
        assert_eq!(a.loop_bound(main + 0x10), Some(64));
        assert_eq!(a.loop_total(0x0010_0040), Some(496));
        assert_eq!(
            a.access(main + 4).unwrap().addr,
            AddrInfo::Range {
                lo: tab,
                hi: tab + 0x20
            }
        );
        assert_eq!(
            a.access(0x0010_0010).unwrap().addr,
            AddrInfo::Exact(tab + 4)
        );
        assert_eq!(a.access(0x0010_0014).unwrap().width, AccessWidth::Byte);
        assert_eq!(a.stack_window(), Some((0x001F_F000, 0x0020_0000)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let exe = exe();
        let e = parse("loop main bound\n", &exe).unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("\n\nloop ghost bound 3\n", &exe).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("ghost"));
        assert!(
            parse("access main word range tab tab\n", &exe).is_err(),
            "empty range"
        );
        assert!(parse("bogus 1 2\n", &exe).is_err());
    }

    #[test]
    fn render_roundtrip() {
        let exe = exe();
        let mut a = AnnotationSet::new();
        a.set_loop_bound(0x0010_0010, 12);
        a.set_loop_total(0x0010_0010, 100);
        a.set_access(0x0010_0020, AccessWidth::Word, AddrInfo::Exact(0x0010_0100));
        a.set_access(
            0x0010_0024,
            AccessWidth::Half,
            AddrInfo::Range {
                lo: 0x0010_0100,
                hi: 0x0010_0140,
            },
        );
        a.set_access(0x0010_0028, AccessWidth::Byte, AddrInfo::Unknown);
        a.set_stack_window(0x001F_0000, 0x0020_0000);
        let text = render(&a);
        let back = parse(&text, &exe).unwrap();
        assert_eq!(back, a);
    }
}
