//! Dirty-line upper-bound analysis for write-back caches — the piece that
//! makes the analyzer's **charge-at-store rule** both sound and less than
//! maximally pessimistic.
//!
//! # The charging rule
//!
//! In a write-back cache the expensive event — a dirty victim's line
//! write-back — happens at an *eviction*, which can be triggered by any
//! later read, fetch or store mapping to the same set: exactly the
//! "unpredictable instant" the paper's predictability argument is about.
//! Instead of predicting eviction instants, the analyzer moves the charge
//! to the instruction that *creates* the obligation: **every store to a
//! line not provably dirty already pays the worst-case write-back of the
//! line it dirties**
//! ([`spmlab_isa::hierarchy::MemHierarchyConfig::worst_store_writeback_cycles`]
//! — one L1 line transfer, plus one L2 line burst when the transfer lands
//! in a write-back L2). Reads and fetches are charged exactly as on the
//! write-through machine.
//!
//! # Soundness argument
//!
//! Map every concrete dirty eviction to the store that *began* the
//! victim's current dirty episode (the dynamic store that flipped the
//! line clean→dirty; a line leaves "dirty" only by being evicted, and
//! re-enters only through another such store). This mapping is injective:
//! one dirty episode ends in at most one eviction, and each dynamic store
//! begins at most one episode. The episode-beginning store is always one
//! the analyzer charged: a store goes uncharged only when this analysis
//! proves the line **already dirty on every path** — in which case, in
//! every execution, the episode began at some earlier store, and by
//! induction that earlier episode-beginner was charged. Hence the sum of
//! per-store charges covers every write-back the simulator can ever
//! perform, on every path — which is the per-path inequality IPET needs.
//! (Lines still dirty at program exit were charged but never evicted:
//! pure over-approximation.)
//!
//! # The abstract domain
//!
//! [`DirtyBound`] is a *lower* bound on dirtiness used as an upper bound
//! on charging: the set of lines **provably present and dirty** in the
//! store-absorbing level, maintained as a subset of that level's packed
//! MUST state (`dirty ⊆ MUST` is the invariant everything hangs on — a
//! line evicted from the MUST state may have been evicted concretely, so
//! it must leave the dirty set *immediately*, lest a later clean re-fill
//! plus store be mistaken for "already dirty"):
//!
//! * a provably-absorbed exact store **marks** its line (the store leaves
//!   the line guaranteed present — MUST insertion at age 0 — and dirty);
//! * every operation that can shrink or age the absorb level's MUST
//!   state (reads, uncertain updates, range weakening, call effects)
//!   **prunes** the dirty set against the surviving MUST lines;
//! * the control-flow join is **intersection** (dirty on every path);
//!   since a MUST join only keeps lines guaranteed on both sides, the
//!   subset invariant is preserved for free;
//! * calls keep surviving lines: a line still in MUST after
//!   [`AbstractCache::apply_call`] was provably never evicted inside the
//!   callee, and a resident line can only *stay* dirty (nothing cleans
//!   without evicting), so pruning — not clearing — is sound.
//!
//! ```
//! use spmlab_isa::cachecfg::CacheConfig;
//! use spmlab_wcet::cache::AbstractCache;
//! use spmlab_wcet::dirty::DirtyBound;
//!
//! let cfg = CacheConfig::data_only(64).write_back();
//! let mut must = AbstractCache::top(&cfg);
//! let mut dirty = DirtyBound::new(&cfg);
//! // A store: the line becomes guaranteed present — and provably dirty.
//! must.access_read_exact(0x100, true);
//! dirty.mark(0x100);
//! assert!(dirty.is_dirty(0x100));
//! // A second store to the resident dirty line owes no new write-back.
//! // But once the MUST state can no longer guarantee the line...
//! must.weaken_range(0, u32::MAX, true);
//! dirty.prune(&must);
//! // ...the proof is gone: the next store pays the write-back again.
//! assert!(!dirty.is_dirty(0x100));
//! ```

use crate::cache::AbstractCache;
use spmlab_isa::cachecfg::{CacheConfig, SetIndexer};
use std::collections::BTreeSet;

/// The provably-present-and-dirty line set of one write-back cache level
/// (see the [module docs](self) for the invariant and the soundness
/// argument it backs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyBound {
    idx: SetIndexer,
    /// Base addresses of lines provably present **and** dirty.
    lines: BTreeSet<u32>,
}

impl DirtyBound {
    /// The empty bound (nothing provably dirty) for one level geometry.
    pub fn new(cfg: &CacheConfig) -> DirtyBound {
        DirtyBound {
            idx: cfg.indexer(),
            lines: BTreeSet::new(),
        }
    }

    /// The line base address of `addr` in this geometry.
    fn line_of(&self, addr: u32) -> u32 {
        let (set, tag) = self.idx.set_and_tag(addr);
        self.idx.line_addr(set, tag)
    }

    /// Whether `addr`'s line is provably dirty (and therefore present).
    pub fn is_dirty(&self, addr: u32) -> bool {
        self.lines.contains(&self.line_of(addr))
    }

    /// Records that a store definitely dirtied `addr`'s line. Only call
    /// when the line is guaranteed present afterwards (an exact absorbed
    /// store inserts it into the MUST state at age 0).
    pub fn mark(&mut self, addr: u32) {
        let line = self.line_of(addr);
        self.lines.insert(line);
    }

    /// Re-establishes `dirty ⊆ MUST` after any operation that may have
    /// evicted lines from the absorb level's MUST state: every line no
    /// longer guaranteed present loses its dirty proof.
    pub fn prune(&mut self, must: &AbstractCache) {
        self.lines.retain(|&line| must.contains(line));
    }

    /// Drops every proof (the conservative call-clobber companion).
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Control-flow join: a line is provably dirty after a merge only if
    /// it is provably dirty on **both** incoming paths (intersection).
    /// Returns whether `self` changed.
    pub fn join_into(&mut self, other: &DirtyBound) -> bool {
        let before = self.lines.len();
        self.lines.retain(|l| other.lines.contains(l));
        self.lines.len() != before
    }

    /// Number of provably dirty lines (diagnostics).
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing is provably dirty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_isa::cachecfg::CacheConfig;

    fn cfg() -> CacheConfig {
        CacheConfig::data_only(64).write_back() // 4 sets × 16 B, direct-mapped
    }

    #[test]
    fn mark_and_query_are_line_granular() {
        let mut d = DirtyBound::new(&cfg());
        d.mark(0x104);
        assert!(d.is_dirty(0x100) && d.is_dirty(0x10C), "whole line dirty");
        assert!(!d.is_dirty(0x110), "next line unaffected");
    }

    #[test]
    fn prune_follows_the_must_state() {
        let c = cfg();
        let mut must = AbstractCache::top(&c);
        let mut d = DirtyBound::new(&c);
        must.access_read_exact(0x100, true);
        must.access_read_exact(0x140, true); // other set in a 4-set cache? 0x140>>4=0x14, set 0 — conflict!
        d.mark(0x140);
        // 0x140 evicted 0x100 in the direct-mapped MUST state; 0x140
        // itself is guaranteed, so its proof survives pruning.
        d.prune(&must);
        assert!(d.is_dirty(0x140));
        // An unknown-address access destroys every guarantee.
        must.weaken_range(0, u32::MAX, true);
        d.prune(&must);
        assert!(d.is_empty());
    }

    #[test]
    fn join_is_intersection() {
        let c = cfg();
        let mut a = DirtyBound::new(&c);
        let mut b = DirtyBound::new(&c);
        a.mark(0x100);
        a.mark(0x110);
        b.mark(0x110);
        assert!(a.join_into(&b));
        assert!(!a.is_dirty(0x100) && a.is_dirty(0x110));
        assert_eq!(a.len(), 1);
        // Joining with an equal set changes nothing.
        assert!(!a.join_into(&b.clone()));
    }
}
