//! Dominator analysis and natural-loop detection.

use crate::cfg::FuncCfg;
use crate::WcetError;
use std::collections::{BTreeMap, BTreeSet};

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Header block (the unique entry of a reducible loop).
    pub header: u32,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<u32>,
    /// Back edges `(tail, header)`.
    pub back_edges: Vec<(u32, u32)>,
    /// Edges entering the loop from outside `(src, header)`.
    pub entry_edges: Vec<(u32, u32)>,
}

/// Computes immediate dominators with the iterative algorithm (blocks in
/// reverse postorder).
pub fn dominators(cfg: &FuncCfg) -> BTreeMap<u32, u32> {
    let rpo = reverse_postorder(cfg);
    let index: BTreeMap<u32, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let preds = cfg.predecessors();
    let mut idom: BTreeMap<u32, u32> = BTreeMap::new();
    idom.insert(cfg.entry, cfg.entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<u32> = None;
            for &p in &preds[&b] {
                if !idom.contains_key(&p) {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, &index),
                });
            }
            if let Some(ni) = new_idom {
                if idom.get(&b) != Some(&ni) {
                    idom.insert(b, ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(
    mut a: u32,
    mut b: u32,
    idom: &BTreeMap<u32, u32>,
    index: &BTreeMap<u32, usize>,
) -> u32 {
    while a != b {
        while index[&a] > index[&b] {
            a = idom[&a];
        }
        while index[&b] > index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Blocks in reverse postorder from the entry.
pub fn reverse_postorder(cfg: &FuncCfg) -> Vec<u32> {
    let mut visited = BTreeSet::new();
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-succ-index).
    let mut stack: Vec<(u32, usize)> = vec![(cfg.entry, 0)];
    visited.insert(cfg.entry);
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = &cfg.blocks[&b].succs;
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if visited.insert(s) {
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Whether `a` dominates `b`.
pub fn dominates(a: u32, b: u32, idom: &BTreeMap<u32, u32>, entry: u32) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        if cur == entry {
            return false;
        }
        match idom.get(&cur) {
            Some(&d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

/// Finds all natural loops; errors on irreducible control flow (a back
/// edge whose target does not dominate its source).
///
/// # Errors
///
/// [`WcetError::Irreducible`] when a retreating edge is not a natural back
/// edge. MiniC-generated code is always reducible.
pub fn natural_loops(cfg: &FuncCfg) -> Result<Vec<NaturalLoop>, WcetError> {
    let idom = dominators(cfg);
    let rpo = reverse_postorder(cfg);
    let order: BTreeMap<u32, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let preds = cfg.predecessors();

    let mut loops: BTreeMap<u32, NaturalLoop> = BTreeMap::new();
    for (&src, block) in &cfg.blocks {
        if !order.contains_key(&src) {
            continue; // Unreachable block.
        }
        for &dst in &block.succs {
            // Retreating edge in RPO?
            if order[&dst] <= order[&src] {
                if !dominates(dst, src, &idom, cfg.entry) {
                    return Err(WcetError::Irreducible {
                        func: cfg.name.clone(),
                        addr: src,
                    });
                }
                let l = loops.entry(dst).or_insert_with(|| NaturalLoop {
                    header: dst,
                    body: BTreeSet::from([dst]),
                    back_edges: vec![],
                    entry_edges: vec![],
                });
                l.back_edges.push((src, dst));
                // Grow the body: reverse reachability from src up to dst.
                let mut work = vec![src];
                while let Some(b) = work.pop() {
                    if l.body.insert(b) {
                        for &p in &preds[&b] {
                            if !l.body.contains(&p) {
                                work.push(p);
                            }
                        }
                    }
                }
            }
        }
    }

    // Entry edges: predecessors of the header from outside the body.
    let mut result: Vec<NaturalLoop> = loops.into_values().collect();
    for l in &mut result {
        for &p in &preds[&l.header] {
            if !l.body.contains(&p) {
                l.entry_edges.push((p, l.header));
            }
        }
    }
    // Inner loops first (smaller bodies), stable by header.
    result.sort_by_key(|l| (l.body.len(), l.header));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::mem::MemoryMap;

    fn cfg_of(src: &str, func: &str) -> FuncCfg {
        let l = link(
            &compile(src).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        crate::cfg::build_cfg(&l.exe, l.exe.symbol(func).unwrap()).unwrap()
    }

    #[test]
    fn single_loop_detected() {
        let c = cfg_of(
            "int x; void main() { int i; for (i = 0; i < 5; i = i + 1) { __loopbound(5); x = x + 1; } }",
            "main",
        );
        let loops = natural_loops(&c).unwrap();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.back_edges.len(), 1);
        assert_eq!(l.entry_edges.len(), 1);
        assert!(l.body.len() >= 2);
        assert!(l.body.contains(&l.header));
    }

    #[test]
    fn nested_loops_ordered_inner_first() {
        let c = cfg_of(
            "int x; void main() {
                int i; int j;
                for (i = 0; i < 4; i = i + 1) { __loopbound(4);
                    for (j = 0; j < 3; j = j + 1) { __loopbound(3); x = x + 1; }
                }
             }",
            "main",
        );
        let loops = natural_loops(&c).unwrap();
        assert_eq!(loops.len(), 2);
        assert!(loops[0].body.len() < loops[1].body.len());
        assert!(
            loops[1].body.is_superset(&loops[0].body),
            "outer body contains inner body"
        );
    }

    #[test]
    fn do_while_loop() {
        let c = cfg_of(
            "int x; void main() { int i; i = 0; do { __loopbound(5); x = x + 1; i = i + 1; } while (i < 5); }",
            "main",
        );
        let loops = natural_loops(&c).unwrap();
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn no_loops_in_straight_line() {
        let c = cfg_of("int x; void main() { if (x) { x = 1; } }", "main");
        assert!(natural_loops(&c).unwrap().is_empty());
    }

    #[test]
    fn dominators_entry_dominates_all() {
        let c = cfg_of(
            "int x; void main() { int i; while (i < 3) { __loopbound(3); if (x) { x = 0; } i = i + 1; } }",
            "main",
        );
        let idom = dominators(&c);
        for &b in c.blocks.keys() {
            if idom.contains_key(&b) {
                assert!(dominates(c.entry, b, &idom, c.entry));
            }
        }
    }

    #[test]
    fn while_with_break_single_loop() {
        let c = cfg_of(
            "int x; void main() { int i; i = 0; while (1) { __loopbound(10); i = i + 1; if (i > 5) break; x = x + i; } }",
            "main",
        );
        let loops = natural_loops(&c).unwrap();
        assert_eq!(loops.len(), 1);
        // The loop must have at least one exit edge (via the break path).
        let l = &loops[0];
        let has_exit = l
            .body
            .iter()
            .any(|&b| c.blocks[&b].succs.iter().any(|s| !l.body.contains(s)));
        assert!(has_exit);
    }
}
