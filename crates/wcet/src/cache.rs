//! Abstract-interpretation cache analysis (Ferdinand-style MUST analysis)
//! with an optional persistence ("first miss") extension.
//!
//! The MUST cache maps each set to the lines *guaranteed* present, with an
//! upper bound on their LRU age; the join is intersection with maximum age.
//! For random and round-robin replacement a miss may evict *any* line of
//! the set, so the abstract update collapses the set to just the accessed
//! line — exactly why the paper notes that ARM7's random replacement makes
//! "precise estimates for cache behavior difficult".
//!
//! Accesses with unknown addresses (array ranges, stack windows) weaken
//! every set their range maps to — in a unified cache a data access can
//! evict code, which is the mechanism behind the paper's headline result
//! (cache WCET stays high regardless of cache size).

use crate::addrinfo::{data_accesses, DataAccess};
use crate::cfg::{BasicBlock, FuncCfg};
use crate::loops::NaturalLoop;
use spmlab_isa::annot::{AddrInfo, AnnotationSet};
use spmlab_isa::cachecfg::{CacheConfig, CacheScope, Replacement};
use spmlab_isa::insn::Insn;
use spmlab_isa::mem::{access_cycles, AccessWidth, MemoryMap, RegionKind};
use std::collections::BTreeMap;

/// Analysis context shared by the fixpoint and the costing walk.
#[derive(Debug, Clone)]
pub struct CacheCtx<'a> {
    /// Cache geometry/policy.
    pub cache: &'a CacheConfig,
    /// Memory map (to tell scratchpad/MMIO accesses apart from main).
    pub map: &'a MemoryMap,
    /// Access annotations.
    pub annot: &'a AnnotationSet,
    /// Caller-imposed fixpoint budget (iteration cap / deadline); the
    /// default imposes nothing beyond the structural cap.
    pub budget: crate::fixpoint::FixpointBudget,
}

impl CacheCtx<'_> {
    fn data_cached(&self) -> bool {
        matches!(self.cache.scope, CacheScope::Unified)
    }

    fn is_main(&self, addr: u32) -> bool {
        self.map.region_of(addr) == RegionKind::Main
    }

    fn lru(&self) -> bool {
        matches!(self.cache.replacement, Replacement::Lru)
    }
}

/// The abstract MUST cache, packed for the analyzer's hot path.
///
/// Instead of one heap `BTreeMap<tag, age>` per set, the state is a flat
/// `assoc`-strided slot store: set `s` owns slots
/// `[s * assoc, s * assoc + occ[s])` of the parallel `tags`/`ages` vectors,
/// packed to the front of the stride. Every transfer-function step
/// (`update`, the uncertain update, weakening, `join_into`) is in-place and
/// `O(assoc)` per touched set — no allocation, no tree rebalancing — which
/// is what makes whole-program fixpoints cheap enough for large hierarchy
/// sweeps. The original `BTreeMap` domain is retained under
/// [`reference`] (`#[cfg(test)]`) as the executable specification the
/// proptest differential suite checks this representation against.
#[derive(Debug, Clone)]
pub struct AbstractCache {
    assoc: u16,
    idx: spmlab_isa::cachecfg::SetIndexer,
    /// Slot tags, `assoc`-strided per set; only `occ[s]` leading slots of a
    /// stride are meaningful.
    tags: Vec<u32>,
    /// Upper age bound per slot (0 = most recently used), parallel to
    /// `tags`.
    ages: Vec<u16>,
    /// Occupied slot count per set.
    occ: Vec<u16>,
}

/// Equality is per-set *set* equality (slot order within a stride is an
/// implementation artifact of in-place compaction).
impl PartialEq for AbstractCache {
    fn eq(&self, other: &AbstractCache) -> bool {
        if self.assoc != other.assoc || self.occ != other.occ {
            return false;
        }
        let a = self.assoc as usize;
        self.occ.iter().enumerate().all(|(set, &n)| {
            let base = set * a;
            let ob = &other.tags[base..base + n as usize];
            let oa = &other.ages[base..base + n as usize];
            (0..n as usize).all(|r| {
                ob.iter()
                    .position(|&t| t == self.tags[base + r])
                    .is_some_and(|p| oa[p] == self.ages[base + r])
            })
        })
    }
}

impl Eq for AbstractCache {}

impl AbstractCache {
    /// The empty MUST cache: nothing is guaranteed (analysis start state).
    pub fn top(cfg: &CacheConfig) -> AbstractCache {
        let idx = cfg.indexer();
        let assoc = cfg.assoc.min(u16::MAX as u32) as u16;
        let slots = idx.num_sets() as usize * assoc as usize;
        AbstractCache {
            assoc,
            idx,
            tags: vec![0; slots],
            ages: vec![0; slots],
            occ: vec![0; idx.num_sets() as usize],
        }
    }

    /// Whether the line holding `addr` is guaranteed present.
    pub fn contains(&self, addr: u32) -> bool {
        let (set, tag) = self.idx.set_and_tag(addr);
        let base = set as usize * self.assoc as usize;
        self.tags[base..base + self.occ[set as usize] as usize].contains(&tag)
    }

    /// Join (control-flow merge): intersection with maximum age. The
    /// by-value form used by tests; the fixpoint uses [`Self::join_into`].
    pub fn join(&self, other: &AbstractCache) -> AbstractCache {
        let mut out = self.clone();
        out.join_into(other);
        out
    }

    /// In-place join `self ← self ⊓ other`: per-set intersection with
    /// maximum age. Returns whether `self` changed — the fixpoint's change
    /// detection, replacing whole-state comparisons. Sets with nothing
    /// guaranteed in `self` are skipped outright (they cannot shrink), so
    /// a join after a call-clobber touches no slots at all.
    pub fn join_into(&mut self, other: &AbstractCache) -> bool {
        debug_assert_eq!(self.assoc, other.assoc, "geometry mismatch in join");
        debug_assert_eq!(self.occ.len(), other.occ.len(), "geometry mismatch");
        let a = self.assoc as usize;
        let mut changed = false;
        for set in 0..self.occ.len() {
            let n = self.occ[set] as usize;
            if n == 0 {
                continue; // Already bottom-of-set: intersection is a no-op.
            }
            let base = set * a;
            let on = other.occ[set] as usize;
            let otags = &other.tags[base..base + on];
            let oages = &other.ages[base..base + on];
            let mut w = 0usize;
            for r in 0..n {
                let t = self.tags[base + r];
                let g = self.ages[base + r];
                match otags.iter().position(|&x| x == t) {
                    Some(p) => {
                        let m = g.max(oages[p]);
                        changed |= m != g;
                        self.tags[base + w] = t;
                        self.ages[base + w] = m;
                        w += 1;
                    }
                    None => changed = true,
                }
            }
            self.occ[set] = w as u16;
        }
        changed
    }

    /// An exact-address read: returns whether it is a guaranteed hit, then
    /// updates the state in place — promote the line to age 0 and age the
    /// younger lines (LRU), or collapse the set to just the accessed line
    /// on a possible miss (random/round-robin, where a miss may evict any
    /// line of the set).
    pub fn access_read_exact(&mut self, addr: u32, lru: bool) -> bool {
        let (set, tag) = self.idx.set_and_tag(addr);
        let assoc = self.assoc;
        let base = set as usize * assoc as usize;
        let n = self.occ[set as usize] as usize;
        let hit_age = self.tags[base..base + n]
            .iter()
            .position(|&t| t == tag)
            .map(|p| self.ages[base + p]);
        if lru {
            let old_age = hit_age.unwrap_or(assoc);
            let mut w = 0usize;
            for r in 0..n {
                let t = self.tags[base + r];
                if t == tag {
                    continue; // Reinserted at age 0 below.
                }
                let mut g = self.ages[base + r];
                if g < old_age {
                    g += 1;
                }
                if g < assoc {
                    self.tags[base + w] = t;
                    self.ages[base + w] = g;
                    w += 1;
                }
            }
            self.tags[base + w] = tag;
            self.ages[base + w] = 0;
            self.occ[set as usize] = (w + 1) as u16;
        } else if let Some(p) = self.tags[base..base + n].iter().position(|&t| t == tag) {
            self.ages[base + p] = 0;
        } else {
            self.tags[base] = tag;
            self.ages[base] = 0;
            self.occ[set as usize] = 1;
        }
        hit_age.is_some()
    }

    /// The *uncertain* read update `join(s, update(s))` — for an access
    /// that may or may not occur (e.g. an L2 access behind an L1 that
    /// could not be classified). Sound in both worlds; equivalent to a
    /// whole-state clone + update + join, but computed in place on the one
    /// set the address maps to. Returns whether the line was guaranteed
    /// present *before* the access.
    pub fn access_read_uncertain(&mut self, addr: u32, lru: bool) -> bool {
        let (set, tag) = self.idx.set_and_tag(addr);
        let assoc = self.assoc;
        let base = set as usize * assoc as usize;
        let n = self.occ[set as usize] as usize;
        let hit_age = self.tags[base..base + n]
            .iter()
            .position(|&t| t == tag)
            .map(|p| self.ages[base + p]);
        if lru {
            // Joining s with update(s): the accessed tag keeps its old age
            // (max with 0); every other line takes its aged value (max of
            // old and old+1) and drops out when aging would evict it.
            let old_age = hit_age.unwrap_or(assoc);
            let mut w = 0usize;
            for r in 0..n {
                let t = self.tags[base + r];
                let g = self.ages[base + r];
                let g2 = if t == tag {
                    g
                } else if g < old_age {
                    g + 1
                } else {
                    g
                };
                if g2 < assoc {
                    self.tags[base + w] = t;
                    self.ages[base + w] = g2;
                    w += 1;
                }
            }
            self.occ[set as usize] = w as u16;
        } else if hit_age.is_none() {
            // update(s) collapses the set to the accessed line, which is
            // not in s: the intersection is empty.
            self.occ[set as usize] = 0;
        }
        // On a non-LRU hit, update(s) only re-inserts the tag at age 0 and
        // the join takes the (older) existing age: s is unchanged.
        hit_age.is_some()
    }

    /// One *possible* access to `set` (unknown address): ages the set (LRU)
    /// or clears it (random/round-robin).
    pub fn weaken_set(&mut self, set: usize, lru: bool) {
        let assoc = self.assoc;
        let base = set * assoc as usize;
        let n = self.occ[set] as usize;
        if !lru {
            self.occ[set] = 0;
            return;
        }
        let mut w = 0usize;
        for r in 0..n {
            let g = self.ages[base + r] + 1;
            if g < assoc {
                self.tags[base + w] = self.tags[base + r];
                self.ages[base + w] = g;
                w += 1;
            }
        }
        self.occ[set] = w as u16;
    }

    /// An access somewhere in `[lo, hi)`: weakens every candidate set.
    pub fn weaken_range(&mut self, lo: u32, hi: u32, lru: bool) {
        if hi <= lo {
            return;
        }
        let num_sets = self.idx.num_sets();
        let first_line = self.idx.line_of(lo);
        let last_line = self.idx.line_of(hi - 1);
        if (last_line - first_line) as u64 + 1 >= num_sets as u64 {
            for s in 0..num_sets as usize {
                self.weaken_set(s, lru);
            }
            return;
        }
        let mut line = first_line;
        loop {
            self.weaken_set((line % num_sets) as usize, lru);
            if line == last_line {
                break;
            }
            line += 1;
        }
    }

    /// Forgets everything (function-call clobber).
    pub fn clear(&mut self) {
        self.occ.fill(0);
    }

    /// Total guaranteed lines (diagnostics).
    pub fn guaranteed_lines(&self) -> usize {
        self.occ.iter().map(|&n| n as usize).sum()
    }

    /// Applies the worst-case interference of a called function to this
    /// MUST state: every guaranteed line ages by the number of *distinct*
    /// conflicting lines the callee may load into its set (`footprint`),
    /// dropping out at `assoc`; a set with an unbounded footprint loses
    /// everything; under non-LRU replacement any possible conflicting
    /// access may evict, so a single conflict clears the line. The
    /// callee's own exit guarantees (`exit_must`, computed from a TOP
    /// entry so they hold in any context) are then unioned in with
    /// minimum age — both bounds are valid upper bounds on the true age.
    pub fn apply_call(
        &mut self,
        footprint: &MayCache,
        exit_must: Option<&AbstractCache>,
        lru: bool,
    ) {
        debug_assert_eq!(self.occ.len(), footprint.occ.len(), "geometry mismatch");
        let a = self.assoc as usize;
        for set in 0..self.occ.len() {
            let base = set * a;
            let n = self.occ[set] as usize;
            if n > 0 {
                if footprint.top[set] {
                    self.occ[set] = 0;
                } else {
                    let fbase = set * footprint.cap as usize;
                    let ftags = &footprint.tags[fbase..fbase + footprint.occ[set] as usize];
                    let mut w = 0usize;
                    for r in 0..n {
                        let t = self.tags[base + r];
                        let conflicts = ftags.iter().filter(|&&x| x != t).count();
                        if lru {
                            let g2 = self.ages[base + r] as usize + conflicts;
                            if g2 < a {
                                self.tags[base + w] = t;
                                self.ages[base + w] = g2 as u16;
                                w += 1;
                            }
                        } else if conflicts == 0 {
                            self.tags[base + w] = t;
                            self.ages[base + w] = self.ages[base + r];
                            w += 1;
                        }
                    }
                    self.occ[set] = w as u16;
                }
            }
            if let Some(em) = exit_must {
                let en = em.occ[set] as usize;
                for r in 0..en {
                    let t = em.tags[base + r];
                    let g = em.ages[base + r];
                    let n = self.occ[set] as usize;
                    match self.tags[base..base + n].iter().position(|&x| x == t) {
                        Some(p) => self.ages[base + p] = self.ages[base + p].min(g),
                        None if n < a => {
                            self.tags[base + n] = t;
                            self.ages[base + n] = g;
                            self.occ[set] = (n + 1) as u16;
                        }
                        None => {}
                    }
                }
            }
        }
    }

    /// Canonical per-set `(tag, age)` listing, sorted by tag — the shape
    /// the differential tests compare against the reference model.
    #[cfg(test)]
    pub(crate) fn dump(&self) -> Vec<Vec<(u32, u16)>> {
        let a = self.assoc as usize;
        self.occ
            .iter()
            .enumerate()
            .map(|(set, &n)| {
                let base = set * a;
                let mut v: Vec<(u32, u16)> = (0..n as usize)
                    .map(|r| (self.tags[base + r], self.ages[base + r]))
                    .collect();
                v.sort_unstable();
                v
            })
            .collect()
    }
}

/// The abstract MAY cache — the dual of [`AbstractCache`], packed the same
/// way for the analyzer's hot path.
///
/// Where the MUST cache under-approximates (a line in the state is
/// *guaranteed* present, ages are upper bounds), the MAY cache
/// over-approximates: a line **absent** from a set is *guaranteed not* in
/// the concrete cache on any path reaching the program point, and ages are
/// **lower** bounds. That absence is exactly the Hardy–Puaut **Always-Miss**
/// classification: an access whose line is MAY-absent from its L1 can never
/// hit there, so it *always* continues to the next level (cache access
/// classification `A`), which in turn lets the L2 MUST analysis take the
/// *certain* update and prove L2 hits behind an L1.
///
/// Lattice: bigger = more lines possible, with smaller ages. The join is
/// **union with minimum age** (any merged path's contents remain possible);
/// the analysis start state at program boot is [`MayCache::cold`] — the
/// empty state, because the hardware powers up with every line invalid —
/// and the conservative element is [`MayCache::top`], "anything may be
/// cached", used after calls into unanalyzed context and as the safe
/// fallback.
///
/// Representation: the same flat strided slot store as the MUST domain,
/// except that a MAY set can hold *more* than `assoc` candidate lines (the
/// union join accumulates lines from different paths), so each set owns
/// `cap ≥ assoc` slots plus a `top` flag; any operation that would overflow
/// the stride widens the set to `top`, which is always sound and only
/// costs precision. The `BTreeMap` reference model lives in
/// [`reference`] (`#[cfg(test)]`) and the proptest differential suite
/// drives both through random operation sequences.
///
/// ```
/// use spmlab_isa::cachecfg::CacheConfig;
/// use spmlab_wcet::cache::MayCache;
///
/// let cfg = CacheConfig::unified(64); // direct-mapped, 16-byte lines
/// let mut may = MayCache::cold(&cfg);
/// assert!(!may.contains(0x0010_0000), "cold caches hold nothing");
/// may.access_read_exact(0x0010_0000, true);
/// assert!(may.contains(0x0010_0000));
/// // A definite access to a conflicting line evicts it from the
/// // direct-mapped MAY state: the next access is a provable Always-Miss.
/// may.access_read_exact(0x0010_0040, true);
/// assert!(!may.contains(0x0010_0000));
/// ```
#[derive(Debug, Clone)]
pub struct MayCache {
    assoc: u16,
    /// Slots per set (`>= assoc`); overflowing a stride widens to `top`.
    cap: u16,
    idx: spmlab_isa::cachecfg::SetIndexer,
    /// Slot tags, `cap`-strided per set.
    tags: Vec<u32>,
    /// Lower age bound per slot (0 = may be most recently used).
    ages: Vec<u16>,
    /// Occupied slot count per set (meaningless while `top`).
    occ: Vec<u16>,
    /// Per-set "anything may be cached" flag.
    top: Vec<bool>,
}

/// Extra slots beyond `assoc` a MAY set keeps before widening to `top`;
/// sized so whole-function footprints (the interprocedural call
/// summaries) and ordinary join fan-in stay representable for the
/// benchmark suite's code sizes.
const MAY_EXTRA_SLOTS: u16 = 24;

/// Equality is per-set *set* equality plus the `top` flags (slot order is
/// an implementation artifact, and ages are ignored for `top` sets).
impl PartialEq for MayCache {
    fn eq(&self, other: &MayCache) -> bool {
        self.assoc == other.assoc && self.dump() == other.dump()
    }
}

impl Eq for MayCache {}

impl MayCache {
    fn with_tops(cfg: &CacheConfig, top: bool) -> MayCache {
        let idx = cfg.indexer();
        let assoc = cfg.assoc.min(u16::MAX as u32) as u16;
        let cap = assoc.saturating_add(MAY_EXTRA_SLOTS);
        let sets = idx.num_sets() as usize;
        MayCache {
            assoc,
            cap,
            idx,
            tags: vec![0; sets * cap as usize],
            ages: vec![0; sets * cap as usize],
            occ: vec![0; sets],
            top: vec![top; sets],
        }
    }

    /// The boot state: every line invalid, so *nothing* may be cached.
    pub fn cold(cfg: &CacheConfig) -> MayCache {
        MayCache::with_tops(cfg, false)
    }

    /// The conservative state: anything may be cached (no Always-Miss can
    /// be proven anywhere).
    pub fn top(cfg: &CacheConfig) -> MayCache {
        MayCache::with_tops(cfg, true)
    }

    /// Whether the line holding `addr` *may* be present. `false` is the
    /// proof: the line is definitely not cached (Always-Miss).
    pub fn contains(&self, addr: u32) -> bool {
        let (set, tag) = self.idx.set_and_tag(addr);
        if self.top[set as usize] {
            return true;
        }
        let base = set as usize * self.cap as usize;
        self.tags[base..base + self.occ[set as usize] as usize].contains(&tag)
    }

    fn widen_set(&mut self, set: usize) {
        self.top[set] = true;
        self.occ[set] = 0;
    }

    /// An exact-address read that definitely occurs: returns whether the
    /// line *may* have been present before, then applies the concrete
    /// update's best case. Under LRU the accessed line moves to age 0 and
    /// every line whose lower bound is ≤ the accessed line's old bound
    /// ages by one (it *may* stay put only if it was already older), so
    /// lines reaching `assoc` are definitely evicted. Under random /
    /// round-robin no line can ever be proven evicted, so lines only
    /// accumulate (until the stride widens to `top`).
    pub fn access_read_exact(&mut self, addr: u32, lru: bool) -> bool {
        let (set, tag) = self.idx.set_and_tag(addr);
        let set = set as usize;
        if self.top[set] {
            return true;
        }
        let assoc = self.assoc;
        let base = set * self.cap as usize;
        let n = self.occ[set] as usize;
        let hit_age = self.tags[base..base + n]
            .iter()
            .position(|&t| t == tag)
            .map(|p| self.ages[base + p]);
        let mut w = 0usize;
        for r in 0..n {
            let t = self.tags[base + r];
            if t == tag {
                continue; // Reinserted at age 0 below.
            }
            let mut g = self.ages[base + r];
            if lru {
                // Shift iff the line may be younger-or-equal to the
                // accessed one (g ≤ its old lower bound); a definite miss
                // (hit_age None) shifts everyone.
                if hit_age.is_none_or(|ha| g <= ha) {
                    g += 1;
                }
                if g >= assoc {
                    continue; // Definitely evicted even in the best case.
                }
            }
            self.tags[base + w] = t;
            self.ages[base + w] = g;
            w += 1;
        }
        if w >= self.cap as usize {
            self.widen_set(set);
            return hit_age.is_some();
        }
        self.tags[base + w] = tag;
        self.ages[base + w] = 0;
        self.occ[set] = (w + 1) as u16;
        hit_age.is_some()
    }

    /// The *uncertain* read update `join(s, update(s))` — for an access
    /// that may or may not occur. In the MAY domain the join takes minimum
    /// ages, so every existing line keeps its (smaller) pre-access bound
    /// and the accessed line is simply inserted/promoted to age 0. Returns
    /// whether the line may have been present before.
    pub fn access_read_uncertain(&mut self, addr: u32) -> bool {
        let (set, tag) = self.idx.set_and_tag(addr);
        let set = set as usize;
        if self.top[set] {
            return true;
        }
        let base = set * self.cap as usize;
        let n = self.occ[set] as usize;
        match self.tags[base..base + n].iter().position(|&t| t == tag) {
            Some(p) => {
                self.ages[base + p] = 0;
                true
            }
            None => {
                if n >= self.cap as usize {
                    self.widen_set(set);
                } else {
                    self.tags[base + n] = tag;
                    self.ages[base + n] = 0;
                    self.occ[set] = (n + 1) as u16;
                }
                false
            }
        }
    }

    /// A possible read somewhere in `[lo, hi)`: any line of the range may
    /// now be cached, so every candidate set widens to `top`.
    pub fn weaken_range(&mut self, lo: u32, hi: u32) {
        if hi <= lo {
            return;
        }
        let num_sets = self.idx.num_sets();
        let first_line = self.idx.line_of(lo);
        let last_line = self.idx.line_of(hi - 1);
        if (last_line - first_line) as u64 + 1 >= num_sets as u64 {
            self.make_top();
            return;
        }
        let mut line = first_line;
        loop {
            self.widen_set((line % num_sets) as usize);
            if line == last_line {
                break;
            }
            line += 1;
        }
    }

    /// Forgets every impossibility: anything may be cached (function-call
    /// clobber — the dual of the MUST domain's `clear`).
    pub fn make_top(&mut self) {
        self.top.iter_mut().for_each(|t| *t = true);
        self.occ.fill(0);
    }

    /// Records that the line holding `addr` may be (or definitely is)
    /// loaded at some point — used to build the call summaries' footprint
    /// and definite-access sets. Equivalent to an uncertain access.
    pub fn add_line(&mut self, addr: u32) {
        self.access_read_uncertain(addr);
    }

    /// In-place join `self ← self ⊔ other`: per-set union with minimum
    /// age; `top` absorbs. Returns whether `self` changed.
    pub fn join_into(&mut self, other: &MayCache) -> bool {
        debug_assert_eq!(self.assoc, other.assoc, "geometry mismatch in join");
        debug_assert_eq!(self.occ.len(), other.occ.len(), "geometry mismatch");
        let cap = self.cap as usize;
        let mut changed = false;
        for set in 0..self.occ.len() {
            if self.top[set] {
                continue; // Already everything.
            }
            if other.top[set] {
                self.widen_set(set);
                changed = true;
                continue;
            }
            let base = set * cap;
            let on = other.occ[set] as usize;
            for r in 0..on {
                if self.top[set] {
                    break;
                }
                let t = other.tags[base + r];
                let g = other.ages[base + r];
                let n = self.occ[set] as usize;
                match self.tags[base..base + n].iter().position(|&x| x == t) {
                    Some(p) => {
                        if g < self.ages[base + p] {
                            self.ages[base + p] = g;
                            changed = true;
                        }
                    }
                    None => {
                        if n >= cap {
                            self.widen_set(set);
                        } else {
                            self.tags[base + n] = t;
                            self.ages[base + n] = g;
                            self.occ[set] = (n + 1) as u16;
                        }
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// Applies the worst-case interference of a called function to this
    /// MAY state: every surviving candidate line's lower age bound is
    /// raised to the number of *distinct* lines the callee **definitely**
    /// accesses in its set (each of which is younger than the candidate
    /// at exit, or evicted it along the way), dropping candidates that
    /// reach `assoc`; then everything the callee *may* load (`footprint`)
    /// becomes possible via the union join. Under non-LRU replacement
    /// definite accesses never prove eviction, so ages are left alone.
    ///
    /// The raise is `max(age, definite)` rather than `age + definite`: a
    /// definitely-accessed line may already have been among the ones
    /// younger than the candidate, so the two counts cannot be summed.
    pub fn apply_call(&mut self, definite: &MayCache, footprint: &MayCache, lru: bool) {
        debug_assert_eq!(self.occ.len(), definite.occ.len(), "geometry mismatch");
        let assoc = self.assoc as usize;
        let cap = self.cap as usize;
        if lru {
            for set in 0..self.occ.len() {
                if self.top[set] {
                    continue;
                }
                let n = self.occ[set] as usize;
                if n == 0 {
                    continue;
                }
                let base = set * cap;
                let dtop = definite.top[set];
                let dbase = set * definite.cap as usize;
                let dtags = if dtop {
                    &[][..]
                } else {
                    &definite.tags[dbase..dbase + definite.occ[set] as usize]
                };
                let mut w = 0usize;
                for r in 0..n {
                    let t = self.tags[base + r];
                    // A widened definite set recorded more distinct lines
                    // than the stride holds — certainly enough to evict.
                    let d = if dtop {
                        assoc
                    } else {
                        dtags.iter().filter(|&&x| x != t).count()
                    };
                    let g2 = (self.ages[base + r] as usize).max(d);
                    if g2 < assoc {
                        self.tags[base + w] = t;
                        self.ages[base + w] = g2 as u16;
                        w += 1;
                    }
                }
                self.occ[set] = w as u16;
            }
        }
        self.join_into(footprint);
    }

    /// Canonical per-set listing: `None` for a `top` set, otherwise the
    /// `(tag, age)` pairs sorted by tag — the shape the differential tests
    /// compare against the reference model (also used by `PartialEq`).
    fn dump(&self) -> Vec<Option<Vec<(u32, u16)>>> {
        let cap = self.cap as usize;
        self.occ
            .iter()
            .enumerate()
            .map(|(set, &n)| {
                if self.top[set] {
                    return None;
                }
                let base = set * cap;
                let mut v: Vec<(u32, u16)> = (0..n as usize)
                    .map(|r| (self.tags[base + r], self.ages[base + r]))
                    .collect();
                v.sort_unstable();
                Some(v)
            })
            .collect()
    }
}

/// Applies a block's accesses to the abstract state (the MUST transfer
/// function). `clobber_calls` controls whether `BL` clears the state.
pub fn transfer_block(state: &mut AbstractCache, block: &BasicBlock, ctx: &CacheCtx) {
    let lru = ctx.lru();
    for (addr, insn) in &block.insns {
        // Instruction fetches (16-bit each; BL fetches two halfwords).
        for off in (0..insn.size()).step_by(2) {
            let a = addr + off;
            if ctx.is_main(a) {
                state.access_read_exact(a, lru);
            }
        }
        // Data accesses.
        for acc in data_accesses(insn, *addr, ctx.annot) {
            apply_data_access(state, &acc, ctx);
        }
        if matches!(insn, Insn::Bl { .. }) {
            // The callee may touch anything.
            state.clear();
        }
    }
}

fn apply_data_access(state: &mut AbstractCache, acc: &DataAccess, ctx: &CacheCtx) {
    if acc.is_write || !ctx.data_cached() {
        return; // Write-through/no-allocate writes and bypassed data.
    }
    let lru = ctx.lru();
    match acc.info {
        AddrInfo::Exact(a) => {
            if ctx.is_main(a) {
                state.access_read_exact(a, lru);
            }
        }
        AddrInfo::Range { lo, hi } => {
            // Entirely scratchpad → bypasses the cache.
            if ctx.map.region_of(lo) == RegionKind::Scratchpad
                && ctx.map.region_of(hi.saturating_sub(1)) == RegionKind::Scratchpad
            {
                return;
            }
            state.weaken_range(lo, hi, lru);
        }
        AddrInfo::Stack | AddrInfo::Unknown => {
            state.weaken_range(0, u32::MAX, lru);
        }
    }
}

/// MUST-analysis fixpoint: in-state per block, plus the solver accounting
/// (`widened` when the iteration budget forced the top-state fallback).
pub fn must_fixpoint(
    cfg: &FuncCfg,
    ctx: &CacheCtx,
) -> crate::fixpoint::FixpointResult<AbstractCache> {
    crate::fixpoint::must_fixpoint(
        cfg,
        || AbstractCache::top(ctx.cache),
        AbstractCache::top(ctx.cache),
        AbstractCache::join_into,
        |s, block| transfer_block(s, block, ctx),
        64 * ctx.cache.assoc as usize,
        ctx.budget,
    )
}

/// Classification statistics for one function.
///
/// The multi-level analysis buckets every access by its L1 cache-hit/miss
/// classification (CHMC): **Always-Hit** (`fetch_hits`/`data_hits`),
/// **Always-Miss** (`fetch_always_miss`/`data_always_miss`, proven by the
/// MAY analysis), or **Not-Classified** (`*_unclassified`). `l2_hits`
/// counts the accesses that continue past the L1 (Always-Miss or
/// Not-Classified at L1, or L1-less traffic) whose line is additionally
/// *guaranteed* in the L2 — the classifications the Hardy–Puaut filter
/// exists to recover.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyStats {
    /// Fetches classified always-hit.
    pub fetch_hits: u64,
    /// Fetches that must be assumed misses.
    pub fetch_unclassified: u64,
    /// Data reads classified always-hit.
    pub data_hits: u64,
    /// Data reads assumed misses.
    pub data_unclassified: u64,
    /// Accesses classified persistent (first-miss).
    pub persistent: u64,
    /// Fetches proven Always-Miss at their L1 by the MAY analysis
    /// (multi-level analyses only) — these *certainly* access the L2.
    pub fetch_always_miss: u64,
    /// Data reads proven Always-Miss at their L1.
    pub data_always_miss: u64,
    /// Accesses continuing past the L1 that are guaranteed to hit the L2
    /// (multi-level analyses only).
    pub l2_hits: u64,
    /// Stores absorbed by a write-back level whose target line was
    /// **provably dirty already** — charged without a fresh write-back
    /// obligation (write-back configurations only; see
    /// [`crate::dirty`]).
    pub store_always_dirty: u64,
    /// Stores charged the worst-case write-back obligation (not provably
    /// dirty; write-back configurations only).
    pub store_write_backs: u64,
}

impl ClassifyStats {
    /// The stats as a fixed-order array — the checkpoint wire format.
    /// Order matches the field declaration order; [`ClassifyStats::from_array`]
    /// is the inverse.
    pub fn to_array(&self) -> [u64; 10] {
        [
            self.fetch_hits,
            self.fetch_unclassified,
            self.data_hits,
            self.data_unclassified,
            self.persistent,
            self.fetch_always_miss,
            self.data_always_miss,
            self.l2_hits,
            self.store_always_dirty,
            self.store_write_backs,
        ]
    }

    /// Rebuilds stats from the [`ClassifyStats::to_array`] wire order.
    pub fn from_array(a: [u64; 10]) -> ClassifyStats {
        ClassifyStats {
            fetch_hits: a[0],
            fetch_unclassified: a[1],
            data_hits: a[2],
            data_unclassified: a[3],
            persistent: a[4],
            fetch_always_miss: a[5],
            data_always_miss: a[6],
            l2_hits: a[7],
            store_always_dirty: a[8],
            store_write_backs: a[9],
        }
    }

    /// Merges another function's stats in.
    pub fn absorb(&mut self, o: ClassifyStats) {
        self.fetch_hits += o.fetch_hits;
        self.fetch_unclassified += o.fetch_unclassified;
        self.data_hits += o.data_hits;
        self.data_unclassified += o.data_unclassified;
        self.persistent += o.persistent;
        self.fetch_always_miss += o.fetch_always_miss;
        self.data_always_miss += o.data_always_miss;
        self.l2_hits += o.l2_hits;
        self.store_always_dirty += o.store_always_dirty;
        self.store_write_backs += o.store_write_backs;
    }
}

/// Persistence assignment: cache line → header of the outermost loop in
/// which the line is persistent (eviction-free once loaded).
#[derive(Debug, Clone, Default)]
pub struct Persistence {
    line_to_loop: BTreeMap<u32, u32>,
    /// Extra cost per loop entry: header → penalty cycles.
    pub entry_penalties: BTreeMap<u32, u64>,
    block_to_loops: BTreeMap<u32, Vec<u32>>,
}

impl Persistence {
    /// No persistence analysis (the paper's ARM7-aiT configuration).
    pub fn disabled() -> Persistence {
        Persistence::default()
    }

    /// Whether the access to `addr` from `block` counts as persistent-hit.
    pub fn is_persistent(&self, line_size: u32, addr: u32, block: u32) -> bool {
        let line = addr / line_size * line_size;
        match self.line_to_loop.get(&line) {
            Some(h) => self
                .block_to_loops
                .get(&block)
                .is_some_and(|hs| hs.contains(h)),
            None => false,
        }
    }
}

/// Computes first-miss persistence per loop: a line is persistent in a
/// loop when nothing in the loop can evict it — no calls, no
/// unknown-address reads touching its set, and at most `assoc` distinct
/// guaranteed lines mapping to the set.
pub fn persistence(cfg: &FuncCfg, loops: &[NaturalLoop], ctx: &CacheCtx) -> Persistence {
    let mut p = Persistence::default();
    let line_size = ctx.cache.line;
    let miss_penalty = ctx.cache.miss_cycles().max(ctx.cache.hit_cycles()) - ctx.cache.hit_cycles();
    // Loops sorted inner-first; process outermost last so the outermost
    // persistent loop wins.
    for l in loops {
        let mut exact_lines: Vec<u32> = Vec::new();
        let mut dirty_sets: Vec<bool> = vec![false; ctx.cache.num_sets() as usize];
        let mut has_call = false;
        for baddr in &l.body {
            let block = &cfg.blocks[baddr];
            for (addr, insn) in &block.insns {
                if matches!(insn, Insn::Bl { .. }) {
                    has_call = true;
                }
                for off in (0..insn.size()).step_by(2) {
                    let a = addr + off;
                    if ctx.is_main(a) {
                        exact_lines.push(a / line_size * line_size);
                    }
                }
                for acc in data_accesses(insn, *addr, ctx.annot) {
                    if acc.is_write || !ctx.data_cached() {
                        continue;
                    }
                    match acc.info {
                        AddrInfo::Exact(a) => {
                            if ctx.is_main(a) {
                                exact_lines.push(a / line_size * line_size);
                            }
                        }
                        AddrInfo::Range { lo, hi } => {
                            if ctx.map.region_of(lo) == RegionKind::Scratchpad
                                && ctx.map.region_of(hi.saturating_sub(1)) == RegionKind::Scratchpad
                            {
                                continue;
                            }
                            mark_dirty(&mut dirty_sets, lo, hi, ctx.cache);
                        }
                        AddrInfo::Stack | AddrInfo::Unknown => {
                            dirty_sets.iter_mut().for_each(|d| *d = true);
                        }
                    }
                }
            }
        }
        if has_call {
            continue;
        }
        exact_lines.sort_unstable();
        exact_lines.dedup();
        // Count lines per set.
        let mut per_set: BTreeMap<u32, u32> = BTreeMap::new();
        for &line in &exact_lines {
            *per_set.entry(ctx.cache.set_of(line)).or_insert(0) += 1;
        }
        for &line in &exact_lines {
            let set = ctx.cache.set_of(line);
            if dirty_sets[set as usize] || per_set[&set] > ctx.cache.assoc {
                continue;
            }
            // Outermost wins: loops are inner-first, so overwrite.
            p.line_to_loop.insert(line, l.header);
        }
    }
    // Penalties: one first-miss per persistent line, charged per entry of
    // its loop; and record loop membership per block.
    for (&line, &header) in &p.line_to_loop {
        let _ = line;
        *p.entry_penalties.entry(header).or_insert(0) += miss_penalty;
    }
    for l in loops {
        for &b in &l.body {
            p.block_to_loops.entry(b).or_default().push(l.header);
        }
    }
    p
}

fn mark_dirty(dirty: &mut [bool], lo: u32, hi: u32, cfg: &CacheConfig) {
    if hi <= lo {
        return;
    }
    let first = lo / cfg.line;
    let last = (hi - 1) / cfg.line;
    if last - first + 1 >= cfg.num_sets() {
        dirty.iter_mut().for_each(|d| *d = true);
        return;
    }
    let mut l = first;
    loop {
        dirty[(l % cfg.num_sets()) as usize] = true;
        if l == last {
            break;
        }
        l += 1;
    }
}

/// Per-address classification record: which instruction addresses carry a
/// *proof* from the abstract analyses. The soundness test-suite checks
/// every set against the simulator's per-instruction counters:
///
/// * `*_always_hit` — MUST proofs: the access can never miss its first
///   cache level in any concrete run;
/// * `*_l1_always_miss` — MAY proofs (multi-level analyses only): the
///   access can never *hit* its L1, so it always continues to the next
///   level — the Hardy–Puaut Always-Miss filter;
/// * `*_l2_always_hit` — combined proofs (multi-level analyses only):
///   whenever the access consults the L2, the line is guaranteed there,
///   so the access can never miss the L2.
///
/// An instruction address enters a set only when *every* access it
/// performs of that kind carries the proof (e.g. both halfword fetches of
/// a 32-bit `BL`), which is what makes the per-instruction simulator
/// counters directly comparable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Classification {
    /// Instruction addresses whose fetch is always-hit.
    pub fetch_always_hit: BTreeSet<u32>,
    /// Instruction addresses whose (exact-address) data read is always-hit.
    pub data_always_hit: BTreeSet<u32>,
    /// Instruction addresses whose every fetch is Always-Miss at the L1.
    pub fetch_l1_always_miss: BTreeSet<u32>,
    /// Instruction addresses whose every data read is Always-Miss at the
    /// L1.
    pub data_l1_always_miss: BTreeSet<u32>,
    /// Instruction addresses whose every L2-consulting fetch is guaranteed
    /// to hit the L2.
    pub fetch_l2_always_hit: BTreeSet<u32>,
    /// Instruction addresses whose every L2-consulting data read is
    /// guaranteed to hit the L2.
    pub data_l2_always_hit: BTreeSet<u32>,
}

use std::collections::BTreeSet;

impl Classification {
    /// Merges another function's classification.
    pub fn absorb(&mut self, o: &Classification) {
        self.fetch_always_hit
            .extend(o.fetch_always_hit.iter().copied());
        self.data_always_hit
            .extend(o.data_always_hit.iter().copied());
        self.fetch_l1_always_miss
            .extend(o.fetch_l1_always_miss.iter().copied());
        self.data_l1_always_miss
            .extend(o.data_l1_always_miss.iter().copied());
        self.fetch_l2_always_hit
            .extend(o.fetch_l2_always_hit.iter().copied());
        self.data_l2_always_hit
            .extend(o.data_l2_always_hit.iter().copied());
    }
}

/// Worst-case cost of one block under the cache model, starting from its
/// MUST in-state. `callee_wcet` supplies the WCET bound of each callee.
/// Always-hit proofs are recorded into `classification` (persistent
/// first-miss accesses are *not* recorded — they may miss once per loop
/// entry).
pub fn block_cost(
    block: &BasicBlock,
    in_state: &AbstractCache,
    ctx: &CacheCtx,
    persistence_info: &Persistence,
    callee_wcet: &BTreeMap<u32, u64>,
    stats: &mut ClassifyStats,
    classification: &mut Classification,
) -> u64 {
    let lru = ctx.lru();
    let mut state = in_state.clone();
    let mut cost = 0u64;
    let hit = ctx.cache.hit_cycles();
    // An unclassified access may still hit in the concrete cache, so the
    // worst-case charge must cover both outcomes (hit_latency is
    // configurable and may exceed the fill cost).
    let miss = ctx.cache.miss_cycles().max(hit);
    let mut calls = block.calls.iter();
    for (addr, insn) in &block.insns {
        cost += 1 + insn.worst_extra_cycles();
        let mut all_fetches_hit = true;
        for off in (0..insn.size()).step_by(2) {
            let a = addr + off;
            match ctx.map.region_of(a) {
                RegionKind::Main => {
                    let guaranteed = state.access_read_exact(a, lru);
                    if guaranteed {
                        stats.fetch_hits += 1;
                        cost += hit;
                    } else if persistence_info.is_persistent(ctx.cache.line, a, block.start) {
                        stats.persistent += 1;
                        all_fetches_hit = false;
                        cost += hit;
                    } else {
                        stats.fetch_unclassified += 1;
                        all_fetches_hit = false;
                        cost += miss;
                    }
                }
                region => {
                    all_fetches_hit = false;
                    cost += access_cycles(region, AccessWidth::Half);
                }
            }
        }
        if all_fetches_hit {
            classification.fetch_always_hit.insert(*addr);
        }
        for acc in data_accesses(insn, *addr, ctx.annot) {
            let before_hits = stats.data_hits;
            cost += data_access_cost(&mut state, &acc, ctx, persistence_info, block.start, stats);
            if stats.data_hits > before_hits {
                classification.data_always_hit.insert(*addr);
            }
        }
        if matches!(insn, Insn::Bl { .. }) {
            let callee = calls.next().expect("calls list matches BL count");
            cost += callee_wcet.get(callee).copied().unwrap_or(0);
            state.clear();
        }
    }
    cost
}

fn data_access_cost(
    state: &mut AbstractCache,
    acc: &DataAccess,
    ctx: &CacheCtx,
    persistence_info: &Persistence,
    block: u32,
    stats: &mut ClassifyStats,
) -> u64 {
    let lru = ctx.lru();
    let hit = ctx.cache.hit_cycles();
    // An unclassified access may still hit in the concrete cache, so the
    // worst-case charge must cover both outcomes (hit_latency is
    // configurable and may exceed the fill cost).
    let miss = ctx.cache.miss_cycles().max(hit);
    if acc.is_write {
        // Write-through: pay the backing-store cost; no state change.
        let region = match acc.info {
            AddrInfo::Exact(a) => ctx.map.region_of(a),
            AddrInfo::Range { lo, hi } => span_region(ctx.map, lo, hi),
            _ => RegionKind::Main,
        };
        return access_cycles(region, acc.width);
    }
    match acc.info {
        AddrInfo::Exact(a) => match ctx.map.region_of(a) {
            RegionKind::Main if ctx.data_cached() => {
                let guaranteed = state.access_read_exact(a, lru);
                if guaranteed {
                    stats.data_hits += 1;
                    hit
                } else if persistence_info.is_persistent(ctx.cache.line, a, block) {
                    stats.persistent += 1;
                    hit
                } else {
                    stats.data_unclassified += 1;
                    miss
                }
            }
            region => access_cycles(region, acc.width),
        },
        AddrInfo::Range { lo, hi } => {
            let region = span_region(ctx.map, lo, hi);
            if region == RegionKind::Scratchpad {
                return access_cycles(region, acc.width);
            }
            if ctx.data_cached() {
                state.weaken_range(lo, hi, lru);
                stats.data_unclassified += 1;
                miss
            } else {
                access_cycles(RegionKind::Main, acc.width)
            }
        }
        AddrInfo::Stack | AddrInfo::Unknown => {
            if ctx.data_cached() {
                state.weaken_range(0, u32::MAX, lru);
                stats.data_unclassified += 1;
                miss
            } else {
                access_cycles(RegionKind::Main, acc.width)
            }
        }
    }
}

/// The single region covering `[lo, hi)`, or `Main` as the safe worst case
/// when the span crosses regions.
pub fn span_region(map: &MemoryMap, lo: u32, hi: u32) -> RegionKind {
    let a = map.region_of(lo);
    let b = map.region_of(hi.saturating_sub(1).max(lo));
    if a == b {
        a
    } else {
        RegionKind::Main
    }
}

/// The original `BTreeMap`-backed MUST domain, retained verbatim as the
/// executable specification of the abstract semantics. The packed
/// [`AbstractCache`] must agree with it *exactly* on every operation; the
/// proptest differential suite below drives both through random access
/// sequences over random geometries and compares full states after every
/// step.
#[cfg(test)]
pub(crate) mod reference {
    use spmlab_isa::cachecfg::CacheConfig;
    use std::collections::BTreeMap;

    /// The reference MUST cache: per set, tag → maximal age.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RefCache {
        assoc: u16,
        num_sets: u32,
        line: u32,
        sets: Vec<BTreeMap<u32, u16>>,
    }

    impl RefCache {
        pub fn top(cfg: &CacheConfig) -> RefCache {
            RefCache {
                assoc: cfg.assoc.min(u16::MAX as u32) as u16,
                num_sets: cfg.num_sets(),
                line: cfg.line,
                sets: vec![BTreeMap::new(); cfg.num_sets() as usize],
            }
        }

        fn set_of(&self, addr: u32) -> usize {
            ((addr / self.line) % self.num_sets) as usize
        }

        fn tag_of(&self, addr: u32) -> u32 {
            (addr / self.line) / self.num_sets
        }

        pub fn contains(&self, addr: u32) -> bool {
            self.sets[self.set_of(addr)].contains_key(&self.tag_of(addr))
        }

        pub fn join(&self, other: &RefCache) -> RefCache {
            let mut sets = Vec::with_capacity(self.sets.len());
            for (a, b) in self.sets.iter().zip(&other.sets) {
                let mut merged = BTreeMap::new();
                for (tag, &age_a) in a {
                    if let Some(&age_b) = b.get(tag) {
                        merged.insert(*tag, age_a.max(age_b));
                    }
                }
                sets.push(merged);
            }
            RefCache {
                assoc: self.assoc,
                num_sets: self.num_sets,
                line: self.line,
                sets,
            }
        }

        fn update_set(lines: &mut BTreeMap<u32, u16>, tag: u32, assoc: u16, lru: bool) {
            let hit = lines.contains_key(&tag);
            if lru {
                let old_age = lines.get(&tag).copied().unwrap_or(assoc);
                for (t, age) in lines.iter_mut() {
                    if *t != tag && *age < old_age {
                        *age += 1;
                    }
                }
                lines.retain(|_, age| *age < assoc);
                lines.insert(tag, 0);
            } else {
                if !hit {
                    lines.clear();
                }
                lines.insert(tag, 0);
            }
        }

        pub fn access_read_exact(&mut self, addr: u32, lru: bool) -> bool {
            let set = self.set_of(addr);
            let tag = self.tag_of(addr);
            let assoc = self.assoc;
            let lines = &mut self.sets[set];
            let hit = lines.contains_key(&tag);
            Self::update_set(lines, tag, assoc, lru);
            hit
        }

        /// The uncertain update by its *definition*: whole-state clone,
        /// update, join.
        pub fn access_read_uncertain(&mut self, addr: u32, lru: bool) -> bool {
            let before = self.contains(addr);
            let mut updated = self.clone();
            updated.access_read_exact(addr, lru);
            *self = self.join(&updated);
            before
        }

        pub fn weaken_set(&mut self, set: usize, lru: bool) {
            let assoc = self.assoc;
            let lines = &mut self.sets[set];
            if lru {
                for age in lines.values_mut() {
                    *age += 1;
                }
                lines.retain(|_, age| *age < assoc);
            } else {
                lines.clear();
            }
        }

        pub fn weaken_range(&mut self, lo: u32, hi: u32, lru: bool) {
            if hi <= lo {
                return;
            }
            let first_line = lo / self.line;
            let last_line = (hi - 1) / self.line;
            if (last_line - first_line) as u64 + 1 >= self.num_sets as u64 {
                for s in 0..self.sets.len() {
                    self.weaken_set(s, lru);
                }
                return;
            }
            let mut line = first_line;
            loop {
                self.weaken_set((line % self.num_sets) as usize, lru);
                if line == last_line {
                    break;
                }
                line += 1;
            }
        }

        pub fn clear(&mut self) {
            for s in &mut self.sets {
                s.clear();
            }
        }

        pub fn guaranteed_lines(&self) -> usize {
            self.sets.iter().map(|s| s.len()).sum()
        }

        /// Canonical per-set `(tag, age)` listing matching
        /// [`super::AbstractCache::dump`].
        pub fn dump(&self) -> Vec<Vec<(u32, u16)>> {
            self.sets
                .iter()
                .map(|s| s.iter().map(|(&t, &g)| (t, g)).collect())
                .collect()
        }
    }

    /// The reference MAY cache: per set, either `Top` (anything may be
    /// cached) or tag → minimal age. The executable specification the
    /// packed [`super::MayCache`] is differentially tested against; it
    /// mirrors the packed domain's widening (sets overflowing
    /// `assoc + MAY_EXTRA_SLOTS` lines go to `Top`) so the two stay
    /// bit-comparable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RefMayCache {
        assoc: u16,
        cap: usize,
        num_sets: u32,
        line: u32,
        /// `None` = top.
        sets: Vec<Option<BTreeMap<u32, u16>>>,
    }

    impl RefMayCache {
        pub fn cold(cfg: &CacheConfig) -> RefMayCache {
            let assoc = cfg.assoc.min(u16::MAX as u32) as u16;
            RefMayCache {
                assoc,
                cap: assoc as usize + super::MAY_EXTRA_SLOTS as usize,
                num_sets: cfg.num_sets(),
                line: cfg.line,
                sets: vec![Some(BTreeMap::new()); cfg.num_sets() as usize],
            }
        }

        fn set_of(&self, addr: u32) -> usize {
            ((addr / self.line) % self.num_sets) as usize
        }

        fn tag_of(&self, addr: u32) -> u32 {
            (addr / self.line) / self.num_sets
        }

        pub fn contains(&self, addr: u32) -> bool {
            match &self.sets[self.set_of(addr)] {
                None => true,
                Some(lines) => lines.contains_key(&self.tag_of(addr)),
            }
        }

        pub fn access_read_exact(&mut self, addr: u32, lru: bool) -> bool {
            let set = self.set_of(addr);
            let tag = self.tag_of(addr);
            let (assoc, cap) = (self.assoc, self.cap);
            let Some(lines) = &mut self.sets[set] else {
                return true;
            };
            let hit_age = lines.get(&tag).copied();
            if lru {
                let mut next = BTreeMap::new();
                for (&t, &g) in lines.iter() {
                    if t == tag {
                        continue;
                    }
                    // Best case: the line keeps its age only when it may
                    // already be older than the accessed line.
                    let g2 = match hit_age {
                        Some(ha) if g > ha => g,
                        _ => g + 1,
                    };
                    if g2 < assoc {
                        next.insert(t, g2);
                    }
                }
                *lines = next;
            } else {
                lines.remove(&tag);
            }
            lines.insert(tag, 0);
            if lines.len() > cap {
                self.sets[set] = None;
            }
            hit_age.is_some()
        }

        /// The uncertain update by its *definition*: clone, update, join.
        pub fn access_read_uncertain(&mut self, addr: u32) -> bool {
            let before = self.contains(addr);
            let mut updated = self.clone();
            updated.access_read_exact(addr, true);
            // The policy is irrelevant under the min-age join: both
            // branches keep every pre-access line at its pre-access age
            // and add the accessed line at 0 — but compute it honestly.
            *self = self.join(&updated);
            before
        }

        pub fn join(&self, other: &RefMayCache) -> RefMayCache {
            let mut out = self.clone();
            for (set, (a, b)) in out.sets.iter_mut().zip(&other.sets).enumerate() {
                let _ = set;
                let merged = match (a.take(), b) {
                    (None, _) | (_, None) => None,
                    (Some(mut m), Some(bl)) => {
                        for (&t, &g) in bl {
                            m.entry(t)
                                .and_modify(|cur| *cur = (*cur).min(g))
                                .or_insert(g);
                        }
                        (m.len() <= self.cap).then_some(m)
                    }
                };
                *a = merged;
            }
            out
        }

        pub fn weaken_range(&mut self, lo: u32, hi: u32) {
            if hi <= lo {
                return;
            }
            let first_line = lo / self.line;
            let last_line = (hi - 1) / self.line;
            if (last_line - first_line) as u64 + 1 >= self.num_sets as u64 {
                self.make_top();
                return;
            }
            let mut line = first_line;
            loop {
                self.sets[(line % self.num_sets) as usize] = None;
                if line == last_line {
                    break;
                }
                line += 1;
            }
        }

        pub fn make_top(&mut self) {
            for s in &mut self.sets {
                *s = None;
            }
        }

        /// Canonical per-set listing matching the packed domain's.
        pub fn dump(&self) -> Vec<Option<Vec<(u32, u16)>>> {
            self.sets
                .iter()
                .map(|s| {
                    s.as_ref()
                        .map(|lines| lines.iter().map(|(&t, &g)| (t, g)).collect())
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (CacheConfig, MemoryMap, AnnotationSet) {
        (
            CacheConfig::unified(64),
            MemoryMap::no_spm(),
            AnnotationSet::new(),
        )
    }

    #[test]
    fn must_exact_access_then_guaranteed() {
        let (cache, map, annot) = ctx_parts();
        let ctx = CacheCtx {
            cache: &cache,
            map: &map,
            annot: &annot,
            budget: crate::fixpoint::FixpointBudget::UNLIMITED,
        };
        let mut s = AbstractCache::top(ctx.cache);
        assert!(!s.access_read_exact(0x0010_0000, true), "cold");
        assert!(s.contains(0x0010_0000));
        assert!(s.access_read_exact(0x0010_0004, true), "same line");
    }

    #[test]
    fn uncertain_access_equals_clone_update_join() {
        // The per-set fast path must match the whole-state definition
        // join(s, update(s)) exactly, for both LRU and collapsing policies.
        for lru in [true, false] {
            let cfg = CacheConfig::set_assoc(128, 2, Replacement::Lru);
            let mut s = AbstractCache::top(&cfg);
            for a in [0x000u32, 0x040, 0x010, 0x080] {
                s.access_read_exact(a, lru);
            }
            for probe in [0x000u32, 0x040, 0x0C0, 0x020] {
                let mut fast = s.clone();
                let before_fast = fast.access_read_uncertain(probe, lru);
                let mut updated = s.clone();
                let before_slow = s.contains(probe);
                updated.access_read_exact(probe, lru);
                let slow = s.join(&updated);
                assert_eq!(fast, slow, "lru={lru} probe={probe:#x}");
                assert_eq!(before_fast, before_slow);
                s = slow;
            }
        }
    }

    #[test]
    fn join_is_intersection_with_max_age() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Lru);
        let mut a = AbstractCache::top(&cfg);
        let mut b = AbstractCache::top(&cfg);
        a.access_read_exact(0x100, true); // in a only
        a.access_read_exact(0x200, true);
        b.access_read_exact(0x200, true);
        let j = a.join(&b);
        assert!(j.contains(0x200));
        assert!(!j.contains(0x100));
    }

    #[test]
    fn direct_mapped_unknown_access_clears_everything() {
        let (cache, map, annot) = ctx_parts();
        let _ = (&map, &annot);
        let mut s = AbstractCache::top(&cache);
        s.access_read_exact(0x0010_0000, true);
        s.weaken_range(0, u32::MAX, true);
        assert_eq!(s.guaranteed_lines(), 0, "assoc 1: one aging evicts all");
    }

    #[test]
    fn two_way_survives_one_unknown_access() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Lru);
        let mut s = AbstractCache::top(&cfg);
        s.access_read_exact(0x100, true);
        s.weaken_range(0, u32::MAX, true);
        assert!(s.contains(0x100), "age 1 < assoc 2: still guaranteed");
        s.weaken_range(0, u32::MAX, true);
        assert!(!s.contains(0x100), "second unknown access may evict");
    }

    #[test]
    fn random_replacement_miss_clears_set() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Random { seed: 1 });
        let mut s = AbstractCache::top(&cfg);
        s.access_read_exact(0x100, false);
        s.access_read_exact(0x140, false); // same set (2 sets × 2 ways... set stride 32)
                                           // A miss on another line of the same set clears guarantees.
        let before = s.guaranteed_lines();
        s.access_read_exact(0x180, false);
        assert!(s.guaranteed_lines() <= before, "miss collapsed the set");
        assert!(s.contains(0x180));
    }

    #[test]
    fn may_cold_start_gives_always_miss_then_possible_hit() {
        let cfg = CacheConfig::unified(64);
        let mut m = MayCache::cold(&cfg);
        assert!(!m.contains(0x0010_0000), "boot: provable Always-Miss");
        assert!(!m.access_read_exact(0x0010_0000, true));
        assert!(m.contains(0x0010_0000), "loaded: may now hit");
        assert!(m.access_read_exact(0x0010_0004, true), "same line");
    }

    #[test]
    fn may_join_is_union_with_min_age() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Lru);
        let mut a = MayCache::cold(&cfg);
        let mut b = MayCache::cold(&cfg);
        a.access_read_exact(0x100, true); // in a only
        b.access_read_exact(0x110, true); // in b only (the other set)
        b.access_read_exact(0x100, true);
        b.access_read_exact(0x120, true); // ages 0x100 to 1 in b
        let changed = a.join_into(&b);
        assert!(changed);
        assert!(a.contains(0x100) && a.contains(0x110) && a.contains(0x120));
        // 0x100 keeps the *minimum* age (0 from a), so a later conflicting
        // access cannot evict it one step early.
        a.access_read_exact(0x120, true);
        assert!(a.contains(0x100), "min age 0 + 1 < assoc 2");
    }

    #[test]
    fn may_definite_conflicts_evict_direct_mapped_lines() {
        let cfg = CacheConfig::unified(64); // direct-mapped
        let mut m = MayCache::cold(&cfg);
        m.access_read_exact(0x0010_0000, true);
        m.access_read_exact(0x0010_0040, true); // same set, other tag
        assert!(!m.contains(0x0010_0000), "definitely evicted");
        assert!(m.contains(0x0010_0040));
    }

    #[test]
    fn may_random_replacement_never_proves_eviction() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Random { seed: 1 });
        let mut m = MayCache::cold(&cfg);
        m.access_read_exact(0x100, false);
        m.access_read_exact(0x140, false);
        m.access_read_exact(0x180, false); // 3 lines, one set, 2 ways
        assert!(
            m.contains(0x100) && m.contains(0x140) && m.contains(0x180),
            "any of them may have survived the random evictions"
        );
    }

    #[test]
    fn may_unknown_access_widens_to_top() {
        let cfg = CacheConfig::unified(64);
        let mut m = MayCache::cold(&cfg);
        m.weaken_range(0, u32::MAX);
        assert!(m.contains(0x0010_0000), "anything may now be cached");
    }

    #[test]
    fn may_overflow_widens_only_the_set() {
        let cfg = CacheConfig::unified(64); // 4 sets, assoc 1, cap 1 + MAY_EXTRA_SLOTS = 25
        let mut m = MayCache::cold(&cfg);
        let mut probes = Vec::new();
        for i in 0..40u32 {
            // 40 distinct tags, all set 0, via uncertain accesses (which
            // never evict): overflows the stride.
            let a = 0x0010_0000 + i * 64;
            m.access_read_uncertain(a);
            probes.push(a);
        }
        for a in probes {
            assert!(m.contains(a));
        }
        assert!(
            !m.contains(0x0010_0010),
            "set 1 untouched: still provably absent"
        );
    }

    #[test]
    fn ranged_write_does_not_change_state() {
        let (cache, map, annot) = ctx_parts();
        let ctx = CacheCtx {
            cache: &cache,
            map: &map,
            annot: &annot,
            budget: crate::fixpoint::FixpointBudget::UNLIMITED,
        };
        let mut s = AbstractCache::top(&cache);
        s.access_read_exact(0x0010_0000, true);
        let acc = DataAccess {
            width: AccessWidth::Word,
            info: AddrInfo::Range {
                lo: 0x0010_0000,
                hi: 0x0010_1000,
            },
            is_write: true,
        };
        apply_data_access(&mut s, &acc, &ctx);
        assert!(s.contains(0x0010_0000), "writes don't evict (no-allocate)");
    }
}

/// Differential suite: the packed [`AbstractCache`] must agree *exactly*
/// with the retained [`reference::RefCache`] BTreeMap model — same hit
/// classifications, same guaranteed-line sets, same ages — over random
/// access sequences and random geometries drawn from the same families the
/// hierarchy sweeps use (L1-like 16-byte-line configs and L2-like
/// 32-byte-line configs, associativities 1–4, all replacement policies).
#[cfg(test)]
mod differential {
    use super::reference::{RefCache, RefMayCache};
    use super::*;
    use proptest::prelude::*;

    /// One abstract-domain operation, decoded from random bits.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Exact(u32),
        Uncertain(u32),
        WeakenRange(u32, u32),
        WeakenAll,
        Clear,
    }

    fn decode_op(kind: u8, a: u32, b: u32) -> Op {
        // Concentrate addresses in a small window so sets collide often.
        let addr = 0x0010_0000 + (a % 0x1800);
        match kind % 8 {
            0..=2 => Op::Exact(addr),
            3 | 4 => Op::Uncertain(addr),
            5 => {
                let lo = 0x0010_0000 + (a % 0x1800);
                Op::WeakenRange(lo, lo + (b % 0x400))
            }
            6 => Op::WeakenAll,
            _ => Op::Clear,
        }
    }

    /// Decodes an arbitrary seed into a cache geometry from the families
    /// the sweeps exercise (sizes 64 B – 16 KiB, lines 16/32, assoc 1–4,
    /// every replacement policy).
    fn decode_config(bits: u32) -> CacheConfig {
        let sizes = [64u32, 128, 256, 512, 1024, 4096, 16384];
        let size = sizes[bits as usize % sizes.len()];
        let line = if bits & 8 == 0 { 16 } else { 32 };
        let line = line.min(size);
        let assocs = [1u32, 2, 4];
        let assoc = assocs[(bits >> 4) as usize % assocs.len()].min(size / line);
        let replacement = match (bits >> 6) % 3 {
            0 => Replacement::Lru,
            1 => Replacement::RoundRobin,
            _ => Replacement::Random { seed: 11 },
        };
        let cfg = CacheConfig {
            size,
            line,
            assoc,
            replacement,
            scope: CacheScope::Unified,
            hit_latency: 1,
            write_policy: spmlab_isa::cachecfg::WritePolicy::WriteThrough,
        };
        cfg.validate();
        cfg
    }

    use spmlab_isa::cachecfg::CacheScope;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Every operation agrees: classification result and full state.
        #[test]
        fn packed_domain_matches_reference(
            cfg_bits in any::<u32>(),
            ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..60),
        ) {
            let cfg = decode_config(cfg_bits);
            let lru = matches!(cfg.replacement, Replacement::Lru);
            let mut packed = AbstractCache::top(&cfg);
            let mut reference = RefCache::top(&cfg);
            for (i, &(kind, a, b)) in ops.iter().enumerate() {
                let op = decode_op(kind, a, b);
                match op {
                    Op::Exact(addr) => {
                        let hp = packed.access_read_exact(addr, lru);
                        let hr = reference.access_read_exact(addr, lru);
                        prop_assert_eq!(hp, hr, "exact hit mismatch at op {} {:?}", i, op);
                    }
                    Op::Uncertain(addr) => {
                        let hp = packed.access_read_uncertain(addr, lru);
                        let hr = reference.access_read_uncertain(addr, lru);
                        prop_assert_eq!(hp, hr, "uncertain hit mismatch at op {} {:?}", i, op);
                    }
                    Op::WeakenRange(lo, hi) => {
                        packed.weaken_range(lo, hi, lru);
                        reference.weaken_range(lo, hi, lru);
                    }
                    Op::WeakenAll => {
                        packed.weaken_range(0, u32::MAX, lru);
                        reference.weaken_range(0, u32::MAX, lru);
                    }
                    Op::Clear => {
                        packed.clear();
                        reference.clear();
                    }
                }
                prop_assert_eq!(
                    packed.dump(),
                    reference.dump(),
                    "state diverged after op {} {:?} (cfg {:?})",
                    i,
                    op,
                    &cfg
                );
                prop_assert_eq!(packed.guaranteed_lines(), reference.guaranteed_lines());
                // Spot-check classification agreement at a few addresses.
                for probe in [0x0010_0000u32, 0x0010_0040, 0x0010_0800, 0x0010_17F0] {
                    prop_assert_eq!(packed.contains(probe), reference.contains(probe));
                }
            }
        }

        /// The packed MAY domain agrees with its reference model on every
        /// operation: possible-hit classification and full state
        /// (including which sets widened to top).
        #[test]
        fn packed_may_domain_matches_reference(
            cfg_bits in any::<u32>(),
            ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..60),
        ) {
            let cfg = decode_config(cfg_bits);
            let lru = matches!(cfg.replacement, Replacement::Lru);
            let mut packed = MayCache::cold(&cfg);
            let mut reference = RefMayCache::cold(&cfg);
            for (i, &(kind, a, b)) in ops.iter().enumerate() {
                let op = decode_op(kind, a, b);
                match op {
                    Op::Exact(addr) => {
                        let hp = packed.access_read_exact(addr, lru);
                        let hr = reference.access_read_exact(addr, lru);
                        prop_assert_eq!(hp, hr, "may exact mismatch at op {} {:?}", i, op);
                    }
                    Op::Uncertain(addr) => {
                        let hp = packed.access_read_uncertain(addr);
                        let hr = reference.access_read_uncertain(addr);
                        prop_assert_eq!(hp, hr, "may uncertain mismatch at op {} {:?}", i, op);
                    }
                    Op::WeakenRange(lo, hi) => {
                        packed.weaken_range(lo, hi);
                        reference.weaken_range(lo, hi);
                    }
                    Op::WeakenAll => {
                        packed.weaken_range(0, u32::MAX);
                        reference.weaken_range(0, u32::MAX);
                    }
                    Op::Clear => {
                        // The MAY dual of the call clobber.
                        packed.make_top();
                        reference.make_top();
                    }
                }
                prop_assert_eq!(
                    packed.dump(),
                    reference.dump(),
                    "may state diverged after op {} {:?} (cfg {:?})",
                    i,
                    op,
                    &cfg
                );
                for probe in [0x0010_0000u32, 0x0010_0040, 0x0010_0800, 0x0010_17F0] {
                    prop_assert_eq!(packed.contains(probe), reference.contains(probe));
                }
            }
        }

        /// The packed MAY join agrees with the reference join, reports
        /// change exactly, and — the property the Always-Miss filter's
        /// soundness rests on — never *loses* a line: anything possible in
        /// either operand stays possible in the join.
        #[test]
        fn packed_may_join_matches_reference(
            cfg_bits in any::<u32>(),
            ops_a in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..30),
            ops_b in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..30),
        ) {
            let cfg = decode_config(cfg_bits);
            let lru = matches!(cfg.replacement, Replacement::Lru);
            let mut pa = MayCache::cold(&cfg);
            let mut ra = RefMayCache::cold(&cfg);
            let mut pb = MayCache::cold(&cfg);
            let mut rb = RefMayCache::cold(&cfg);
            for &(kind, a, b) in &ops_a {
                match decode_op(kind, a, b) {
                    Op::Exact(addr) => {
                        pa.access_read_exact(addr, lru);
                        ra.access_read_exact(addr, lru);
                    }
                    Op::Uncertain(addr) => {
                        pa.access_read_uncertain(addr);
                        ra.access_read_uncertain(addr);
                    }
                    _ => {}
                }
            }
            for &(kind, a, b) in &ops_b {
                if let Op::Exact(addr) = decode_op(kind, a, b) {
                    pb.access_read_exact(addr, lru);
                    rb.access_read_exact(addr, lru);
                }
            }
            let before = pa.dump();
            let changed = pa.join_into(&pb);
            let joined_ref = ra.join(&rb);
            prop_assert_eq!(pa.dump(), joined_ref.dump(), "may join diverged");
            prop_assert_eq!(
                changed,
                before != pa.dump(),
                "may join_into change report must match actual change"
            );
            // Union property at a few probes: possible in an operand ⇒
            // possible in the join.
            for probe in [0x0010_0000u32, 0x0010_0040, 0x0010_0800] {
                prop_assert!(
                    !pb.contains(probe) || pa.contains(probe),
                    "join lost a possible line at {probe:#x}"
                );
            }
        }

        /// The packed in-place join agrees with the reference join on
        /// states reached through independent random access sequences —
        /// and `join_into` reports change exactly when the state changed.
        #[test]
        fn packed_join_matches_reference(
            cfg_bits in any::<u32>(),
            ops_a in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..30),
            ops_b in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..30),
        ) {
            let cfg = decode_config(cfg_bits);
            let lru = matches!(cfg.replacement, Replacement::Lru);
            let mut pa = AbstractCache::top(&cfg);
            let mut ra = RefCache::top(&cfg);
            let mut pb = AbstractCache::top(&cfg);
            let mut rb = RefCache::top(&cfg);
            for &(kind, a, b) in &ops_a {
                if let Op::Exact(addr) = decode_op(kind, a, b) {
                    pa.access_read_exact(addr, lru);
                    ra.access_read_exact(addr, lru);
                } else if let Op::Uncertain(addr) = decode_op(kind, a, b) {
                    pa.access_read_uncertain(addr, lru);
                    ra.access_read_uncertain(addr, lru);
                }
            }
            for &(kind, a, b) in &ops_b {
                if let Op::Exact(addr) = decode_op(kind, a, b) {
                    pb.access_read_exact(addr, lru);
                    rb.access_read_exact(addr, lru);
                }
            }
            let before = pa.dump();
            let changed = pa.join_into(&pb);
            let joined_ref = ra.join(&rb);
            prop_assert_eq!(pa.dump(), joined_ref.dump(), "join diverged");
            prop_assert_eq!(
                changed,
                before != pa.dump(),
                "join_into change report must match actual change"
            );
        }
    }
}
