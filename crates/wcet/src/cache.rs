//! Abstract-interpretation cache analysis (Ferdinand-style MUST analysis)
//! with an optional persistence ("first miss") extension.
//!
//! The MUST cache maps each set to the lines *guaranteed* present, with an
//! upper bound on their LRU age; the join is intersection with maximum age.
//! For random and round-robin replacement a miss may evict *any* line of
//! the set, so the abstract update collapses the set to just the accessed
//! line — exactly why the paper notes that ARM7's random replacement makes
//! "precise estimates for cache behavior difficult".
//!
//! Accesses with unknown addresses (array ranges, stack windows) weaken
//! every set their range maps to — in a unified cache a data access can
//! evict code, which is the mechanism behind the paper's headline result
//! (cache WCET stays high regardless of cache size).

use crate::addrinfo::{data_accesses, DataAccess};
use crate::cfg::{BasicBlock, FuncCfg};
use crate::loops::NaturalLoop;
use spmlab_isa::annot::{AddrInfo, AnnotationSet};
use spmlab_isa::cachecfg::{CacheConfig, CacheScope, Replacement};
use spmlab_isa::insn::Insn;
use spmlab_isa::mem::{access_cycles, AccessWidth, MemoryMap, RegionKind};
use std::collections::BTreeMap;

/// Analysis context shared by the fixpoint and the costing walk.
#[derive(Debug, Clone)]
pub struct CacheCtx<'a> {
    /// Cache geometry/policy.
    pub cache: &'a CacheConfig,
    /// Memory map (to tell scratchpad/MMIO accesses apart from main).
    pub map: &'a MemoryMap,
    /// Access annotations.
    pub annot: &'a AnnotationSet,
}

impl CacheCtx<'_> {
    fn data_cached(&self) -> bool {
        matches!(self.cache.scope, CacheScope::Unified)
    }

    fn is_main(&self, addr: u32) -> bool {
        self.map.region_of(addr) == RegionKind::Main
    }

    fn lru(&self) -> bool {
        matches!(self.cache.replacement, Replacement::Lru)
    }
}

/// The abstract MUST cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractCache {
    assoc: u8,
    num_sets: u32,
    line: u32,
    /// Per set: tag → maximal age (0 = most recently used).
    sets: Vec<BTreeMap<u32, u8>>,
}

impl AbstractCache {
    /// The empty MUST cache: nothing is guaranteed (analysis start state).
    pub fn top(cfg: &CacheConfig) -> AbstractCache {
        AbstractCache {
            assoc: cfg.assoc as u8,
            num_sets: cfg.num_sets(),
            line: cfg.line,
            sets: vec![BTreeMap::new(); cfg.num_sets() as usize],
        }
    }

    fn set_of(&self, addr: u32) -> usize {
        ((addr / self.line) % self.num_sets) as usize
    }

    fn tag_of(&self, addr: u32) -> u32 {
        (addr / self.line) / self.num_sets
    }

    /// Whether the line holding `addr` is guaranteed present.
    pub fn contains(&self, addr: u32) -> bool {
        self.sets[self.set_of(addr)].contains_key(&self.tag_of(addr))
    }

    /// Join (control-flow merge): intersection with maximum age.
    pub fn join(&self, other: &AbstractCache) -> AbstractCache {
        let mut sets = Vec::with_capacity(self.sets.len());
        for (a, b) in self.sets.iter().zip(&other.sets) {
            let mut merged = BTreeMap::new();
            for (tag, &age_a) in a {
                if let Some(&age_b) = b.get(tag) {
                    merged.insert(*tag, age_a.max(age_b));
                }
            }
            sets.push(merged);
        }
        AbstractCache {
            assoc: self.assoc,
            num_sets: self.num_sets,
            line: self.line,
            sets,
        }
    }

    /// The MUST update of one set for a read of `tag`: promote the line to
    /// age 0 and age the younger lines (LRU), or collapse the set to just
    /// the accessed line on a possible miss (random/round-robin).
    fn update_set(lines: &mut BTreeMap<u32, u8>, tag: u32, assoc: u8, lru: bool) {
        let hit = lines.contains_key(&tag);
        if lru {
            let old_age = lines.get(&tag).copied().unwrap_or(assoc);
            for (t, age) in lines.iter_mut() {
                if *t != tag && *age < old_age {
                    *age += 1;
                }
            }
            lines.retain(|_, age| *age < assoc);
            lines.insert(tag, 0);
        } else {
            // Random/round-robin: a miss may evict anything else.
            if !hit {
                lines.clear();
            }
            lines.insert(tag, 0);
        }
    }

    /// An exact-address read: returns whether it is a guaranteed hit, then
    /// updates the state (the line is definitely present afterwards).
    pub fn access_read_exact(&mut self, addr: u32, lru: bool) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let assoc = self.assoc;
        let lines = &mut self.sets[set];
        let hit = lines.contains_key(&tag);
        Self::update_set(lines, tag, assoc, lru);
        hit
    }

    /// The *uncertain* read update `join(s, update(s))` — for an access
    /// that may or may not occur (e.g. an L2 access behind an L1 that
    /// could not be classified). Sound in both worlds; equivalent to a
    /// whole-state clone + update + join, but restricted to the one set
    /// the address maps to. Returns whether the line was guaranteed
    /// present *before* the access.
    pub fn access_read_uncertain(&mut self, addr: u32, lru: bool) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let assoc = self.assoc;
        let lines = &mut self.sets[set];
        let before = lines.contains_key(&tag);
        let mut updated = lines.clone();
        Self::update_set(&mut updated, tag, assoc, lru);
        // Join = intersection with maximum age.
        let mut merged = BTreeMap::new();
        for (t, &age) in lines.iter() {
            if let Some(&age_u) = updated.get(t) {
                merged.insert(*t, age.max(age_u));
            }
        }
        *lines = merged;
        before
    }

    /// One *possible* access to `set` (unknown address): ages the set (LRU)
    /// or clears it (random/round-robin).
    pub fn weaken_set(&mut self, set: usize, lru: bool) {
        let assoc = self.assoc;
        let lines = &mut self.sets[set];
        if lru {
            for age in lines.values_mut() {
                *age += 1;
            }
            lines.retain(|_, age| *age < assoc);
        } else {
            lines.clear();
        }
    }

    /// An access somewhere in `[lo, hi)`: weakens every candidate set.
    pub fn weaken_range(&mut self, lo: u32, hi: u32, lru: bool) {
        if hi <= lo {
            return;
        }
        let first_line = lo / self.line;
        let last_line = (hi - 1) / self.line;
        if (last_line - first_line) as u64 + 1 >= self.num_sets as u64 {
            for s in 0..self.sets.len() {
                self.weaken_set(s, lru);
            }
            return;
        }
        let mut line = first_line;
        loop {
            self.weaken_set((line % self.num_sets) as usize, lru);
            if line == last_line {
                break;
            }
            line += 1;
        }
    }

    /// Forgets everything (function-call clobber).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Total guaranteed lines (diagnostics).
    pub fn guaranteed_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

/// Applies a block's accesses to the abstract state (the MUST transfer
/// function). `clobber_calls` controls whether `BL` clears the state.
pub fn transfer_block(state: &mut AbstractCache, block: &BasicBlock, ctx: &CacheCtx) {
    let lru = ctx.lru();
    for (addr, insn) in &block.insns {
        // Instruction fetches (16-bit each; BL fetches two halfwords).
        for off in (0..insn.size()).step_by(2) {
            let a = addr + off;
            if ctx.is_main(a) {
                state.access_read_exact(a, lru);
            }
        }
        // Data accesses.
        for acc in data_accesses(insn, *addr, ctx.annot) {
            apply_data_access(state, &acc, ctx);
        }
        if matches!(insn, Insn::Bl { .. }) {
            // The callee may touch anything.
            state.clear();
        }
    }
}

fn apply_data_access(state: &mut AbstractCache, acc: &DataAccess, ctx: &CacheCtx) {
    if acc.is_write || !ctx.data_cached() {
        return; // Write-through/no-allocate writes and bypassed data.
    }
    let lru = ctx.lru();
    match acc.info {
        AddrInfo::Exact(a) => {
            if ctx.is_main(a) {
                state.access_read_exact(a, lru);
            }
        }
        AddrInfo::Range { lo, hi } => {
            // Entirely scratchpad → bypasses the cache.
            if ctx.map.region_of(lo) == RegionKind::Scratchpad
                && ctx.map.region_of(hi.saturating_sub(1)) == RegionKind::Scratchpad
            {
                return;
            }
            state.weaken_range(lo, hi, lru);
        }
        AddrInfo::Stack | AddrInfo::Unknown => {
            state.weaken_range(0, u32::MAX, lru);
        }
    }
}

/// MUST-analysis fixpoint: in-state per block.
pub fn must_fixpoint(cfg: &FuncCfg, ctx: &CacheCtx) -> BTreeMap<u32, AbstractCache> {
    crate::fixpoint::must_fixpoint(
        cfg,
        || AbstractCache::top(ctx.cache),
        AbstractCache::join,
        |s, block| transfer_block(s, block, ctx),
        64 * ctx.cache.assoc as usize,
    )
}

/// Classification statistics for one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyStats {
    /// Fetches classified always-hit.
    pub fetch_hits: u64,
    /// Fetches that must be assumed misses.
    pub fetch_unclassified: u64,
    /// Data reads classified always-hit.
    pub data_hits: u64,
    /// Data reads assumed misses.
    pub data_unclassified: u64,
    /// Accesses classified persistent (first-miss).
    pub persistent: u64,
    /// Accesses not classifiable at L1 but guaranteed to hit the L2
    /// (multi-level analyses only).
    pub l2_hits: u64,
}

impl ClassifyStats {
    /// Merges another function's stats in.
    pub fn absorb(&mut self, o: ClassifyStats) {
        self.fetch_hits += o.fetch_hits;
        self.fetch_unclassified += o.fetch_unclassified;
        self.data_hits += o.data_hits;
        self.data_unclassified += o.data_unclassified;
        self.persistent += o.persistent;
        self.l2_hits += o.l2_hits;
    }
}

/// Persistence assignment: cache line → header of the outermost loop in
/// which the line is persistent (eviction-free once loaded).
#[derive(Debug, Clone, Default)]
pub struct Persistence {
    line_to_loop: BTreeMap<u32, u32>,
    /// Extra cost per loop entry: header → penalty cycles.
    pub entry_penalties: BTreeMap<u32, u64>,
    block_to_loops: BTreeMap<u32, Vec<u32>>,
}

impl Persistence {
    /// No persistence analysis (the paper's ARM7-aiT configuration).
    pub fn disabled() -> Persistence {
        Persistence::default()
    }

    /// Whether the access to `addr` from `block` counts as persistent-hit.
    pub fn is_persistent(&self, line_size: u32, addr: u32, block: u32) -> bool {
        let line = addr / line_size * line_size;
        match self.line_to_loop.get(&line) {
            Some(h) => self
                .block_to_loops
                .get(&block)
                .is_some_and(|hs| hs.contains(h)),
            None => false,
        }
    }
}

/// Computes first-miss persistence per loop: a line is persistent in a
/// loop when nothing in the loop can evict it — no calls, no
/// unknown-address reads touching its set, and at most `assoc` distinct
/// guaranteed lines mapping to the set.
pub fn persistence(cfg: &FuncCfg, loops: &[NaturalLoop], ctx: &CacheCtx) -> Persistence {
    let mut p = Persistence::default();
    let line_size = ctx.cache.line;
    let miss_penalty = ctx.cache.miss_cycles().max(ctx.cache.hit_cycles()) - ctx.cache.hit_cycles();
    // Loops sorted inner-first; process outermost last so the outermost
    // persistent loop wins.
    for l in loops {
        let mut exact_lines: Vec<u32> = Vec::new();
        let mut dirty_sets: Vec<bool> = vec![false; ctx.cache.num_sets() as usize];
        let mut has_call = false;
        for baddr in &l.body {
            let block = &cfg.blocks[baddr];
            for (addr, insn) in &block.insns {
                if matches!(insn, Insn::Bl { .. }) {
                    has_call = true;
                }
                for off in (0..insn.size()).step_by(2) {
                    let a = addr + off;
                    if ctx.is_main(a) {
                        exact_lines.push(a / line_size * line_size);
                    }
                }
                for acc in data_accesses(insn, *addr, ctx.annot) {
                    if acc.is_write || !ctx.data_cached() {
                        continue;
                    }
                    match acc.info {
                        AddrInfo::Exact(a) => {
                            if ctx.is_main(a) {
                                exact_lines.push(a / line_size * line_size);
                            }
                        }
                        AddrInfo::Range { lo, hi } => {
                            if ctx.map.region_of(lo) == RegionKind::Scratchpad
                                && ctx.map.region_of(hi.saturating_sub(1)) == RegionKind::Scratchpad
                            {
                                continue;
                            }
                            mark_dirty(&mut dirty_sets, lo, hi, ctx.cache);
                        }
                        AddrInfo::Stack | AddrInfo::Unknown => {
                            dirty_sets.iter_mut().for_each(|d| *d = true);
                        }
                    }
                }
            }
        }
        if has_call {
            continue;
        }
        exact_lines.sort_unstable();
        exact_lines.dedup();
        // Count lines per set.
        let mut per_set: BTreeMap<u32, u32> = BTreeMap::new();
        for &line in &exact_lines {
            *per_set.entry(ctx.cache.set_of(line)).or_insert(0) += 1;
        }
        for &line in &exact_lines {
            let set = ctx.cache.set_of(line);
            if dirty_sets[set as usize] || per_set[&set] > ctx.cache.assoc {
                continue;
            }
            // Outermost wins: loops are inner-first, so overwrite.
            p.line_to_loop.insert(line, l.header);
        }
    }
    // Penalties: one first-miss per persistent line, charged per entry of
    // its loop; and record loop membership per block.
    for (&line, &header) in &p.line_to_loop {
        let _ = line;
        *p.entry_penalties.entry(header).or_insert(0) += miss_penalty;
    }
    for l in loops {
        for &b in &l.body {
            p.block_to_loops.entry(b).or_default().push(l.header);
        }
    }
    p
}

fn mark_dirty(dirty: &mut [bool], lo: u32, hi: u32, cfg: &CacheConfig) {
    if hi <= lo {
        return;
    }
    let first = lo / cfg.line;
    let last = (hi - 1) / cfg.line;
    if last - first + 1 >= cfg.num_sets() {
        dirty.iter_mut().for_each(|d| *d = true);
        return;
    }
    let mut l = first;
    loop {
        dirty[(l % cfg.num_sets()) as usize] = true;
        if l == last {
            break;
        }
        l += 1;
    }
}

/// Per-address classification record: which instruction addresses were
/// proven *always-hit* by the MUST analysis. The soundness test-suite
/// checks these against the simulator's per-instruction miss counters —
/// an always-hit access must never miss in any concrete run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Classification {
    /// Instruction addresses whose fetch is always-hit.
    pub fetch_always_hit: BTreeSet<u32>,
    /// Instruction addresses whose (exact-address) data read is always-hit.
    pub data_always_hit: BTreeSet<u32>,
}

use std::collections::BTreeSet;

impl Classification {
    /// Merges another function's classification.
    pub fn absorb(&mut self, o: &Classification) {
        self.fetch_always_hit
            .extend(o.fetch_always_hit.iter().copied());
        self.data_always_hit
            .extend(o.data_always_hit.iter().copied());
    }
}

/// Worst-case cost of one block under the cache model, starting from its
/// MUST in-state. `callee_wcet` supplies the WCET bound of each callee.
/// Always-hit proofs are recorded into `classification` (persistent
/// first-miss accesses are *not* recorded — they may miss once per loop
/// entry).
pub fn block_cost(
    block: &BasicBlock,
    in_state: &AbstractCache,
    ctx: &CacheCtx,
    persistence_info: &Persistence,
    callee_wcet: &BTreeMap<u32, u64>,
    stats: &mut ClassifyStats,
    classification: &mut Classification,
) -> u64 {
    let lru = ctx.lru();
    let mut state = in_state.clone();
    let mut cost = 0u64;
    let hit = ctx.cache.hit_cycles();
    // An unclassified access may still hit in the concrete cache, so the
    // worst-case charge must cover both outcomes (hit_latency is
    // configurable and may exceed the fill cost).
    let miss = ctx.cache.miss_cycles().max(hit);
    let mut calls = block.calls.iter();
    for (addr, insn) in &block.insns {
        cost += 1 + insn.worst_extra_cycles();
        let mut all_fetches_hit = true;
        for off in (0..insn.size()).step_by(2) {
            let a = addr + off;
            match ctx.map.region_of(a) {
                RegionKind::Main => {
                    let guaranteed = state.access_read_exact(a, lru);
                    if guaranteed {
                        stats.fetch_hits += 1;
                        cost += hit;
                    } else if persistence_info.is_persistent(ctx.cache.line, a, block.start) {
                        stats.persistent += 1;
                        all_fetches_hit = false;
                        cost += hit;
                    } else {
                        stats.fetch_unclassified += 1;
                        all_fetches_hit = false;
                        cost += miss;
                    }
                }
                region => {
                    all_fetches_hit = false;
                    cost += access_cycles(region, AccessWidth::Half);
                }
            }
        }
        if all_fetches_hit {
            classification.fetch_always_hit.insert(*addr);
        }
        for acc in data_accesses(insn, *addr, ctx.annot) {
            let before_hits = stats.data_hits;
            cost += data_access_cost(&mut state, &acc, ctx, persistence_info, block.start, stats);
            if stats.data_hits > before_hits {
                classification.data_always_hit.insert(*addr);
            }
        }
        if matches!(insn, Insn::Bl { .. }) {
            let callee = calls.next().expect("calls list matches BL count");
            cost += callee_wcet.get(callee).copied().unwrap_or(0);
            state.clear();
        }
    }
    cost
}

fn data_access_cost(
    state: &mut AbstractCache,
    acc: &DataAccess,
    ctx: &CacheCtx,
    persistence_info: &Persistence,
    block: u32,
    stats: &mut ClassifyStats,
) -> u64 {
    let lru = ctx.lru();
    let hit = ctx.cache.hit_cycles();
    // An unclassified access may still hit in the concrete cache, so the
    // worst-case charge must cover both outcomes (hit_latency is
    // configurable and may exceed the fill cost).
    let miss = ctx.cache.miss_cycles().max(hit);
    if acc.is_write {
        // Write-through: pay the backing-store cost; no state change.
        let region = match acc.info {
            AddrInfo::Exact(a) => ctx.map.region_of(a),
            AddrInfo::Range { lo, hi } => span_region(ctx.map, lo, hi),
            _ => RegionKind::Main,
        };
        return access_cycles(region, acc.width);
    }
    match acc.info {
        AddrInfo::Exact(a) => match ctx.map.region_of(a) {
            RegionKind::Main if ctx.data_cached() => {
                let guaranteed = state.access_read_exact(a, lru);
                if guaranteed {
                    stats.data_hits += 1;
                    hit
                } else if persistence_info.is_persistent(ctx.cache.line, a, block) {
                    stats.persistent += 1;
                    hit
                } else {
                    stats.data_unclassified += 1;
                    miss
                }
            }
            region => access_cycles(region, acc.width),
        },
        AddrInfo::Range { lo, hi } => {
            let region = span_region(ctx.map, lo, hi);
            if region == RegionKind::Scratchpad {
                return access_cycles(region, acc.width);
            }
            if ctx.data_cached() {
                state.weaken_range(lo, hi, lru);
                stats.data_unclassified += 1;
                miss
            } else {
                access_cycles(RegionKind::Main, acc.width)
            }
        }
        AddrInfo::Stack | AddrInfo::Unknown => {
            if ctx.data_cached() {
                state.weaken_range(0, u32::MAX, lru);
                stats.data_unclassified += 1;
                miss
            } else {
                access_cycles(RegionKind::Main, acc.width)
            }
        }
    }
}

/// The single region covering `[lo, hi)`, or `Main` as the safe worst case
/// when the span crosses regions.
pub fn span_region(map: &MemoryMap, lo: u32, hi: u32) -> RegionKind {
    let a = map.region_of(lo);
    let b = map.region_of(hi.saturating_sub(1).max(lo));
    if a == b {
        a
    } else {
        RegionKind::Main
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (CacheConfig, MemoryMap, AnnotationSet) {
        (
            CacheConfig::unified(64),
            MemoryMap::no_spm(),
            AnnotationSet::new(),
        )
    }

    #[test]
    fn must_exact_access_then_guaranteed() {
        let (cache, map, annot) = ctx_parts();
        let ctx = CacheCtx {
            cache: &cache,
            map: &map,
            annot: &annot,
        };
        let mut s = AbstractCache::top(ctx.cache);
        assert!(!s.access_read_exact(0x0010_0000, true), "cold");
        assert!(s.contains(0x0010_0000));
        assert!(s.access_read_exact(0x0010_0004, true), "same line");
    }

    #[test]
    fn uncertain_access_equals_clone_update_join() {
        // The per-set fast path must match the whole-state definition
        // join(s, update(s)) exactly, for both LRU and collapsing policies.
        for lru in [true, false] {
            let cfg = CacheConfig::set_assoc(128, 2, Replacement::Lru);
            let mut s = AbstractCache::top(&cfg);
            for a in [0x000u32, 0x040, 0x010, 0x080] {
                s.access_read_exact(a, lru);
            }
            for probe in [0x000u32, 0x040, 0x0C0, 0x020] {
                let mut fast = s.clone();
                let before_fast = fast.access_read_uncertain(probe, lru);
                let mut updated = s.clone();
                let before_slow = s.contains(probe);
                updated.access_read_exact(probe, lru);
                let slow = s.join(&updated);
                assert_eq!(fast, slow, "lru={lru} probe={probe:#x}");
                assert_eq!(before_fast, before_slow);
                s = slow;
            }
        }
    }

    #[test]
    fn join_is_intersection_with_max_age() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Lru);
        let mut a = AbstractCache::top(&cfg);
        let mut b = AbstractCache::top(&cfg);
        a.access_read_exact(0x100, true); // in a only
        a.access_read_exact(0x200, true);
        b.access_read_exact(0x200, true);
        let j = a.join(&b);
        assert!(j.contains(0x200));
        assert!(!j.contains(0x100));
    }

    #[test]
    fn direct_mapped_unknown_access_clears_everything() {
        let (cache, map, annot) = ctx_parts();
        let _ = (&map, &annot);
        let mut s = AbstractCache::top(&cache);
        s.access_read_exact(0x0010_0000, true);
        s.weaken_range(0, u32::MAX, true);
        assert_eq!(s.guaranteed_lines(), 0, "assoc 1: one aging evicts all");
    }

    #[test]
    fn two_way_survives_one_unknown_access() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Lru);
        let mut s = AbstractCache::top(&cfg);
        s.access_read_exact(0x100, true);
        s.weaken_range(0, u32::MAX, true);
        assert!(s.contains(0x100), "age 1 < assoc 2: still guaranteed");
        s.weaken_range(0, u32::MAX, true);
        assert!(!s.contains(0x100), "second unknown access may evict");
    }

    #[test]
    fn random_replacement_miss_clears_set() {
        let cfg = CacheConfig::set_assoc(64, 2, Replacement::Random { seed: 1 });
        let mut s = AbstractCache::top(&cfg);
        s.access_read_exact(0x100, false);
        s.access_read_exact(0x140, false); // same set (2 sets × 2 ways... set stride 32)
                                           // A miss on another line of the same set clears guarantees.
        let before = s.guaranteed_lines();
        s.access_read_exact(0x180, false);
        assert!(s.guaranteed_lines() <= before, "miss collapsed the set");
        assert!(s.contains(0x180));
    }

    #[test]
    fn ranged_write_does_not_change_state() {
        let (cache, map, annot) = ctx_parts();
        let ctx = CacheCtx {
            cache: &cache,
            map: &map,
            annot: &annot,
        };
        let mut s = AbstractCache::top(&cache);
        s.access_read_exact(0x0010_0000, true);
        let acc = DataAccess {
            width: AccessWidth::Word,
            info: AddrInfo::Range {
                lo: 0x0010_0000,
                hi: 0x0010_1000,
            },
            is_write: true,
        };
        apply_data_access(&mut s, &acc, &ctx);
        assert!(s.contains(0x0010_0000), "writes don't evict (no-allocate)");
    }
}
