//! Loop bounds: annotations first, automatic detection of counted loops as
//! a fallback — mirroring aiT, which detects many loops automatically and
//! asks the user to annotate the rest.

use crate::cfg::FuncCfg;
use crate::loops::NaturalLoop;
use crate::WcetError;
use spmlab_isa::annot::AnnotationSet;
use spmlab_isa::cond::Cond;
use spmlab_isa::insn::{AluOp, Insn};
use spmlab_isa::reg::Reg;
use std::collections::BTreeMap;

/// Registers written by an instruction (flags excluded).
pub fn written_regs(insn: &Insn) -> Vec<Reg> {
    match insn {
        Insn::ShiftImm { rd, .. }
        | Insn::AddReg { rd, .. }
        | Insn::SubReg { rd, .. }
        | Insn::AddImm3 { rd, .. }
        | Insn::SubImm3 { rd, .. }
        | Insn::MovImm { rd, .. }
        | Insn::AddImm { rd, .. }
        | Insn::SubImm { rd, .. }
        | Insn::MovReg { rd, .. }
        | Insn::Sdiv { rd, .. }
        | Insn::Udiv { rd, .. }
        | Insn::LdrLit { rd, .. }
        | Insn::LdrReg { rd, .. }
        | Insn::LdrImm { rd, .. }
        | Insn::LdrSp { rd, .. }
        | Insn::Adr { rd, .. }
        | Insn::AddSp { rd, .. } => vec![*rd],
        Insn::Alu { op, rd, .. } => match op {
            AluOp::Tst | AluOp::Cmp | AluOp::Cmn => vec![],
            _ => vec![*rd],
        },
        Insn::Pop { regs, .. } => regs.iter().collect(),
        _ => vec![],
    }
}

/// Resolves a bound for every loop.
///
/// # Errors
///
/// [`WcetError::UnboundedLoop`] when neither an annotation nor the
/// auto-detector provides a bound.
pub fn loop_bounds(
    cfg: &FuncCfg,
    loops: &[NaturalLoop],
    annotations: &AnnotationSet,
    auto: bool,
) -> Result<BTreeMap<u32, u32>, WcetError> {
    let mut out = BTreeMap::new();
    for l in loops {
        let bound = annotations
            .loop_bound(l.header)
            .or_else(|| if auto { auto_bound(cfg, l) } else { None })
            .ok_or(WcetError::UnboundedLoop {
                func: cfg.name.clone(),
                header: l.header,
            })?;
        out.insert(l.header, bound);
    }
    Ok(out)
}

/// Tries to derive a bound for a compiler-idiom counted loop whose counter
/// lives in a stack slot (the MiniC code generator keeps all locals
/// SP-relative):
///
/// ```text
/// header:    ldr rd, [sp, #slot] ; cmp rd, #limit ; b<cond> exit
/// body:      exactly one  ldr rt,[sp,#slot] ; adds/subs rt,#step ; str rt,[sp,#slot]
/// preheader: ... movs rs, #init ; str rs, [sp, #slot]   (last slot write)
/// ```
///
/// Returns the maximum number of back-edge executions, or `None` when the
/// pattern does not apply (data-dependent loops need annotations).
pub fn auto_bound(cfg: &FuncCfg, l: &NaturalLoop) -> Option<u32> {
    if l.back_edges.len() != 1 || l.entry_edges.len() != 1 {
        return None;
    }
    let header = &cfg.blocks[&l.header];
    let n = header.insns.len();
    if n < 3 {
        return None;
    }
    // header tail: LdrSp rd,#slot ; CmpImm rd,#limit ; BCond.
    let (_, load) = &header.insns[n - 3];
    let (_, cmp) = &header.insns[n - 2];
    let (br_addr, br) = &header.insns[n - 1];
    let (rd0, slot) = match load {
        Insn::LdrSp { rd, imm } => (*rd, *imm),
        _ => return None,
    };
    let (rd, limit) = match cmp {
        Insn::CmpImm { rd, imm } if *rd == rd0 => (*rd, *imm as i64),
        _ => return None,
    };
    let _ = rd;
    // `cond` becomes the condition under which the loop EXITS at the header.
    let cond = match br {
        Insn::BCond { cond, off } => {
            let taken = br_addr.wrapping_add(4).wrapping_add(*off as u32);
            let fall = header.end();
            match (!l.body.contains(&taken), !l.body.contains(&fall)) {
                (true, false) => *cond,
                (false, true) => cond.invert(),
                _ => return None,
            }
        }
        _ => return None,
    };

    // Exactly one in-loop store to the slot, in the canonical
    // load/add/store triple.
    let mut step: Option<i64> = None;
    for b in l.body.iter().map(|a| &cfg.blocks[a]) {
        let insns = &b.insns;
        for (i, (_, insn)) in insns.iter().enumerate() {
            let Insn::StrSp { rd: rs, imm } = insn else {
                continue;
            };
            if *imm != slot {
                continue;
            }
            if step.is_some() || i < 2 {
                return None; // Second writer, or no preceding update.
            }
            let (_, upd) = &insns[i - 1];
            let (_, ld) = &insns[i - 2];
            match (ld, upd) {
                (Insn::LdrSp { rd: rl, imm: li }, Insn::AddImm { rd: ru, imm: st })
                    if rl == rs && ru == rs && *li == slot =>
                {
                    step = Some(*st as i64)
                }
                (Insn::LdrSp { rd: rl, imm: li }, Insn::SubImm { rd: ru, imm: st })
                    if rl == rs && ru == rs && *li == slot =>
                {
                    step = Some(-(*st as i64))
                }
                _ => return None,
            }
        }
    }
    let step = step?;
    if step == 0 {
        return None;
    }

    // Initial value: last slot write in the (single) entry predecessor must
    // be `movs rs,#init ; str rs,[sp,#slot]`.
    let (pre, _) = l.entry_edges[0];
    let pre_insns = &cfg.blocks[&pre].insns;
    let mut init: Option<i64> = None;
    for (i, (_, insn)) in pre_insns.iter().enumerate() {
        let Insn::StrSp { rd: rs, imm } = insn else {
            continue;
        };
        if *imm != slot {
            continue;
        }
        init = match i.checked_sub(1).map(|j| &pre_insns[j].1) {
            Some(Insn::MovImm { rd, imm }) if rd == rs => Some(*imm as i64),
            _ => None,
        };
    }
    let init = init?;

    iterations(init, limit, step, cond)
}

/// Maximum body executions of `for (i = init; !(exit at i cmp limit); i += step)`,
/// where `cond` is the exit condition evaluated as `i cond limit`.
fn iterations(init: i64, limit: i64, step: i64, cond: Cond) -> Option<u32> {
    let ceil_div = |num: i64, den: i64| (num + den - 1) / den;
    let count = match (cond, step > 0) {
        // while (i < limit) i += step  — exits when i >= limit.
        (Cond::Ge, true) => ceil_div((limit - init).max(0), step),
        // while (i <= limit) i += step — exits when i > limit.
        (Cond::Gt, true) => ((limit - init) / step + 1).max(0),
        // while (i != limit) i += step — exits when i == limit.
        (Cond::Eq, true) => {
            let d = limit - init;
            if d >= 0 && d % step == 0 {
                d / step
            } else {
                return None;
            }
        }
        // while (i > limit) i -= step — exits when i <= limit.
        (Cond::Le, false) => ceil_div((init - limit).max(0), -step),
        // while (i >= limit) i -= step — exits when i < limit.
        (Cond::Lt, false) => ((init - limit) / -step + 1).max(0),
        (Cond::Eq, false) => {
            let d = init - limit;
            if d >= 0 && d % -step == 0 {
                d / -step
            } else {
                return None;
            }
        }
        _ => return None,
    };
    u32::try_from(count).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_cc::{compile, link, SpmAssignment};
    use spmlab_isa::mem::MemoryMap;

    fn setup(src: &str, func: &str) -> (FuncCfg, Vec<NaturalLoop>, AnnotationSet) {
        let l = link(
            &compile(src).unwrap(),
            &MemoryMap::no_spm(),
            &SpmAssignment::none(),
        )
        .unwrap();
        let cfg = crate::cfg::build_cfg(&l.exe, l.exe.symbol(func).unwrap()).unwrap();
        let loops = crate::loops::natural_loops(&cfg).unwrap();
        (cfg, loops, l.annotations)
    }

    #[test]
    fn annotation_bound_used() {
        let (cfg, loops, ann) = setup(
            "int x; void main() { int i; for (i = 0; i < 7; i = i + 1) { __loopbound(7); x = x + 1; } }",
            "main",
        );
        let bounds = loop_bounds(&cfg, &loops, &ann, false).unwrap();
        assert_eq!(bounds.values().copied().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn auto_detects_up_counting_loop() {
        // No __loopbound: rely on the detector.
        let (cfg, loops, ann) = setup(
            "int x; void main() { int i; for (i = 0; i < 12; i = i + 1) { x = x + 1; } }",
            "main",
        );
        let bounds = loop_bounds(&cfg, &loops, &ann, true).unwrap();
        assert_eq!(bounds.values().copied().collect::<Vec<_>>(), vec![12]);
    }

    #[test]
    fn auto_detects_le_and_step() {
        let (cfg, loops, _) = setup(
            "int x; void main() { int i; for (i = 2; i <= 20; i = i + 3) { x = x + 1; } }",
            "main",
        );
        // i = 2,5,8,11,14,17,20 → 7 iterations.
        assert_eq!(auto_bound(&cfg, &loops[0]), Some(7));
    }

    #[test]
    fn auto_detects_down_counting_loop() {
        let (cfg, loops, _) = setup(
            "int x; void main() { int i; for (i = 10; i > 0; i = i - 1) { x = x + 1; } }",
            "main",
        );
        assert_eq!(auto_bound(&cfg, &loops[0]), Some(10));
    }

    #[test]
    fn data_dependent_loop_needs_annotation() {
        let (cfg, loops, ann) = setup(
            "int n; int x; void main() { int i; for (i = 0; i < n; i = i + 1) { __loopbound(99); x = x + 1; } }",
            "main",
        );
        // Auto fails (limit is a load, compare is register-register), but
        // the annotation provides 99.
        assert_eq!(auto_bound(&cfg, &loops[0]), None);
        let bounds = loop_bounds(&cfg, &loops, &ann, true).unwrap();
        assert_eq!(bounds.values().copied().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn unbounded_loop_reported() {
        let (cfg, loops, ann) = setup(
            "int n; int x; void main() { int i; for (i = 0; i < n; i = i + 1) { x = x + 1; } }",
            "main",
        );
        let err = loop_bounds(&cfg, &loops, &ann, true).unwrap_err();
        assert!(matches!(err, WcetError::UnboundedLoop { .. }));
    }

    #[test]
    fn iteration_math() {
        use Cond::*;
        assert_eq!(iterations(0, 10, 1, Ge), Some(10));
        assert_eq!(iterations(0, 10, 3, Ge), Some(4)); // 0,3,6,9
        assert_eq!(iterations(0, 10, 1, Gt), Some(11)); // i<=10
        assert_eq!(iterations(0, 10, 1, Eq), Some(10)); // i!=10
        assert_eq!(iterations(0, 10, 3, Eq), None); // never hits 10
        assert_eq!(iterations(10, 0, -1, Le), Some(10)); // i>0
        assert_eq!(iterations(10, 0, -1, Lt), Some(11)); // i>=0
        assert_eq!(iterations(5, 10, -1, Le), Some(0), "starts below");
        assert_eq!(iterations(20, 10, 1, Ge), Some(0), "starts past limit");
    }
}
