//! Generic MUST-style worklist fixpoint over a function CFG, shared by the
//! single-level cache analysis and the multi-level hierarchy analysis so
//! the two solvers can never drift apart.
//!
//! The solver visits blocks in **reverse postorder** through a priority
//! worklist (a min-heap over RPO indices with a bitset membership guard),
//! so forward dataflow reaches a block only after its forward predecessors
//! in the common case — acyclic regions converge in one transfer per
//! block, and loops need one extra pass per nesting level. This replaces
//! the original LIFO vector whose `contains(&succ)` membership scan was
//! `O(n)` per push and whose `keys().collect()` seeding visited blocks in
//! arbitrary address order.
//!
//! Change detection is delegated to the domain: `join_into` merges a
//! predecessor's out-state into a successor's in-state *in place* and
//! reports whether anything changed, so the solver never compares or
//! clones whole states to decide convergence.

use crate::cfg::{BasicBlock, FuncCfg};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::time::Instant;

/// Caller-imposed resource limits for one [`must_fixpoint`] solve, on top
/// of the structural `budget_factor * blocks` defensive cap.
///
/// Both limits are *sound* to exhaust: the solver widens every state to
/// `top` and reports `widened = true`, exactly like the structural cap, so
/// a budget-limited analysis degrades to a conservative bound instead of
/// hanging or lying. `Default` imposes no extra limits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixpointBudget {
    /// Hard cap on worklist pops for this solve (no 4096 floor — an
    /// explicit cap means the caller *wants* early widening).
    pub max_iterations: Option<u64>,
    /// Absolute wall-clock deadline; checked once per pop.
    pub deadline: Option<Instant>,
}

impl FixpointBudget {
    /// No caller-imposed limits (the structural cap still applies).
    pub const UNLIMITED: FixpointBudget = FixpointBudget {
        max_iterations: None,
        deadline: None,
    };

    fn exhausted(&self, iterations: usize) -> bool {
        self.max_iterations.is_some_and(|m| iterations as u64 > m)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Outcome of a [`must_fixpoint`] run: the per-block in-states plus the
/// solver's own accounting, so callers can distinguish a genuine fixpoint
/// from the defensive budget fallback instead of silently consuming `top`
/// states.
#[derive(Debug, Clone)]
pub struct FixpointResult<S> {
    /// Per-block *in*-states (blocks unreachable from the entry absent).
    pub in_states: BTreeMap<u32, S>,
    /// `true` when the iteration budget ran out and every state was
    /// widened to `top`. The result is still *sound* (top is the
    /// conservative state) but maximally imprecise — callers should
    /// surface this instead of silently proceeding.
    pub widened: bool,
    /// Worklist pops performed (= block transfers executed).
    pub iterations: usize,
    /// Successor joins that reported a state change.
    pub joins_changed: usize,
}

impl<S> FixpointResult<S> {
    /// The in-states, discarding the accounting — for callers that have
    /// already recorded `widened`.
    pub fn into_states(self) -> BTreeMap<u32, S> {
        self.in_states
    }
}

/// Computes the per-block *in*-states of a forward MUST-style analysis.
///
/// * `top` — the *conservative* state (nothing guaranteed / anything
///   possible), used for the defensive budget-cap fallback;
/// * `entry` — the in-state of the function's entry block. Intraprocedural
///   analyses pass `top()` here; the interprocedural multi-level analysis
///   passes the join of the caller states at every call site (or the
///   cold-boot state for the program entry);
/// * `join_into` — the in-place control-flow merge (in MUST domains:
///   intersection; in product MUST×MAY domains: per-component), returning
///   whether the left state changed;
/// * `transfer` — applies one block's effect to a state;
/// * `budget_factor` — iterations allowed per block before the solver
///   gives up and returns `top` everywhere (a defensive cap; real inputs
///   converge in a handful of passes per block). Exhausting the budget is
///   *not* silent: the result's `widened` flag is set and a
///   `fixpoint_budget_exhausted` counter is emitted;
/// * `budget` — caller-imposed [`FixpointBudget`] (iteration cap and/or
///   wall-clock deadline) layered on top of the structural cap; exhausting
///   it widens identically, so a deadline produces a degraded-but-sound
///   bound rather than an overrun.
///
/// Blocks unreachable from the entry receive no in-state (callers fall
/// back to `top` for them), exactly like the previous solver.
///
/// ```
/// use spmlab_wcet::fixpoint::{must_fixpoint, FixpointBudget};
/// # use spmlab_wcet::cfg::{BasicBlock, FuncCfg};
/// # use std::collections::BTreeMap;
/// # let block = |start: u32, succs: Vec<u32>| BasicBlock {
/// #     start, insns: vec![], succs, calls: vec![], is_exit: false,
/// # };
/// // A two-block function; the domain is "set of block ids definitely
/// // traversed", join = intersection — a toy MUST analysis.
/// let cfg = FuncCfg {
///     name: "f".into(),
///     entry: 0,
///     blocks: BTreeMap::from([(0, block(0, vec![2])), (2, block(2, vec![]))]),
/// };
/// use std::collections::BTreeSet;
/// let result = must_fixpoint(
///     &cfg,
///     BTreeSet::new,                         // conservative fallback
///     BTreeSet::from([99u32]),               // interprocedural entry fact
///     |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
///         let n = a.len();
///         a.retain(|x| b.contains(x));
///         a.len() != n
///     },
///     |s, b| { s.insert(b.start); },
///     64,
///     FixpointBudget::UNLIMITED,
/// );
/// assert!(!result.widened, "a two-block chain converges well within budget");
/// let states = result.in_states;
/// assert!(states[&0].contains(&99), "the entry fact reaches the entry block");
/// assert!(states[&2].contains(&99) && states[&2].contains(&0));
/// ```
pub fn must_fixpoint<S, T, J, F>(
    cfg: &FuncCfg,
    top: T,
    entry: S,
    join_into: J,
    mut transfer: F,
    budget_factor: usize,
    budget: FixpointBudget,
) -> FixpointResult<S>
where
    S: Clone,
    T: Fn() -> S,
    J: Fn(&mut S, &S) -> bool,
    F: FnMut(&mut S, &BasicBlock),
{
    let rpo = crate::loops::reverse_postorder(cfg);
    let index: BTreeMap<u32, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut in_states: BTreeMap<u32, S> = BTreeMap::new();
    in_states.insert(cfg.entry, entry);
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::with_capacity(rpo.len());
    let mut queued = vec![false; rpo.len()];
    heap.push(Reverse(0));
    queued[0] = true;
    let mut iterations = 0usize;
    let mut joins_changed = 0usize;
    let mut widened = false;
    let structural_budget = budget_factor * cfg.blocks.len().max(1);
    while let Some(Reverse(i)) = heap.pop() {
        queued[i] = false;
        iterations += 1;
        if iterations > structural_budget.max(4096) || budget.exhausted(iterations) {
            // Defensive cap or caller budget: fall back to the safe top
            // state everywhere.
            for (_, s) in in_states.iter_mut() {
                *s = top();
            }
            widened = true;
            break;
        }
        let b = rpo[i];
        let block = &cfg.blocks[&b];
        let mut out = in_states[&b].clone();
        transfer(&mut out, block);
        for &succ in &block.succs {
            let changed = match in_states.get_mut(&succ) {
                Some(s) => join_into(s, &out),
                None => {
                    in_states.insert(succ, out.clone());
                    true
                }
            };
            if changed {
                joins_changed += 1;
                let si = index[&succ];
                if !queued[si] {
                    queued[si] = true;
                    heap.push(Reverse(si));
                }
            }
        }
    }
    if spmlab_obs::enabled() {
        spmlab_obs::counter("fixpoint_runs", 1);
        spmlab_obs::counter("fixpoint_iterations", iterations as u64);
        spmlab_obs::counter("fixpoint_joins_changed", joins_changed as u64);
        if widened {
            spmlab_obs::counter("fixpoint_budget_exhausted", 1);
        }
    }
    FixpointResult {
        in_states,
        widened,
        iterations,
        joins_changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::collections::BTreeSet;

    fn block(start: u32, succs: Vec<u32>, is_exit: bool) -> BasicBlock {
        BasicBlock {
            start,
            insns: vec![],
            succs,
            calls: vec![],
            is_exit,
        }
    }

    /// A hand-built CFG from `(start, succs)` pairs; entry is the first.
    fn cfg_of(edges: &[(u32, &[u32])]) -> FuncCfg {
        let blocks = edges
            .iter()
            .map(|&(s, succs)| (s, block(s, succs.to_vec(), succs.is_empty())))
            .collect();
        FuncCfg {
            name: "synthetic".into(),
            entry: edges[0].0,
            blocks,
        }
    }

    /// The satellite regression test for the RPO worklist: on a diamond
    /// (entry → then/else → join → exit) the solver must run each block's
    /// transfer exactly once — the old LIFO order re-transferred the join
    /// block after the second arm arrived.
    #[test]
    fn diamond_converges_in_one_pass_per_block() {
        let cfg = cfg_of(&[
            (0, &[2, 4][..]),
            (2, &[6][..]),
            (4, &[6][..]),
            (6, &[8][..]),
            (8, &[][..]),
        ]);
        let transfers = Cell::new(0usize);
        // Set-union-free MUST-ish domain: a set of "guaranteed" markers,
        // join = intersection, transfer inserts the block id.
        let result = must_fixpoint(
            &cfg,
            BTreeSet::<u32>::new,
            BTreeSet::new(),
            |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
                let before = a.len();
                a.retain(|x| b.contains(x));
                a.len() != before
            },
            |s, block| {
                transfers.set(transfers.get() + 1);
                s.insert(block.start);
            },
            64,
            FixpointBudget::UNLIMITED,
        );
        assert_eq!(
            transfers.get(),
            cfg.blocks.len(),
            "diamond must converge in exactly one transfer per block"
        );
        assert!(!result.widened);
        assert_eq!(result.iterations, cfg.blocks.len());
        // The join block's in-state is the intersection of both arms: only
        // the entry marker survives.
        assert_eq!(result.in_states[&6], BTreeSet::from([0]));
    }

    /// A loop converges and the back-edge join weakens the header in-state.
    #[test]
    fn loop_reaches_fixpoint() {
        // entry → header → body → header; header → exit.
        let cfg = cfg_of(&[(0, &[2][..]), (2, &[4, 6][..]), (4, &[2][..]), (6, &[][..])]);
        let result = must_fixpoint(
            &cfg,
            BTreeSet::<u32>::new,
            BTreeSet::new(),
            |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
                let before = a.len();
                a.retain(|x| b.contains(x));
                a.len() != before
            },
            |s, block| {
                s.insert(block.start);
            },
            64,
            FixpointBudget::UNLIMITED,
        );
        // The header is entered from 0 (giving {0}) and from 4 (giving
        // {0, 2, 4}); the intersection keeps only {0}.
        assert!(!result.widened);
        assert!(result.joins_changed > 0);
        assert_eq!(result.in_states[&2], BTreeSet::from([0]));
        assert_eq!(result.in_states[&6], BTreeSet::from([0, 2]));
    }

    /// Unreachable blocks get no in-state (callers substitute top).
    #[test]
    fn unreachable_blocks_left_out() {
        let mut cfg = cfg_of(&[(0, &[2][..]), (2, &[][..])]);
        cfg.blocks.insert(100, block(100, vec![2], false));
        let states = must_fixpoint::<BTreeSet<u32>, _, _, _>(
            &cfg,
            BTreeSet::<u32>::new,
            BTreeSet::new(),
            |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
                let before = a.len();
                a.retain(|x| b.contains(x));
                a.len() != before
            },
            |s, block| {
                s.insert(block.start);
            },
            64,
            FixpointBudget::UNLIMITED,
        )
        .into_states();
        assert!(states.contains_key(&0) && states.contains_key(&2));
        assert!(!states.contains_key(&100));
    }

    /// The defensive cap falls back to top everywhere (a domain whose join
    /// always reports change never converges) — and the bail-out is no
    /// longer silent: the result reports `widened` and the
    /// `fixpoint_budget_exhausted` counter fires.
    #[test]
    fn budget_cap_falls_back_to_top_and_reports_widening() {
        let _x = spmlab_obs::exclusive();
        let sink = std::sync::Arc::new(spmlab_obs::collector::MemorySink::default());
        let guard = spmlab_obs::add_sink(sink.clone());
        let cfg = cfg_of(&[(0, &[2][..]), (2, &[0][..])]);
        let result = must_fixpoint(
            &cfg,
            || 0u64,
            0u64,
            |a: &mut u64, b: &u64| {
                *a = a.wrapping_add(*b).wrapping_add(1);
                true // Claims to change forever.
            },
            |s, _| *s += 1,
            1,
            FixpointBudget::UNLIMITED,
        );
        drop(guard);
        assert!(result.widened, "exhausting the budget must be observable");
        assert!(result.iterations > 4096, "the cap is the 4096 floor here");
        for (_, v) in result.in_states {
            assert_eq!(v, 0, "cap must reset every state to top");
        }
        assert_eq!(
            sink.counter_total("fixpoint_budget_exhausted"),
            1,
            "bail-out must emit the exhaustion counter"
        );
        assert_eq!(sink.counter_total("fixpoint_runs"), 1);
    }

    /// A caller-imposed iteration cap widens long before the structural
    /// 4096 floor — an explicit cap has no floor by design.
    #[test]
    fn caller_iteration_cap_widens_without_floor() {
        let cfg = cfg_of(&[(0, &[2][..]), (2, &[0][..])]);
        let result = must_fixpoint(
            &cfg,
            || 0u64,
            0u64,
            |a: &mut u64, b: &u64| {
                *a = a.wrapping_add(*b).wrapping_add(1);
                true // Claims to change forever.
            },
            |s, _| *s += 1,
            64,
            FixpointBudget {
                max_iterations: Some(3),
                deadline: None,
            },
        );
        assert!(result.widened, "explicit cap must trigger widening");
        assert_eq!(result.iterations, 4, "cap of 3 stops on the 4th pop");
        for (_, v) in result.in_states {
            assert_eq!(v, 0, "cap must reset every state to top");
        }
    }

    /// An already-expired deadline widens on the first pop; the result is
    /// top everywhere, i.e. degraded but sound.
    #[test]
    fn expired_deadline_widens_immediately() {
        let cfg = cfg_of(&[(0, &[2][..]), (2, &[][..])]);
        let result = must_fixpoint(
            &cfg,
            BTreeSet::<u32>::new,
            BTreeSet::from([7u32]),
            |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
                let before = a.len();
                a.retain(|x| b.contains(x));
                a.len() != before
            },
            |s, block| {
                s.insert(block.start);
            },
            64,
            FixpointBudget {
                max_iterations: None,
                deadline: Some(Instant::now()),
            },
        );
        assert!(result.widened);
        assert_eq!(result.iterations, 1);
        for (_, v) in result.in_states {
            assert!(v.is_empty(), "deadline must reset every state to top");
        }
    }

    /// A converging run reports `widened == false` and no exhaustion
    /// counter.
    #[test]
    fn converging_run_is_not_widened() {
        let _x = spmlab_obs::exclusive();
        let sink = std::sync::Arc::new(spmlab_obs::collector::MemorySink::default());
        let guard = spmlab_obs::add_sink(sink.clone());
        let cfg = cfg_of(&[(0, &[2][..]), (2, &[][..])]);
        let result = must_fixpoint(
            &cfg,
            BTreeSet::<u32>::new,
            BTreeSet::new(),
            |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
                let before = a.len();
                a.retain(|x| b.contains(x));
                a.len() != before
            },
            |s, block| {
                s.insert(block.start);
            },
            64,
            FixpointBudget::UNLIMITED,
        );
        drop(guard);
        assert!(!result.widened);
        assert_eq!(sink.counter_total("fixpoint_budget_exhausted"), 0);
        assert_eq!(
            sink.counter_total("fixpoint_iterations"),
            result.iterations as u64
        );
    }
}
