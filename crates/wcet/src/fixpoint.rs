//! Generic MUST-style worklist fixpoint over a function CFG, shared by the
//! single-level cache analysis and the multi-level hierarchy analysis so
//! the two solvers can never drift apart.

use crate::cfg::{BasicBlock, FuncCfg};
use std::collections::BTreeMap;

/// Computes the per-block *in*-states of a forward MUST analysis.
///
/// * `top` — the analysis start state (nothing guaranteed), used at the
///   function entry and as the safe fallback;
/// * `join` — the control-flow merge (in MUST domains: intersection);
/// * `transfer` — applies one block's effect to a state;
/// * `budget_factor` — iterations allowed per block before the solver
///   gives up and returns `top` everywhere (a defensive cap; real inputs
///   converge in a handful of passes per block).
pub fn must_fixpoint<S, T, J, F>(
    cfg: &FuncCfg,
    top: T,
    join: J,
    mut transfer: F,
    budget_factor: usize,
) -> BTreeMap<u32, S>
where
    S: Clone + PartialEq,
    T: Fn() -> S,
    J: Fn(&S, &S) -> S,
    F: FnMut(&mut S, &BasicBlock),
{
    let preds = cfg.predecessors();
    let mut in_states: BTreeMap<u32, S> = BTreeMap::new();
    in_states.insert(cfg.entry, top());
    let mut out_states: BTreeMap<u32, S> = BTreeMap::new();
    let mut work: Vec<u32> = cfg.blocks.keys().copied().collect();
    let mut iterations = 0usize;
    let budget = budget_factor * cfg.blocks.len().max(1);
    while let Some(b) = work.pop() {
        iterations += 1;
        if iterations > budget.max(4096) {
            // Defensive cap: fall back to the safe top state everywhere.
            for (_, s) in in_states.iter_mut() {
                *s = top();
            }
            break;
        }
        // in = join of predecessors' outs (entry joins with TOP).
        let mut input: Option<S> = if b == cfg.entry { Some(top()) } else { None };
        for p in preds.get(&b).into_iter().flatten() {
            if let Some(o) = out_states.get(p) {
                input = Some(match input {
                    None => o.clone(),
                    Some(i) => join(&i, o),
                });
            }
        }
        let Some(input) = input else { continue };
        let changed_in = in_states.get(&b) != Some(&input);
        if changed_in || !out_states.contains_key(&b) {
            let mut s = input.clone();
            transfer(&mut s, &cfg.blocks[&b]);
            in_states.insert(b, input);
            let changed_out = out_states.get(&b) != Some(&s);
            out_states.insert(b, s);
            if changed_out {
                for &succ in &cfg.blocks[&b].succs {
                    if !work.contains(&succ) {
                        work.push(succ);
                    }
                }
            }
        }
    }
    in_states
}
