//! Generic MUST-style worklist fixpoint over a function CFG, shared by the
//! single-level cache analysis and the multi-level hierarchy analysis so
//! the two solvers can never drift apart.
//!
//! The solver visits blocks in **reverse postorder** through a priority
//! worklist (a min-heap over RPO indices with a bitset membership guard),
//! so forward dataflow reaches a block only after its forward predecessors
//! in the common case — acyclic regions converge in one transfer per
//! block, and loops need one extra pass per nesting level. This replaces
//! the original LIFO vector whose `contains(&succ)` membership scan was
//! `O(n)` per push and whose `keys().collect()` seeding visited blocks in
//! arbitrary address order.
//!
//! Change detection is delegated to the domain: `join_into` merges a
//! predecessor's out-state into a successor's in-state *in place* and
//! reports whether anything changed, so the solver never compares or
//! clones whole states to decide convergence.

use crate::cfg::{BasicBlock, FuncCfg};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Computes the per-block *in*-states of a forward MUST-style analysis.
///
/// * `top` — the *conservative* state (nothing guaranteed / anything
///   possible), used for the defensive budget-cap fallback;
/// * `entry` — the in-state of the function's entry block. Intraprocedural
///   analyses pass `top()` here; the interprocedural multi-level analysis
///   passes the join of the caller states at every call site (or the
///   cold-boot state for the program entry);
/// * `join_into` — the in-place control-flow merge (in MUST domains:
///   intersection; in product MUST×MAY domains: per-component), returning
///   whether the left state changed;
/// * `transfer` — applies one block's effect to a state;
/// * `budget_factor` — iterations allowed per block before the solver
///   gives up and returns `top` everywhere (a defensive cap; real inputs
///   converge in a handful of passes per block).
///
/// Blocks unreachable from the entry receive no in-state (callers fall
/// back to `top` for them), exactly like the previous solver.
///
/// ```
/// use spmlab_wcet::fixpoint::must_fixpoint;
/// # use spmlab_wcet::cfg::{BasicBlock, FuncCfg};
/// # use std::collections::BTreeMap;
/// # let block = |start: u32, succs: Vec<u32>| BasicBlock {
/// #     start, insns: vec![], succs, calls: vec![], is_exit: false,
/// # };
/// // A two-block function; the domain is "set of block ids definitely
/// // traversed", join = intersection — a toy MUST analysis.
/// let cfg = FuncCfg {
///     name: "f".into(),
///     entry: 0,
///     blocks: BTreeMap::from([(0, block(0, vec![2])), (2, block(2, vec![]))]),
/// };
/// use std::collections::BTreeSet;
/// let states = must_fixpoint(
///     &cfg,
///     BTreeSet::new,                         // conservative fallback
///     BTreeSet::from([99u32]),               // interprocedural entry fact
///     |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
///         let n = a.len();
///         a.retain(|x| b.contains(x));
///         a.len() != n
///     },
///     |s, b| { s.insert(b.start); },
///     64,
/// );
/// assert!(states[&0].contains(&99), "the entry fact reaches the entry block");
/// assert!(states[&2].contains(&99) && states[&2].contains(&0));
/// ```
pub fn must_fixpoint<S, T, J, F>(
    cfg: &FuncCfg,
    top: T,
    entry: S,
    join_into: J,
    mut transfer: F,
    budget_factor: usize,
) -> BTreeMap<u32, S>
where
    S: Clone,
    T: Fn() -> S,
    J: Fn(&mut S, &S) -> bool,
    F: FnMut(&mut S, &BasicBlock),
{
    let rpo = crate::loops::reverse_postorder(cfg);
    let index: BTreeMap<u32, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut in_states: BTreeMap<u32, S> = BTreeMap::new();
    in_states.insert(cfg.entry, entry);
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::with_capacity(rpo.len());
    let mut queued = vec![false; rpo.len()];
    heap.push(Reverse(0));
    queued[0] = true;
    let mut iterations = 0usize;
    let budget = budget_factor * cfg.blocks.len().max(1);
    while let Some(Reverse(i)) = heap.pop() {
        queued[i] = false;
        iterations += 1;
        if iterations > budget.max(4096) {
            // Defensive cap: fall back to the safe top state everywhere.
            for (_, s) in in_states.iter_mut() {
                *s = top();
            }
            break;
        }
        let b = rpo[i];
        let block = &cfg.blocks[&b];
        let mut out = in_states[&b].clone();
        transfer(&mut out, block);
        for &succ in &block.succs {
            let changed = match in_states.get_mut(&succ) {
                Some(s) => join_into(s, &out),
                None => {
                    in_states.insert(succ, out.clone());
                    true
                }
            };
            if changed {
                let si = index[&succ];
                if !queued[si] {
                    queued[si] = true;
                    heap.push(Reverse(si));
                }
            }
        }
    }
    in_states
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::collections::BTreeSet;

    fn block(start: u32, succs: Vec<u32>, is_exit: bool) -> BasicBlock {
        BasicBlock {
            start,
            insns: vec![],
            succs,
            calls: vec![],
            is_exit,
        }
    }

    /// A hand-built CFG from `(start, succs)` pairs; entry is the first.
    fn cfg_of(edges: &[(u32, &[u32])]) -> FuncCfg {
        let blocks = edges
            .iter()
            .map(|&(s, succs)| (s, block(s, succs.to_vec(), succs.is_empty())))
            .collect();
        FuncCfg {
            name: "synthetic".into(),
            entry: edges[0].0,
            blocks,
        }
    }

    /// The satellite regression test for the RPO worklist: on a diamond
    /// (entry → then/else → join → exit) the solver must run each block's
    /// transfer exactly once — the old LIFO order re-transferred the join
    /// block after the second arm arrived.
    #[test]
    fn diamond_converges_in_one_pass_per_block() {
        let cfg = cfg_of(&[
            (0, &[2, 4][..]),
            (2, &[6][..]),
            (4, &[6][..]),
            (6, &[8][..]),
            (8, &[][..]),
        ]);
        let transfers = Cell::new(0usize);
        // Set-union-free MUST-ish domain: a set of "guaranteed" markers,
        // join = intersection, transfer inserts the block id.
        let states = must_fixpoint(
            &cfg,
            BTreeSet::<u32>::new,
            BTreeSet::new(),
            |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
                let before = a.len();
                a.retain(|x| b.contains(x));
                a.len() != before
            },
            |s, block| {
                transfers.set(transfers.get() + 1);
                s.insert(block.start);
            },
            64,
        );
        assert_eq!(
            transfers.get(),
            cfg.blocks.len(),
            "diamond must converge in exactly one transfer per block"
        );
        // The join block's in-state is the intersection of both arms: only
        // the entry marker survives.
        assert_eq!(states[&6], BTreeSet::from([0]));
    }

    /// A loop converges and the back-edge join weakens the header in-state.
    #[test]
    fn loop_reaches_fixpoint() {
        // entry → header → body → header; header → exit.
        let cfg = cfg_of(&[(0, &[2][..]), (2, &[4, 6][..]), (4, &[2][..]), (6, &[][..])]);
        let states = must_fixpoint(
            &cfg,
            BTreeSet::<u32>::new,
            BTreeSet::new(),
            |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
                let before = a.len();
                a.retain(|x| b.contains(x));
                a.len() != before
            },
            |s, block| {
                s.insert(block.start);
            },
            64,
        );
        // The header is entered from 0 (giving {0}) and from 4 (giving
        // {0, 2, 4}); the intersection keeps only {0}.
        assert_eq!(states[&2], BTreeSet::from([0]));
        assert_eq!(states[&6], BTreeSet::from([0, 2]));
    }

    /// Unreachable blocks get no in-state (callers substitute top).
    #[test]
    fn unreachable_blocks_left_out() {
        let mut cfg = cfg_of(&[(0, &[2][..]), (2, &[][..])]);
        cfg.blocks.insert(100, block(100, vec![2], false));
        let states = must_fixpoint(
            &cfg,
            BTreeSet::<u32>::new,
            BTreeSet::new(),
            |a: &mut BTreeSet<u32>, b: &BTreeSet<u32>| {
                let before = a.len();
                a.retain(|x| b.contains(x));
                a.len() != before
            },
            |s, block| {
                s.insert(block.start);
            },
            64,
        );
        assert!(states.contains_key(&0) && states.contains_key(&2));
        assert!(!states.contains_key(&100));
    }

    /// The defensive cap falls back to top everywhere (a domain whose join
    /// always reports change never converges).
    #[test]
    fn budget_cap_falls_back_to_top() {
        let cfg = cfg_of(&[(0, &[2][..]), (2, &[0][..])]);
        let states = must_fixpoint(
            &cfg,
            || 0u64,
            0u64,
            |a: &mut u64, b: &u64| {
                *a = a.wrapping_add(*b).wrapping_add(1);
                true // Claims to change forever.
            },
            |s, _| *s += 1,
            1,
        );
        for (_, v) in states {
            assert_eq!(v, 0, "cap must reset every state to top");
        }
    }
}
