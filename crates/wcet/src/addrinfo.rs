//! Per-instruction data-access classification.
//!
//! Combines three information sources, in the spirit of the paper's
//! automatically generated annotations: instruction semantics (SP-relative
//! and PC-relative accesses classify themselves), linker-generated access
//! annotations (exact addresses and array ranges), and the stack-depth
//! analysis (turning "somewhere on the stack" into a concrete window).

use spmlab_isa::annot::{AddrInfo, AnnotationSet};
use spmlab_isa::insn::Insn;
use spmlab_isa::mem::AccessWidth;

/// One data access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Access width.
    pub width: AccessWidth,
    /// What is known about the address.
    pub info: AddrInfo,
    /// Write (store) or read (load).
    pub is_write: bool,
}

/// Enumerates the data accesses of the instruction at `addr`.
///
/// `PUSH`/`POP` expand to one 32-bit stack access per register; literal
/// loads compute their exact pool address from the encoding; everything
/// else consults the annotation set and defaults to `Unknown`.
pub fn data_accesses(insn: &Insn, addr: u32, annot: &AnnotationSet) -> Vec<DataAccess> {
    let stack = || {
        annot
            .stack_window()
            .map(|(lo, hi)| AddrInfo::Range { lo, hi })
            .unwrap_or(AddrInfo::Stack)
    };
    let annotated = |is_write: bool, width: AccessWidth| {
        let info = annot
            .access(addr)
            .map(|a| a.addr)
            .unwrap_or(AddrInfo::Unknown);
        vec![DataAccess {
            width,
            info,
            is_write,
        }]
    };
    match insn {
        Insn::LdrLit { imm, .. } => {
            let pool = (addr.wrapping_add(4) & !3).wrapping_add(*imm as u32 * 4);
            vec![DataAccess {
                width: AccessWidth::Word,
                info: AddrInfo::Exact(pool),
                is_write: false,
            }]
        }
        Insn::LdrSp { .. } => {
            vec![DataAccess {
                width: AccessWidth::Word,
                info: stack(),
                is_write: false,
            }]
        }
        Insn::StrSp { .. } => {
            vec![DataAccess {
                width: AccessWidth::Word,
                info: stack(),
                is_write: true,
            }]
        }
        Insn::Push { regs, lr } => {
            let n = regs.len() as usize + *lr as usize;
            vec![
                DataAccess {
                    width: AccessWidth::Word,
                    info: stack(),
                    is_write: true
                };
                n
            ]
        }
        Insn::Pop { regs, pc } => {
            let n = regs.len() as usize + *pc as usize;
            vec![
                DataAccess {
                    width: AccessWidth::Word,
                    info: stack(),
                    is_write: false
                };
                n
            ]
        }
        Insn::LdrImm { width, .. } | Insn::LdrReg { width, .. } => annotated(false, *width),
        Insn::StrImm { width, .. } | Insn::StrReg { width, .. } => annotated(true, *width),
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmlab_isa::reg::{RegList, R0, R1};

    #[test]
    fn literal_loads_are_exact() {
        let insn = Insn::LdrLit { rd: R0, imm: 2 };
        // At address 0x100: pool addr = (0x104 & !3) + 8 = 0x10c.
        let a = data_accesses(&insn, 0x100, &AnnotationSet::new());
        assert_eq!(
            a,
            vec![DataAccess {
                width: AccessWidth::Word,
                info: AddrInfo::Exact(0x10C),
                is_write: false
            }]
        );
    }

    #[test]
    fn push_pop_expand() {
        let insn = Insn::Push {
            regs: RegList::of(&[R0, R1]),
            lr: true,
        };
        let a = data_accesses(&insn, 0, &AnnotationSet::new());
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|d| d.is_write && d.info == AddrInfo::Stack));
    }

    #[test]
    fn stack_window_applied() {
        let mut ann = AnnotationSet::new();
        ann.set_stack_window(0x1F_F000, 0x20_0000);
        let insn = Insn::LdrSp { rd: R0, imm: 1 };
        let a = data_accesses(&insn, 0, &ann);
        assert_eq!(
            a[0].info,
            AddrInfo::Range {
                lo: 0x1F_F000,
                hi: 0x20_0000
            }
        );
    }

    #[test]
    fn annotated_loads() {
        let mut ann = AnnotationSet::new();
        ann.set_access(
            0x40,
            AccessWidth::Half,
            AddrInfo::Range {
                lo: 0x500,
                hi: 0x600,
            },
        );
        let insn = Insn::LdrReg {
            width: AccessWidth::Half,
            signed: true,
            rd: R0,
            rn: R1,
            rm: R0,
        };
        let a = data_accesses(&insn, 0x40, &ann);
        assert_eq!(
            a[0].info,
            AddrInfo::Range {
                lo: 0x500,
                hi: 0x600
            }
        );
        // Unannotated instruction → unknown.
        let a = data_accesses(&insn, 0x42, &ann);
        assert_eq!(a[0].info, AddrInfo::Unknown);
    }

    #[test]
    fn non_memory_insns_have_no_accesses() {
        assert!(data_accesses(&Insn::Nop, 0, &AnnotationSet::new()).is_empty());
        assert!(data_accesses(&Insn::Ret, 0, &AnnotationSet::new()).is_empty());
    }
}
